"""Shim for legacy editable installs (the sandbox lacks the wheel package)."""

from setuptools import setup

setup(
    entry_points={
        "console_scripts": [
            # Shard worker for the distributed (socket) sweep backend.
            "repro-worker=repro.engine.remote:main",
            # Design-space exploration CLI (evaluate / sweep / project).
            "repro-sweep=repro.toolflow.cli:main",
        ],
    },
)
