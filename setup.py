"""Shim for legacy editable installs (the sandbox lacks the wheel package)."""

from setuptools import setup

setup()
