"""End-to-end compiler tests: pipeline, stats, steady-state rounds."""

import pytest

from repro.arch import STANDARD_WIRING, WISE_WIRING
from repro.codes import RepetitionCode, RotatedSurfaceCode
from repro.core import (
    CompilerConfig,
    QccdCompiler,
    compile_memory_experiment,
    steady_round_time,
)


class TestCompiledProgram:
    def test_basic_compile(self):
        program = compile_memory_experiment(
            RepetitionCode(3), trap_capacity=2, topology="linear", rounds=2
        )
        assert program.rounds == 2
        assert program.stats.makespan_us > 0
        assert program.stats.num_gates > 0
        assert len(program.start) == len(program.ops)

    def test_start_times_respect_deps(self):
        program = compile_memory_experiment(
            RotatedSurfaceCode(2), trap_capacity=2, topology="grid", rounds=2
        )
        for op in program.ops:
            for dep in op.deps:
                assert program.start[op.id] >= program.end(dep) - 1e-9

    def test_ops_in_time_order_sorted(self):
        program = compile_memory_experiment(
            RepetitionCode(3), trap_capacity=2, topology="linear"
        )
        ordered = program.ops_in_time_order()
        starts = [program.start[op.id] for op in ordered]
        assert starts == sorted(starts)

    def test_stats_consistency(self):
        program = compile_memory_experiment(
            RotatedSurfaceCode(3), trap_capacity=2, topology="grid", rounds=2
        )
        stats = program.stats
        movement = sum(1 for op in program.ops if op.is_movement)
        swaps = sum(1 for op in program.ops if op.kind == "SWAP")
        assert stats.movement_ops == movement + swaps
        assert stats.gate_swaps == swaps
        assert stats.round_time_us == pytest.approx(stats.makespan_us / 2)
        assert sum(stats.ops_by_kind.values()) == len(program.ops)

    def test_single_chain_program_has_no_movement(self):
        code = RepetitionCode(3)
        program = compile_memory_experiment(
            code, trap_capacity=code.num_qubits + 1, topology="linear"
        )
        assert program.stats.movement_ops == 0
        assert program.stats.movement_time_us == 0


class TestArchitecturalTrends:
    """The paper's headline claims, as regression tests."""

    def test_capacity2_grid_round_time_constant_in_distance(self):
        """Figure 9: capacity 2 gives distance-independent cycle time."""
        times = [
            steady_round_time(RotatedSurfaceCode(d), 2, "grid")
            for d in (3, 5, 7)
        ]
        assert max(times) / min(times) < 1.6

    def test_higher_capacity_round_time_grows(self):
        """Figure 9: larger traps serialise and slow down with distance."""
        t3 = steady_round_time(RotatedSurfaceCode(3), 12, "grid")
        t7 = steady_round_time(RotatedSurfaceCode(7), 12, "grid")
        assert t7 > 1.8 * t3

    def test_capacity2_beats_large_capacity_at_scale(self):
        d = 7
        t2 = steady_round_time(RotatedSurfaceCode(d), 2, "grid")
        t12 = steady_round_time(RotatedSurfaceCode(d), 12, "grid")
        assert t2 < t12

    def test_linear_topology_much_slower(self):
        """Figure 8a: linear routing congestion dominates."""
        d = 5
        grid = steady_round_time(RotatedSurfaceCode(d), 2, "grid")
        linear = steady_round_time(RotatedSurfaceCode(d), 2, "linear")
        assert linear > 4 * grid

    def test_switch_comparable_to_grid(self):
        """Figure 8a: grid matches the idealised all-to-all switch."""
        d = 5
        grid = steady_round_time(RotatedSurfaceCode(d), 2, "grid")
        switch = steady_round_time(RotatedSurfaceCode(d), 2, "switch")
        assert grid < 3 * switch  # same order of magnitude

    def test_wise_at_least_several_times_slower(self):
        """Figure 13b: WISE trades clock speed for wiring simplicity."""
        code = RotatedSurfaceCode(3)
        std = compile_memory_experiment(
            code, 2, "grid", STANDARD_WIRING, rounds=2
        ).stats.makespan_us
        wise = compile_memory_experiment(
            code, 2, "grid", WISE_WIRING, rounds=2
        ).stats.makespan_us
        assert wise > 3 * std


class TestConfig:
    def test_operation_times_follow_wiring(self):
        config = CompilerConfig(code=RepetitionCode(2), wiring=WISE_WIRING)
        assert config.operation_times().cooling_overhead_2q == 850

    def test_steady_round_time_validates_probes(self):
        with pytest.raises(ValueError):
            steady_round_time(
                RepetitionCode(2), 2, "linear", probe_rounds=(4, 2)
            )

    def test_compiler_is_deterministic(self):
        a = compile_memory_experiment(RotatedSurfaceCode(3), 2, "grid", rounds=2)
        b = compile_memory_experiment(RotatedSurfaceCode(3), 2, "grid", rounds=2)
        assert a.stats.makespan_us == b.stats.makespan_us
        assert [op.kind for op in a.ops] == [op.kind for op in b.ops]
