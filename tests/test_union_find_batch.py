"""Batched vectorised union-find vs the scalar reference.

The batched kernel must be *bit-identical* to per-shot ``decode`` —
not statistically close — because the packed pipeline silently routes
every distinct syndrome through it.  Exhaustive enumeration over every
syndrome of small codes leaves no room for a lucky sample.
"""

import itertools

import numpy as np
import pytest

from repro.codes import (
    RepetitionCode,
    RotatedSurfaceCode,
    UniformNoise,
    ideal_memory_circuit,
)
from repro.decoders import DetectorGraph, UnionFindDecoder
from repro.sim import DemError, DetectorErrorModel, FrameSimulator, circuit_to_dem, pack_bool_rows


def _all_syndromes(num_detectors: int) -> np.ndarray:
    return np.array(
        list(itertools.product((False, True), repeat=num_detectors)), dtype=bool
    )


def _assert_batch_matches_scalar(graph: DetectorGraph, rows: np.ndarray):
    decoder = UnionFindDecoder(graph)
    scalar = np.array([decoder.decode(r) for r in rows], dtype=np.int64)
    batched = decoder.decode_many(rows)
    assert np.array_equal(batched, scalar)


class TestExhaustiveEquivalence:
    def test_repetition_memory_every_syndrome(self):
        circ = ideal_memory_circuit(
            RepetitionCode(3), rounds=2, noise=UniformNoise(0.02)
        )
        graph = DetectorGraph.from_dem(circuit_to_dem(circ))
        assert graph.num_detectors <= 10  # keep the enumeration honest
        _assert_batch_matches_scalar(graph, _all_syndromes(graph.num_detectors))

    def test_line_graph_every_syndrome(self):
        n = 7
        dem = DetectorErrorModel(n, 1)
        dem.errors.append(DemError((0,), (0,), 0.04))
        for i in range(n - 1):
            dem.errors.append(DemError((i, i + 1), (), 0.03 + 0.01 * (i % 3)))
        dem.errors.append(DemError((n - 1,), (), 0.05))
        graph = DetectorGraph.from_dem(dem)
        _assert_batch_matches_scalar(graph, _all_syndromes(n))

    def test_weighted_cycle_with_boundary_every_syndrome(self):
        # A cycle stresses merge events between same-cluster endpoints
        # (two-sided growth of an internal edge) and peeling in a graph
        # with loops.
        n = 6
        dem = DetectorErrorModel(n, 2)
        for i in range(n):
            dem.errors.append(
                DemError((i, (i + 1) % n), ((i % 2),), 0.02 + 0.005 * i)
            )
        dem.errors.append(DemError((0,), (), 0.04))
        graph = DetectorGraph.from_dem(dem)
        _assert_batch_matches_scalar(graph, _all_syndromes(n))


class TestSampledEquivalence:
    def test_surface_code_sampled_syndromes(self):
        circ = ideal_memory_circuit(
            RotatedSurfaceCode(3), rounds=3, noise=UniformNoise(0.02)
        )
        graph = DetectorGraph.from_dem(circuit_to_dem(circ))
        sample = FrameSimulator(circ, seed=11).sample(1500)
        _assert_batch_matches_scalar(graph, sample.detectors)

    def test_multi_word_syndromes(self):
        # > 64 detectors forces multi-word packed rows through
        # decode_unique_words.
        n = 70
        dem = DetectorErrorModel(n, 1)
        dem.errors.append(DemError((0,), (0,), 0.05))
        for i in range(n - 1):
            dem.errors.append(DemError((i, i + 1), (), 0.05))
        dem.errors.append(DemError((n - 1,), (), 0.05))
        graph = DetectorGraph.from_dem(dem)
        rng = np.random.default_rng(5)
        rows = rng.random((300, n)) < 0.08
        decoder = UnionFindDecoder(graph)
        scalar = np.array([decoder.decode(r) for r in rows], dtype=np.int64)
        via_packed = decoder.decode_unique_words(pack_bool_rows(rows))
        # decode_unique_words decodes rows as given (no dedupe layer).
        assert np.array_equal(via_packed, scalar)

    def test_chunked_batches_are_seamless(self):
        # Chunk boundary (_BATCH_ROWS) must not change results: force
        # multiple chunks with a tiny chunk size.
        from repro.decoders import union_find

        circ = ideal_memory_circuit(
            RepetitionCode(3), rounds=3, noise=UniformNoise(0.05)
        )
        graph = DetectorGraph.from_dem(circuit_to_dem(circ))
        sample = FrameSimulator(circ, seed=3).sample(500)
        decoder = UnionFindDecoder(graph)
        whole = decoder.decode_many(sample.detectors)
        original = union_find._BATCH_ROWS
        union_find._BATCH_ROWS = 37
        try:
            chunked = UnionFindDecoder(graph).decode_many(sample.detectors)
        finally:
            union_find._BATCH_ROWS = original
        assert np.array_equal(whole, chunked)

    def test_empty_and_all_zero_batches(self):
        graph = DetectorGraph.from_dem(
            DetectorErrorModel(3, 1, [DemError((0, 1), (0,), 0.1)])
        )
        decoder = UnionFindDecoder(graph)
        assert decoder.decode_many(np.zeros((0, 3), dtype=bool)).shape == (0,)
        assert np.array_equal(
            decoder.decode_many(np.zeros((4, 3), dtype=bool)),
            np.zeros(4, dtype=np.int64),
        )

    def test_edgeless_graph(self):
        graph = DetectorGraph.from_dem(DetectorErrorModel(2, 1))
        decoder = UnionFindDecoder(graph)
        rows = np.array([[True, False], [False, False]])
        assert np.array_equal(
            decoder.decode_many(rows),
            np.array([decoder.decode(r) for r in rows]),
        )
