"""QCCD hardware model tests: topologies, timing, wiring, resources."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    DEFAULT_TIMES,
    STANDARD_WIRING,
    WISE_WIRING,
    ComponentKind,
    OperationTimes,
    build_device,
    electrode_counts,
    grid_device,
    grid_device_from_sites,
    linear_device,
    standard_resources,
    switch_device,
    wiring_by_name,
    wise_resources,
)


class TestLinearDevice:
    def test_structure(self):
        dev = linear_device(4, 2)
        assert dev.num_traps == 4
        assert dev.num_junctions == 0
        assert len(dev.segments) == 3

    def test_neighbor_traps(self):
        dev = linear_device(4, 2)
        assert dev.neighbor_traps(0) == [1]
        assert dev.neighbor_traps(1) == [0, 2]

    def test_single_trap(self):
        dev = linear_device(1, 5)
        assert dev.num_traps == 1
        assert not dev.segments

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            linear_device(0, 2)
        with pytest.raises(ValueError):
            linear_device(3, 1)


class TestSwitchDevice:
    def test_structure(self):
        dev = switch_device(5, 2)
        assert dev.num_traps == 5
        assert dev.num_junctions == 1
        assert len(dev.segments) == 5

    def test_hub_is_crossbar(self):
        dev = switch_device(5, 2)
        hub = dev.junctions[0]
        assert hub.capacity == 5

    def test_all_traps_adjacent(self):
        dev = switch_device(4, 2)
        assert dev.neighbor_traps(0) == [1, 2, 3]


class TestGridDevice:
    def test_rectangle(self):
        dev = grid_device(3, 3, 2)
        assert dev.num_traps == 9
        # Interior corners of a 3x3: 2x2 = 4 junctions.
        assert dev.num_junctions == 4

    def test_diagonal_adjacency(self):
        dev = grid_device(2, 2, 2)
        assert dev.num_junctions == 1
        # All four traps reachable through the shared corner junction.
        assert dev.neighbor_traps(0) == [1, 2, 3]

    def test_from_sites_diamond(self):
        sites = [(0, 0), (1, 0), (0, 1), (1, 1), (2, 0)]
        dev = grid_device_from_sites(sites, 2)
        assert dev.num_traps == 5
        dev.validate()

    def test_from_sites_rejects_duplicates(self):
        with pytest.raises(ValueError):
            grid_device_from_sites([(0, 0), (0, 0)], 2)

    def test_degenerate_row_stays_connected(self):
        dev = grid_device(1, 4, 3)
        assert dev.num_traps == 4
        assert dev.num_junctions == 3

    def test_junction_capacity_is_one(self):
        dev = grid_device(3, 3, 2)
        for j in dev.junctions:
            assert j.capacity == 1

    @given(st.integers(2, 5), st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_grid_junction_count(self, rows, cols):
        dev = grid_device(rows, cols, 2)
        assert dev.num_junctions == (rows - 1) * (cols - 1)
        dev.validate()


class TestBuildDevice:
    def test_factory_dispatch(self):
        assert build_device("linear", 4, 2).topology == "linear"
        assert build_device("switch", 4, 2).topology == "switch"
        assert build_device("grid", 9, 2).topology == "grid"
        with pytest.raises(ValueError):
            build_device("torus", 4, 2)

    def test_grid_covers_requested_traps(self):
        dev = build_device("grid", 10, 2)
        assert dev.num_traps >= 10


class TestPortEnds:
    def test_linear_ports(self):
        dev = linear_device(3, 2)
        seg_left = dev.neighbors(1)  # segments of middle trap
        ends = {dev.port_end(1, s) for s in seg_left}
        assert ends == {0, 1}


class TestTiming:
    def test_table1_values(self):
        t = DEFAULT_TIMES
        assert t.ms_gate == 40
        assert t.rotation == 5
        assert t.measurement == 400
        assert t.reset == 50
        assert t.shuttle == 5
        assert t.split == 80 and t.merge == 80
        assert t.junction_entry == 100 and t.junction_exit == 100

    def test_composites(self):
        t = DEFAULT_TIMES
        assert t.cx == 40 + 4 * 5
        assert t.hadamard == 5
        assert t.swap == 120

    def test_cooling_overhead(self):
        cooled = DEFAULT_TIMES.with_cooling()
        assert cooled.cx == 850 + 60
        assert cooled.swap == 3 * 890

    def test_lookups(self):
        t = DEFAULT_TIMES
        assert t.gate_duration("M") == 400
        assert t.movement_duration("SPLIT") == 80
        with pytest.raises(ValueError):
            t.gate_duration("TOFFOLI")
        with pytest.raises(ValueError):
            t.movement_duration("TELEPORT")


class TestResources:
    def test_electrode_formula(self):
        dev = grid_device(3, 3, 2)
        dynamic, shim = electrode_counts(dev)
        n_lz = 9 * 2
        n_jz = 4
        assert dynamic == 10 * n_lz + 20 * n_jz
        assert shim == 10 * (n_lz + n_jz)

    def test_standard_dacs_equal_electrodes(self):
        dev = grid_device(3, 3, 2)
        res = standard_resources(dev)
        assert res.num_dacs == res.electrodes
        assert res.data_rate_bitps == pytest.approx(50e6 * res.electrodes)
        assert res.power_w == pytest.approx(0.03 * res.electrodes)

    def test_wise_dacs_two_orders_smaller(self):
        dev = grid_device(10, 10, 2)
        std = standard_resources(dev)
        wise = wise_resources(dev)
        assert wise.num_dacs < std.num_dacs / 50
        assert wise.data_rate_bitps < std.data_rate_bitps / 50

    def test_capacity_two_needs_more_junctions_per_qubit(self):
        """Junction-to-linear-zone ratio rises as capacity drops (Sec 5.2)."""
        small = grid_device(6, 6, 2)   # 36 traps of capacity 2
        large = grid_device(3, 3, 9)   # 9 traps of capacity 9: ~same slots
        ratio_small = small.num_junctions / (small.num_traps * 2)
        ratio_large = large.num_junctions / (large.num_traps * 9)
        assert ratio_small > ratio_large


class TestWiring:
    def test_registry(self):
        assert wiring_by_name("standard") is STANDARD_WIRING
        assert wiring_by_name("wise") is WISE_WIRING
        with pytest.raises(ValueError):
            wiring_by_name("quantum-ethernet")

    def test_flags(self):
        assert not STANDARD_WIRING.type_exclusive
        assert not STANDARD_WIRING.cooled_gates
        assert WISE_WIRING.type_exclusive
        assert WISE_WIRING.cooled_gates

    def test_wise_times_include_cooling(self):
        assert WISE_WIRING.operation_times().cx > STANDARD_WIRING.operation_times().cx

    def test_resources_dispatch(self):
        dev = grid_device(2, 2, 2)
        assert STANDARD_WIRING.resources(dev).num_dacs > WISE_WIRING.resources(dev).num_dacs


class TestDeviceValidation:
    def test_segment_must_join_two(self):
        from repro.arch.components import Component
        from repro.arch.device import QCCDDevice

        dev = QCCDDevice("linear", 2)
        dev.components.append(Component(0, ComponentKind.TRAP, (0, 0), 2))
        dev.components.append(Component(1, ComponentKind.SEGMENT, (1, 0), 1))
        dev.edges.append((0, 1))
        with pytest.raises(ValueError):
            dev.validate()

    def test_trap_trap_edge_rejected(self):
        from repro.arch.components import Component
        from repro.arch.device import QCCDDevice

        dev = QCCDDevice("linear", 2)
        dev.components.append(Component(0, ComponentKind.TRAP, (0, 0), 2))
        dev.components.append(Component(1, ComponentKind.TRAP, (1, 0), 2))
        dev.edges.append((0, 1))
        with pytest.raises(ValueError):
            dev.validate()
