"""Cross-module integration tests: the full Figure-2 pipeline."""

import numpy as np
import pytest

from repro.arch import STANDARD_WIRING, WISE_WIRING
from repro.codes import RepetitionCode, RotatedSurfaceCode
from repro.core import compile_memory_experiment, program_to_circuit
from repro.decoders import DetectorGraph, MwpmDecoder
from repro.ler import estimate_logical_error_rate, fit_projection
from repro.noise import DEFAULT_NOISE, NoiseParameters
from repro.sim import FrameSimulator, TableauSimulator, circuit_to_dem
from repro.toolflow import DesignSpaceExplorer


class TestCompiledCircuitPhysics:
    """The compiled circuit must behave like a real memory experiment."""

    @pytest.fixture(scope="class")
    def compiled(self):
        code = RotatedSurfaceCode(3)
        program = compile_memory_experiment(
            code, trap_capacity=2, topology="grid", rounds=3
        )
        export = program_to_circuit(
            program, code, DEFAULT_NOISE.improved(5.0)
        )
        return code, program, export

    def test_injected_data_x_error_flips_adjacent_detectors(self, compiled):
        """A single X on a data qubit fires the neighbouring Z checks."""
        code, _, export = compiled
        clean = export.circuit.without_noise()
        data_q = code.logical_z[len(code.logical_z) // 2]
        z_neighbours = [
            c.ancilla for c in code.checks_of_basis("Z") if data_q in c.data
        ]
        # Build a circuit with one deterministic X error mid-experiment.
        from repro.sim import StabilizerCircuit

        injected = StabilizerCircuit()
        insert_at = len(clean.instructions) // 2
        for i, inst in enumerate(clean.instructions):
            if i == insert_at:
                injected.append("X_ERROR", (data_q,), (1.0,))
            injected.append(inst.name, inst.targets, inst.args)
        sample = FrameSimulator(injected, seed=1).sample(4)
        fired = np.flatnonzero(sample.detectors[0])
        assert fired.size > 0
        assert fired.size <= 2 * len(z_neighbours)

    def test_mwpm_corrects_single_injected_error(self, compiled):
        code, _, export = compiled
        dem = circuit_to_dem(export.circuit)
        graph = DetectorGraph.from_dem(dem)
        decoder = MwpmDecoder(graph)
        clean = export.circuit.without_noise()
        from repro.sim import StabilizerCircuit

        for position in (10, len(clean.instructions) // 2):
            injected = StabilizerCircuit()
            for i, inst in enumerate(clean.instructions):
                if i == position:
                    injected.append("X_ERROR", (code.logical_z[0],), (1.0,))
                injected.append(inst.name, inst.targets, inst.args)
            sample = FrameSimulator(injected, seed=2).sample(1)
            correction = decoder.decode(sample.detectors[0])
            actual = int(sample.observables[0, 0])
            assert (correction & 1) == actual, position

    def test_ler_estimate_reasonable(self, compiled):
        _, program, export = compiled
        result = estimate_logical_error_rate(
            export.circuit, rounds=program.rounds, shots=1500, seed=3
        )
        assert result.per_round < 0.02


class TestEndToEndTrends:
    def test_improvement_monotonicity(self):
        """LER strictly improves with the gate-improvement factor."""
        explorer = DesignSpaceExplorer()
        rates = []
        for improvement in (1.0, 10.0):
            record = explorer.evaluate(
                3, capacity=2, topology="grid",
                gate_improvement=improvement, shots=2500,
            )
            rates.append(record.ler_per_round)
        assert rates[1] < rates[0]

    def test_projection_pipeline_stable(self):
        explorer = DesignSpaceExplorer()
        _, proj = explorer.ler_projection(
            [2, 3], shots=1500, capacity=2, topology="grid",
            gate_improvement=5.0, rounds=2,
        )
        assert proj.ler_at(9) >= 0

    def test_wise_cooling_keeps_code_working(self):
        """WISE with cooled gates still suppresses errors."""
        explorer = DesignSpaceExplorer()
        record = explorer.evaluate(
            3, capacity=2, topology="grid", wiring="wise",
            gate_improvement=5.0, shots=1200,
        )
        assert record.ler_per_round < 0.05

    def test_repetition_code_full_stack(self):
        explorer = DesignSpaceExplorer(code_name="repetition")
        record = explorer.evaluate(
            4, capacity=2, topology="linear",
            gate_improvement=5.0, shots=2000, rounds=3,
        )
        assert record.ler_per_round < 0.02


class TestDemSamplingConsistency:
    """The DEM's predictions must match sampled statistics on the full
    compiled pipeline, not just hand-built circuits."""

    def test_detector_marginals_match(self):
        code = RepetitionCode(3)
        program = compile_memory_experiment(
            code, trap_capacity=2, topology="linear", rounds=2
        )
        export = program_to_circuit(program, code, DEFAULT_NOISE)
        dem = circuit_to_dem(export.circuit)
        predicted = np.zeros(export.circuit.num_detectors)
        for err in dem.errors:
            for det in err.detectors:
                predicted[det] = (
                    predicted[det] * (1 - err.probability)
                    + err.probability * (1 - predicted[det])
                )
        sample = FrameSimulator(export.circuit, seed=11).sample(30000)
        measured = sample.detectors.mean(axis=0)
        assert np.all(np.abs(measured - predicted) < 0.012)

    def test_compiled_circuit_has_no_silent_logical_errors(self):
        code = RotatedSurfaceCode(3)
        program = compile_memory_experiment(
            code, trap_capacity=2, topology="grid", rounds=2
        )
        export = program_to_circuit(program, code, DEFAULT_NOISE)
        dem = circuit_to_dem(export.circuit)
        silent = [e for e in dem.errors if not e.detectors and e.observables]
        assert silent == []


class TestNoiseModelVariants:
    def test_custom_noise_threading(self):
        """A custom NoiseParameters flows through the explorer."""
        quiet = NoiseParameters(
            p_2q_base=1e-4, p_1q_base=1e-5, thermal_a0=1e-6,
            p_measurement=1e-4, p_reset=1e-4,
        )
        loud = NoiseParameters(p_2q_base=2e-2)
        r_quiet = DesignSpaceExplorer(noise=quiet).evaluate(
            2, capacity=2, rounds=2, shots=1500
        )
        r_loud = DesignSpaceExplorer(noise=loud).evaluate(
            2, capacity=2, rounds=2, shots=1500
        )
        assert r_quiet.ler_per_round < r_loud.ler_per_round

    def test_compiled_x_basis_memory_works(self):
        code = RotatedSurfaceCode(3)
        program = compile_memory_experiment(
            code, trap_capacity=2, topology="grid", rounds=2, basis="X"
        )
        export = program_to_circuit(
            program, code, DEFAULT_NOISE.improved(5.0), basis="X"
        )
        clean = export.circuit.without_noise()
        rec = np.array(TableauSimulator(clean.num_qubits, seed=4).run(clean))
        for group in clean.detector_records():
            assert rec[group].sum() % 2 == 0
        result = estimate_logical_error_rate(
            export.circuit, rounds=2, shots=1200, seed=5
        )
        assert result.per_round < 0.05
