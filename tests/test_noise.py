"""Noise model tests: channels e1-e5, heating ledger, fidelity scaling."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise import (
    DEFAULT_NOISE,
    HeatingLedger,
    HeatingRates,
    NoiseParameters,
    dephasing_error,
    measurement_error,
    reset_error,
    single_qubit_error,
    thermal_factor,
    two_qubit_error,
)


class TestParameters:
    def test_defaults_match_table1(self):
        assert DEFAULT_NOISE.p_measurement == 1e-3
        assert DEFAULT_NOISE.p_reset == 5e-3
        assert DEFAULT_NOISE.t2_us == pytest.approx(2.2e6)

    def test_heating_rates_match_table1_bounds(self):
        """Table 1 rows bound the *pair* of primitives they list:
        nbar < 6 for split+merge, nbar < 3 for junction entry+exit."""
        rates = HeatingRates()
        assert rates.shuttle == pytest.approx(0.1)
        assert rates.split + rates.merge == pytest.approx(6)
        assert rates.junction_entry + rates.junction_exit == pytest.approx(3)

    def test_improvement_must_be_at_least_one(self):
        with pytest.raises(ValueError):
            NoiseParameters(gate_improvement=0.5)

    def test_improved_returns_new_instance(self):
        improved = DEFAULT_NOISE.improved(5)
        assert improved.gate_improvement == 5
        assert DEFAULT_NOISE.gate_improvement == 1

    def test_with_cooling(self):
        cooled = DEFAULT_NOISE.with_cooling()
        assert cooled.cooled_gates and not DEFAULT_NOISE.cooled_gates


class TestDephasing:
    def test_formula(self):
        t = 1000.0
        expected = (1 - math.exp(-t / 2.2e6)) / 2
        assert dephasing_error(DEFAULT_NOISE, t) == pytest.approx(expected)

    def test_zero_and_negative_idle(self):
        assert dephasing_error(DEFAULT_NOISE, 0) == 0
        assert dephasing_error(DEFAULT_NOISE, -5) == 0

    def test_saturates_at_half(self):
        assert dephasing_error(DEFAULT_NOISE, 1e12) == pytest.approx(0.5)

    def test_improvement_scales(self):
        p1 = dephasing_error(DEFAULT_NOISE, 1000)
        p10 = dephasing_error(DEFAULT_NOISE.improved(10), 1000)
        assert p10 == pytest.approx(p1 / 10)

    @given(st.floats(1.0, 1e6), st.floats(1.0, 1e6))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_time(self, t1, t2):
        lo, hi = sorted((t1, t2))
        assert dephasing_error(DEFAULT_NOISE, lo) <= dephasing_error(
            DEFAULT_NOISE, hi
        )


class TestGateFidelity:
    def test_calibration_anchor_1x(self):
        """~5e-3 effective two-qubit error at 1x with typical heating."""
        p = two_qubit_error(DEFAULT_NOISE, 40.0, 2, nbar=30.0)
        assert 3e-3 < p < 8e-3

    def test_calibration_anchor_5x(self):
        """The paper: 5x improvement ~ 1e-3 per-gate error."""
        p = two_qubit_error(DEFAULT_NOISE.improved(5), 40.0, 2, nbar=30.0)
        assert 5e-4 < p < 2e-3

    def test_heating_raises_error(self):
        cold = two_qubit_error(DEFAULT_NOISE, 40.0, 2, nbar=0.0)
        hot = two_qubit_error(DEFAULT_NOISE, 40.0, 2, nbar=100.0)
        assert hot > cold

    def test_duration_raises_error(self):
        fast = two_qubit_error(DEFAULT_NOISE, 40.0, 2, nbar=0.0)
        slow = two_qubit_error(DEFAULT_NOISE, 4000.0, 2, nbar=0.0)
        assert slow > fast

    def test_single_qubit_less_noisy(self):
        p1 = single_qubit_error(DEFAULT_NOISE, 5.0, 2, nbar=10.0)
        p2 = two_qubit_error(DEFAULT_NOISE, 40.0, 2, nbar=10.0)
        assert p1 < p2

    def test_thermal_factor_scaling(self):
        """A(N) ~ ln(N)/N decreases with chain length (Sec. 5.1)."""
        assert thermal_factor(1.0, 2) > thermal_factor(1.0, 10)
        assert thermal_factor(1.0, 2) == pytest.approx(math.log(2) / 2)

    def test_thermal_factor_clamps_small_chains(self):
        assert thermal_factor(1.0, 1) == thermal_factor(1.0, 2)

    def test_cooled_gates_fixed_rates(self):
        cooled = DEFAULT_NOISE.with_cooling()
        assert two_qubit_error(cooled, 890.0, 2, nbar=500.0) == pytest.approx(2e-3)
        assert single_qubit_error(cooled, 5.0, 2, nbar=500.0) == pytest.approx(3e-3)

    def test_spam_errors_scale_with_improvement(self):
        assert measurement_error(DEFAULT_NOISE.improved(10)) == pytest.approx(1e-4)
        assert reset_error(DEFAULT_NOISE.improved(10)) == pytest.approx(5e-4)

    def test_error_clamped_to_probability(self):
        crazy = NoiseParameters(thermal_a0=10.0)
        p = two_qubit_error(crazy, 40.0, 2, nbar=1e6)
        assert p <= 0.75


class TestHeatingLedger:
    def test_movement_accumulates(self):
        ledger = HeatingLedger()
        ledger.record_movement(0, "SPLIT")
        ledger.record_movement(0, "SHUTTLE")
        ledger.record_movement(0, "MERGE")
        assert ledger.of(0) == pytest.approx(6.1)

    def test_reset_recools(self):
        ledger = HeatingLedger()
        ledger.record_movement(0, "JUNCTION_ENTRY")
        ledger.record_reset(0)
        assert ledger.of(0) == 0.0

    def test_pair_nbar_is_mean(self):
        ledger = HeatingLedger()
        ledger.record_movement(0, "SPLIT")  # 3 quanta
        assert ledger.pair_nbar(0, 1) == pytest.approx(1.5)

    def test_unknown_ion_is_cold(self):
        assert HeatingLedger().of(99) == 0.0

    def test_unknown_movement_rejected(self):
        with pytest.raises(ValueError):
            HeatingLedger().record_movement(0, "TELEPORT")

    def test_grid_hop_quanta(self):
        """One grid hop deposits split+shuttle+entry+exit+shuttle+merge."""
        ledger = HeatingLedger()
        for kind in ("SPLIT", "SHUTTLE", "JUNCTION_ENTRY",
                     "JUNCTION_EXIT", "SHUTTLE", "MERGE"):
            ledger.record_movement(0, kind)
        assert ledger.of(0) == pytest.approx(3 + 0.1 + 1.5 + 1.5 + 0.1 + 3)
