"""Batched vectorised MWPM vs the scalar reference.

Mirror of ``test_union_find_batch.py`` for the MWPM decoder: the
packed pipeline silently routes every distinct syndrome through
``decode_unique_words``, so the batched kernel must be *bit-identical*
to per-shot ``decode`` — same masks, same weight-tie breaking, same
cluster-memo keys.  Exhaustive enumeration over small codes leaves no
room for a lucky sample; hypothesis sweeps random graphs and syndromes
on top.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import (
    RepetitionCode,
    RotatedSurfaceCode,
    UniformNoise,
    ideal_memory_circuit,
)
from repro.decoders import (
    DetectorGraph,
    LookupDecoder,
    MwpmDecoder,
    UnionFindDecoder,
    mwpm,
)
from repro.sim import (
    DemError,
    DetectorErrorModel,
    FrameSimulator,
    circuit_to_dem,
    pack_bool_rows,
)


def _all_syndromes(num_detectors: int) -> np.ndarray:
    return np.array(
        list(itertools.product((False, True), repeat=num_detectors)), dtype=bool
    )


def _assert_batch_matches_scalar(graph: DetectorGraph, rows: np.ndarray):
    decoder = MwpmDecoder(graph)
    scalar = np.array([decoder.decode(r) for r in rows], dtype=np.int64)
    batched = MwpmDecoder(graph).decode_unique_words(pack_bool_rows(rows))
    assert np.array_equal(batched, scalar)


def _line_dem(n: int, *, p_pair: float = 0.05, p_boundary: float = 0.01):
    """A detector chain whose interior prefers pairing over the
    boundary — dialing ``p_boundary`` down makes boundary chains
    expensive, growing the useful-edge clusters."""
    dem = DetectorErrorModel(n, 2)
    dem.errors.append(DemError((0,), (0,), p_boundary))
    for i in range(n - 1):
        dem.errors.append(DemError((i, i + 1), ((i % 2),), p_pair))
    dem.errors.append(DemError((n - 1,), (1,), p_boundary))
    return dem


class TestExhaustiveEquivalence:
    def test_repetition_memory_every_syndrome(self):
        circ = ideal_memory_circuit(
            RepetitionCode(3), rounds=2, noise=UniformNoise(0.02)
        )
        graph = DetectorGraph.from_dem(circuit_to_dem(circ))
        assert graph.num_detectors <= 10  # keep the enumeration honest
        _assert_batch_matches_scalar(graph, _all_syndromes(graph.num_detectors))

    def test_line_graph_every_syndrome(self):
        graph = DetectorGraph.from_dem(_line_dem(7))
        _assert_batch_matches_scalar(graph, _all_syndromes(7))

    def test_cluster_heavy_line_every_syndrome(self):
        # Expensive boundaries force nearly every multi-defect syndrome
        # through the 3+-node cluster machinery (DP / batched DP).
        graph = DetectorGraph.from_dem(
            _line_dem(9, p_pair=0.08, p_boundary=0.001)
        )
        _assert_batch_matches_scalar(graph, _all_syndromes(9))

    def test_weighted_cycle_with_boundary_every_syndrome(self):
        n = 6
        dem = DetectorErrorModel(n, 2)
        for i in range(n):
            dem.errors.append(
                DemError((i, (i + 1) % n), ((i % 2),), 0.02 + 0.005 * i)
            )
        dem.errors.append(DemError((0,), (), 0.04))
        graph = DetectorGraph.from_dem(dem)
        _assert_batch_matches_scalar(graph, _all_syndromes(n))

    def test_unmatchable_detector_abstains_identically(self):
        # Detector 2 has no edges at all: both paths must abstain on it.
        dem = DetectorErrorModel(3, 1)
        dem.errors.append(DemError((0,), (0,), 0.05))
        dem.errors.append(DemError((0, 1), (), 0.05))
        graph = DetectorGraph.from_dem(dem)
        _assert_batch_matches_scalar(graph, _all_syndromes(3))


class TestForcedBatchPaths:
    """Drive every cluster through the *vectorised* group matchers by
    dropping the break-even threshold, so the batched DP/match3 lanes
    are exercised even on small inputs."""

    @pytest.fixture(autouse=True)
    def _force_vectorised(self, monkeypatch):
        monkeypatch.setattr(mwpm, "_vec_min_clusters", lambda m: 1)

    def test_cluster_heavy_line_every_syndrome_vectorised(self):
        graph = DetectorGraph.from_dem(
            _line_dem(9, p_pair=0.08, p_boundary=0.001)
        )
        _assert_batch_matches_scalar(graph, _all_syndromes(9))

    def test_tie_heavy_uniform_weights_every_syndrome(self):
        # Equal weights everywhere: every matching of equal cost ties,
        # so this only passes if the batched matchers break ties in
        # exactly the scalar scan order.
        n = 8
        dem = DetectorErrorModel(n, 2)
        for i in range(n):
            for j in range(i + 1, n):
                dem.errors.append(DemError((i, j), ((i + j) % 2,), 0.03))
            dem.errors.append(DemError((i,), (i % 2,), 0.03))
        graph = DetectorGraph.from_dem(dem)
        _assert_batch_matches_scalar(graph, _all_syndromes(n))


class TestBatchedMatchers:
    """Unit-level: the vectorised matchers vs their scalar references
    on random weight tables, including exact ties."""

    def _random_tables(self, rng, count, m, tie_grid=None):
        if tie_grid:
            db = rng.integers(1, tie_grid, size=(count, m)).astype(float)
            dd = rng.integers(1, tie_grid, size=(count, m, m)).astype(float)
        else:
            db = rng.random((count, m)) * 4
            dd = rng.random((count, m, m)) * 4
        dd = np.triu(dd, 1)
        dd = dd + dd.transpose(0, 2, 1)
        return db, dd

    def _pairs_set(self, pairs):
        return sorted(
            (int(i), int(j)) for i, j in pairs if int(i) != -2
        )

    @pytest.mark.parametrize("tie_grid", [None, 4])
    def test_match3_batch_matches_scalar(self, tie_grid):
        rng = np.random.default_rng(9)
        db, dd = self._random_tables(rng, 64, 3, tie_grid)
        batched = mwpm._match3_batch(db, dd)
        for c in range(db.shape[0]):
            assert self._pairs_set(batched[c]) == self._pairs_set(
                mwpm._match3(db[c], dd[c])
            )

    @pytest.mark.parametrize("m", [4, 5, 6, 7, 8])
    @pytest.mark.parametrize("tie_grid", [None, 3])
    def test_dp_match_batch_matches_scalar(self, m, tie_grid):
        rng = np.random.default_rng(m * 7 + (tie_grid or 0))
        db, dd = self._random_tables(rng, 32, m, tie_grid)
        batched = mwpm._dp_match_batch(db, dd)
        for c in range(db.shape[0]):
            assert self._pairs_set(batched[c]) == self._pairs_set(
                mwpm._dp_match(db[c], dd[c])
            )


class TestSampledEquivalence:
    def test_surface_code_sampled_syndromes(self):
        circ = ideal_memory_circuit(
            RotatedSurfaceCode(3), rounds=3, noise=UniformNoise(0.02)
        )
        graph = DetectorGraph.from_dem(circuit_to_dem(circ))
        sample = FrameSimulator(circ, seed=11).sample(1500)
        _assert_batch_matches_scalar(graph, sample.detectors)

    def test_surface_code_near_threshold_sampled(self):
        # Hot syndromes: most rows carry 3+ defect clusters, covering
        # the grouped DP lanes and the blossom fallback.
        circ = ideal_memory_circuit(
            RotatedSurfaceCode(3), rounds=3, noise=UniformNoise(0.08)
        )
        graph = DetectorGraph.from_dem(circuit_to_dem(circ))
        sample = FrameSimulator(circ, seed=12).sample(800)
        _assert_batch_matches_scalar(graph, sample.detectors)

    def test_multi_word_syndromes(self):
        # > 64 detectors forces multi-word packed rows through
        # decode_unique_words.
        n = 70
        graph = DetectorGraph.from_dem(_line_dem(n))
        rng = np.random.default_rng(5)
        rows = rng.random((300, n)) < 0.08
        decoder = MwpmDecoder(graph)
        scalar = np.array([decoder.decode(r) for r in rows], dtype=np.int64)
        via_packed = MwpmDecoder(graph).decode_unique_words(
            pack_bool_rows(rows)
        )
        # decode_unique_words decodes rows as given (no dedupe layer).
        assert np.array_equal(via_packed, scalar)

    def test_word_boundary_defect_pairs(self):
        # Defect pairs straddling the 64-bit word boundary must label
        # and pair exactly as in a single-word layout.
        n = 66
        graph = DetectorGraph.from_dem(_line_dem(n))
        rows = np.zeros((4, n), dtype=bool)
        rows[0, [63, 64]] = True
        rows[1, [62, 63, 64, 65]] = True
        rows[2, [0, 63]] = True
        rows[3, [64]] = True
        _assert_batch_matches_scalar(graph, rows)

    def test_blossom_cluster_equivalence(self):
        # A 12-defect chain exceeds the DP cap: the batched path must
        # route it through the identical scalar blossom fallback.
        n = 14
        graph = DetectorGraph.from_dem(
            _line_dem(n, p_pair=0.08, p_boundary=0.001)
        )
        rows = np.zeros((3, n), dtype=bool)
        rows[0, 1:13] = True
        rows[1, :] = True
        rows[2, [0, 2, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]] = True
        _assert_batch_matches_scalar(graph, rows)

    def test_empty_and_all_zero_batches(self):
        graph = DetectorGraph.from_dem(
            DetectorErrorModel(3, 1, [DemError((0, 1), (0,), 0.1)])
        )
        decoder = MwpmDecoder(graph)
        empty = decoder.decode_unique_words(
            pack_bool_rows(np.zeros((0, 3), dtype=bool))
        )
        assert empty.shape == (0,)
        assert np.array_equal(
            decoder.decode_unique_words(
                pack_bool_rows(np.zeros((4, 3), dtype=bool))
            ),
            np.zeros(4, dtype=np.int64),
        )

    def test_edgeless_graph(self):
        graph = DetectorGraph.from_dem(DetectorErrorModel(2, 1))
        decoder = MwpmDecoder(graph)
        rows = np.array([[True, False], [False, False]])
        assert np.array_equal(
            decoder.decode_unique_words(pack_bool_rows(rows)),
            np.array([decoder.decode(r) for r in rows]),
        )


class TestMemoInterplay:
    def test_scalar_and_batched_share_cluster_memo_keys(self):
        # Warm the cluster memo through one path, decode through the
        # other: results must be identical and the memo must not fork
        # (same canonical ascending node-tuple keys).
        graph = DetectorGraph.from_dem(
            _line_dem(9, p_pair=0.08, p_boundary=0.001)
        )
        rows = _all_syndromes(9)
        warm = MwpmDecoder(graph)
        scalar = np.array([warm.decode(r) for r in rows], dtype=np.int64)
        keys_scalar = set(warm._cluster_masks)
        batched_after_scalar = warm.decode_unique_words(pack_bool_rows(rows))
        assert np.array_equal(batched_after_scalar, scalar)
        assert set(warm._cluster_masks) == keys_scalar  # no forked keys

        cold = MwpmDecoder(graph)
        batched = cold.decode_unique_words(pack_bool_rows(rows))
        assert np.array_equal(batched, scalar)
        # Batched resolves 2-node components via the pair-mask cache
        # (never the cluster memo), so its keys are the 3+-node subset
        # of the scalar path's — with identical masks where they meet.
        assert set(cold._cluster_masks) <= keys_scalar
        assert set(cold._cluster_masks) == {
            key for key in keys_scalar if len(key) >= 3
        }
        for key, val in cold._cluster_masks.items():
            assert warm._cluster_masks[key] == val

    def test_within_batch_cluster_dedupe(self):
        # The same local cluster in many rows must decode once and XOR
        # into every row (exercises the pending-dict path).
        n = 9
        graph = DetectorGraph.from_dem(
            _line_dem(n, p_pair=0.08, p_boundary=0.001)
        )
        base = np.zeros(n, dtype=bool)
        base[[2, 3, 4]] = True
        rows = np.stack([base] * 5 + [np.roll(base, 1)] * 3)
        _assert_batch_matches_scalar(graph, rows)


class TestPackedProtocolAgreement:
    def test_all_decoders_dedupe_equals_reference(self):
        # The packed dedupe protocol must be invisible for every
        # decoder family: same per-shot corrections as the scalar
        # per-shot reference path.
        circ = ideal_memory_circuit(
            RepetitionCode(3), rounds=2, noise=UniformNoise(0.04)
        )
        dem = circuit_to_dem(circ)
        graph = DetectorGraph.from_dem(dem)
        sample = FrameSimulator(circ, seed=21).sample(600)
        words = pack_bool_rows(sample.detectors)
        for decoder in (
            MwpmDecoder(graph),
            UnionFindDecoder(graph),
            LookupDecoder(dem, max_weight=2),
        ):
            fast = decoder.decode_packed_batch(words)
            reference = decoder.decode_packed_batch(words, dedupe=False)
            assert np.array_equal(fast, reference), type(decoder).__name__


@st.composite
def _dem_and_rows(draw):
    n = draw(st.integers(min_value=2, max_value=9))
    dem = DetectorErrorModel(n, 2)
    num_edges = draw(st.integers(min_value=1, max_value=14))
    for _ in range(num_edges):
        kind = draw(st.integers(min_value=0, max_value=3))
        p = draw(
            st.floats(min_value=0.001, max_value=0.2,
                      allow_nan=False, allow_infinity=False)
        )
        obs = draw(st.sampled_from([(), (0,), (1,), (0, 1)]))
        if kind == 0:
            dets = (draw(st.integers(min_value=0, max_value=n - 1)),)
        else:
            a = draw(st.integers(min_value=0, max_value=n - 1))
            b = draw(st.integers(min_value=0, max_value=n - 1))
            if a == b:
                dets = (a,)
            else:
                dets = (a, b)
        dem.errors.append(DemError(dets, obs, p))
    shots = draw(st.integers(min_value=1, max_value=24))
    rows = np.array(
        [
            [draw(st.booleans()) for _ in range(n)]
            for _ in range(shots)
        ],
        dtype=bool,
    )
    return dem, rows


class TestHypothesisEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(_dem_and_rows())
    def test_random_graph_random_syndromes(self, dem_and_rows):
        dem, rows = dem_and_rows
        graph = DetectorGraph.from_dem(dem)
        _assert_batch_matches_scalar(graph, rows)
