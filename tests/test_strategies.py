"""Strategy-layer tests: registries, bit-identity, shared invariants.

Three layers of guarantees:

1. **Bit-identity** — the default ``greedy`` router / ``projection``
   placer must reproduce the pre-strategy-layer compiler exactly.  The
   golden constants below (makespan, op counts, op-stream hash, stim
   circuit hash, SweepJob keys) were captured from the monolithic
   ``Router`` / ``place()`` immediately before the refactor; nothing
   about the strategy layer may move them.
2. **Registries** — strategies resolve by name everywhere a name can be
   given (compiler config, sweep spec, CLI), and unknown names fail
   with the available set in the message.
3. **Shared invariants** — every registered router x placer combination
   must produce physically legal programs: hardware constraints hold
   under op-by-op replay, every two-qubit gate executes co-located,
   every gate is sequenced exactly once, the final state restores the
   fill invariant, and the derived schedule respects op dependencies
   (checked both on a fixed grid and property-based).
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import DEFAULT_TIMES
from repro.codes import RepetitionCode, RotatedSurfaceCode
from repro.core import (
    CompilerConfig,
    GreedyRouter,
    ProjectionPlacer,
    QccdCompiler,
    Router,
    WindowPlacer,
    available_placers,
    available_routers,
    build_gate_dag,
    compile_memory_experiment,
    place,
    placer_by_name,
    program_to_circuit,
    router_by_name,
    schedule,
)
from repro.engine.sweep import SweepJob
from repro.noise.parameters import DEFAULT_NOISE

from test_route import _replay_occupancy

# ----------------------------------------------------------------------
# Golden oracle: captured from the pre-refactor monolith (RotatedSurface,
# capacity 2, rounds 2, default wiring/noise).
# ----------------------------------------------------------------------
GOLDEN_COMPILER = {
    # (topology, distance): (makespan_us, num_ops, movement_ops,
    #                        ops_sha, stim_sha)
    ("grid", 2): (6815.0, 208, 168, "c27bca57f7b412c6", "3c7a339db5b2ba3d"),
    ("grid", 3): (10845.0, 686, 572, "e843a855b7d448a3", "10091118d35b9b9e"),
    ("linear", 2): (9665.0, 208, 168, "03f74cd82e199c22", "75435137694d66fd"),
    ("linear", 3): (38690.0, 1147, 1033, "679a47a8ae22b608", "42c34a90c727f1e5"),
    ("switch", 2): (6270.0, 190, 150, "a2c51671c11ae9ac", "83e603d7cd4360a0"),
    ("switch", 3): (7425.0, 594, 480, "1013cb42ab567e6e", "dc6987f61177b1da"),
}

GOLDEN_KEYS = [
    (
        SweepJob("rotated_surface", 3, 2, "grid", "standard", 1.0, "mwpm",
                 3, 2000),
        "rotated_surface-d3-c2-grid-standard-x1-mwpm-r3-n2000-8318537a3656",
    ),
    (
        SweepJob("rotated_surface", 5, 2, "linear", "wise", 5.0, "union_find",
                 5, 1000, sampler="frame"),
        "rotated_surface-d5-c2-linear-wise-x5-union_find-r5-n1000-2238d6bc3eba",
    ),
    (
        SweepJob("repetition", 3, 2, "switch", "standard", 1.0, "mwpm",
                 2, 512, target_failures=10, max_shots=5000),
        "repetition-d3-c2-switch-standard-x1-mwpm-r2-n512-f10of5000-c6e57650aa5a",
    ),
]


def _ops_sha(program) -> str:
    return hashlib.sha256(
        "|".join(
            f"{op.kind}:{op.ions}:{op.components}:{op.duration:.6f}:{op.deps}"
            for op in program.ops
        ).encode()
    ).hexdigest()[:16]


def _stim_sha(program, code) -> str:
    export = program_to_circuit(program, code, DEFAULT_NOISE)
    return hashlib.sha256(str(export.circuit).encode()).hexdigest()[:16]


class TestDefaultBitIdentity:
    @pytest.mark.parametrize(
        "topology,distance", sorted(GOLDEN_COMPILER), ids=lambda v: str(v)
    )
    def test_greedy_projection_matches_pre_refactor(self, topology, distance):
        """ops, makespan and stim export are bit-identical to the
        monolithic pre-strategy compiler across the fig08 grid."""
        code = RotatedSurfaceCode(distance)
        program = compile_memory_experiment(code, 2, topology, rounds=2)
        makespan, num_ops, movement, ops_sha, stim_sha = GOLDEN_COMPILER[
            (topology, distance)
        ]
        assert program.stats.makespan_us == makespan
        assert len(program.ops) == num_ops
        assert program.stats.movement_ops == movement
        assert _ops_sha(program) == ops_sha
        assert _stim_sha(program, code) == stim_sha

    def test_default_config_uses_default_strategies(self):
        cfg = CompilerConfig(code=RotatedSurfaceCode(2))
        assert cfg.router == "greedy" and cfg.placer == "projection"
        program = QccdCompiler(cfg).compile()
        assert program.router == "greedy" and program.placer == "projection"

    @pytest.mark.parametrize("job,key", GOLDEN_KEYS, ids=lambda v: str(v)[:40])
    def test_sweep_job_keys_unchanged(self, job, key):
        """Default-strategy job keys (and so JSONL stores and shard RNG
        streams) carry over bit-identically from before the refactor."""
        assert job.key == key

    def test_non_default_strategies_change_the_key(self):
        base, key = GOLDEN_KEYS[0]
        routed = SweepJob(**{**base.to_dict(), "router": "layered"})
        placed = SweepJob(**{**base.to_dict(), "placer": "window"})
        assert routed.key != key and "layered" in routed.key
        assert placed.key != key and "window" in placed.key

    def test_from_dict_defaults_old_stores_to_pre_refactor_strategies(self):
        base, _ = GOLDEN_KEYS[0]
        data = base.to_dict()
        del data["router"], data["placer"]
        job = SweepJob.from_dict(data)
        assert job.router == "greedy" and job.placer == "projection"
        assert job.key == GOLDEN_KEYS[0][1]


class TestRegistries:
    def test_expected_strategies_registered(self):
        assert {"greedy", "layered", "parallel"} <= set(available_routers())
        assert {"projection", "window"} <= set(available_placers())

    def test_lookup_by_name(self):
        assert router_by_name("greedy") is GreedyRouter
        assert placer_by_name("projection") is ProjectionPlacer
        assert placer_by_name("window") is WindowPlacer
        for name in available_routers():
            assert router_by_name(name).name == name
        for name in available_placers():
            assert placer_by_name(name).name == name

    def test_unknown_names_list_available(self):
        with pytest.raises(ValueError, match="greedy"):
            router_by_name("bogus")
        with pytest.raises(ValueError, match="projection"):
            placer_by_name("bogus")

    def test_router_alias_is_greedy(self):
        assert Router is GreedyRouter


# ----------------------------------------------------------------------
# Shared invariant harness: every strategy combination must produce a
# physically legal program.
# ----------------------------------------------------------------------
INVARIANT_CONFIGS = [
    (RotatedSurfaceCode(2), 2, "grid"),
    (RotatedSurfaceCode(3), 2, "grid"),
    (RotatedSurfaceCode(3), 2, "linear"),
    (RotatedSurfaceCode(3), 2, "switch"),
    (RotatedSurfaceCode(3), 3, "grid"),
    (RepetitionCode(4), 3, "linear"),
]

ALL_STRATEGIES = [
    (router, placer)
    for router in ("greedy", "layered", "parallel")
    for placer in ("projection", "window")
]


def _compile_with(code, cap, topo, router, placer, rounds=2):
    cfg = CompilerConfig(
        code=code, trap_capacity=cap, topology=topo, rounds=rounds,
        router=router, placer=placer,
    )
    compiler = QccdCompiler(cfg)
    return compiler.compile(), compiler.placement()


def _assert_program_invariants(program, placement, gates):
    # Hardware legality + two-qubit co-location, op by op.
    _replay_occupancy(program.ops, placement)
    # Every gate sequenced exactly once.
    sequenced = sorted(
        op.gate_id for op in program.ops if op.gate_id is not None
    )
    assert sequenced == [g.id for g in gates]
    # The schedule respects the op dependency DAG.
    start = program.start
    for op in program.ops:
        for dep in op.deps:
            dep_end = start[dep] + program.ops[dep].duration
            assert start[op.id] >= dep_end - 1e-9, (op.id, dep)


@pytest.mark.parametrize("router,placer", ALL_STRATEGIES, ids=lambda v: str(v))
@pytest.mark.parametrize(
    "code,cap,topo", INVARIANT_CONFIGS, ids=lambda v: str(v)
)
def test_all_strategies_satisfy_shared_invariants(code, cap, topo, router, placer):
    program, placement = _compile_with(code, cap, topo, router, placer)
    gates = build_gate_dag(code, 2)
    _assert_program_invariants(program, placement, gates)
    assert program.router == router and program.placer == placer


@pytest.mark.parametrize("router,placer", ALL_STRATEGIES, ids=lambda v: str(v))
def test_final_state_restores_fill_invariant(router, placer):
    code = RotatedSurfaceCode(3)
    gates = build_gate_dag(code, 2)
    placement = place(code, 2, "grid", placer=placer)
    strategy = router_by_name(router)(code, placement, gates, DEFAULT_TIMES)
    strategy.run()
    for trap, chain in strategy.chains.items():
        assert len(chain) <= 1  # capacity 2 -> at most one resident
    for q, loc in strategy.location.items():
        assert placement.device.component(loc).is_trap


@settings(max_examples=12, deadline=None)
@given(
    distance=st.integers(min_value=2, max_value=3),
    capacity=st.integers(min_value=2, max_value=4),
    topology=st.sampled_from(["grid", "linear", "switch"]),
    router=st.sampled_from(["greedy", "layered", "parallel"]),
    placer=st.sampled_from(["projection", "window"]),
)
def test_property_invariants_hold_for_any_strategy(
    distance, capacity, topology, router, placer
):
    """Property harness: any registered strategy combination, on any
    small design point, yields a legal, complete, dependency-respecting
    program."""
    code = RotatedSurfaceCode(distance)
    program, placement = _compile_with(
        code, capacity, topology, router, placer, rounds=1
    )
    gates = build_gate_dag(code, 1)
    _assert_program_invariants(program, placement, gates)


class TestEngineThreading:
    def test_compile_design_point_carries_strategies(self):
        from repro.engine.runner import compile_design_point

        job = SweepJob(
            "rotated_surface", 2, 2, "grid", "standard", 1.0, "mwpm", 1, 0,
            router="parallel", placer="window",
        )
        artifacts = compile_design_point(job, DEFAULT_NOISE, need_circuit=False)
        assert artifacts.metrics["router"] == "parallel"
        assert artifacts.metrics["placer"] == "window"

    def test_strategies_produce_distinct_circuits_when_routing_differs(self):
        """The compilation cache needs no strategy field in its key:
        different routing shows up as different circuit text."""
        code = RotatedSurfaceCode(3)
        base = compile_memory_experiment(code, 2, "switch", rounds=2)
        alt = compile_memory_experiment(
            code, 2, "switch", rounds=2, router="layered"
        )
        assert _ops_sha(base) != _ops_sha(alt)
        assert _stim_sha(base, code) != _stim_sha(alt, code)

    def test_schedule_recomputable_from_ops(self):
        cfg = CompilerConfig(code=RotatedSurfaceCode(2), router="layered")
        program = QccdCompiler(cfg).compile()
        assert schedule(program.ops, cfg.wiring) == program.start
