"""Logical error rate estimation and projection tests."""

import math

import pytest

from repro.codes import RepetitionCode, RotatedSurfaceCode, UniformNoise, ideal_memory_circuit
from repro.ler import (
    LerProjection,
    LerResult,
    estimate_logical_error_rate,
    fit_projection,
)


class TestLerResult:
    def test_per_shot_jeffreys(self):
        r = LerResult(shots=1000, failures=10, rounds=5)
        assert r.per_shot == pytest.approx(10.5 / 1001)

    def test_zero_failures_still_positive(self):
        r = LerResult(shots=1000, failures=0, rounds=5)
        assert 0 < r.per_shot < 1e-3
        assert not r.observed_any_failure

    def test_per_round_conversion(self):
        r = LerResult(shots=10000, failures=100, rounds=4)
        p = r.per_shot
        expected = 1 - (1 - p) ** 0.25
        assert r.per_round == pytest.approx(expected)

    def test_stderr_uses_smoothed_denominator(self):
        r = LerResult(shots=400, failures=100, rounds=1)
        p = r.per_shot
        assert r.stderr_per_shot == pytest.approx(math.sqrt(p * (1 - p) / 401))

    def test_rounds_must_be_positive(self):
        with pytest.raises(ValueError):
            LerResult(shots=100, failures=1, rounds=0)
        with pytest.raises(ValueError):
            LerResult(shots=100, failures=1, rounds=-3)


class TestEstimator:
    def test_repetition_code_end_to_end(self):
        circ = ideal_memory_circuit(
            RepetitionCode(3), rounds=3, noise=UniformNoise(0.01)
        )
        result = estimate_logical_error_rate(circ, rounds=3, shots=2000, seed=1)
        assert result.shots == 2000
        assert result.per_shot < 0.05

    def test_decoder_selection(self):
        circ = ideal_memory_circuit(
            RepetitionCode(3), rounds=2, noise=UniformNoise(0.01)
        )
        for decoder in ("mwpm", "union_find"):
            result = estimate_logical_error_rate(
                circ, rounds=2, shots=500, decoder=decoder, seed=2
            )
            assert result.per_shot < 0.1
        with pytest.raises(ValueError):
            estimate_logical_error_rate(circ, rounds=2, shots=10, decoder="bp")

    def test_invalid_shots(self):
        circ = ideal_memory_circuit(RepetitionCode(2), rounds=1)
        with pytest.raises(ValueError):
            estimate_logical_error_rate(circ, rounds=1, shots=0)

    def test_distance_suppression_below_threshold(self):
        rates = []
        for d in (3, 5):
            circ = ideal_memory_circuit(
                RotatedSurfaceCode(d), rounds=2, noise=UniformNoise(0.002)
            )
            result = estimate_logical_error_rate(circ, rounds=2, shots=3000, seed=3)
            rates.append(result.per_shot)
        assert rates[1] < rates[0]


class TestProjection:
    def test_exact_fit_two_points(self):
        # p(d) = 0.1 * 4^-((d+1)/2)
        points = [(3, 0.1 * 4 ** -2), (5, 0.1 * 4 ** -3)]
        proj = fit_projection(points)
        assert proj.lam == pytest.approx(4.0, rel=1e-9)
        assert proj.ler_at(7) == pytest.approx(0.1 * 4 ** -4, rel=1e-9)

    def test_distance_for_target(self):
        proj = fit_projection([(3, 1e-3), (5, 1e-4)])
        d = proj.distance_for(1e-9)
        assert d is not None and d % 2 == 1
        assert proj.ler_at(d) <= 1e-9
        assert proj.ler_at(d - 2) > 1e-9

    def test_above_threshold_never_reaches_target(self):
        proj = fit_projection([(3, 1e-3), (5, 2e-3)])
        assert not proj.below_threshold
        assert proj.distance_for(1e-9) is None

    def test_least_squares_over_three_points(self):
        points = [(3, 1e-2), (5, 1.2e-3), (7, 9e-5)]
        proj = fit_projection(points)
        assert proj.below_threshold
        assert 5 < proj.lam < 15

    def test_requires_two_distinct_distances(self):
        with pytest.raises(ValueError):
            fit_projection([(3, 1e-3)])
        with pytest.raises(ValueError):
            fit_projection([(3, 1e-3), (3, 2e-3)])

    def test_lambda_property(self):
        proj = LerProjection(log_a=0.0, log_lambda=math.log(5))
        assert proj.lam == pytest.approx(5.0)
        assert proj.below_threshold


class TestAdaptiveEstimator:
    def test_stops_at_min_failures(self):
        from repro.codes import RepetitionCode, UniformNoise, ideal_memory_circuit
        from repro.ler import estimate_until_failures

        circ = ideal_memory_circuit(
            RepetitionCode(2), rounds=2, noise=UniformNoise(0.05)
        )
        result = estimate_until_failures(
            circ, rounds=2, min_failures=5, batch=200, max_shots=20000, seed=1
        )
        assert result.failures >= 5
        assert result.shots <= 20000

    def test_respects_budget_on_quiet_circuits(self):
        from repro.codes import RepetitionCode, UniformNoise, ideal_memory_circuit
        from repro.ler import estimate_until_failures

        circ = ideal_memory_circuit(
            RepetitionCode(3), rounds=2, noise=UniformNoise(1e-5)
        )
        result = estimate_until_failures(
            circ, rounds=2, min_failures=50, batch=500, max_shots=1000, seed=2
        )
        assert result.shots == 1000

    def test_argument_validation(self):
        from repro.codes import RepetitionCode, ideal_memory_circuit
        from repro.ler import estimate_until_failures
        import pytest as _pytest

        circ = ideal_memory_circuit(RepetitionCode(2), rounds=1)
        with _pytest.raises(ValueError):
            estimate_until_failures(circ, 1, min_failures=0)
        with _pytest.raises(ValueError):
            estimate_until_failures(circ, 1, batch=100, max_shots=50)
