"""Placement pass tests: partitioning, device sizing, Hungarian matching."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import RepetitionCode, RotatedSurfaceCode, UnrotatedSurfaceCode
from repro.core import build_device_for, layout_positions, partition_qubits, place


class TestLayoutPositions:
    def test_rotated_becomes_unit_grid(self):
        """After the 45-degree transform, neighbours differ by one step."""
        code = RotatedSurfaceCode(3)
        pos = layout_positions(code)
        for check in code.checks:
            ax, ay = pos[check.ancilla]
            for d in check.data:
                dx, dy = pos[d]
                assert abs(ax - dx) + abs(ay - dy) == pytest.approx(1.0)

    def test_unrotated_half_step_neighbours(self):
        code = UnrotatedSurfaceCode(2)
        pos = layout_positions(code)
        for check in code.checks:
            ax, ay = pos[check.ancilla]
            for d in check.data:
                dx, dy = pos[d]
                assert abs(ax - dx) + abs(ay - dy) == pytest.approx(0.5)


class TestPartition:
    @pytest.mark.parametrize("cap", [2, 3, 5, 9, 17])
    def test_cluster_sizes_balanced(self, cap):
        code = RotatedSurfaceCode(3)
        clusters = partition_qubits(code, cap - 1)
        assert sum(len(c) for c in clusters) == code.num_qubits
        sizes = [len(c) for c in clusters]
        assert max(sizes) <= cap - 1
        # Balanced: sizes differ by at most 2 (boundary effects, Sec 4.2).
        assert max(sizes) - min(sizes) <= 2

    def test_singletons_for_capacity_two(self):
        code = RepetitionCode(4)
        clusters = partition_qubits(code, 1)
        assert all(len(c) == 1 for c in clusters)
        assert len(clusters) == code.num_qubits

    def test_no_qubit_lost_or_duplicated(self):
        code = RotatedSurfaceCode(4)
        clusters = partition_qubits(code, 4)
        seen = [q for c in clusters for q in c]
        assert sorted(seen) == list(range(code.num_qubits))

    def test_invalid_cluster_size(self):
        with pytest.raises(ValueError):
            partition_qubits(RepetitionCode(2), 0)

    @given(st.integers(2, 6), st.integers(2, 10))
    @settings(max_examples=25, deadline=None)
    def test_partition_total_preserved(self, d, cap):
        code = RotatedSurfaceCode(d)
        clusters = partition_qubits(code, cap - 1)
        assert sum(len(c) for c in clusters) == code.num_qubits

    def test_clusters_are_spatially_coherent(self):
        """Neighbouring qubits mostly land in the same cluster."""
        code = RotatedSurfaceCode(5)
        clusters = partition_qubits(code, 8)
        cluster_of = {}
        for i, cluster in enumerate(clusters):
            for q in cluster:
                cluster_of[q] = i
        graph = code.interaction_graph()
        internal = sum(
            1 for u, v in graph.edges if cluster_of[u] == cluster_of[v]
        )
        assert internal / graph.number_of_edges() > 0.4


class TestDeviceSizing:
    def test_grid_cap2_tiles_the_code(self):
        code = RotatedSurfaceCode(3)
        device, clusters = build_device_for(code, 2, "grid")
        assert device.num_traps == code.num_qubits
        assert len(clusters) == code.num_qubits

    def test_linear_device_one_trap_per_cluster(self):
        code = RepetitionCode(4)
        device, clusters = build_device_for(code, 3, "linear")
        assert device.num_traps == len(clusters)

    def test_switch_device(self):
        code = RotatedSurfaceCode(2)
        device, clusters = build_device_for(code, 2, "switch")
        assert device.topology == "switch"
        assert device.num_traps == len(clusters)

    def test_unknown_topology(self):
        with pytest.raises(ValueError):
            build_device_for(RepetitionCode(2), 2, "hypercube")


class TestPlacement:
    @pytest.mark.parametrize("topo", ["grid", "linear", "switch"])
    @pytest.mark.parametrize("cap", [2, 3, 6])
    def test_every_qubit_placed(self, topo, cap):
        code = RotatedSurfaceCode(3)
        placement = place(code, cap, topo)
        assert sorted(placement.qubit_to_trap) == list(range(code.num_qubits))

    def test_chains_respect_fill_invariant(self):
        code = RotatedSurfaceCode(3)
        for cap in (2, 4, 9):
            placement = place(code, cap, "grid")
            for chain in placement.trap_chains.values():
                assert len(chain) <= cap - 1

    def test_chains_match_map(self):
        placement = place(RotatedSurfaceCode(3), 3, "grid")
        for trap, chain in placement.trap_chains.items():
            for q in chain:
                assert placement.qubit_to_trap[q] == trap

    def test_capacity_below_two_rejected(self):
        with pytest.raises(ValueError):
            place(RepetitionCode(2), 1, "linear")

    def test_undersized_device_rejected_with_clear_context(self):
        """Too few traps must fail up front with the code size and trap
        capacity in the message, not deep inside the assignment solver."""
        from repro.arch.topologies import linear_device

        code = RotatedSurfaceCode(3)  # 25 qubits -> 25 clusters at cap 2
        small = linear_device(4, 2)
        with pytest.raises(ValueError) as excinfo:
            place(code, 2, "linear", device=small)
        message = str(excinfo.value)
        assert f"{code.num_qubits} qubits" in message
        assert "capacity 2" in message
        assert "4-trap" in message
        assert code.name in message

    def test_unknown_placer_rejected(self):
        with pytest.raises(ValueError, match="unknown placer"):
            place(RotatedSurfaceCode(3), 2, "grid", placer="bogus")

    def test_grid_cap2_preserves_adjacency(self):
        """Neighbouring code qubits land on neighbouring traps."""
        code = RotatedSurfaceCode(3)
        placement = place(code, 2, "grid")
        device = placement.device
        for check in code.checks:
            a_trap = placement.qubit_to_trap[check.ancilla]
            for d in check.data:
                d_trap = placement.qubit_to_trap[d]
                assert d_trap in device.neighbor_traps(a_trap), (
                    check.ancilla,
                    d,
                )
