"""Circuit text serialisation tests, including property round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import RepetitionCode, RotatedSurfaceCode, UniformNoise, ideal_memory_circuit
from repro.sim import (
    StabilizerCircuit,
    circuit_from_text,
    circuit_to_text,
    load_circuit,
    save_circuit,
)


class TestRoundTrip:
    def test_simple_circuit(self):
        circ = StabilizerCircuit()
        circ.append("R", (0, 1))
        circ.append("H", (0,))
        circ.append("CX", (0, 1))
        circ.append("DEPOLARIZE2", (0, 1), (0.001,))
        circ.append("M", (0, 1))
        circ.append("DETECTOR", (-1, -2))
        circ.append("OBSERVABLE_INCLUDE", (-1,), (0,))
        parsed = circuit_from_text(circuit_to_text(circ))
        assert parsed == circ

    def test_memory_experiment_roundtrip(self):
        circ = ideal_memory_circuit(
            RotatedSurfaceCode(3), rounds=2, noise=UniformNoise(0.01)
        )
        parsed = circuit_from_text(circuit_to_text(circ))
        assert parsed == circ
        assert parsed.num_detectors == circ.num_detectors
        assert parsed.num_measurements == circ.num_measurements

    def test_file_roundtrip(self, tmp_path):
        circ = ideal_memory_circuit(RepetitionCode(3), rounds=2)
        path = tmp_path / "circuit.stim"
        save_circuit(circ, str(path))
        assert load_circuit(str(path)) == circ

    @given(st.lists(st.sampled_from(["H", "S", "X", "Z"]), min_size=1, max_size=8),
           st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_random_gate_sequences_roundtrip(self, names, qubit):
        circ = StabilizerCircuit()
        for name in names:
            circ.append(name, (qubit,))
        circ.append("M", (qubit,))
        assert circuit_from_text(circuit_to_text(circ)) == circ


class TestParsing:
    def test_comments_and_blanks_ignored(self):
        text = """
        # a comment
        R 0

        M 0  # trailing comment is NOT stripped by stim, but we allow it
        """
        circ = circuit_from_text(text)
        assert len(circ) == 2

    def test_pauli_channel_args(self):
        circ = circuit_from_text("PAULI_CHANNEL_1(0.1, 0.2, 0.3) 4")
        inst = circ.instructions[0]
        assert inst.args == (0.1, 0.2, 0.3)
        assert inst.targets == (4,)

    def test_rec_targets(self):
        circ = circuit_from_text("M 0 1\nDETECTOR rec[-1] rec[-2]")
        assert circ.detector_records() == [[1, 0]]

    def test_bad_instruction_reports_line(self):
        with pytest.raises(ValueError, match="line 2"):
            circuit_from_text("M 0\nTELEPORT 1")

    def test_bad_targets_report_line(self):
        with pytest.raises(ValueError, match="line 1"):
            circuit_from_text("H zero")

    def test_detector_requires_rec_terms(self):
        with pytest.raises(ValueError, match="rec"):
            circuit_from_text("M 0\nDETECTOR 0")

    def test_observable_index_parsed(self):
        circ = circuit_from_text("M 0\nOBSERVABLE_INCLUDE(2) rec[-1]")
        assert circ.num_observables == 3
