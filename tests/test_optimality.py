"""Table-2 style validation: compiler vs hand-derived optimal schedules.

The paper reports its compiler within 1.11x (worst case) of expert
mappings on elapsed time.  Our hand-derived optima use the identical
timing model (core.optimal), so the same kind of band applies; the
bounds here are deliberately slightly looser to stay robust across
router heuristic tweaks, but tight enough that a routing regression
trips them.
"""

import pytest

from repro.codes import RepetitionCode, RotatedSurfaceCode
from repro.core import (
    compile_memory_experiment,
    optimal_estimate,
    single_chain_round_time,
    steady_round_time,
)


class TestSingleChain:
    @pytest.mark.parametrize("d", (3, 6))
    def test_repetition_single_chain_exact(self, d):
        """Full serialisation has a closed-form round time; the compiler
        must reproduce it exactly (no movement, fixed gate sum)."""
        code = RepetitionCode(d)
        expected = single_chain_round_time(code)
        measured = steady_round_time(code, code.num_qubits + 1, "linear")
        assert measured == pytest.approx(expected, rel=1e-6)

    def test_rotated_single_chain_exact(self):
        code = RotatedSurfaceCode(2)
        expected = single_chain_round_time(code)
        measured = steady_round_time(code, code.num_qubits + 1, "linear")
        assert measured == pytest.approx(expected, rel=1e-6)

    @pytest.mark.parametrize("d", (3, 6))
    def test_single_chain_zero_movement(self, d):
        code = RepetitionCode(d)
        program = compile_memory_experiment(
            code, code.num_qubits + 1, "linear", rounds=5
        )
        assert program.stats.movement_ops == 0


class TestRepetitionLinear:
    @pytest.mark.parametrize("d", (3, 6))
    def test_capacity2_near_optimal_time(self, d):
        code = RepetitionCode(d)
        optimal = optimal_estimate(code, "linear", 2)
        measured = steady_round_time(code, 2, "linear")
        assert measured >= optimal.round_time_us * 0.95
        assert measured <= optimal.round_time_us * 1.8

    @pytest.mark.parametrize("d", (3, 6))
    def test_capacity2_near_optimal_movement(self, d):
        code = RepetitionCode(d)
        optimal = optimal_estimate(code, "linear", 2)
        rounds = 4
        program = compile_memory_experiment(code, 2, "linear", rounds=rounds)
        per_round = program.stats.movement_ops / rounds
        assert per_round <= 2.5 * optimal.movement_ops_per_round

    def test_capacity3_reduces_movement(self):
        """Bigger clusters internalise one CX per check (Table 2 trend)."""
        code = RepetitionCode(5)
        m2 = compile_memory_experiment(code, 2, "linear", rounds=3).stats
        m3 = compile_memory_experiment(code, 3, "linear", rounds=3).stats
        assert m3.movement_ops < m2.movement_ops


class TestRotatedGrid:
    def test_capacity2_within_optimality_band(self):
        code = RotatedSurfaceCode(3)
        optimal = optimal_estimate(code, "grid", 2)
        measured = steady_round_time(code, 2, "grid")
        assert measured >= optimal.round_time_us * 0.9
        # The paper's compiler lands within ~1.1x of hand mappings on
        # small configs; ours keeps within a looser engineering band.
        assert measured <= optimal.round_time_us * 4.0

    def test_movement_ops_scale_with_check_weight(self):
        code = RotatedSurfaceCode(3)
        optimal = optimal_estimate(code, "grid", 2)
        rounds = 3
        program = compile_memory_experiment(code, 2, "grid", rounds=rounds)
        per_round = program.stats.movement_ops / rounds
        assert per_round <= 1.6 * optimal.movement_ops_per_round
        assert per_round >= 0.8 * optimal.movement_ops_per_round

    def test_unsupported_configs_raise(self):
        with pytest.raises(ValueError):
            optimal_estimate(RotatedSurfaceCode(3), "grid", 5)
        with pytest.raises(ValueError):
            optimal_estimate(RepetitionCode(3), "grid", 2)


class TestOptimalModel:
    def test_estimates_positive(self):
        est = optimal_estimate(RepetitionCode(3), "linear", 2)
        assert est.round_time_us > 0
        assert est.movement_ops_per_round > 0

    def test_single_chain_formula(self):
        code = RepetitionCode(3)
        # 2 checks x (R + 2 CX + M) = 2 x (50 + 120 + 400).
        assert single_chain_round_time(code) == 2 * (50 + 120 + 400)

    def test_rotated_single_chain_includes_hadamards(self):
        code = RotatedSurfaceCode(2)
        t = single_chain_round_time(code)
        x_checks = len(code.checks_of_basis("X"))
        cx = sum(c.weight for c in code.checks)
        expected = len(code.checks) * 450 + cx * 60 + x_checks * 10
        assert t == pytest.approx(expected)
