"""Rectangular patches and lattice-surgery workloads (paper Sec. 8)."""

import numpy as np
import pytest

from repro.codes import (
    RectangularRotatedCode,
    RotatedSurfaceCode,
    ideal_memory_circuit,
    merged_patch,
)
from repro.core import compile_memory_experiment, program_to_circuit, steady_round_time
from repro.noise import DEFAULT_NOISE
from repro.sim import PauliString, TableauSimulator


class TestConstruction:
    @pytest.mark.parametrize("dx,dy", [(2, 2), (3, 2), (2, 3), (5, 3), (7, 3)])
    def test_qubit_counts(self, dx, dy):
        code = RectangularRotatedCode(dx, dy)
        assert len(code.data_qubits) == dx * dy
        assert len(code.ancilla_qubits) == dx * dy - 1

    def test_square_matches_rotated_code(self):
        rect = RectangularRotatedCode(3, 3)
        square = RotatedSurfaceCode(3)
        assert rect.num_qubits == square.num_qubits
        assert len(rect.checks) == len(square.checks)
        assert rect.distance == 3

    def test_distance_is_min(self):
        assert RectangularRotatedCode(7, 3).distance == 3
        assert RectangularRotatedCode(3, 7).distance == 3

    def test_logical_weights(self):
        code = RectangularRotatedCode(5, 3)
        assert len(code.logical_z) == 5
        assert len(code.logical_x) == 3

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            RectangularRotatedCode(1, 3)
        with pytest.raises(ValueError):
            merged_patch(1)
        with pytest.raises(ValueError):
            merged_patch(3, seam=0)

    def test_merged_patch_shape(self):
        patch = merged_patch(3)
        assert patch.dx == 7 and patch.dy == 3
        assert len(patch.data_qubits) == 21


class TestStabilizerStructure:
    @pytest.mark.parametrize("dx,dy", [(3, 2), (5, 3)])
    def test_checks_commute_and_logicals_valid(self, dx, dy):
        code = RectangularRotatedCode(dx, dy)
        paulis = []
        for check in code.checks:
            p = PauliString(code.num_qubits)
            for d in check.data:
                if check.basis == "X":
                    p.x[d] = True
                else:
                    p.z[d] = True
            paulis.append(p)
        for i in range(len(paulis)):
            for j in range(i + 1, len(paulis)):
                assert paulis[i].commutes_with(paulis[j])
        lz = PauliString(code.num_qubits)
        for d in code.logical_z:
            lz.z[d] = True
        lx = PauliString(code.num_qubits)
        for d in code.logical_x:
            lx.x[d] = True
        for p in paulis:
            assert lz.commutes_with(p) and lx.commutes_with(p)
        assert not lz.commutes_with(lx)

    @pytest.mark.parametrize("basis", ["Z", "X"])
    def test_memory_determinism(self, basis):
        code = merged_patch(2)
        circ = ideal_memory_circuit(code, rounds=2, basis=basis)
        rec = np.array(TableauSimulator(circ.num_qubits, seed=1).run(circ))
        for group in circ.detector_records():
            assert rec[group].sum() % 2 == 0


class TestSurgeryCompilation:
    def test_merged_patch_compiles_on_capacity2_grid(self):
        patch = merged_patch(2)
        program = compile_memory_experiment(
            patch, trap_capacity=2, topology="grid", rounds=2
        )
        export = program_to_circuit(program, patch, DEFAULT_NOISE)
        clean = export.circuit.without_noise()
        rec = np.array(TableauSimulator(clean.num_qubits, seed=2).run(clean))
        for group in clean.detector_records():
            assert rec[group].sum() % 2 == 0

    def test_surgery_round_time_stays_constant(self):
        """Sec. 8's claim: merged-patch rounds cost what square-patch
        rounds cost at capacity 2 — the cycle time does not depend on
        the patch being twice as wide."""
        square = steady_round_time(RotatedSurfaceCode(3), 2, "grid")
        merged = steady_round_time(merged_patch(3), 2, "grid")
        assert merged < 2.0 * square

    def test_wide_patch_movement_scales_with_checks(self):
        """Total movement grows with patch area, not faster."""
        small = compile_memory_experiment(
            RotatedSurfaceCode(3), 2, "grid", rounds=2
        ).stats
        wide = compile_memory_experiment(
            merged_patch(3), 2, "grid", rounds=2
        ).stats
        small_checks = len(RotatedSurfaceCode(3).checks)
        wide_checks = len(merged_patch(3).checks)
        per_check_small = small.movement_ops / small_checks
        per_check_wide = wide.movement_ops / wide_checks
        assert per_check_wide < 1.7 * per_check_small
