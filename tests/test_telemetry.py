"""Telemetry tests: span attribution, metrics, Chrome-trace export,
and the engine's observability integration.

Covers the invariants the observability layer is built on:

- **exclusive span attribution** — with a fake clock, nested spans
  attribute exactly their own (non-child) time, so phase totals are
  additive and sum to enclosing wall clock;
- **no-op path** — a disabled registry hands out one shared singleton
  span and allocates nothing, so always-on instrumentation points are
  free;
- **histogram edges** — ``le`` bucket semantics with an +Inf overflow
  slot;
- **Chrome trace round-trip** — exported traces are valid JSON with
  monotonic per-lane timestamps and named worker lanes, and the
  validator actually rejects broken traces;
- **engine integration** — pool backends ship per-shard phase dicts
  over the 7-tuple protocol (gated on worker protocol version and the
  driver's own telemetry switch), pool health aggregates per-worker
  stats, worker death warns through ``logging``, and a telemetry-on
  sweep produces bit-identical failure counts to a telemetry-off one.
"""

import io
import json
import logging
import tracemalloc

import pytest

from repro import telemetry
from repro.engine import CompilationCache, ResultStore, SweepSpec, run_sweep
from repro.engine.progress import (
    ProgressReporter,
    format_phase_share,
    format_pool_health,
)
from repro.engine.results import ShardRecord
from repro.engine.runner import (
    PHASE_ORDER,
    ShardExecutor,
    WorkerPoolBackend,
    handle_worker_message,
    ordered_phases,
)
from repro.telemetry import (
    DEFAULT_TIME_BUCKETS,
    Histogram,
    Telemetry,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.core import NULL_SPAN


class FakeClock:
    """Deterministic injectable clock for span tests."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


@pytest.fixture
def scoped_registry():
    """Restore the process's active registry after a test swaps it."""
    previous = telemetry.get()
    yield
    telemetry.set_active(previous)


def small_spec(**overrides):
    base = dict(distances=(2,), shots=256, rounds=2, master_seed=7)
    base.update(overrides)
    return SweepSpec(**base)


# ----------------------------------------------------------------------
# Spans and phase attribution
# ----------------------------------------------------------------------
class TestSpans:
    def test_exclusive_attribution_nested(self):
        clock = FakeClock()
        tel = Telemetry(enabled=True, clock=clock)
        with tel.span("outer"):
            clock.advance(2.0)
            with tel.span("inner"):
                clock.advance(3.0)
            clock.advance(1.0)
        totals = tel.phase_totals()
        assert totals["inner"] == pytest.approx(3.0)
        assert totals["outer"] == pytest.approx(3.0)  # 6.0 - 3.0 child
        # Additivity: exclusive times reconstruct the wall clock.
        assert sum(totals.values()) == pytest.approx(6.0)

    def test_three_level_nesting_and_counts(self):
        clock = FakeClock()
        tel = Telemetry(enabled=True, clock=clock)
        for _ in range(2):
            with tel.span("a"):
                clock.advance(1.0)
                with tel.span("b"):
                    clock.advance(1.0)
                    with tel.span("c"):
                        clock.advance(1.0)
        assert tel.phase_counts() == {"a": 2, "b": 2, "c": 2}
        assert tel.phase_totals() == pytest.approx(
            {"a": 2.0, "b": 2.0, "c": 2.0}
        )
        assert sum(tel.phase_totals().values()) == pytest.approx(6.0)

    def test_sibling_spans_attribute_to_parent_once(self):
        clock = FakeClock()
        tel = Telemetry(enabled=True, clock=clock)
        with tel.span("parent"):
            for _ in range(3):
                with tel.span("child"):
                    clock.advance(1.0)
            clock.advance(0.5)
        assert tel.phase_totals()["parent"] == pytest.approx(0.5)
        assert tel.phase_totals()["child"] == pytest.approx(3.0)

    def test_phase_delta_is_positive_only(self):
        clock = FakeClock()
        tel = Telemetry(enabled=True, clock=clock)
        with tel.span("a"):
            clock.advance(1.0)
        snapshot = tel.phase_snapshot()
        with tel.span("b"):
            clock.advance(2.0)
        delta = tel.phase_delta(snapshot)
        assert delta == pytest.approx({"b": 2.0})  # unchanged "a" omitted

    def test_disabled_span_is_shared_singleton(self):
        tel = Telemetry(enabled=False)
        assert tel.span("a") is tel.span("b") is NULL_SPAN
        with tel.span("a", attr=1):
            pass
        assert tel.phase_totals() == {}
        assert tel.events() == []

    def test_disabled_span_allocates_nothing(self):
        tel = Telemetry(enabled=False)

        def net_retained(iterations: int) -> int:
            base = tracemalloc.get_traced_memory()[0]
            for _ in range(iterations):
                with tel.span("hot"):
                    pass
            return tracemalloc.get_traced_memory()[0] - base

        tracemalloc.start()
        try:
            net_retained(1000)  # warm one-off interpreter caches
            net = net_retained(50_000)
        finally:
            tracemalloc.stop()
        # The measurement harness itself retains O(1) bytes (a boxed
        # int or two); what must not exist is *per-call* retention —
        # even one object per span would show up as megabytes here.
        assert net <= 64, f"disabled span path retained {net} bytes"

    def test_module_level_span_follows_active_registry(self, scoped_registry):
        clock = FakeClock()
        tel = telemetry.set_active(Telemetry(enabled=True, clock=clock))
        with telemetry.span("top"):
            clock.advance(1.0)
        assert tel.phase_totals() == pytest.approx({"top": 1.0})
        telemetry.configure(enabled=False)
        assert telemetry.span("off") is NULL_SPAN

    def test_span_attrs_reach_trace_events(self):
        clock = FakeClock()
        tel = Telemetry(enabled=True, trace=True, clock=clock)
        with tel.span("job", key="d5"):
            clock.advance(1.0)
        [(ts, dur, name, lane, attrs)] = tel.events()
        assert (ts, dur, name, lane) == (0.0, 1.0, "job", "driver")
        assert attrs == {"key": "d5"}

    def test_event_buffer_is_bounded(self):
        clock = FakeClock()
        tel = Telemetry(enabled=True, trace=True, max_events=2, clock=clock)
        for i in range(5):
            tel.add_event("e", float(i), 1.0)
        assert len(tel.events()) == 2
        stream = io.StringIO()
        tel.export_jsonl(stream)
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert {"type": "dropped_events", "count": 3} in lines


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_registry_identity(self):
        tel = Telemetry(enabled=True)
        counter = tel.counter("shards")
        counter.inc()
        tel.counter("shards").inc(4)
        assert counter.value == 5
        tel.gauge("inflight").set(3.0)
        assert tel.gauge("inflight").value == 3.0

    def test_histogram_le_edges_and_overflow(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 4.0, 9.0):
            hist.observe(value)
        # le semantics: a value equal to an edge counts into that edge's
        # bucket; 9.0 overflows into the final +Inf slot.
        assert hist.counts == [2, 1, 1, 1]
        assert hist.count == 5 == sum(hist.counts)
        assert hist.mean == pytest.approx(16.0 / 5)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_default_buckets_strictly_increasing(self):
        assert list(DEFAULT_TIME_BUCKETS) == sorted(set(DEFAULT_TIME_BUCKETS))
        Histogram("ok")  # default edges must construct

    def test_metrics_snapshot_and_reset(self):
        clock = FakeClock()
        tel = Telemetry(enabled=True, clock=clock)
        tel.counter("c").inc(2)
        tel.histogram("h", buckets=(1.0,)).observe(0.5)
        with tel.span("p"):
            clock.advance(1.0)
        snapshot = tel.metrics_snapshot()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["histograms"]["h"]["counts"] == [1, 0]
        assert snapshot["phases"]["p"] == {
            "count": 1, "self_s": pytest.approx(1.0),
        }
        tel.reset()
        assert tel.metrics_snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}, "phases": {},
        }

    def test_export_jsonl_is_self_describing(self, tmp_path):
        clock = FakeClock()
        tel = Telemetry(enabled=True, trace=True, clock=clock)
        tel.counter("shards_done").inc(3)
        tel.gauge("inflight").set(1.0)
        tel.histogram("elapsed").observe(0.1)
        with tel.span("decode"):
            clock.advance(1.0)
        path = tmp_path / "telemetry.jsonl"
        count = tel.export_jsonl(str(path))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == count
        assert {line["type"] for line in lines} == {
            "counter", "gauge", "histogram", "phase", "span",
        }
        [phase] = [line for line in lines if line["type"] == "phase"]
        assert phase["name"] == "decode"
        assert phase["self_s"] == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
def _traced_registry() -> Telemetry:
    """A registry with driver spans plus two synthesized worker lanes."""
    clock = FakeClock()
    tel = Telemetry(enabled=True, trace=True, clock=clock)
    with tel.span("compile"):
        clock.advance(1.0)
    # Worker-lane events the driver synthesizes from shipped phases.
    tel.add_event("shard", 1.0, 2.0, lane="127.0.0.1:9001")
    tel.add_event("decode", 1.0, 1.5, lane="127.0.0.1:9001")
    tel.add_event("shard", 0.5, 2.5, lane="mp:0")
    with tel.span("finalize"):
        clock.advance(0.5)
    return tel


class TestChromeTrace:
    def test_round_trip_valid_json_with_worker_lanes(self, tmp_path):
        tel = _traced_registry()
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), tel)
        trace = json.loads(path.read_text())  # round-trips as JSON
        assert len(trace["traceEvents"]) == count
        assert validate_chrome_trace(trace) == []
        lanes = {
            event["args"]["name"]: event["tid"]
            for event in trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert lanes["driver"] == 0  # coordinating lane tops the view
        assert set(lanes) == {"driver", "127.0.0.1:9001", "mp:0"}

    def test_timestamps_monotonic_within_every_lane(self):
        trace = chrome_trace(_traced_registry())
        last: dict[int, int] = {}
        for event in trace["traceEvents"]:
            if event["ph"] != "X":
                continue
            assert event["ts"] >= last.get(event["tid"], 0)
            last[event["tid"]] = event["ts"]

    def test_exit_order_buffering_still_sorts_monotonic(self):
        # Nested spans buffer at exit (children first); the exporter
        # must still emit parent-before-child within the lane.
        clock = FakeClock()
        tel = Telemetry(enabled=True, trace=True, clock=clock)
        with tel.span("parent"):
            clock.advance(0.5)
            with tel.span("child"):
                clock.advance(1.0)
        assert [e[2] for e in tel.events()] == ["child", "parent"]
        assert validate_chrome_trace(chrome_trace(tel)) == []

    def test_validator_rejects_broken_traces(self):
        trace = chrome_trace(_traced_registry())
        assert validate_chrome_trace({"traceEvents": "nope"})
        missing_lane = json.loads(json.dumps(trace))
        missing_lane["traceEvents"] = [
            e for e in missing_lane["traceEvents"]
            if not (e["ph"] == "M" and e["name"] == "thread_name")
        ]
        assert any(
            "thread_name" in p for p in validate_chrome_trace(missing_lane)
        )
        bad_ts = json.loads(json.dumps(trace))
        for event in bad_ts["traceEvents"]:
            if event["ph"] == "X":
                event["ts"] = -1
                break
        assert any("non-negative" in p for p in validate_chrome_trace(bad_ts))

    def test_cli_validator(self, tmp_path, capsys):
        from repro.telemetry.trace import main

        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), _traced_registry())
        assert main(["--validate", str(path)]) == 0
        assert "ok:" in capsys.readouterr().out
        path.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
        assert main(["--validate", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_deterministic_given_same_events(self):
        assert chrome_trace(_traced_registry()) == chrome_trace(
            _traced_registry()
        )


# ----------------------------------------------------------------------
# Engine integration: pool protocol, pool health, warnings, determinism
# ----------------------------------------------------------------------
class StubPoolBackend(WorkerPoolBackend):
    """In-memory pool: real `WorkerPoolBackend` bookkeeping and the real
    worker message handler, with a synchronous in-process transport —
    so the config/phases wire protocol is exercised without processes.
    """

    name = "stub"

    def __init__(self, workers: int = 2, protocol: int = 2):
        self.queue_depth = 2
        self._workers = workers
        self._protocol = protocol
        self._executors = [ShardExecutor() for _ in range(workers)]
        self._replies: list[tuple] = []
        self.sent: list[tuple[int, tuple]] = []
        self._init_pool()
        self._load = [0] * workers

    def _ensure_workers(self) -> None:
        pass

    def _live_workers(self) -> list[int]:
        return list(range(self._workers))

    def _worker_slots(self) -> int:
        return self._workers

    def _worker_protocol(self, worker: int) -> int:
        return self._protocol

    def _send(self, worker: int, message: tuple) -> None:
        self.sent.append((worker, message))
        reply = handle_worker_message(self._executors[worker], message)
        if reply is not None:
            if self._protocol < 2:
                reply = reply[:6]  # an old worker never appends phases
            self._replies.append(reply)

    def poll(self):
        outcomes = []
        while self._replies:
            outcome = self._handle(self._replies.pop(0))
            if outcome is not None:
                outcomes.append(outcome)
        return outcomes

    def wait(self):
        return self.poll()

    def close(self) -> None:
        pass

    def terminate(self) -> None:
        pass


class TestPoolTelemetryProtocol:
    def test_config_sent_once_per_worker_and_phases_flow(
        self, scoped_registry
    ):
        telemetry.set_active(Telemetry(enabled=True))
        backend = StubPoolBackend(workers=2)
        [result] = run_sweep(small_spec(), backend=backend, shard_shots=64)
        configs = [m for _, m in backend.sent if m[0] == "config"]
        workers_used = {w for w, m in backend.sent if m[0] == "shard"}
        assert configs == [("config", {"telemetry": True})] * len(workers_used)
        # Shard phases came back over the 7-tuple protocol and were
        # folded into the job record.
        phases = result.extras["phases"]
        assert set(phases) <= set(PHASE_ORDER)
        assert {"sample", "decode", "other"} <= set(phases)
        assert list(phases) == ordered_phases(phases)
        health = backend.pool_health()
        assert set(health["workers"]) == {
            f"stub:{w}" for w in workers_used
        }
        assert sum(
            stats["shards"] for stats in health["workers"].values()
        ) == 4  # 256 shots / 64
        assert health["crashes"] == 0

    def test_no_config_and_no_phases_when_telemetry_off(
        self, scoped_registry, tmp_path
    ):
        telemetry.set_active(Telemetry(enabled=False))
        backend = StubPoolBackend(workers=2)
        store = ResultStore(str(tmp_path / "results.jsonl"))
        [result] = run_sweep(
            small_spec(), backend=backend, shard_shots=64, store=store
        )
        assert not any(m[0] == "config" for _, m in backend.sent)
        assert "phases" not in result.extras
        assert not any(
            '"phases"' in line
            for line in (tmp_path / "results.jsonl").read_text().splitlines()
        )

    def test_old_protocol_worker_never_receives_config(self, scoped_registry):
        telemetry.set_active(Telemetry(enabled=True))
        backend = StubPoolBackend(workers=2, protocol=1)
        [result] = run_sweep(small_spec(), backend=backend, shard_shots=64)
        assert not any(m[0] == "config" for _, m in backend.sent)
        assert result.failures is not None  # sweep still completes

    def test_telemetry_on_off_failure_counts_bit_identical(
        self, scoped_registry
    ):
        telemetry.set_active(Telemetry(enabled=False))
        [off] = run_sweep(small_spec(), backend=StubPoolBackend(),
                          shard_shots=64)
        telemetry.set_active(Telemetry(enabled=True, trace=True))
        [on] = run_sweep(small_spec(), backend=StubPoolBackend(),
                         shard_shots=64)
        assert (on.shots, on.failures) == (off.shots, off.failures)

    def test_stale_enabled_worker_phases_dropped_when_driver_off(
        self, scoped_registry
    ):
        # A serve-forever worker left telemetry-enabled by an earlier
        # driver may append phases; a telemetry-off driver must drop
        # them rather than leak them into its outcomes.
        telemetry.set_active(Telemetry(enabled=False))
        backend = StubPoolBackend(workers=1)
        backend._dispatch[0] = (0, "job", 64, 0.0)
        backend._load = [1]
        outcome = backend._handle(
            ("ok", 0, 3, 0.5, 0, (1, 2, 3), {"sample": 0.4})
        )
        assert outcome.phases is None
        assert outcome.worker == "stub:0"

    def test_worker_death_logs_structured_warning(self, caplog):
        backend = StubPoolBackend(workers=2)
        backend._dispatch[7] = (0, "job-a", 64, 0.0)
        backend._dispatch[8] = (1, "job-b", 64, 0.0)
        backend._load = [1, 1]
        with caplog.at_level(logging.WARNING, logger="repro.engine.runner"):
            backend._forget_worker(0)
        assert backend.take_lost() == [7]
        [record] = caplog.records
        assert "stub:0" in record.getMessage()
        assert "seqs: [7]" in record.getMessage()
        health = backend.pool_health()
        assert health["crashes"] == 1
        assert health["resubmitted_shards"] == 1

    def test_scheduler_resubmission_logs_warning(self, caplog):
        from fault_helpers import FlakyBackend

        backend = FlakyBackend(workers=2, drop_worker=1, drop_after=1)
        with caplog.at_level(
            logging.WARNING, logger="repro.engine.scheduler"
        ):
            [result] = run_sweep(
                small_spec(), backend=backend, shard_shots=64
            )
        assert result.failures is not None
        assert any(
            "lost to a dead worker" in record.getMessage()
            for record in caplog.records
        )


# ----------------------------------------------------------------------
# Persistence and reporting surfaces
# ----------------------------------------------------------------------
class TestPersistenceAndReporting:
    def test_shard_record_phases_round_trip(self):
        record = ShardRecord(
            job_key="k", shard_index=3, shots=64, failures=2,
            elapsed_s=0.25, run_config={"master_seed": 7},
            phases={"sample": 0.1, "decode": 0.12},
        )
        clone = ShardRecord.from_jsonable(
            json.loads(json.dumps(record.to_jsonable()))
        )
        assert clone == record

    def test_shard_record_without_phases_stays_compact(self):
        record = ShardRecord(
            job_key="k", shard_index=0, shots=64, failures=0,
            elapsed_s=0.1, run_config={},
        )
        body = record.to_jsonable()
        assert "phases" not in json.dumps(body)
        assert ShardRecord.from_jsonable(body).phases is None

    def test_ordered_phases_pipeline_order(self):
        phases = {"decode": 1.0, "sample": 2.0, "zeta": 0.1, "compile": 3.0}
        assert ordered_phases(phases) == [
            "compile", "sample", "decode", "zeta",
        ]

    def test_finish_reports_setup_and_phase_share(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream)
        reporter.start(1)
        reporter.finish(
            setup_s=1.5, phase_s={"decode": 3.0, "sample": 1.0},
        )
        out = stream.getvalue()
        assert "setup: 1.5s" in out
        assert "phases: decode 75% (3.00s), sample 25% (1.00s)" in out

    def test_status_line_with_pool_and_straggler(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream)
        reporter.start(2)
        reporter.status({
            "shards_done": 5,
            "memo": {"hits": 3, "misses": 1, "hit_rate": 0.75},
            "phase_s": {"decode": 1.0},
            "pool": {
                "workers": {
                    "mp:0": {"shards": 4, "busy_s": 2.0, "inflight": 1},
                    "mp:1": {"shards": 1, "busy_s": 0.5},
                },
                "crashes": 1,
                "resubmitted_shards": 2,
            },
        })
        out = stream.getvalue()
        assert "5 shard(s)" in out
        assert "memo hit rate 75.0%" in out
        assert "mp:0 4 shard(s) busy 2.0s +1 inflight" in out
        assert "mp:1 1 shard(s) busy 0.5s [straggler]" in out
        assert "1 crash(es), 2 shard(s) resubmitted" in out

    def test_format_phase_share_empty(self):
        assert format_phase_share({}) == "(no phase data)"
        assert format_pool_health({"workers": {}}) == "(none)"

    def test_serial_sweep_populates_driver_trace(self, scoped_registry):
        tel = telemetry.set_active(Telemetry(enabled=True, trace=True))
        run_sweep(small_spec(), shard_shots=64)
        trace = chrome_trace(tel)
        assert validate_chrome_trace(trace) == []
        names = {
            e["name"] for e in trace["traceEvents"] if e["ph"] == "X"
        }
        # Driver-side compile span plus the in-process shard pipeline.
        assert {"compile", "shard", "sample", "decode"} <= names
        assert tel.counter("shards_done").value == 4
        assert tel.counter("shots_done").value == 256
