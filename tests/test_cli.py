"""CLI tests for the toolflow command-line interface."""

import csv

import pytest

from repro.toolflow.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_evaluate_args(self):
        args = build_parser().parse_args(
            ["evaluate", "--distance", "3", "--capacity", "5",
             "--topology", "linear"]
        )
        assert args.distance == 3
        assert args.capacity == 5
        assert args.topology == "linear"

    def test_sweep_args(self):
        args = build_parser().parse_args(
            ["sweep", "--distances", "3", "5", "--capacities", "2", "3"]
        )
        assert args.distances == [3, 5]
        assert args.capacities == [2, 3]

    def test_bad_topology_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["evaluate", "--distance", "3", "--topology", "torus"]
            )

    def test_sweep_plural_axis_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--distances", "3", "--decoders", "mwpm", "union_find",
             "--topologies", "grid", "switch", "--wirings", "standard",
             "--improvements", "1", "5"]
        )
        assert args.decoders == ["mwpm", "union_find"]
        assert args.topologies == ["grid", "switch"]
        assert args.wirings == ["standard"]
        assert args.improvements == [1.0, 5.0]
        # Singular flags remain the defaults for the plural axes.
        bare = build_parser().parse_args(["sweep", "--distances", "3"])
        assert bare.decoders is None and bare.topologies is None

    def test_sweep_adaptive_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--distances", "3", "--shots", "500",
             "--target-failures", "50", "--max-shots", "20000"]
        )
        assert args.target_failures == 50
        assert args.max_shots == 20000

    def test_bad_plural_decoder_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--distances", "3", "--decoders", "mwpm", "bp"]
            )


class TestCommands:
    def test_evaluate_runs(self, capsys):
        code = main(["evaluate", "--distance", "2", "--capacity", "2",
                     "--rounds", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "round_us" in out
        assert "rotated_surface" in out

    def test_sweep_writes_csv(self, tmp_path, capsys):
        path = tmp_path / "sweep.csv"
        code = main([
            "sweep", "--distances", "2", "--capacities", "2", "3",
            "--rounds", "2", "--csv", str(path),
        ])
        assert code == 0
        rows = list(csv.reader(path.open()))
        assert rows[0][0] == "code"
        assert len(rows) == 3  # header + 2 design points

    def test_project_requires_shots(self, capsys):
        code = main(["project", "--distances", "2", "3"])
        assert code == 2

    def test_project_runs(self, capsys):
        code = main([
            "project", "--distances", "2", "3", "--rounds", "2",
            "--shots", "400", "--improvement", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Lambda" in out

    def test_repetition_linear_sweep(self, capsys):
        code = main([
            "sweep", "--distances", "3", "--capacities", "2",
            "--code", "repetition", "--topology", "linear", "--rounds", "2",
        ])
        assert code == 0
        assert "repetition" in capsys.readouterr().out

    def test_sweep_expands_full_cross_product(self, tmp_path, capsys):
        # The bug this guards against: cmd_sweep used to silently
        # narrow the grid to a single topology/wiring/improvement/
        # decoder even though SweepSpec takes tuples.
        path = tmp_path / "grid.csv"
        code = main([
            "sweep", "--distances", "2", "--rounds", "2",
            "--decoders", "mwpm", "union_find",
            "--topologies", "grid", "switch",
            "--csv", str(path),
        ])
        assert code == 0
        rows = list(csv.reader(path.open()))
        assert len(rows) == 5  # header + 2 topologies x 2 decoders

    def test_sweep_adaptive_run(self, capsys):
        code = main([
            "sweep", "--distances", "2", "--rounds", "2",
            "--shots", "128", "--shard-shots", "64",
            "--target-failures", "5", "--max-shots", "1024",
        ])
        assert code == 0
        assert "rotated_surface" in capsys.readouterr().out
