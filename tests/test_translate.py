"""Translation pass tests: gate DAG structure and commutation edges."""

import pytest

from repro.codes import RepetitionCode, RotatedSurfaceCode
from repro.core import build_gate_dag


def _gates_of_kind(gates, kind):
    return [g for g in gates if g.kind == kind]


def _find_cx(gates, control, target):
    return [
        g for g in gates if g.kind == "CX" and g.qubits == (control, target)
    ]


class TestShape:
    def test_gate_counts_single_round(self):
        code = RotatedSurfaceCode(3)
        gates = build_gate_dag(code, 1)
        n_anc = len(code.ancilla_qubits)
        n_data = len(code.data_qubits)
        n_x = len(code.checks_of_basis("X"))
        cx = sum(c.weight for c in code.checks)
        assert len(_gates_of_kind(gates, "R")) == n_data + n_anc
        assert len(_gates_of_kind(gates, "M")) == n_anc + n_data
        assert len(_gates_of_kind(gates, "H")) == 2 * n_x
        assert len(_gates_of_kind(gates, "CX")) == cx

    def test_rounds_scale_gate_count(self):
        code = RepetitionCode(3)
        one = len(build_gate_dag(code, 1))
        three = len(build_gate_dag(code, 3))
        per_round = (three - one) / 2
        n_anc = len(code.ancilla_qubits)
        assert per_round == n_anc * (1 + 2 + 1)  # R + 2 CX + M

    def test_x_basis_adds_data_hadamards(self):
        code = RotatedSurfaceCode(2)
        z = build_gate_dag(code, 1, "Z")
        x = build_gate_dag(code, 1, "X")
        n_data = len(code.data_qubits)
        assert len(_gates_of_kind(x, "H")) == len(_gates_of_kind(z, "H")) + 2 * n_data

    def test_invalid_args(self):
        code = RepetitionCode(2)
        with pytest.raises(ValueError):
            build_gate_dag(code, 0)
        with pytest.raises(ValueError):
            build_gate_dag(code, 1, "Y")

    def test_cx_direction_by_basis(self):
        code = RotatedSurfaceCode(3)
        gates = build_gate_dag(code, 1)
        data_ids = {q.index for q in code.data_qubits}
        for check in code.checks:
            for gate in gates:
                if gate.kind != "CX" or check.ancilla not in gate.qubits:
                    continue
                if check.basis == "Z":
                    assert gate.qubits[1] == check.ancilla  # data controls
                else:
                    assert gate.qubits[0] == check.ancilla  # ancilla controls


class TestDependencies:
    def test_dag_is_acyclic_by_construction(self):
        gates = build_gate_dag(RotatedSurfaceCode(3), 2)
        for gate in gates:
            assert all(dep < gate.id for dep in gate.deps)

    def test_reset_blocks_ancilla_gates(self):
        code = RepetitionCode(3)
        gates = build_gate_dag(code, 1)
        for check in code.checks:
            reset = next(
                g for g in gates if g.kind == "R" and g.qubits == (check.ancilla,)
            )
            for cx in _find_cx(gates, check.data[0], check.ancilla):
                # The reset must be an ancestor of the CX.
                assert _is_ancestor(gates, reset.id, cx.id)

    def test_measurement_follows_all_check_cx(self):
        code = RepetitionCode(3)
        gates = build_gate_dag(code, 1)
        check = code.checks[0]
        meas = next(
            g
            for g in gates
            if g.kind == "M" and g.qubits == (check.ancilla,) and g.round == 0
        )
        for d in check.data:
            cx = _find_cx(gates, d, check.ancilla)[0]
            assert _is_ancestor(gates, cx.id, meas.id)

    def test_same_basis_cx_on_shared_data_commute(self):
        """Two Z-check CXs sharing a data qubit need no edge."""
        code = RepetitionCode(3)  # middle data shared by both checks
        gates = build_gate_dag(code, 1)
        shared = code.checks[0].data[1]
        assert shared == code.checks[1].data[0]
        cx_a = _find_cx(gates, shared, code.checks[0].ancilla)[0]
        cx_b = _find_cx(gates, shared, code.checks[1].ancilla)[0]
        later = max(cx_a, cx_b, key=lambda g: g.id)
        earlier = min(cx_a, cx_b, key=lambda g: g.id)
        assert earlier.id not in later.deps

    def test_cross_basis_cx_on_shared_data_ordered(self):
        """X-check and Z-check CXs on the same data anticommute."""
        code = RotatedSurfaceCode(3)
        gates = build_gate_dag(code, 1)
        # Find a data qubit shared by an X check and a Z check.
        for xc in code.checks_of_basis("X"):
            for zc in code.checks_of_basis("Z"):
                shared = set(xc.data) & set(zc.data)
                if not shared:
                    continue
                d = shared.pop()
                x_cx = _find_cx(gates, xc.ancilla, d)[0]
                z_cx = _find_cx(gates, d, zc.ancilla)[0]
                later = max(x_cx, z_cx, key=lambda g: g.id)
                earlier = min(x_cx, z_cx, key=lambda g: g.id)
                assert _is_ancestor(gates, earlier.id, later.id)
                return
        pytest.fail("no overlapping X/Z check pair found")

    def test_round_boundary_orders_ancilla_reuse(self):
        code = RepetitionCode(2)
        gates = build_gate_dag(code, 2)
        a = code.checks[0].ancilla
        m0 = next(
            g for g in gates if g.kind == "M" and g.qubits == (a,) and g.round == 0
        )
        r1 = next(
            g for g in gates if g.kind == "R" and g.qubits == (a,) and g.round == 1
        )
        assert _is_ancestor(gates, m0.id, r1.id)


def _is_ancestor(gates, ancestor_id, node_id):
    seen = set()
    stack = [node_id]
    while stack:
        cur = stack.pop()
        if cur == ancestor_id:
            return True
        if cur in seen:
            continue
        seen.add(cur)
        stack.extend(gates[cur].deps)
    return False
