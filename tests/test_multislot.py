"""Chaos tests for multi-slot workers, work stealing, and elastic pools.

Proves the PR's guarantees end to end:

- **multi-slot workers** — a ``--slots N`` worker runs shards
  concurrently, each reply tagged with its slot so every slot gets its
  own telemetry lane, and the totals stay bit-identical to serial;
- **windowed sub-shards** — a window re-draws the whole parent sample
  and decodes only its rows, so window failure counts sum to exactly
  the parent's (the invariant work stealing rests on);
- **work stealing** — a forced straggler's tail is re-sharded onto
  idle capacity, the parent's late result is discarded, and the sweep
  lands on the serial failure counts bit for bit;
- **elastic pools** — workers can join a running sweep (and get primed
  before shards), die by SIGKILL and be replaced at the same address,
  or drop their session and rejoin via ``--serve-forever``, all
  without changing the results.
"""

import socket
import threading

import pytest

from fault_helpers import (
    reap_workers,
    spawn_worker,
    spawn_workers,
)
from repro.engine import (
    CompilationCache,
    SweepSpec,
    run_sweep,
)
from repro.engine.runner import (
    Runner,
    Shard,
    ShardOutcome,
    compile_design_point,
    plan_shards,
    sample_shard,
)
from repro.engine.remote import RemoteBackend
from repro.noise.parameters import DEFAULT_NOISE

SHOTS = 600
SHARD = 128


def small_spec(**overrides):
    base = dict(
        distances=(2, 3),
        capacities=(2,),
        shots=SHOTS,
        rounds=2,
        master_seed=7,
    )
    base.update(overrides)
    return SweepSpec(**base)


@pytest.fixture(scope="module")
def serial_reference():
    """Failure counts of the canonical single-slot serial run."""
    return [r.failures for r in run_sweep(small_spec(), shard_shots=SHARD)]


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# ----------------------------------------------------------------------
# Windowed sub-shards (the bit-identity invariant, no sockets)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def compiled_point():
    """One compiled design point with its decoder and DEM sampler."""
    spec = small_spec(distances=(2,))
    [job] = spec.expand()
    art = compile_design_point(job, DEFAULT_NOISE, need_circuit=True)
    cache = CompilationCache()
    compiled = cache.compiled(art.circuit, art.text)
    decoder = cache.decoder(compiled, job.decoder)
    sampler = cache.dem_sampler(compiled)
    return spec, job, compiled, decoder, sampler


class TestShardWindows:
    def test_window_failures_sum_to_parent(self, compiled_point):
        # Split every planned shard into three uneven windows: the
        # windows must reproduce the parent's failure count exactly,
        # because each window re-draws the full parent sample and
        # decodes only its own rows.
        spec, job, compiled, decoder, sampler = compiled_point
        for shard in plan_shards(job.shots, SHARD, spec.master_seed, job.key):
            whole, _, _ = sample_shard(
                compiled.circuit, decoder, shard, sampler=sampler
            )
            cuts = [0, shard.shots // 3, 2 * shard.shots // 3 + 5, shard.shots]
            windowed = 0
            for lo, hi in zip(cuts, cuts[1:]):
                window = Shard(
                    shard.index, hi - lo, shard.seed,
                    offset=lo, parent_shots=shard.shots,
                )
                failures, _, _ = sample_shard(
                    compiled.circuit, decoder, window, sampler=sampler
                )
                windowed += failures
            assert windowed == whole

    def test_window_outside_parent_draw_raises(self, compiled_point):
        _spec, _job, compiled, decoder, sampler = compiled_point
        shard = Shard(0, SHARD, None)
        bogus = Shard(0, 64, shard.seed, offset=100, parent_shots=SHARD)
        with pytest.raises(ValueError, match="outside parent draw"):
            sample_shard(compiled.circuit, decoder, bogus, sampler=sampler)


# ----------------------------------------------------------------------
# In-process stealing (deterministic: a stub backend stalls one shard)
# ----------------------------------------------------------------------
class StallingBackend:
    """In-process pool backend that never executes one designated shard.

    Executes shards like :class:`SerialBackend` (one per ``wait``, FIFO)
    but holds the task with scheduler seq ``stall_seq`` unexecuted.  When
    only stalled work remains it returns ``[]`` once, which is the beat
    where the scheduler must steal.  After the steal it executes the
    stalled *parent* before the windows — the late result the scheduler
    must discard as superseded.
    """

    name = "stalling"

    def __init__(self, stall_seq: int = 0, capacity: int = 4):
        self.capacity = capacity
        self.stall_seq = stall_seq
        self._queue: list = []
        self.executed: list[int] = []  # seqs, in execution order

    def supports_windows(self) -> bool:
        return True

    def submit(self, task, compiled, cache) -> None:
        self._queue.append((task, compiled, cache))

    def poll(self):
        return []

    def _run(self, entry):
        task, compiled, cache = entry
        decoder = cache.decoder(compiled, task.decoder)
        sampler = (
            cache.dem_sampler(compiled) if task.sampler == "dem" else None
        )
        failures, memo, phases = sample_shard(
            compiled.circuit, decoder,
            Shard(task.shard_index, task.shots, task.seed,
                  offset=task.offset, parent_shots=task.parent_shots),
            sampler=sampler,
        )
        self.executed.append(task.seq)
        return [ShardOutcome(task.seq, task.job_key, task.shots, failures,
                             0.0, *memo, phases=phases)]

    def wait(self):
        stolen = [e for e in self._queue if e[0].parent_shots is not None]
        if stolen:
            # Post-steal: the stalled parent "finishes" first, so its
            # (superseded) result races the windows and must be dropped.
            for entry in self._queue:
                if entry[0].seq == self.stall_seq:
                    self._queue.remove(entry)
                    return self._run(entry)
        runnable = [e for e in self._queue if e[0].seq != self.stall_seq]
        if not runnable:
            return []  # only the straggler left: the steal beat
        entry = min(runnable, key=lambda e: e[0].seq)
        self._queue.remove(entry)
        return self._run(entry)

    def abandon_pending(self) -> None:
        self._queue = []

    def close(self) -> None:
        pass

    def terminate(self) -> None:
        pass


class TestStealScheduler:
    def test_stalled_shard_is_stolen_and_parent_discarded(
        self, serial_reference
    ):
        backend = StallingBackend(stall_seq=0, capacity=4)
        runner = Runner(
            small_spec(), backend=backend, shard_shots=SHARD,
            steal_min_shots=32,
        )
        results = runner.run()
        assert [r.failures for r in results] == serial_reference
        # The stalled shard is the stalest pending task, so it is the
        # first steal target; once the stream is exhausted the
        # scheduler may split further stragglers onto idle capacity.
        stats = runner.steal_stats
        assert stats["steals"] >= 1
        assert stats["stolen_shots"] >= SHARD
        assert stats["windows"] >= 2
        # Every planned shard and every window executed exactly once —
        # including the superseded parents, whose late results landed
        # *after* their windows — yet totals match serial, proving the
        # discarded copies were dropped, not double-counted.
        assert 0 in backend.executed
        assert len(backend.executed) == 10 + stats["windows"]
        assert len(set(backend.executed)) == len(backend.executed)

    def test_steal_disabled_keeps_stats_empty(self):
        backend = StallingBackend(stall_seq=10 ** 9, capacity=2)
        runner = Runner(
            small_spec(distances=(2,)), backend=backend, shard_shots=SHARD,
            steal=False, steal_min_shots=32,
        )
        results = runner.run()
        assert results and runner.steal_stats == {}


# ----------------------------------------------------------------------
# Real multi-slot workers (sockets)
# ----------------------------------------------------------------------
class RecordingRemote(RemoteBackend):
    """RemoteBackend that audits outcome lanes, sends, and adoptions."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.lanes: list[str] = []
        self.sent: list[tuple[int, str]] = []  # (worker index, kind)
        self.adopted: list[tuple] = []  # addrs, in adoption order

    def _handle(self, message):
        outcome = super()._handle(message)
        if outcome is not None and outcome.worker:
            self.lanes.append(outcome.worker)
        return outcome

    def _send(self, worker, message):
        self.sent.append((worker, message[0]))
        super()._send(worker, message)

    def _adopt(self, conn):
        self.adopted.append(conn.addr)
        return super()._adopt(conn)


class TestMultiSlotWorker:
    def test_two_slot_worker_fills_both_lanes_bit_identical(
        self, serial_reference
    ):
        # The shard delay keeps shards on the worker long enough that
        # the driver's queue actually overlaps them across both slots.
        proc, addr = spawn_worker(
            extra_args=("--slots", "2", "--chaos-shard-delay", "0.05")
        )
        try:
            with RecordingRemote([addr]) as backend:
                results = run_sweep(
                    small_spec(), backend=backend, shard_shots=SHARD
                )
                health = backend.pool_health()
            assert [r.failures for r in results] == serial_reference
            # Every outcome is slot-tagged and both slots saw work.
            slots_seen = {lane.rsplit("#", 1)[-1] for lane in self.slot_tagged(
                backend.lanes, addr)}
            assert slots_seen == {"s0", "s1"}, backend.lanes
            [stats] = health["workers"].values()
            assert stats["slots"] == 2
            assert 0 <= stats["busy_slots"] <= 2
        finally:
            reap_workers([proc])

    @staticmethod
    def slot_tagged(lanes, addr):
        tagged = [lane for lane in lanes if lane.startswith(addr)
                  and "#s" in lane]
        assert len(tagged) == len(lanes), lanes
        return tagged

    def test_mixed_slot_pool_matches_serial(self, serial_reference):
        # One 2-slot and one 1-slot worker in the same pool: capacity
        # counts slots, not sockets, and the totals still match serial.
        proc2, addr2 = spawn_worker(extra_args=("--slots", "2"))
        proc1, addr1 = spawn_worker()
        try:
            with RemoteBackend([addr2, addr1]) as backend:
                results = run_sweep(
                    small_spec(), backend=backend, shard_shots=SHARD
                )
                assert backend._worker_slots() == 3
                assert backend.capacity == 3 * backend.queue_depth
            assert [r.failures for r in results] == serial_reference
        finally:
            reap_workers([proc2, proc1])


class TestWorkStealingRemote:
    def test_forced_straggler_is_stolen_bit_identical(self, serial_reference):
        # One worker sleeps before every shard (the straggler), one is
        # fast.  The tail held by the slow worker must be stolen onto
        # the fast one, and the failure counts must not change.
        slow_proc, slow_addr = spawn_worker(
            extra_args=("--chaos-shard-delay", "0.4")
        )
        fast_proc, fast_addr = spawn_worker()
        try:
            with RemoteBackend([slow_addr, fast_addr]) as backend:
                runner = Runner(
                    small_spec(), backend=backend, shard_shots=SHARD,
                    steal_min_shots=32,
                )
                results = runner.run()
            stats = runner.steal_stats
            assert stats.get("steals", 0) >= 1, (
                "forced straggler was never stolen"
            )
            assert stats["windows"] >= 2
            assert [r.failures for r in results] == serial_reference
        finally:
            reap_workers([slow_proc, fast_proc])


# ----------------------------------------------------------------------
# Elastic pools (join / SIGKILL-replace / leave-and-rejoin)
# ----------------------------------------------------------------------
class TestElasticPool:
    def test_worker_joins_mid_sweep_and_is_primed(self, serial_reference):
        # The sweep starts with one live worker and one roster address
        # nobody is listening on yet; a worker spawned there mid-sweep
        # must be adopted, primed, and given shards.
        proc1, addr1 = spawn_worker(
            extra_args=("--chaos-shard-delay", "0.15")
        )
        late_addr = f"127.0.0.1:{free_port()}"
        late: dict = {}

        def join_late():
            late["proc"], late["addr"] = spawn_worker(listen=late_addr)

        joiner = threading.Thread(target=join_late, daemon=True)
        try:
            with RecordingRemote(
                [addr1, late_addr], elastic=True, rescan_interval=0.2
            ) as backend:
                joiner.start()
                results = run_sweep(
                    small_spec(), backend=backend, shard_shots=SHARD
                )
            joiner.join(timeout=30)
            assert [r.failures for r in results] == serial_reference
            # The late worker was adopted as a fresh index...
            assert tuple(backend.adopted[-1]) == (
                "127.0.0.1", int(late_addr.rsplit(":", 1)[1]))
            late_index = len(backend.adopted) - 1
            kinds = [kind for worker, kind in backend.sent
                     if worker == late_index]
            # ...primed before any shard, and actually given shards.
            assert "prime" in kinds
            assert "shard" in kinds
            assert kinds.index("prime") < kinds.index("shard")
            assert any(lane.startswith(late_addr) for lane in backend.lanes)
        finally:
            reap_workers([proc1] + ([late["proc"]] if "proc" in late else []))

    def test_sigkilled_worker_is_replaced_at_same_address(
        self, serial_reference
    ):
        # SIGKILL one of two workers mid-sweep, then stand up a fresh
        # worker on the same roster address: the elastic driver must
        # re-adopt it (as a new identity) and finish bit-identically.
        procs, addrs = spawn_workers(1)
        survivor_proc, survivor_addr = spawn_worker(
            extra_args=("--chaos-shard-delay", "0.1")
        )
        victim_proc, victim_addr = procs[0], addrs[0]
        replacement: dict = {}

        class KillAndReplace(RecordingRemote):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self._seen = 0
                self.killed = False

            def _handle(self, message):
                outcome = super()._handle(message)
                if outcome is not None:
                    self._seen += 1
                    if not self.killed and self._seen >= 2:
                        self.killed = True
                        victim_proc.kill()
                        victim_proc.wait()
                        replacement["proc"], _ = spawn_worker(
                            listen=victim_addr
                        )
                return outcome

        try:
            with KillAndReplace(
                [victim_addr, survivor_addr], elastic=True,
                rescan_interval=0.2,
            ) as backend:
                results = run_sweep(
                    small_spec(), backend=backend, shard_shots=SHARD
                )
                health = backend.pool_health()
            assert backend.killed
            assert [r.failures for r in results] == serial_reference
            assert health["crashes"] == 1
            # Three adoptions: two at start, one for the replacement —
            # and the replacement (a fresh index >= 2) received shards.
            assert len(backend.adopted) == 3
            assert any(worker >= 2 and kind == "shard"
                       for worker, kind in backend.sent)
        finally:
            reap_workers(
                [victim_proc, survivor_proc]
                + ([replacement["proc"]] if "proc" in replacement else [])
            )

    def test_clean_leave_and_rejoin_with_serve_forever(
        self, serial_reference
    ):
        # A --serve-forever worker whose session drops (clean leave: the
        # driver severs the socket, the worker loops back to accept)
        # must be re-adopted by the elastic rescan and finish the sweep.
        leaver_proc, leaver_addr = spawn_worker(
            extra_args=("--serve-forever",)
        )
        stayer_proc, stayer_addr = spawn_worker(
            extra_args=("--chaos-shard-delay", "0.1")
        )

        class SessionDropping(RecordingRemote):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self._seen = 0
                self.dropped = False

            def _handle(self, message):
                outcome = super()._handle(message)
                if outcome is not None:
                    self._seen += 1
                    if not self.dropped and self._seen >= 2:
                        self.dropped = True
                        self._conns[0].sock.shutdown(socket.SHUT_RDWR)
                return outcome

        try:
            with SessionDropping(
                [leaver_addr, stayer_addr], elastic=True,
                rescan_interval=0.2,
            ) as backend:
                results = run_sweep(
                    small_spec(), backend=backend, shard_shots=SHARD
                )
            assert backend.dropped
            assert [r.failures for r in results] == serial_reference
            # The same process rejoined under a fresh driver-side
            # identity once its old session died.
            assert backend.adopted.count(backend.adopted[0]) == 2
            assert leaver_proc.poll() is None  # it never exited
        finally:
            reap_workers([leaver_proc, stayer_proc])
