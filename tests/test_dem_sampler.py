"""DEM-direct sampler tests: packing, determinism, and statistical
equivalence against the FrameSimulator reference oracle."""

import numpy as np
import pytest

from repro.codes import (
    RepetitionCode,
    RotatedSurfaceCode,
    UniformNoise,
    ideal_memory_circuit,
)
from repro.sim import (
    DemError,
    DemSampler,
    DetectorErrorModel,
    FrameSimulator,
    PackedShard,
    circuit_to_dems,
    pack_bool_rows,
    unpack_bool_rows,
)


class TestBitPacking:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        for bits in (1, 63, 64, 65, 130):
            rows = rng.random((7, bits)) < 0.3
            packed = pack_bool_rows(rows)
            assert packed.dtype == np.uint64
            assert packed.shape == (7, (bits + 63) // 64)
            assert np.array_equal(unpack_bool_rows(packed, bits), rows)

    def test_zero_width(self):
        packed = pack_bool_rows(np.zeros((3, 0), dtype=bool))
        assert packed.shape == (3, 0)
        assert unpack_bool_rows(packed, 0).shape == (3, 0)

    def test_bit_layout_is_little_endian(self):
        rows = np.zeros((1, 70), dtype=bool)
        rows[0, 0] = rows[0, 65] = True
        packed = pack_bool_rows(rows)
        assert packed[0, 0] == 1
        assert packed[0, 1] == 2


class TestPackedShard:
    def test_from_bool_round_trips(self):
        rng = np.random.default_rng(3)
        det = rng.random((9, 70)) < 0.3
        obs = rng.random((9, 2)) < 0.5
        shard = PackedShard.from_bool(det, obs)
        assert shard.shots == 9
        assert shard.num_detectors == 70 and shard.num_observables == 2
        assert shard.det_words.dtype == np.uint64
        assert np.array_equal(shard.detectors, det)
        assert np.array_equal(shard.observables, obs)

    def test_observable_bits_reads_packed_words(self):
        rng = np.random.default_rng(4)
        obs = rng.random((50, 3)) < 0.5
        shard = PackedShard.from_bool(np.zeros((50, 5), dtype=bool), obs)
        for index in range(3):
            assert np.array_equal(shard.observable_bits(index), obs[:, index])
        with pytest.raises(ValueError):
            shard.observable_bits(3)

    def test_from_bool_rejects_shot_mismatch(self):
        with pytest.raises(ValueError):
            PackedShard.from_bool(
                np.zeros((3, 2), dtype=bool), np.zeros((2, 1), dtype=bool)
            )

    def test_sample_packed_matches_boolean_sample(self):
        dem = DetectorErrorModel(3, 1)
        dem.errors.append(DemError((0,), (0,), 0.2))
        dem.errors.append(DemError((0, 1), (), 0.1))
        sampler = DemSampler(dem)
        shard = sampler.sample_packed(300, seed=9)
        sample = sampler.sample(300, seed=9)
        assert np.array_equal(shard.detectors, sample.detectors)
        assert np.array_equal(shard.observables, sample.observables)


class TestDemSampler:
    def _simple_dem(self):
        dem = DetectorErrorModel(3, 1)
        dem.errors.append(DemError((0,), (0,), 0.2))
        dem.errors.append(DemError((0, 1), (), 0.1))
        dem.errors.append(DemError((2,), (), 0.05))
        return dem

    def test_same_seed_is_bit_identical(self):
        sampler = DemSampler(self._simple_dem())
        a = sampler.sample(500, seed=7)
        b = sampler.sample(500, seed=7)
        assert np.array_equal(a.detectors, b.detectors)
        assert np.array_equal(a.observables, b.observables)
        c = sampler.sample(500, seed=8)
        assert not np.array_equal(a.detectors, c.detectors)

    def test_seed_sequence_stream_matches_int_entropy(self):
        sampler = DemSampler(self._simple_dem())
        a = sampler.sample(200, seed=np.random.SeedSequence(42))
        b = sampler.sample(200, seed=np.random.SeedSequence(42))
        assert np.array_equal(a.detectors, b.detectors)

    def test_xor_accumulation(self):
        # A certain pair of mechanisms sharing detector 0 must cancel.
        dem = DetectorErrorModel(2, 1)
        dem.errors.append(DemError((0,), (0,), 1.0))
        dem.errors.append(DemError((0, 1), (), 1.0))
        sample = DemSampler(dem).sample(64, seed=0)
        assert not sample.detectors[:, 0].any()  # fired twice: cancelled
        assert sample.detectors[:, 1].all()
        assert sample.observables[:, 0].all()

    def test_empty_model(self):
        dem = DetectorErrorModel(4, 1)
        sample = DemSampler(dem).sample(10, seed=0)
        assert sample.detectors.shape == (10, 4)
        assert not sample.detectors.any()
        assert not sample.observables.any()

    def test_rejects_negative_shots(self):
        with pytest.raises(ValueError):
            DemSampler(self._simple_dem()).sample(-1)

    def test_zero_shots_returns_empty(self):
        # The scheduler's last adaptive tranche can round to zero
        # shots; that must yield empty arrays, not an error.
        sampler = DemSampler(self._simple_dem())
        shard = sampler.sample_packed(0)
        assert shard.shots == 0
        assert shard.det_words.shape == (0, sampler.det_words.shape[1])
        assert shard.detectors.shape == (0, 3)
        sample = sampler.sample(0)
        assert sample.detectors.shape == (0, 3)
        assert sample.observables.shape == (0, 1)

    def test_hyperedge_mechanisms_fire_atomically(self):
        # from_circuit must sample the exact (undecomposed) DEM: a
        # mechanism's detectors flip together or not at all.  A split
        # model would fire the halves independently.
        dem = DetectorErrorModel(4, 0)
        dem.errors.append(DemError((0, 1, 2, 3), (), 0.3))
        sample = DemSampler(dem).sample(2000, seed=1)
        fired = sample.detectors[:, 0]
        assert np.array_equal(sample.detectors, np.outer(fired, np.ones(4, bool)))
        assert 0.2 < fired.mean() < 0.4

    def test_from_circuit_uses_exact_dem(self):
        circ = ideal_memory_circuit(
            RotatedSurfaceCode(3), rounds=2, noise=UniformNoise(0.01)
        )
        exact, graphlike = circuit_to_dems(circ)
        sampler = DemSampler.from_circuit(circ)
        assert sampler.num_errors == exact.num_errors
        # The surface code's two-qubit channels produce hyperedges, so
        # the two models genuinely differ.
        assert exact.num_errors != graphlike.num_errors

    def test_high_probability_mechanisms_converge(self):
        # p near 1 stresses the distinct-placement collision loop (and
        # p == 1 must bypass it entirely via the full-shard XOR).
        dem = DetectorErrorModel(2, 0)
        dem.errors.append(DemError((0,), (), 0.9))
        dem.errors.append(DemError((1,), (), 1.0))
        sample = DemSampler(dem).sample(400, seed=2)
        assert 0.8 < sample.detectors[:, 0].mean() < 0.97
        assert sample.detectors[:, 1].all()

    def test_large_shard_samples_every_shot_range(self):
        sampler = DemSampler(self._simple_dem())
        shots = 8192 + 33
        sample = sampler.sample(shots, seed=3)
        assert sample.detectors.shape[0] == shots
        # The tail must actually be sampled, not left at zero.
        assert sample.detectors[8192:].any()


class TestStatisticalEquivalence:
    """The fast path must agree with the frame oracle on marginals.

    DEM-direct sampling treats mechanisms as independent Bernoulli
    sources (the standard O(p^2) DEM approximation), so per-detector
    and per-observable marginals agree to first order; each comparison
    runs at a few joint standard errors of tolerance.
    """

    SHOTS = 30000

    def _compare(self, circ, seed=11, sigmas=5.0, slack=0.0):
        frame = FrameSimulator(circ, seed=seed).sample(self.SHOTS)
        sampler = DemSampler.from_circuit(circ)  # exact (undecomposed) DEM
        dem = sampler.sample(self.SHOTS, seed=seed + 1)
        for attr in ("detectors", "observables"):
            a = getattr(frame, attr).mean(axis=0)
            b = getattr(dem, attr).mean(axis=0)
            p = (a + b) / 2.0
            stderr = np.sqrt(np.maximum(p * (1.0 - p), 1e-12) * 2.0 / self.SHOTS)
            assert np.all(np.abs(a - b) <= sigmas * stderr + slack), (
                attr, np.abs(a - b).max(), stderr.max(),
            )

    def test_d3_surface_memory_marginals(self):
        circ = ideal_memory_circuit(
            RotatedSurfaceCode(3), rounds=3, noise=UniformNoise(0.004)
        )
        # O(p^2) mechanism-independence bias on top of sampling noise.
        self._compare(circ, slack=5 * 0.004 ** 2)

    def test_repetition_memory_marginals(self):
        circ = ideal_memory_circuit(
            RepetitionCode(3), rounds=3, noise=UniformNoise(0.01)
        )
        self._compare(circ, slack=5 * 0.01 ** 2)

    def test_logical_rates_agree_after_decoding(self):
        from repro.decoders import DetectorGraph, MwpmDecoder
        from repro.sim import circuit_to_dems

        circ = ideal_memory_circuit(
            RotatedSurfaceCode(3), rounds=3, noise=UniformNoise(0.004)
        )
        # Decode on the graphlike model, sample from the exact one —
        # the same split the engine's CompilationCache maintains.
        exact, graphlike = circuit_to_dems(circ)
        decoder = MwpmDecoder(DetectorGraph.from_dem(graphlike))
        frame = FrameSimulator(circ, seed=5).sample(self.SHOTS)
        fast = DemSampler(exact).sample(self.SHOTS, seed=6)
        p_frame = decoder.logical_failures(
            frame.detectors, frame.observables
        ).mean()
        p_fast = decoder.logical_failures(fast.detectors, fast.observables).mean()
        p = (p_frame + p_fast) / 2.0
        stderr = np.sqrt(max(p * (1 - p), 1e-12) * 2.0 / self.SHOTS)
        assert abs(p_frame - p_fast) <= 5 * stderr + 5 * 0.004 ** 2
