"""Exporter tests: compiled schedule -> noisy stabilizer circuit."""

import numpy as np
import pytest

from repro.codes import RepetitionCode, RotatedSurfaceCode, UnrotatedSurfaceCode
from repro.core import compile_memory_experiment, fold_probability, program_to_circuit
from repro.noise import NoiseParameters
from repro.sim import FrameSimulator, TableauSimulator

NOISE = NoiseParameters()

CONFIGS = [
    (RepetitionCode(3), 2, "linear"),
    (RepetitionCode(4), 3, "linear"),
    (RotatedSurfaceCode(2), 2, "grid"),
    (RotatedSurfaceCode(3), 2, "grid"),
    (RotatedSurfaceCode(3), 5, "grid"),
    (RotatedSurfaceCode(2), 2, "switch"),
    (UnrotatedSurfaceCode(2), 3, "grid"),
]


def _export(code, cap, topo, rounds=2, basis="Z", noise=NOISE):
    program = compile_memory_experiment(
        code, trap_capacity=cap, topology=topo, rounds=rounds, basis=basis
    )
    return program, program_to_circuit(program, code, noise, basis=basis)


class TestCorrectness:
    @pytest.mark.parametrize("code,cap,topo", CONFIGS, ids=lambda v: str(v))
    def test_noiseless_determinism(self, code, cap, topo):
        """The gold test: compiled circuits measure what they claim."""
        _, export = _export(code, cap, topo)
        clean = export.circuit.without_noise()
        rec = np.array(TableauSimulator(clean.num_qubits, seed=5).run(clean))
        for group in clean.detector_records():
            assert rec[group].sum() % 2 == 0
        assert rec[clean.observable_records()[0]].sum() % 2 == 0

    @pytest.mark.parametrize("basis", ["Z", "X"])
    def test_both_bases_deterministic(self, basis):
        _, export = _export(RotatedSurfaceCode(3), 2, "grid", basis=basis)
        clean = export.circuit.without_noise()
        rec = np.array(TableauSimulator(clean.num_qubits, seed=2).run(clean))
        for group in clean.detector_records():
            assert rec[group].sum() % 2 == 0

    def test_measurement_count(self):
        code = RotatedSurfaceCode(3)
        rounds = 3
        _, export = _export(code, 2, "grid", rounds=rounds)
        n_anc = len(code.ancilla_qubits)
        n_data = len(code.data_qubits)
        assert export.circuit.num_measurements == rounds * n_anc + n_data

    def test_meas_index_covers_all_rounds(self):
        code = RepetitionCode(3)
        rounds = 3
        _, export = _export(code, 2, "linear", rounds=rounds)
        for check in code.checks:
            for r in range(rounds):
                assert (check.ancilla, r) in export.meas_index
        for q in code.data_qubits:
            assert (q.index, -1) in export.meas_index

    def test_detector_count_matches_spec(self):
        code = RotatedSurfaceCode(3)
        rounds = 2
        _, export = _export(code, 2, "grid", rounds=rounds)
        n_z = len(code.checks_of_basis("Z"))
        n_all = len(code.checks)
        expected = n_z + (rounds - 1) * n_all + n_z
        assert export.circuit.num_detectors == expected


class TestNoiseAnnotations:
    def test_every_cx_gets_depolarizing(self):
        _, export = _export(RepetitionCode(3), 2, "linear")
        instructions = export.circuit.instructions
        for i, inst in enumerate(instructions):
            if inst.name == "CX":
                following = [x.name for x in instructions[i + 1:i + 3]]
                assert "DEPOLARIZE2" in following

    def test_measure_preceded_by_flip(self):
        _, export = _export(RepetitionCode(3), 2, "linear")
        instructions = export.circuit.instructions
        for i, inst in enumerate(instructions):
            if inst.name == "M":
                assert instructions[i - 1].name == "X_ERROR"

    def test_idle_gaps_dephase(self):
        _, export = _export(RotatedSurfaceCode(2), 2, "grid")
        assert export.circuit.count("Z_ERROR") > 0

    def test_heating_tracked(self):
        _, export = _export(RotatedSurfaceCode(2), 2, "grid")
        assert export.max_nbar > 0

    def test_swap_noise_without_swap_gate(self):
        """Gate swaps are identity on code qubits; only noise remains."""
        program = compile_memory_experiment(
            RotatedSurfaceCode(3), trap_capacity=2, topology="grid", rounds=2
        )
        export = program_to_circuit(program, RotatedSurfaceCode(3), NOISE)
        assert export.circuit.count("SWAP") == 0

    def test_improvement_lowers_noise(self):
        code = RepetitionCode(3)
        program = compile_memory_experiment(code, 2, "linear", rounds=2)
        base = program_to_circuit(program, code, NOISE)
        better = program_to_circuit(program, code, NOISE.improved(10))
        base_p = [
            i.args[0] for i in base.circuit.instructions if i.name == "DEPOLARIZE2"
        ]
        better_p = [
            i.args[0]
            for i in better.circuit.instructions
            if i.name == "DEPOLARIZE2"
        ]
        assert all(b < a for a, b in zip(base_p, better_p))

    def test_sampling_yields_failures_at_1x(self):
        _, export = _export(RotatedSurfaceCode(2), 2, "grid", rounds=2)
        sample = FrameSimulator(export.circuit, seed=1).sample(500)
        assert sample.detectors.any()


class TestFoldProbability:
    def test_zero(self):
        assert fold_probability(0.0, 5) == 0.0

    def test_single(self):
        assert fold_probability(0.3, 1) == pytest.approx(0.3)

    def test_triple(self):
        p = 0.1
        expected = (1 - (1 - 2 * p) ** 3) / 2
        assert fold_probability(p, 3) == pytest.approx(expected)

    def test_saturates_at_half(self):
        assert fold_probability(0.5, 7) == pytest.approx(0.5)
