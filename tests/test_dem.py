"""Detector error model extraction tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import RepetitionCode, RotatedSurfaceCode, UniformNoise, ideal_memory_circuit
from repro.sim import (
    DemError,
    DetectorErrorModel,
    FrameSimulator,
    StabilizerCircuit,
    circuit_to_dem,
)


def _simple_circuit(p=0.1):
    """One qubit, one error location, two measurements -> one detector."""
    circ = StabilizerCircuit()
    circ.append("R", (0,))
    circ.append("M", (0,))
    circ.append("X_ERROR", (0,), (p,))
    circ.append("M", (0,))
    circ.append("DETECTOR", (-1, -2))
    return circ


class TestBasicExtraction:
    def test_single_mechanism(self):
        dem = circuit_to_dem(_simple_circuit(0.1))
        assert dem.num_errors == 1
        err = dem.errors[0]
        assert err.detectors == (0,)
        assert err.observables == ()
        assert err.probability == pytest.approx(0.1)

    def test_noiseless_circuit_gives_empty_model(self):
        circ = _simple_circuit(0.0)
        # p=0 channels produce no mechanisms once merged.
        dem = circuit_to_dem(circ)
        assert dem.num_errors == 0

    def test_z_error_before_z_measurement_invisible(self):
        circ = StabilizerCircuit()
        circ.append("R", (0,))
        circ.append("M", (0,))
        circ.append("Z_ERROR", (0,), (0.2,))
        circ.append("M", (0,))
        circ.append("DETECTOR", (-1, -2))
        dem = circuit_to_dem(circ)
        assert dem.num_errors == 0

    def test_observable_only_mechanism_kept(self):
        circ = StabilizerCircuit()
        circ.append("R", (0,))
        circ.append("X_ERROR", (0,), (0.05,))
        circ.append("M", (0,))
        circ.append("OBSERVABLE_INCLUDE", (-1,), (0,))
        dem = circuit_to_dem(circ)
        assert dem.num_errors == 1
        assert dem.errors[0].detectors == ()
        assert dem.errors[0].observables == (0,)

    def test_merging_combines_same_symptoms(self):
        circ = StabilizerCircuit()
        circ.append("R", (0,))
        circ.append("M", (0,))
        circ.append("X_ERROR", (0,), (0.1,))
        circ.append("X_ERROR", (0,), (0.1,))
        circ.append("M", (0,))
        circ.append("DETECTOR", (-1, -2))
        dem = circuit_to_dem(circ)
        assert dem.num_errors == 1
        # Two p=0.1 sources fold to 0.1*0.9 + 0.9*0.1 = 0.18.
        assert dem.errors[0].probability == pytest.approx(0.18)

    def test_depolarize2_produces_pair_mechanisms(self):
        circ = StabilizerCircuit()
        circ.append("R", (0, 1))
        circ.append("M", (0, 1))
        circ.append("DEPOLARIZE2", (0, 1), (0.15,))
        circ.append("M", (0, 1))
        circ.append("DETECTOR", (-2, -4))
        circ.append("DETECTOR", (-1, -3))
        dem = circuit_to_dem(circ)
        # Symptom classes: flip q0 only, q1 only, both: 3 entries.
        assert dem.num_errors == 3
        by_dets = {e.detectors: e.probability for e in dem.errors}
        # 4 of 15 components flip q0 only (XI, YI, XZ, YZ); independent
        # sources fold as p = (1 - (1 - 2 p0)^4) / 2 with p0 = p/15.
        p0 = 0.15 / 15
        folded = (1 - (1 - 2 * p0) ** 4) / 2
        assert by_dets[(0,)] == pytest.approx(folded, rel=1e-6)
        assert by_dets[(1,)] == pytest.approx(folded, rel=1e-6)
        assert by_dets[(0, 1)] == pytest.approx(folded, rel=1e-6)


class TestMergedModel:
    def test_merged_is_idempotent(self):
        dem = circuit_to_dem(_simple_circuit(0.2))
        merged = dem.merged()
        assert merged.merged().errors == merged.errors

    def test_merged_drops_zero_probability(self):
        dem = DetectorErrorModel(2, 1, [DemError((0,), (), 0.0)])
        assert dem.merged().num_errors == 0


class TestAgainstSampling:
    """DEM probabilities must reproduce sampled detector statistics."""

    @given(st.floats(0.01, 0.3))
    @settings(max_examples=10, deadline=None)
    def test_single_detector_rate_matches(self, p):
        circ = _simple_circuit(p)
        dem = circuit_to_dem(circ)
        sample = FrameSimulator(circ, seed=3).sample(30000)
        rate = sample.detectors[:, 0].mean()
        assert abs(rate - p) < 0.02

    def test_repetition_code_detector_rates(self):
        code = RepetitionCode(3)
        circ = ideal_memory_circuit(code, rounds=3, noise=UniformNoise(0.01))
        dem = circuit_to_dem(circ)
        # Predicted marginal detector rates from independent mechanisms.
        num_det = circ.num_detectors
        predicted = np.zeros(num_det)
        for err in dem.errors:
            for det in err.detectors:
                predicted[det] = (
                    predicted[det] * (1 - err.probability)
                    + err.probability * (1 - predicted[det])
                )
        sample = FrameSimulator(circ, seed=9).sample(40000)
        measured = sample.detectors.mean(axis=0)
        assert np.all(np.abs(measured - predicted) < 0.01)

    def test_surface_code_dem_is_graphlike_after_decomposition(self):
        code = RotatedSurfaceCode(3)
        circ = ideal_memory_circuit(code, rounds=3, noise=UniformNoise(0.005))
        dem = circuit_to_dem(circ, decompose=True)
        assert dem.num_errors > 100
        assert all(err.is_graphlike() for err in dem.errors)

    def test_surface_code_observable_flips_predicted(self):
        """Mechanisms flipping the observable with no detectors are absent
        in a proper memory circuit (every single error is detectable)."""
        code = RotatedSurfaceCode(3)
        circ = ideal_memory_circuit(code, rounds=3, noise=UniformNoise(0.005))
        dem = circuit_to_dem(circ)
        silent_logical = [
            e for e in dem.errors if not e.detectors and e.observables
        ]
        assert silent_logical == []
