"""Tests for the stabilizer circuit IR."""

import pytest

from repro.sim import StabilizerCircuit


class TestAppendValidation:
    def test_unknown_instruction_rejected(self):
        circ = StabilizerCircuit()
        with pytest.raises(ValueError):
            circ.append("T", (0,))

    def test_two_qubit_gate_needs_pairs(self):
        circ = StabilizerCircuit()
        with pytest.raises(ValueError):
            circ.append("CX", (0, 1, 2))

    def test_noise_needs_probability(self):
        circ = StabilizerCircuit()
        with pytest.raises(ValueError):
            circ.append("X_ERROR", (0,))
        with pytest.raises(ValueError):
            circ.append("X_ERROR", (0,), (1.5,))

    def test_pauli_channel_takes_three_args(self):
        circ = StabilizerCircuit()
        circ.append("PAULI_CHANNEL_1", (0,), (0.1, 0.0, 0.2))
        with pytest.raises(ValueError):
            circ.append("PAULI_CHANNEL_1", (0,), (0.1,))

    def test_detector_offsets_must_be_negative(self):
        circ = StabilizerCircuit()
        circ.append("M", (0,))
        with pytest.raises(ValueError):
            circ.append("DETECTOR", (0,))

    def test_detector_cannot_reach_past_record(self):
        circ = StabilizerCircuit()
        circ.append("M", (0,))
        with pytest.raises(ValueError):
            circ.append("DETECTOR", (-2,))

    def test_qubit_indices_nonnegative(self):
        circ = StabilizerCircuit()
        with pytest.raises(ValueError):
            circ.append("H", (-1,))


class TestBookkeeping:
    def build(self):
        circ = StabilizerCircuit()
        circ.append("R", (0, 1, 2))
        circ.append("H", (0,))
        circ.append("CX", (0, 1))
        circ.append("DEPOLARIZE2", (0, 1), (0.01,))
        circ.append("M", (0, 1))
        circ.append("DETECTOR", (-2,))
        circ.append("DETECTOR", (-1, -2))
        circ.append("M", (2,))
        circ.append("OBSERVABLE_INCLUDE", (-1,), (0,))
        return circ

    def test_counts(self):
        circ = self.build()
        assert circ.num_qubits == 3
        assert circ.num_measurements == 3
        assert circ.num_detectors == 2
        assert circ.num_observables == 1

    def test_detector_records_absolute(self):
        circ = self.build()
        assert circ.detector_records() == [[0], [1, 0]]

    def test_observable_records(self):
        circ = self.build()
        assert circ.observable_records() == {0: [2]}

    def test_without_noise_strips_channels(self):
        circ = self.build()
        clean = circ.without_noise()
        assert clean.count("DEPOLARIZE2") == 0
        assert clean.num_measurements == circ.num_measurements
        assert clean.num_detectors == circ.num_detectors

    def test_extend_and_copy_preserve_equality(self):
        circ = self.build()
        dup = circ.copy()
        assert dup == circ
        assert dup is not circ

    def test_str_renders_rec_targets(self):
        circ = StabilizerCircuit()
        circ.append("M", (4,))
        circ.append("DETECTOR", (-1,))
        assert "rec[-1]" in str(circ)
        assert "M 4" in str(circ)
