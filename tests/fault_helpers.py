"""Shared fault-injection fixtures for the engine test suites.

Used by ``test_fault_tolerance.py`` (the chaos harness) and
``test_engine.py``:

- :class:`FlakyBackend` — an in-process backend with virtual workers
  and deterministic fault injection (drop worker K after N completed
  shards, fail shard with seq N), for scheduler crash-recovery tests
  that need no subprocesses;
- :class:`CountingSerialBackend` — records every submitted
  ``(job_key, shard_index)``, for asserting checkpointed shards are
  not re-executed on resume;
- :func:`spawn_worker` / :func:`spawn_workers` — launch real
  ``repro-worker`` subprocesses on free ports;
- :func:`run_sweep_driver` / :func:`wait_for_shard_lines` — drive a
  sweep in a subprocess and watch its result store, so tests can
  SIGKILL the driver between shards;
- :func:`run_with_timeout` — a watchdog for "raises, never hangs"
  regressions.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time

from repro.engine import CompilationCache, NoLiveWorkersError, SerialBackend
from repro.engine.runner import Shard, sample_shard
from repro.engine.scheduler import ShardOutcome

SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "src")
)


class FlakyBackend:
    """In-process pool backend with deterministic fault injection.

    Executes shards exactly like :class:`SerialBackend`, but spreads
    them over ``workers`` virtual workers and supports two injected
    faults:

    - ``drop_worker=k, drop_after=n`` — once ``n`` shards have
      completed (anywhere), worker ``k`` "dies": its queued shards are
      disowned into the lost list (``take_lost``), and nothing is ever
      routed to it again.  ``drop_worker="all"`` kills every worker.
    - ``fail_seq=n`` — the shard with scheduler sequence number ``n``
      raises instead of sampling (a genuine shard *error*, which must
      fail the sweep — unlike worker death, which must not).

    Execution order is deterministic (FIFO by submission), so
    recovered sweeps can be compared bit-for-bit against serial runs.
    """

    name = "flaky"

    def __init__(
        self,
        workers: int = 2,
        queue_depth: int = 2,
        drop_worker=None,
        drop_after: int = 0,
        fail_seq: int | None = None,
    ):
        self.workers = workers
        self.queue_depth = queue_depth
        self.drop_worker = drop_worker
        self.drop_after = drop_after
        self.fail_seq = fail_seq
        self._queues: list[list] = [[] for _ in range(workers)]
        self._dead: set[int] = set()
        self._lost: list[int] = []
        self._completed = 0
        self.executed: list[tuple[str, int]] = []  # (job_key, shard_index)

    # ------------------------------------------------------------------
    def _live(self) -> list[int]:
        return [w for w in range(self.workers) if w not in self._dead]

    @property
    def capacity(self) -> int:
        return max(1, len(self._live())) * self.queue_depth

    def submit(self, task, compiled, cache: CompilationCache) -> None:
        live = self._live()
        if not live:
            raise NoLiveWorkersError(
                "flaky backend: every virtual worker is dead"
            )
        worker = min(live, key=lambda w: len(self._queues[w]))
        self._queues[worker].append((task, compiled, cache))

    def kill_worker(self, worker) -> None:
        """Drop a virtual worker; its queued shards become lost."""
        victims = (
            list(self._live()) if worker == "all" else [worker]
        )
        for victim in victims:
            if victim in self._dead:
                continue
            self._dead.add(victim)
            for task, _compiled, _cache in self._queues[victim]:
                self._lost.append(task.seq)
            self._queues[victim] = []

    def _maybe_drop(self) -> None:
        if self.drop_worker is not None and self._completed >= self.drop_after:
            drop, self.drop_worker = self.drop_worker, None
            self.kill_worker(drop)

    def take_lost(self) -> list[int]:
        lost, self._lost = self._lost, []
        return lost

    def poll(self) -> list[ShardOutcome]:
        return []

    def wait(self) -> list[ShardOutcome]:
        self._maybe_drop()
        if self._lost:
            return []  # scheduler reaps and resubmits
        live = [w for w in self._live() if self._queues[w]]
        if not live:
            if not self._live():
                raise NoLiveWorkersError(
                    "flaky backend: every virtual worker is dead"
                )
            raise RuntimeError("flaky backend: wait() with nothing queued")
        # Globally-oldest task first: deterministic FIFO execution.
        worker = min(live, key=lambda w: self._queues[w][0][0].seq)
        task, compiled, cache = self._queues[worker].pop(0)
        if self.fail_seq is not None and task.seq == self.fail_seq:
            raise RuntimeError(f"injected failure for shard seq {task.seq}")
        decoder = cache.decoder(compiled, task.decoder)
        sampler = (
            cache.dem_sampler(compiled) if task.sampler == "dem" else None
        )
        failures, memo, phases = sample_shard(
            compiled.circuit, decoder,
            Shard(task.shard_index, task.shots, task.seed),
            sampler=sampler,
        )
        self.executed.append((task.job_key, task.shard_index))
        self._completed += 1
        self._maybe_drop()
        return [ShardOutcome(task.seq, task.job_key, task.shots, failures,
                             0.0, *memo, phases=phases)]

    def abandon_pending(self) -> None:
        self._queues = [[] for _ in range(self.workers)]
        self._lost = []

    def close(self) -> None:
        pass

    def terminate(self) -> None:
        pass


class CountingSerialBackend(SerialBackend):
    """Serial backend that records every submitted (job_key, shard_index)."""

    def __init__(self):
        super().__init__()
        self.executed: list[tuple[str, int]] = []

    def submit(self, task, compiled, cache) -> None:
        self.executed.append((task.job_key, task.shard_index))
        super().submit(task, compiled, cache)


class SweepAborted(Exception):
    """Raised by :class:`AbortingSerialBackend` to simulate a crash."""


class AbortingSerialBackend(CountingSerialBackend):
    """Dies (raises :class:`SweepAborted`) after N submitted shards.

    The in-process stand-in for a driver killed mid-sweep: the shards
    submitted before the abort are executed and (with a store)
    checkpointed; everything after is lost.
    """

    def __init__(self, abort_after: int):
        super().__init__()
        self.abort_after = abort_after

    def submit(self, task, compiled, cache) -> None:
        if len(self.executed) >= self.abort_after:
            raise SweepAborted(
                f"injected abort after {self.abort_after} shard(s)"
            )
        super().submit(task, compiled, cache)


# ----------------------------------------------------------------------
# Subprocess helpers (real workers, real drivers, real SIGKILL)
# ----------------------------------------------------------------------
def subprocess_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env


def spawn_worker(timeout: float = 30.0, extra_args: tuple = (),
                 listen: str = "127.0.0.1:0"):
    """Start one ``repro-worker`` on a free port.

    Returns ``(proc, "host:port")``; the worker announces its bound
    address on stdout, which is how port 0 is resolved.  Elastic-pool
    tests pass an explicit ``listen`` address so a replacement worker
    can reclaim a dead one's roster slot.
    """
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.engine.remote",
         "--listen", listen, *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=subprocess_env(),
        text=True,
    )
    line = proc.stdout.readline().strip()
    prefix = "repro-worker listening on "
    if not line.startswith(prefix):
        proc.kill()
        proc.wait()
        raise RuntimeError(f"worker failed to start: {line!r}")
    return proc, line[len(prefix):]


def spawn_workers(n: int):
    """``n`` workers; returns ``(procs, addrs)``."""
    procs, addrs = [], []
    for _ in range(n):
        proc, addr = spawn_worker()
        procs.append(proc)
        addrs.append(addr)
    return procs, addrs


def reap_workers(procs, timeout: float = 15.0) -> None:
    for proc in procs:
        if proc.poll() is None:
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


def run_sweep_driver(script: str):
    """Run a sweep-driver script in a subprocess (for SIGKILL tests).

    The script should print ``READY`` once imports are done so the
    caller can time its observations.
    """
    proc = subprocess.Popen(
        [sys.executable, "-c", script],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=subprocess_env(),
        text=True,
    )
    assert proc.stdout.readline().strip() == "READY"
    return proc


def count_shard_lines(path: str) -> int:
    """Shard-checkpoint lines currently in a result store file."""
    try:
        with open(path) as fh:
            return sum(1 for line in fh if '"shard"' in line)
    except OSError:
        return 0


def wait_for_shard_lines(path: str, n: int, timeout: float = 60.0) -> bool:
    """Poll ``path`` until it holds >= n shard-checkpoint lines."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if count_shard_lines(path) >= n:
            return True
        time.sleep(0.005)
    return False


def run_with_timeout(fn, seconds: float):
    """Watchdog: run ``fn`` in a thread; fail the test if it hangs.

    Returns ``{"value": ...}`` or ``{"error": exc}``.
    """
    result: dict = {}

    def target():
        try:
            result["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - relayed to the test
            result["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(seconds)
    if thread.is_alive():
        raise AssertionError(
            f"operation still running after {seconds}s — it should have "
            "raised promptly instead of hanging"
        )
    return result
