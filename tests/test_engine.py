"""Execution-engine tests: sweep expansion, determinism across
backends and worker counts, compilation caching, and JSONL resume."""

import json
import os

import numpy as np
import pytest

from repro.codes import RepetitionCode, UniformNoise, ideal_memory_circuit
from repro.engine import (
    CompilationCache,
    JobResult,
    MultiprocessBackend,
    ResultStore,
    Runner,
    SweepJob,
    SweepSpec,
    plan_shards,
    run_sweep,
)
from repro.ler import estimate_sweep
from repro.sim import FrameSimulator

SHOTS = 600
SHARD = 128


def small_spec(**overrides):
    base = dict(
        distances=(2, 3),
        capacities=(2,),
        gate_improvements=(1.0,),
        shots=SHOTS,
        rounds=2,
        master_seed=7,
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestSweepSpec:
    def test_expansion_is_deterministic_and_ordered(self):
        spec = small_spec(distances=(3, 2), decoders=("mwpm", "union_find"))
        jobs = spec.expand()
        assert len(jobs) == spec.num_jobs == 4
        assert [j.distance for j in jobs] == [3, 3, 2, 2]
        assert [j.decoder for j in jobs] == ["mwpm", "union_find"] * 2
        assert jobs == spec.expand()  # stable across calls

    def test_job_key_is_content_stable(self):
        job = small_spec().expand()[0]
        clone = SweepJob.from_dict(job.to_dict())
        assert clone == job
        assert clone.key == job.key
        other = small_spec(master_seed=8).expand()[0]
        assert other.key == job.key  # master seed is not job content

    def test_jobs_sharing_circuit_params(self):
        spec = small_spec(distances=(2,), decoders=("mwpm", "union_find"))
        a, b = spec.expand()
        assert a.circuit_params == b.circuit_params
        assert a.key != b.key

    def test_rounds_default_to_distance(self):
        spec = small_spec(rounds=None)
        assert [j.rounds for j in spec.expand()] == [2, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            small_spec(distances=())
        with pytest.raises(ValueError):
            small_spec(topologies=("torus",))
        with pytest.raises(ValueError):
            small_spec(decoders=("bp",))
        with pytest.raises(ValueError):
            small_spec(code="color")
        with pytest.raises(ValueError):
            small_spec(shots=-1)
        with pytest.raises(ValueError):
            small_spec(rounds=0)


class TestShardPlanning:
    def test_layout_covers_shots_exactly(self):
        shards = plan_shards(1000, 300, master_seed=1, job_key="k")
        assert [s.shots for s in shards] == [300, 300, 300, 100]
        assert [s.index for s in shards] == [0, 1, 2, 3]

    def test_streams_are_deterministic_and_distinct(self):
        a = plan_shards(500, 200, master_seed=1, job_key="k")
        b = plan_shards(500, 200, master_seed=1, job_key="k")
        states = [s.seed.generate_state(2).tolist() for s in a]
        assert states == [s.seed.generate_state(2).tolist() for s in b]
        assert len({tuple(st) for st in states}) == len(states)

    def test_streams_depend_on_job_and_master_seed(self):
        base = plan_shards(200, 200, 1, "k")[0].seed.generate_state(2).tolist()
        other_job = plan_shards(200, 200, 1, "k2")[0].seed.generate_state(2).tolist()
        other_seed = plan_shards(200, 200, 2, "k")[0].seed.generate_state(2).tolist()
        assert base != other_job
        assert base != other_seed

    def test_empty_and_invalid(self):
        assert plan_shards(0, 100, 1, "k") == []
        with pytest.raises(ValueError):
            plan_shards(100, 0, 1, "k")


class TestSimulatorDeterminism:
    def test_same_seed_identical_sample_result(self):
        circ = ideal_memory_circuit(
            RepetitionCode(3), rounds=3, noise=UniformNoise(0.02)
        )
        a = FrameSimulator(circ, seed=11).sample(400)
        b = FrameSimulator(circ, seed=11).sample(400)
        assert np.array_equal(a.measurements, b.measurements)
        assert np.array_equal(a.detectors, b.detectors)
        assert np.array_equal(a.observables, b.observables)
        c = FrameSimulator(circ, seed=12).sample(400)
        assert not np.array_equal(a.measurements, c.measurements)

    def test_seed_sequence_stream_matches_itself(self):
        circ = ideal_memory_circuit(
            RepetitionCode(3), rounds=2, noise=UniformNoise(0.05)
        )
        ss = np.random.SeedSequence(42)
        a = FrameSimulator(circ, seed=np.random.SeedSequence(42)).sample(100)
        b = FrameSimulator(circ, seed=ss).sample(100)
        assert np.array_equal(a.detectors, b.detectors)


class TestBackendDeterminism:
    def test_serial_equals_multiprocess(self):
        # The acceptance grid: 2 distances x 3 noise points.
        spec = small_spec(gate_improvements=(1.0, 3.0, 5.0))
        cache = CompilationCache()
        serial = run_sweep(spec, cache=cache, shard_shots=SHARD)
        sharded = run_sweep(spec, workers=2, shard_shots=SHARD)
        assert len(serial) == 6
        assert [r.failures for r in serial] == [r.failures for r in sharded]
        assert [r.key for r in serial] == [r.key for r in sharded]
        # Each of the six unique circuits was compiled exactly once.
        assert cache.misses == 6 and cache.hits == 0

    def test_worker_count_does_not_change_failures(self):
        spec = small_spec(distances=(2,))
        totals = []
        for workers in (2, 3):
            with MultiprocessBackend(max_workers=workers) as backend:
                results = run_sweep(spec, backend=backend, shard_shots=SHARD)
            totals.append([r.failures for r in results])
        assert totals[0] == totals[1]

    def test_rerun_is_bit_identical(self):
        spec = small_spec(distances=(2,))
        first = run_sweep(spec, shard_shots=SHARD)
        second = run_sweep(spec, shard_shots=SHARD)
        assert [r.failures for r in first] == [r.failures for r in second]


class TestCompilationCache:
    def test_each_unique_circuit_compiled_exactly_once(self):
        # 2 distances x 2 decoders = 4 jobs but only 2 unique circuits.
        spec = small_spec(decoders=("mwpm", "union_find"))
        cache = CompilationCache()
        results = run_sweep(spec, cache=cache, shard_shots=SHARD)
        assert len(results) == 4
        assert cache.misses == 2
        assert cache.hits == 2
        assert cache.unique_circuits == 2

    def test_disk_cache_skips_dem_extraction(self, tmp_path):
        spec = small_spec(distances=(2,))
        first = CompilationCache(cache_dir=str(tmp_path))
        run_sweep(spec, cache=first, shard_shots=SHARD)
        assert first.misses == 1
        assert len(os.listdir(tmp_path)) == 1
        fresh = CompilationCache(cache_dir=str(tmp_path))
        results = run_sweep(spec, cache=fresh, shard_shots=SHARD)
        assert fresh.misses == 0
        assert fresh.disk_hits == 1
        assert results[0].failures is not None

    def test_disk_cache_preserves_failure_counts(self, tmp_path):
        spec = small_spec(distances=(2,))
        a = run_sweep(spec, cache=CompilationCache(str(tmp_path)), shard_shots=SHARD)
        b = run_sweep(spec, cache=CompilationCache(str(tmp_path)), shard_shots=SHARD)
        assert [r.failures for r in a] == [r.failures for r in b]

    def test_corrupt_disk_entry_recompiles(self, tmp_path):
        spec = small_spec(distances=(2,))
        run_sweep(spec, cache=CompilationCache(str(tmp_path)), shard_shots=SHARD)
        [entry] = os.listdir(tmp_path)
        (tmp_path / entry).write_text("{not json")
        cache = CompilationCache(str(tmp_path))
        run_sweep(spec, cache=cache, shard_shots=SHARD)
        assert cache.misses == 1
        assert cache.disk_hits == 0


class TestResultStoreResume:
    def test_resume_skips_completed_jobs(self, tmp_path):
        spec = small_spec()
        path = str(tmp_path / "results.jsonl")
        full = run_sweep(spec, results_path=path, shard_shots=SHARD)
        # Truncate to a partial store: keep the first job, corrupt tail.
        lines = open(path).read().splitlines()
        with open(path, "w") as fh:
            fh.write(lines[0] + "\n")
            fh.write('{"truncated')  # interrupted mid-write
        cache = CompilationCache()
        resumed = run_sweep(
            spec, results_path=path, cache=cache, shard_shots=SHARD
        )
        assert [r.failures for r in resumed] == [r.failures for r in full]
        assert resumed[0].resumed and not resumed[1].resumed
        # Only the incomplete job was compiled and sampled again.
        assert cache.misses == 1
        # Store is now complete: a third run does no work at all.
        cache2 = CompilationCache()
        third = run_sweep(spec, results_path=path, cache=cache2, shard_shots=SHARD)
        assert all(r.resumed for r in third)
        assert cache2.misses == 0

    def test_changed_run_config_is_not_resumed(self, tmp_path):
        # Same job key, different master seed: the stored sample is a
        # different experiment and must be re-run, not silently reused.
        path = str(tmp_path / "r.jsonl")
        spec_a = small_spec(distances=(2,), master_seed=1)
        spec_b = small_spec(distances=(2,), master_seed=2)
        assert spec_a.expand()[0].key == spec_b.expand()[0].key
        [first] = run_sweep(spec_a, results_path=path, shard_shots=SHARD)
        [second] = run_sweep(spec_b, results_path=path, shard_shots=SHARD)
        assert not second.resumed
        assert first.failures != second.failures or first.run_config != second.run_config
        # Different shard layout also invalidates the stored sample...
        [third] = run_sweep(spec_b, results_path=path, shard_shots=SHARD // 2)
        assert not third.resumed
        # ...while a true re-run resumes: the newest record wins.
        [fourth] = run_sweep(spec_b, results_path=path, shard_shots=SHARD // 2)
        assert fourth.resumed
        assert fourth.failures == third.failures

    def test_store_round_trips_results(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        spec = small_spec(distances=(2,))
        [result] = run_sweep(spec, store=store, shard_shots=SHARD)
        loaded = store.load()[result.key]
        assert isinstance(loaded, JobResult)
        assert loaded.failures == result.failures
        assert loaded.job == result.job
        assert loaded.metrics == json.loads(json.dumps(result.metrics))
        assert loaded.per_round == result.per_round

    def test_compile_only_jobs(self, tmp_path):
        spec = small_spec(shots=0)
        results = run_sweep(spec, results_path=str(tmp_path / "r.jsonl"))
        assert all(r.failures is None and r.ler is None for r in results)
        assert all(r.metrics["round_time_us"] > 0 for r in results)
        resumed = run_sweep(spec, results_path=str(tmp_path / "r.jsonl"))
        assert all(r.resumed for r in resumed)
        # Sampling config cannot invalidate a compile-only result.
        other_seed = small_spec(shots=0, master_seed=99)
        still = run_sweep(other_seed, results_path=str(tmp_path / "r.jsonl"))
        assert all(r.resumed for r in still)


class TestEstimateSweep:
    def test_engine_backed_ler_api(self):
        spec = small_spec(distances=(2,))
        [result] = estimate_sweep(spec, shard_shots=SHARD)
        ler = result.ler
        assert ler.shots == SHOTS
        assert ler.rounds == 2
        assert 0.0 < ler.per_shot < 1.0
        [direct] = run_sweep(spec, shard_shots=SHARD)
        assert direct.failures == result.failures


class TestExplorerSweep:
    def test_records_match_evaluate_metrics(self):
        from repro.toolflow import DesignSpaceExplorer

        explorer = DesignSpaceExplorer()
        spec = small_spec(distances=(3,), shots=0)
        [record] = explorer.sweep(spec)
        reference = explorer.evaluate(3, capacity=2, rounds=2)
        assert record.round_time_us == reference.round_time_us
        assert record.electrodes == reference.electrodes
        assert record.num_traps == reference.num_traps
        assert record.extras["decoder"] == "mwpm"

    def test_code_mismatch_rejected(self):
        from repro.toolflow import DesignSpaceExplorer

        explorer = DesignSpaceExplorer(code_name="repetition")
        with pytest.raises(ValueError, match="disagrees"):
            explorer.sweep(small_spec(distances=(3,), shots=0))
