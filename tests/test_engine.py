"""Execution-engine tests: sweep expansion, determinism across
backends and worker counts, adaptive shot allocation, worker payload
priming, compilation caching, JSONL resume, worker crash recovery and
shard-level checkpointing (fault fixtures shared with
``test_fault_tolerance.py`` via ``fault_helpers``)."""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.codes import RepetitionCode, UniformNoise, ideal_memory_circuit
from repro.engine import (
    CompilationCache,
    JobResult,
    MultiprocessBackend,
    ResultStore,
    Runner,
    SweepJob,
    SweepSpec,
    plan_shards,
    run_sweep,
)
from repro.ler import estimate_sweep
from repro.sim import FrameSimulator

SHOTS = 600
SHARD = 128


def small_spec(**overrides):
    base = dict(
        distances=(2, 3),
        capacities=(2,),
        gate_improvements=(1.0,),
        shots=SHOTS,
        rounds=2,
        master_seed=7,
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestSweepSpec:
    def test_expansion_is_deterministic_and_ordered(self):
        spec = small_spec(distances=(3, 2), decoders=("mwpm", "union_find"))
        jobs = spec.expand()
        assert len(jobs) == spec.num_jobs == 4
        assert [j.distance for j in jobs] == [3, 3, 2, 2]
        assert [j.decoder for j in jobs] == ["mwpm", "union_find"] * 2
        assert jobs == spec.expand()  # stable across calls

    def test_job_key_is_content_stable(self):
        job = small_spec().expand()[0]
        clone = SweepJob.from_dict(job.to_dict())
        assert clone == job
        assert clone.key == job.key
        other = small_spec(master_seed=8).expand()[0]
        assert other.key == job.key  # master seed is not job content

    def test_jobs_sharing_circuit_params(self):
        spec = small_spec(distances=(2,), decoders=("mwpm", "union_find"))
        a, b = spec.expand()
        assert a.circuit_params == b.circuit_params
        assert a.key != b.key

    def test_rounds_default_to_distance(self):
        spec = small_spec(rounds=None)
        assert [j.rounds for j in spec.expand()] == [2, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            small_spec(distances=())
        with pytest.raises(ValueError):
            small_spec(topologies=("torus",))
        with pytest.raises(ValueError):
            small_spec(decoders=("bp",))
        with pytest.raises(ValueError):
            small_spec(code="color")
        with pytest.raises(ValueError):
            small_spec(shots=-1)
        with pytest.raises(ValueError):
            small_spec(rounds=0)


class TestShardPlanning:
    def test_layout_covers_shots_exactly(self):
        shards = plan_shards(1000, 300, master_seed=1, job_key="k")
        assert [s.shots for s in shards] == [300, 300, 300, 100]
        assert [s.index for s in shards] == [0, 1, 2, 3]

    def test_streams_are_deterministic_and_distinct(self):
        a = plan_shards(500, 200, master_seed=1, job_key="k")
        b = plan_shards(500, 200, master_seed=1, job_key="k")
        states = [s.seed.generate_state(2).tolist() for s in a]
        assert states == [s.seed.generate_state(2).tolist() for s in b]
        assert len({tuple(st) for st in states}) == len(states)

    def test_streams_depend_on_job_and_master_seed(self):
        base = plan_shards(200, 200, 1, "k")[0].seed.generate_state(2).tolist()
        other_job = plan_shards(200, 200, 1, "k2")[0].seed.generate_state(2).tolist()
        other_seed = plan_shards(200, 200, 2, "k")[0].seed.generate_state(2).tolist()
        assert base != other_job
        assert base != other_seed

    def test_empty_and_invalid(self):
        assert plan_shards(0, 100, 1, "k") == []
        with pytest.raises(ValueError):
            plan_shards(100, 0, 1, "k")


class TestSimulatorDeterminism:
    def test_same_seed_identical_sample_result(self):
        circ = ideal_memory_circuit(
            RepetitionCode(3), rounds=3, noise=UniformNoise(0.02)
        )
        a = FrameSimulator(circ, seed=11).sample(400)
        b = FrameSimulator(circ, seed=11).sample(400)
        assert np.array_equal(a.measurements, b.measurements)
        assert np.array_equal(a.detectors, b.detectors)
        assert np.array_equal(a.observables, b.observables)
        c = FrameSimulator(circ, seed=12).sample(400)
        assert not np.array_equal(a.measurements, c.measurements)

    def test_seed_sequence_stream_matches_itself(self):
        circ = ideal_memory_circuit(
            RepetitionCode(3), rounds=2, noise=UniformNoise(0.05)
        )
        ss = np.random.SeedSequence(42)
        a = FrameSimulator(circ, seed=np.random.SeedSequence(42)).sample(100)
        b = FrameSimulator(circ, seed=ss).sample(100)
        assert np.array_equal(a.detectors, b.detectors)


class TestBackendDeterminism:
    def test_serial_equals_multiprocess(self):
        # The acceptance grid: 2 distances x 3 noise points.
        spec = small_spec(gate_improvements=(1.0, 3.0, 5.0))
        cache = CompilationCache()
        serial = run_sweep(spec, cache=cache, shard_shots=SHARD)
        sharded = run_sweep(spec, workers=2, shard_shots=SHARD)
        assert len(serial) == 6
        assert [r.failures for r in serial] == [r.failures for r in sharded]
        assert [r.key for r in serial] == [r.key for r in sharded]
        # Each of the six unique circuits was compiled exactly once.
        assert cache.misses == 6 and cache.hits == 0

    def test_worker_count_does_not_change_failures(self):
        # Fixed-shot mode must stay bit-identical from serial up to a
        # 4-worker pool: the shard plan, not the scheduler, decides
        # what gets sampled.
        spec = small_spec()
        serial = run_sweep(spec, shard_shots=SHARD)
        totals = [[r.failures for r in serial]]
        for workers in (2, 4):
            with MultiprocessBackend(max_workers=workers) as backend:
                results = run_sweep(spec, backend=backend, shard_shots=SHARD)
            totals.append([r.failures for r in results])
        assert totals[0] == totals[1] == totals[2]

    def test_rerun_is_bit_identical(self):
        spec = small_spec(distances=(2,))
        first = run_sweep(spec, shard_shots=SHARD)
        second = run_sweep(spec, shard_shots=SHARD)
        assert [r.failures for r in first] == [r.failures for r in second]


class TestCompilationCache:
    def test_each_unique_circuit_compiled_exactly_once(self):
        # 2 distances x 2 decoders = 4 jobs but only 2 unique circuits.
        spec = small_spec(decoders=("mwpm", "union_find"))
        cache = CompilationCache()
        results = run_sweep(spec, cache=cache, shard_shots=SHARD)
        assert len(results) == 4
        assert cache.misses == 2
        assert cache.hits == 2
        assert cache.unique_circuits == 2

    def test_disk_cache_skips_dem_extraction(self, tmp_path):
        spec = small_spec(distances=(2,))
        first = CompilationCache(cache_dir=str(tmp_path))
        run_sweep(spec, cache=first, shard_shots=SHARD)
        assert first.misses == 1
        # Decoder-side DEM, sampler-side DEM, MWPM distance matrices.
        assert sorted(n.split(".", 1)[1] for n in os.listdir(tmp_path)) == [
            "dem.json", "dmat.npz", "sdem.json",
        ]
        fresh = CompilationCache(cache_dir=str(tmp_path))
        results = run_sweep(spec, cache=fresh, shard_shots=SHARD)
        assert fresh.misses == 0
        assert fresh.disk_hits == 1
        assert results[0].failures is not None

    def test_disk_cache_preserves_failure_counts(self, tmp_path):
        spec = small_spec(distances=(2,))
        a = run_sweep(spec, cache=CompilationCache(str(tmp_path)), shard_shots=SHARD)
        b = run_sweep(spec, cache=CompilationCache(str(tmp_path)), shard_shots=SHARD)
        assert [r.failures for r in a] == [r.failures for r in b]

    def test_corrupt_disk_entry_recompiles(self, tmp_path):
        spec = small_spec(distances=(2,))
        run_sweep(spec, cache=CompilationCache(str(tmp_path)), shard_shots=SHARD)
        [entry] = [n for n in os.listdir(tmp_path) if n.endswith(".dem.json")]
        (tmp_path / entry).write_text("{not json")
        cache = CompilationCache(str(tmp_path))
        run_sweep(spec, cache=cache, shard_shots=SHARD)
        assert cache.misses == 1
        assert cache.disk_hits == 0


class TestResultStoreResume:
    def test_resume_skips_completed_jobs(self, tmp_path):
        spec = small_spec()
        path = str(tmp_path / "results.jsonl")
        full = run_sweep(spec, results_path=path, shard_shots=SHARD)
        # Truncate to a partial store: keep the first job, corrupt tail.
        lines = open(path).read().splitlines()
        with open(path, "w") as fh:
            fh.write(lines[0] + "\n")
            fh.write('{"truncated')  # interrupted mid-write
        cache = CompilationCache()
        resumed = run_sweep(
            spec, results_path=path, cache=cache, shard_shots=SHARD
        )
        assert [r.failures for r in resumed] == [r.failures for r in full]
        assert resumed[0].resumed and not resumed[1].resumed
        # Only the incomplete job was compiled and sampled again.
        assert cache.misses == 1
        # Store is now complete: a third run does no work at all.
        cache2 = CompilationCache()
        third = run_sweep(spec, results_path=path, cache=cache2, shard_shots=SHARD)
        assert all(r.resumed for r in third)
        assert cache2.misses == 0

    def test_changed_run_config_is_not_resumed(self, tmp_path):
        # Same job key, different master seed: the stored sample is a
        # different experiment and must be re-run, not silently reused.
        path = str(tmp_path / "r.jsonl")
        spec_a = small_spec(distances=(2,), master_seed=1)
        spec_b = small_spec(distances=(2,), master_seed=2)
        assert spec_a.expand()[0].key == spec_b.expand()[0].key
        [first] = run_sweep(spec_a, results_path=path, shard_shots=SHARD)
        [second] = run_sweep(spec_b, results_path=path, shard_shots=SHARD)
        assert not second.resumed
        assert first.failures != second.failures or first.run_config != second.run_config
        # Different shard layout also invalidates the stored sample...
        [third] = run_sweep(spec_b, results_path=path, shard_shots=SHARD // 2)
        assert not third.resumed
        # ...while a true re-run resumes: the newest record wins.
        [fourth] = run_sweep(spec_b, results_path=path, shard_shots=SHARD // 2)
        assert fourth.resumed
        assert fourth.failures == third.failures

    def test_store_round_trips_results(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        spec = small_spec(distances=(2,))
        [result] = run_sweep(spec, store=store, shard_shots=SHARD)
        loaded = store.load()[result.key]
        assert isinstance(loaded, JobResult)
        assert loaded.failures == result.failures
        assert loaded.job == result.job
        assert loaded.metrics == json.loads(json.dumps(result.metrics))
        assert loaded.per_round == result.per_round

    def test_compile_only_jobs(self, tmp_path):
        spec = small_spec(shots=0)
        results = run_sweep(spec, results_path=str(tmp_path / "r.jsonl"))
        assert all(r.failures is None and r.ler is None for r in results)
        assert all(r.metrics["round_time_us"] > 0 for r in results)
        resumed = run_sweep(spec, results_path=str(tmp_path / "r.jsonl"))
        assert all(r.resumed for r in resumed)
        # Sampling config cannot invalidate a compile-only result.
        other_seed = small_spec(shots=0, master_seed=99)
        still = run_sweep(other_seed, results_path=str(tmp_path / "r.jsonl"))
        assert all(r.resumed for r in still)


class TestEstimateSweep:
    def test_engine_backed_ler_api(self):
        spec = small_spec(distances=(2,))
        [result] = estimate_sweep(spec, shard_shots=SHARD)
        ler = result.ler
        assert ler.shots == SHOTS
        assert ler.rounds == 2
        assert 0.0 < ler.per_shot < 1.0
        [direct] = run_sweep(spec, shard_shots=SHARD)
        assert direct.failures == result.failures


def adaptive_spec(**overrides):
    """d=2 is the noisy point (converges fast), d=3 the quiet one."""
    base = dict(
        distances=(2, 3),
        shots=128,
        target_failures=15,
        max_shots=2048,
        rounds=2,
        master_seed=7,
    )
    base.update(overrides)
    return small_spec(**base)


class TestAdaptiveAllocation:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="max_shots requires"):
            small_spec(max_shots=1000)
        with pytest.raises(ValueError, match="target_failures must be"):
            small_spec(target_failures=0)
        with pytest.raises(ValueError, match="initial tranche"):
            small_spec(shots=0, target_failures=5)
        with pytest.raises(ValueError, match="max_shots must be >="):
            small_spec(shots=100, target_failures=5, max_shots=50)
        # max_shots defaults to 100 tranches.
        spec = small_spec(shots=100, target_failures=5)
        assert spec.max_shots == 10000
        assert all(j.max_shots == 10000 for j in spec.expand())

    def test_adaptive_budget_is_job_content(self):
        fixed = small_spec(distances=(2,)).expand()[0]
        adaptive = adaptive_spec(distances=(2,), shots=SHOTS).expand()[0]
        assert fixed.key != adaptive.key
        assert not fixed.adaptive and adaptive.adaptive
        assert f"f{adaptive.target_failures}of{adaptive.max_shots}" in adaptive.key

    def test_early_stop_and_reinvestment(self):
        # The noisy point must retire at its failure target instead of
        # burning the whole budget; the quiet point keeps sampling.
        spec = adaptive_spec()
        noisy, quiet = run_sweep(spec, shard_shots=SHARD)
        assert noisy.job.distance == 2
        assert noisy.failures >= spec.target_failures
        assert noisy.shots < spec.max_shots
        assert noisy.extras["adaptive"]["converged"]
        assert quiet.shots > noisy.shots  # freed budget went to the
        # starved point (it runs on until target or cap)
        assert quiet.shots <= spec.max_shots
        if not quiet.extras["adaptive"]["converged"]:
            assert quiet.shots == spec.max_shots

    def test_serial_adaptive_is_deterministic(self):
        spec = adaptive_spec()
        a = run_sweep(spec, shard_shots=SHARD)
        b = run_sweep(spec, shard_shots=SHARD)
        assert [(r.shots, r.failures) for r in a] == [
            (r.shots, r.failures) for r in b
        ]

    def test_adaptive_multiprocess_converges(self):
        # Worker counts may change *how many* shards were in flight at
        # convergence (adaptive mode trades bit-identity for early
        # stopping), but never the target or budget contract.
        spec = adaptive_spec()
        results = run_sweep(spec, workers=2, shard_shots=SHARD)
        for result in results:
            adaptive = result.extras["adaptive"]
            assert result.shots <= spec.max_shots
            if adaptive["converged"]:
                assert result.failures >= spec.target_failures

    def test_shard_size_clamped_to_tranche(self):
        # shard_shots far above the tranche must not turn the initial
        # tranche into one giant shard: adaptivity granularity is the
        # tranche size.
        spec = adaptive_spec(distances=(2,), shots=64, max_shots=1024)
        [result] = run_sweep(spec, shard_shots=4096)
        assert result.shots <= 1024

    def test_resume_of_partially_converged_adaptive_sweep(self, tmp_path):
        path = str(tmp_path / "adaptive.jsonl")
        spec = adaptive_spec()
        full = run_sweep(spec, results_path=path, shard_shots=SHARD)
        # Interrupt signature: only the first (converged) job made it
        # into the store before the run died.
        lines = open(path).read().splitlines()
        with open(path, "w") as fh:
            fh.write(lines[0] + "\n")
        resumed = run_sweep(spec, results_path=path, shard_shots=SHARD)
        assert resumed[0].resumed and not resumed[1].resumed
        assert [(r.shots, r.failures) for r in resumed] == [
            (r.shots, r.failures) for r in full
        ]
        # A completed adaptive store resumes wholesale.
        third = run_sweep(spec, results_path=path, shard_shots=SHARD)
        assert all(r.resumed for r in third)


class TestPrecisionStopping:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="target_rel_stderr must be"):
            small_spec(target_rel_stderr=0.0)
        with pytest.raises(ValueError, match="initial tranche"):
            small_spec(shots=0, target_rel_stderr=0.5)
        # A precision target alone enables adaptive mode (max_shots
        # defaults to 100 tranches, as with target_failures).
        spec = small_spec(shots=100, target_rel_stderr=0.2)
        assert spec.max_shots == 10000
        assert all(j.adaptive for j in spec.expand())

    def test_precision_target_is_job_content(self):
        fixed = small_spec(distances=(2,)).expand()[0]
        precise = small_spec(
            distances=(2,), target_rel_stderr=0.25, max_shots=2048
        ).expand()[0]
        assert fixed.key != precise.key
        assert "rse0.25" in precise.key
        clone = SweepJob.from_dict(precise.to_dict())
        assert clone == precise and clone.key == precise.key

    def test_unset_precision_target_leaves_keys_bit_identical(self):
        # target_rel_stderr=None must hash exactly like releases that
        # had no such field, for both fixed and failure-target jobs.
        job = small_spec(distances=(2,)).expand()[0]
        stripped = {
            k: v for k, v in job.to_dict().items() if k != "target_rel_stderr"
        }
        assert SweepJob.from_dict(stripped).key == job.key
        adaptive = adaptive_spec(distances=(2,)).expand()[0]
        stripped = {
            k: v
            for k, v in adaptive.to_dict().items()
            if k != "target_rel_stderr"
        }
        assert SweepJob.from_dict(stripped).key == adaptive.key

    def test_noisy_point_retires_at_precision_bound(self):
        # d=2 fails often, so a loose relative-stderr bound is reached
        # long before the shot budget; the bound must hold at retirement.
        spec = adaptive_spec(
            distances=(2,), target_failures=None, target_rel_stderr=0.4,
            max_shots=4096,
        )
        [result] = run_sweep(spec, shard_shots=SHARD)
        assert result.extras["adaptive"]["converged"]
        assert result.extras["adaptive"]["target_rel_stderr"] == 0.4
        assert result.shots < spec.max_shots
        assert result.ler.rel_stderr <= 0.4

    def test_zero_failures_never_satisfies_precision(self):
        # With no observed failures the smoothed rel-stderr plateaus
        # near sqrt(2): the job must burn its budget, not retire early.
        from repro.engine.scheduler import JobState

        state = JobState("k", None, "mwpm", [], target_rel_stderr=1.0)
        state.shots_done = 10 ** 6
        assert not state.converged
        state.failures = 10
        assert state.converged

    def test_loose_precision_bound_cannot_retire_without_failures(self):
        # The zero-failure rel-stderr approaches sqrt(2) from *below*
        # (sqrt(2*(1-p))), so a bound like 1.4 would retire a fresh
        # zero-failure job without the explicit failures > 0 guard.
        from repro.engine.scheduler import JobState

        state = JobState("k", None, "mwpm", [], target_rel_stderr=1.4)
        state.shots_done = 2
        assert state.rel_stderr <= 1.4  # the trap the guard defuses
        assert not state.converged
        state.failures = 1
        assert state.converged

    def test_precision_only_stopping_through_estimator_api(self):
        # min_failures=None must reach the scheduler as a pure
        # precision target (otherwise the default failure count fires
        # first and caps the achievable precision).
        from repro.engine.runner import sample_adaptive
        from repro.ler import estimate_until_failures

        circ = ideal_memory_circuit(
            RepetitionCode(2), rounds=2, noise=UniformNoise(0.05)
        )
        result = estimate_until_failures(
            circ, rounds=2, min_failures=None, target_rel_stderr=0.3,
            max_shots=40000, batch=200, seed=3,
        )
        assert result.failures > 0
        assert result.rel_stderr <= 0.3
        with pytest.raises(ValueError, match="min_failures and/or"):
            estimate_until_failures(circ, rounds=2, min_failures=None)
        with pytest.raises(ValueError, match="target_failures and/or"):
            sample_adaptive(circ, target_failures=None)

    def test_precision_convergence_latches(self):
        # rel_stderr *rises* with shots at fixed failures, so a
        # zero-failure in-flight shard landing after the bound was met
        # must not un-retire the job and resume submission.
        from repro.engine.scheduler import JobState

        state = JobState("k", None, "mwpm", [], target_rel_stderr=0.3)
        state.shots_done, state.failures = 100, 10
        assert state.rel_stderr <= 0.3
        assert state.converged
        state.shots_done = 5000  # straggler shards, no new failures
        assert state.rel_stderr > 0.3
        assert state.converged  # latched: the target was satisfied


class TestMemoStats:
    def test_memo_stats_flow_to_extras_and_summary(self, capsys):
        from repro.engine import ProgressReporter

        reporter = ProgressReporter(enabled=True, stream=sys.stdout)
        spec = small_spec(distances=(2,), shots=256)
        [result] = run_sweep(spec, shard_shots=64, progress=reporter)
        memo = result.extras["memo"]
        # Four shards of the same noisy circuit: the cross-shard memo
        # must see both misses (first sightings) and entries.
        assert memo["misses"] > 0
        assert memo["entries"] > 0
        assert memo["hits"] + memo["misses"] > 0
        out = capsys.readouterr().out
        assert "memo:" in out and "peak entries" in out

    def test_finish_accepts_missing_memo_stats(self, capsys):
        from repro.engine import ProgressReporter

        reporter = ProgressReporter(enabled=True, stream=sys.stdout)
        reporter.start(1)
        reporter.finish({"misses": 1})  # no memo stats at all
        assert "memo:" not in capsys.readouterr().out

    def test_memo_stats_cross_worker_aggregation(self):
        spec = small_spec(distances=(2,), shots=512)
        [result] = run_sweep(spec, workers=2, shard_shots=64)
        memo = result.extras["memo"]
        assert memo["misses"] > 0  # every worker decodes its first sightings


class CountingBackend(MultiprocessBackend):
    """Records every worker message so tests can audit priming traffic."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.primes: list[tuple[int, str]] = []
        self.shard_messages: list[tuple] = []

    def _send(self, worker, message):
        if message[0] == "prime":
            self.primes.append((worker, message[1]))
        elif message[0] == "shard":
            self.shard_messages.append(message)
        super()._send(worker, message)


class TestWorkerPriming:
    def test_dem_shipped_at_most_once_per_worker_per_circuit(self):
        # 2 circuits x 2 decoders, plenty of shards each.
        spec = small_spec(decoders=("mwpm", "union_find"))
        with CountingBackend(max_workers=2) as backend:
            results = run_sweep(spec, backend=backend, shard_shots=64)
        assert len(results) == 4
        # Priming happened, and never twice for the same (worker,
        # circuit) pair: the DEM payload crosses each process boundary
        # at most once per unique circuit.
        assert backend.primes
        assert len(backend.primes) == len(set(backend.primes))
        assert len(backend.primes) <= 2 * 2  # workers x unique circuits

    def test_shard_payloads_carry_no_dem(self):
        spec = small_spec(distances=(2,), shots=SHOTS)
        with CountingBackend(max_workers=2) as backend:
            run_sweep(spec, backend=backend, shard_shots=64)
        assert backend.shard_messages
        for message in backend.shard_messages:
            kind, seq, circuit_key, decoder, sampler, shots, seed, epoch = message
            assert kind == "shard"
            assert isinstance(circuit_key, str) and len(circuit_key) == 64
            assert isinstance(decoder, str)
            assert sampler in ("dem", "frame")
            assert isinstance(shots, int)
            # No nested payloads: the DEM JSON (dicts/lists) never
            # rides along with a shard.
            assert not any(
                isinstance(field, (dict, list, tuple)) for field in message
            )

    def test_adaptive_shard_payloads_carry_no_dem(self):
        # The acceptance-criteria grid: an adaptive sweep over
        # {d=3, d=5} stops sampling the high-LER point at its failure
        # target, and its shard payloads carry no DEM JSON.
        spec = adaptive_spec(distances=(3, 5), max_shots=16384)
        with CountingBackend(max_workers=2) as backend:
            results = run_sweep(spec, backend=backend, shard_shots=SHARD)
        noisy = max(results, key=lambda r: r.failures / r.shots)
        assert noisy.failures >= spec.target_failures
        assert noisy.shots < spec.max_shots
        assert noisy.extras["adaptive"]["converged"]
        assert all(
            not any(isinstance(f, (dict, list)) for f in message)
            for message in backend.shard_messages
        )


class TestSharedBackendAbort:
    def test_aborted_sweep_does_not_contaminate_next(self):
        # A caller-owned backend survives a mid-sweep abort; the shards
        # it still had in flight must be disowned, not absorbed into
        # the next sweep's failure counts.
        from repro.engine import ProgressReporter

        spec = small_spec()
        serial = run_sweep(spec, shard_shots=64)

        class Boom(Exception):
            pass

        class Exploding(ProgressReporter):
            def job_done(self, *args, **kwargs):
                raise Boom()  # abort while the other job's shards fly

        with MultiprocessBackend(max_workers=2) as backend:
            with pytest.raises(Boom):
                run_sweep(
                    spec, backend=backend, shard_shots=64,
                    progress=Exploding(enabled=False),
                )
            results = run_sweep(spec, backend=backend, shard_shots=64)
        assert [r.failures for r in results] == [r.failures for r in serial]


class TestInterruptPath:
    def test_sigint_reaches_parent_promptly(self, tmp_path):
        # A sweep sized to run for minutes: SIGINT must kill it in
        # seconds, not after the current job's last shard.
        script = (
            "from repro.engine import SweepSpec, run_sweep\n"
            "print('READY', flush=True)\n"
            "spec = SweepSpec(distances=(2,), rounds=2, shots=200_000_000,\n"
            "                 master_seed=3)\n"
            "run_sweep(spec, workers=2, shard_shots=2048)\n"
            "print('FINISHED', flush=True)\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "READY"
            time.sleep(4)  # compile finishes, workers are sampling
            t0 = time.monotonic()
            proc.send_signal(signal.SIGINT)
            returncode = proc.wait(timeout=30)
            elapsed = time.monotonic() - t0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert returncode != 0  # KeyboardInterrupt, not a clean finish
        assert "FINISHED" not in proc.stdout.read()
        assert elapsed < 30


class TestStoreMemoization:
    def test_polling_does_not_reparse(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        spec = small_spec(distances=(2,), shots=0)
        run_sweep(spec, store=store)
        assert len(store) == 1
        reads = store.file_reads
        for _ in range(20):
            assert len(store) == 1
            assert len(store.completed_keys()) == 1
        assert store.file_reads == reads  # stat-only polling

    def test_append_keeps_memo_coherent(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        spec = small_spec(distances=(2, 3), shots=0)
        results = run_sweep(spec, store=store)
        loaded = store.load()
        assert set(loaded) == {r.key for r in results}
        assert all(r.resumed for r in loaded.values())

    def test_external_write_invalidates_memo(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(str(path))
        spec = small_spec(distances=(2,), shots=0)
        [result] = run_sweep(spec, store=store)
        assert len(store) == 1
        # Another process truncates the store behind our back.
        time.sleep(0.01)  # ensure a distinct mtime_ns on coarse clocks
        path.write_text("")
        assert len(store) == 0

    def test_reuse_requires_real_metrics(self, tmp_path):
        # A store line with an empty metrics dict (older format /
        # corrupt record) must not be resumed: it would poison every
        # record rebuilt from the store.
        path = str(tmp_path / "r.jsonl")
        spec = small_spec(distances=(2,), shots=0)
        [result] = run_sweep(spec, results_path=path)
        data = json.loads(open(path).read())
        data.pop("metrics")
        with open(path, "w") as fh:
            fh.write(json.dumps(data) + "\n")
        [rerun] = run_sweep(spec, results_path=path)
        assert not rerun.resumed
        assert rerun.metrics["round_time_us"] > 0
        # The repaired record supersedes the hollow one.
        [third] = run_sweep(spec, results_path=path)
        assert third.resumed and third.metrics


class TestShardCheckpoints:
    def test_shard_record_round_trip(self, tmp_path):
        from repro.engine import ShardRecord

        store = ResultStore(str(tmp_path / "r.jsonl"))
        record = ShardRecord(
            job_key="k", shard_index=3, shots=128, failures=2,
            elapsed_s=0.25, run_config={"master_seed": 7},
        )
        store.append_shard(record)
        loaded = store.load_shards("k")
        assert set(loaded) == {3}
        assert loaded[3].failures == 2
        assert loaded[3].run_config == {"master_seed": 7}
        # Shard lines are not job results.
        assert store.load() == {}
        # A fresh store object parses the same state from disk.
        fresh = ResultStore(str(tmp_path / "r.jsonl"))
        assert set(fresh.load_shards("k")) == {3}

    def test_final_job_record_supersedes_shards(self, tmp_path):
        # Compaction contract: once the job's final record lands, its
        # earlier shard checkpoints are dead weight — invisible to
        # load_shards and dropped by compact() — while checkpoints of
        # *unfinished* jobs survive.
        from repro.engine import ShardRecord

        path = str(tmp_path / "r.jsonl")
        store = ResultStore(path)
        spec = small_spec(distances=(2,))
        store.append_shard(ShardRecord("other-unfinished", 0, 64, 1))
        [result] = run_sweep(spec, store=store, shard_shots=SHARD)
        # The runner checkpointed shards, then the final record
        # superseded them (and run() compacted the store).
        assert store.load_shards(result.key) == {}
        assert set(store.load_shards("other-unfinished")) == {0}
        assert result.key in store.load()
        lines = open(path).read().splitlines()
        assert sum(1 for l in lines if '"shard"' in l) == 1  # the orphan

    def test_compact_drops_superseded_lines(self, tmp_path):
        from repro.engine import ShardRecord

        path = str(tmp_path / "r.jsonl")
        store = ResultStore(path)
        spec = small_spec(distances=(2,), shots=0)
        [result] = run_sweep(spec, store=store)
        # Hand-append stale shard lines *before* a duplicate final
        # record, plus a live orphan checkpoint.
        with open(path) as fh:
            job_line = fh.read().strip()
        with open(path, "a") as fh:
            fh.write(json.dumps(
                ShardRecord(result.key, 0, 64, 1).to_jsonable()) + "\n")
            fh.write(job_line + "\n")  # re-recorded job: supersedes
            fh.write(json.dumps(
                ShardRecord("unfinished", 5, 64, 0).to_jsonable()) + "\n")
        fresh = ResultStore(path)
        dropped = fresh.compact()
        assert dropped == 2  # stale shard + older duplicate job record
        assert fresh.compact() == 0  # idempotent
        assert result.key in fresh.load()
        assert set(fresh.load_shards("unfinished")) == {5}

    def test_legacy_store_without_shard_lines_resumes(self, tmp_path):
        # Pre-checkpointing stores hold only job records; they must
        # load, resume and report no shards.
        path = str(tmp_path / "legacy.jsonl")
        spec = small_spec()
        full = run_sweep(spec, results_path=path, shard_shots=SHARD)
        # Rewrite as a "legacy" file: job lines only, no shard lines
        # (the live path already compacts, so just assert + reload).
        lines = open(path).read().splitlines()
        assert all('"shard"' not in line for line in lines)
        store = ResultStore(path)
        assert store.load_shards(full[0].key) == {}
        resumed = run_sweep(spec, results_path=path, shard_shots=SHARD)
        assert all(r.resumed for r in resumed)

    def test_checkpointing_can_be_disabled(self, tmp_path):
        from fault_helpers import AbortingSerialBackend, SweepAborted

        path = str(tmp_path / "r.jsonl")
        spec = small_spec(distances=(2,))
        with pytest.raises(SweepAborted):
            run_sweep(spec, results_path=path, shard_shots=SHARD,
                      backend=AbortingSerialBackend(2),
                      checkpoint_shards=False)
        # No shard lines were written — with no completed job either,
        # the store may not even exist yet.
        assert not os.path.exists(path) or '"shard"' not in open(path).read()

    def test_mismatched_run_config_shards_are_not_credited(self, tmp_path):
        # Shards checkpointed under another master seed are a different
        # experiment: the resumed run must re-sample from scratch.
        from fault_helpers import (
            AbortingSerialBackend,
            CountingSerialBackend,
            SweepAborted,
        )

        path = str(tmp_path / "r.jsonl")
        spec_a = small_spec(distances=(2,), master_seed=1)
        spec_b = small_spec(distances=(2,), master_seed=2)
        with pytest.raises(SweepAborted):
            run_sweep(spec_a, results_path=path, shard_shots=SHARD,
                      backend=AbortingSerialBackend(2))
        assert ResultStore(path).load_shards(spec_a.expand()[0].key)
        backend = CountingSerialBackend()
        [result] = run_sweep(spec_b, results_path=path, shard_shots=SHARD,
                             backend=backend)
        # All 5 shards ran fresh; nothing was credited across seeds.
        assert len(backend.executed) == 5
        [reference] = run_sweep(spec_b, shard_shots=SHARD)
        assert result.failures == reference.failures


class TestWorkerCrashRecovery:
    def test_flaky_backend_recovery_matches_serial(self):
        # The shared fault fixture: drop a virtual worker mid-sweep;
        # the scheduler resubmits its shards with original seeds.
        from fault_helpers import FlakyBackend

        spec = small_spec()
        serial = run_sweep(spec, shard_shots=SHARD)
        backend = FlakyBackend(workers=2, drop_worker=1, drop_after=2)
        recovered = run_sweep(spec, backend=backend, shard_shots=SHARD)
        assert [r.failures for r in recovered] == [r.failures for r in serial]

    def test_multiprocess_worker_sigkill_recovers(self):
        # A real worker process SIGKILLed mid-sweep: the MP backend
        # disowns its shards and the sweep finishes bit-identically.
        spec = small_spec()
        serial = run_sweep(spec, shard_shots=64)

        class Killing(MultiprocessBackend):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.outcomes_seen = 0
                self.killed = False

            def _handle(self, message):
                outcome = super()._handle(message)
                if outcome is not None:
                    self.outcomes_seen += 1
                    if not self.killed and self.outcomes_seen >= 2:
                        self.killed = True
                        self._procs[0].kill()
                return outcome

        with Killing(max_workers=2) as backend:
            results = run_sweep(spec, backend=backend, shard_shots=64)
            assert backend.killed
        assert [r.failures for r in results] == [r.failures for r in serial]

    def test_queued_retry_keeps_job_alive(self):
        # Regression: when a lost shard's retry cannot be resubmitted
        # immediately (no capacity on the survivors), the job's other
        # outcomes landing must NOT complete the job — it is still owed
        # the lost sample.  The bug finalized the job early (short of
        # shots) and then a second time when the retry landed, which
        # corrupted the unfinished-job count and dropped a later job.
        from types import SimpleNamespace

        from repro.engine import JobState, ShardOutcome, StreamScheduler

        class Scripted:
            capacity = 2

            def __init__(self):
                self.submitted = []
                self.lost = []
                self.results = []

            def submit(self, task, compiled, cache):
                self.submitted.append(task)

            def take_lost(self):
                lost, self.lost = self.lost, []
                return lost

            def poll(self):
                out, self.results = self.results, []
                return out

            def wait(self):
                return self.poll()

        backend = Scripted()
        scheduler = StreamScheduler(backend, cache=None)
        plan = plan_shards(256, 128, master_seed=1, job_key="job")
        state = JobState("job", SimpleNamespace(key="c"), "mwpm", plan)
        assert scheduler.add(state) == []
        assert [t.seq for t in backend.submitted] == [0, 1]
        # Shard 1's worker dies; the pool shrinks to one busy slot.
        backend.lost = [1]
        backend.capacity = 1
        # One drain step: the loss is reaped but cannot resubmit yet;
        # shard 0 lands.  The job must stay open.
        scheduler._fill()
        scheduler._absorb([ShardOutcome(0, "job", 128, 3)])
        assert scheduler._pop_completed() == []
        assert state.inflight == 1  # the queued retry holds the job
        # Capacity freed: the retry goes out with its original seed.
        scheduler._fill()
        assert [t.seq for t in backend.submitted] == [0, 1, 1]
        assert backend.submitted[1].seed is backend.submitted[2].seed
        scheduler._absorb([ShardOutcome(1, "job", 128, 2)])
        assert scheduler._pop_completed() == [state]
        assert (state.shots_done, state.failures) == (256, 5)

    def test_capacity_shrinks_with_dead_workers(self):
        backend = MultiprocessBackend(max_workers=3, queue_depth=2)
        assert backend.capacity == 6  # not started: configured size rules
        backend._procs = [object(), object(), object()]  # "started"
        backend._dead = {0}
        assert backend.capacity == 4  # 2 survivors x queue_depth
        backend._dead = {0, 1, 2}
        assert backend.capacity == 2  # floor of one slot x queue_depth

    def test_new_scheduler_fences_off_stale_session_state(self):
        # A dead worker's surplus duplicate result can outlive its
        # sweep in a shared backend's queue; since task seqs restart
        # at 0 per scheduler, attaching a new scheduler must bump the
        # epoch (so the stale message is droppable) and clear the old
        # sweep's forgotten-seq set (so it cannot swallow new results).
        from repro.engine import StreamScheduler

        backend = MultiprocessBackend(max_workers=2)
        backend._forgotten.add(2)
        epoch = backend._epoch
        StreamScheduler(backend, cache=None)
        assert backend._epoch == epoch + 1
        assert not backend._forgotten


class TestProgressReporter:
    def test_finish_tolerates_partial_cache_stats(self, capsys):
        from repro.engine import ProgressReporter

        reporter = ProgressReporter(enabled=True, stream=sys.stdout)
        reporter.start(1)
        reporter.job_done("k", 3, 0.1, shots=600)
        reporter.finish({"misses": 2})  # no hits / disk_hits keys
        out = capsys.readouterr().out
        assert "2 compiled" in out
        assert "0 hits" in out
        assert "failures=3/600 shots" in out


class TestExplorerSweep:
    def test_records_match_evaluate_metrics(self):
        from repro.toolflow import DesignSpaceExplorer

        explorer = DesignSpaceExplorer()
        spec = small_spec(distances=(3,), shots=0)
        [record] = explorer.sweep(spec)
        reference = explorer.evaluate(3, capacity=2, rounds=2)
        assert record.round_time_us == reference.round_time_us
        assert record.electrodes == reference.electrodes
        assert record.num_traps == reference.num_traps
        assert record.extras["decoder"] == "mwpm"

    def test_code_mismatch_rejected(self):
        from repro.toolflow import DesignSpaceExplorer

        explorer = DesignSpaceExplorer(code_name="repetition")
        with pytest.raises(ValueError, match="disagrees"):
            explorer.sweep(small_spec(distances=(3,), shots=0))


class TestSamplerSelection:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown sampler"):
            small_spec(sampler="tableau")

    def test_frame_keys_are_fast_path_free(self):
        # The opt-out contract: a frame job's key hashes exactly the
        # fields it had before the DEM-direct sampler existed, so
        # shard RNG streams and stored results are bit-identical to
        # pre-fast-path sweeps.
        frame = small_spec(sampler="frame").expand()[0]
        dem = small_spec(sampler="dem").expand()[0]
        assert frame.key != dem.key
        legacy = frame.to_dict()
        del legacy["sampler"]
        assert SweepJob.from_dict(legacy).key == frame.key

    def test_legacy_store_dicts_resume_as_frame(self):
        job = SweepJob.from_dict(
            dict(code="rotated_surface", distance=2, capacity=2,
                 topology="grid", wiring="standard", gate_improvement=1.0,
                 decoder="mwpm", rounds=2, shots=SHOTS)
        )
        assert job.sampler == "frame"

    def test_frame_sweep_matches_direct_frame_sampling(self):
        # Bit-identity: the frame opt-out must reproduce exactly what
        # plan_shards + FrameSimulator + the decoder compute by hand.
        from repro.engine import CompilationCache as Cache
        from repro.engine.runner import compile_design_point
        from repro.noise.parameters import DEFAULT_NOISE

        spec = small_spec(distances=(2,), sampler="frame")
        [result] = run_sweep(spec, shard_shots=SHARD)
        [job] = spec.expand()
        art = compile_design_point(job, DEFAULT_NOISE, need_circuit=True)
        cache = Cache()
        compiled = cache.compiled(art.circuit, art.text)
        decoder = cache.decoder(compiled, job.decoder)
        failures = 0
        for shard in plan_shards(job.shots, SHARD, spec.master_seed, job.key):
            sample = FrameSimulator(compiled.circuit, seed=shard.seed).sample(
                shard.shots
            )
            failures += int(decoder.logical_failures(
                sample.detectors, sample.observables
            ).sum())
        assert result.failures == failures

    def test_dem_and_frame_sweeps_are_distinct_experiments(self, tmp_path):
        # Same design point, both samplers, one store: both records
        # coexist (distinct keys) and both resume.
        path = str(tmp_path / "r.jsonl")
        [dem] = run_sweep(small_spec(distances=(2,)), results_path=path,
                          shard_shots=SHARD)
        [frame] = run_sweep(small_spec(distances=(2,), sampler="frame"),
                            results_path=path, shard_shots=SHARD)
        assert dem.key != frame.key
        [dem2] = run_sweep(small_spec(distances=(2,)), results_path=path,
                           shard_shots=SHARD)
        [frame2] = run_sweep(small_spec(distances=(2,), sampler="frame"),
                             results_path=path, shard_shots=SHARD)
        assert dem2.resumed and frame2.resumed
        assert dem2.failures == dem.failures
        assert frame2.failures == frame.failures

    def test_dem_sweep_serial_equals_multiprocess(self):
        spec = small_spec()  # default sampler: dem
        serial = run_sweep(spec, shard_shots=SHARD)
        sharded = run_sweep(spec, workers=2, shard_shots=SHARD)
        assert [r.failures for r in serial] == [r.failures for r in sharded]


class TestDistanceMatrixCache:
    def test_disk_round_trip_gives_identical_corrections(self, tmp_path):
        # Artefact contract: dist/pred written by one cache, loaded by
        # a fresh one (a resumed run / new process), decoding every
        # syndrome identically — and without redoing the Dijkstra.
        spec = small_spec(distances=(2,))
        warm = CompilationCache(cache_dir=str(tmp_path))
        [first] = run_sweep(spec, cache=warm, shard_shots=SHARD)
        assert any(n.endswith(".dmat.npz") for n in os.listdir(tmp_path))
        assert warm.dmat_disk_hits == 0
        fresh = CompilationCache(cache_dir=str(tmp_path))
        [second] = run_sweep(spec, cache=fresh, shard_shots=SHARD)
        assert fresh.dmat_disk_hits == 1
        assert second.failures == first.failures

    def test_corrupt_dmat_recomputes(self, tmp_path):
        spec = small_spec(distances=(2,))
        run_sweep(spec, cache=CompilationCache(str(tmp_path)), shard_shots=SHARD)
        [entry] = [n for n in os.listdir(tmp_path) if n.endswith(".dmat.npz")]
        (tmp_path / entry).write_bytes(b"not an npz")
        cache = CompilationCache(str(tmp_path))
        [result] = run_sweep(spec, cache=cache, shard_shots=SHARD)
        assert cache.dmat_disk_hits == 0
        assert result.failures is not None

    def test_workers_receive_parent_distance_matrices(self):
        # The prime payload ships (dist, pred) for MWPM jobs so each
        # worker skips its own all-pairs Dijkstra.
        import numpy as np

        class PrimeAudit(CountingBackend):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.prime_dmats = []

            def _send(self, worker, message):
                if message[0] == "prime":
                    # ("prime", key, text, dem, sdem, dmat, epoch)
                    self.prime_dmats.append(message[5])
                super()._send(worker, message)

        spec = small_spec(distances=(2,))
        with PrimeAudit(max_workers=2) as backend:
            run_sweep(spec, backend=backend, shard_shots=64)
        assert backend.prime_dmats
        for dmat in backend.prime_dmats:
            assert dmat is not None
            dist, pred = dmat
            assert isinstance(dist, np.ndarray) and dist.ndim == 2


class TestDiskCacheEviction:
    def test_size_bound_evicts_lru(self, tmp_path):
        cache = CompilationCache(cache_dir=str(tmp_path))
        spec = small_spec(distances=(2, 3))
        run_sweep(spec, cache=cache, shard_shots=SHARD)
        paths = sorted(tmp_path.iterdir())
        # 2 circuits x (dem.json + sdem.json + dmat.npz)
        assert len(paths) == 6
        total_mb = sum(p.stat().st_size for p in paths) / 1e6
        # Refresh recency so the d=3 entries are the newest, then make
        # a bounded cache re-store something: the oldest (d=2) entries
        # must go first.
        old = [p for p in paths if "dem.json" in p.name]
        import time as _time

        for p in tmp_path.iterdir():
            os.utime(p, (1, 1))
        bounded = CompilationCache(
            cache_dir=str(tmp_path), max_disk_mb=total_mb / 2
        )
        jobs = spec.expand()
        from repro.engine.runner import compile_design_point
        from repro.noise.parameters import DEFAULT_NOISE

        art = compile_design_point(jobs[0], DEFAULT_NOISE, need_circuit=True)
        # Force a fresh write: same content, but routed through a cache
        # whose budget is half the directory.
        for p in tmp_path.iterdir():
            p.unlink()
        compiled = bounded.compiled(art.circuit, art.text)
        bounded.decoder(compiled, "mwpm")
        art2 = compile_design_point(jobs[1], DEFAULT_NOISE, need_circuit=True)
        compiled2 = bounded.compiled(art2.circuit, art2.text)
        bounded.decoder(compiled2, "mwpm")
        remaining = sum(p.stat().st_size for p in tmp_path.iterdir())
        assert remaining <= bounded.max_disk_mb * 1024 * 1024
        assert bounded.evictions > 0

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = CompilationCache(cache_dir=str(tmp_path))
        run_sweep(small_spec(distances=(2, 3)), cache=cache, shard_shots=SHARD)
        assert cache.evictions == 0
        assert len(list(tmp_path.iterdir())) == 6

    def test_read_refreshes_recency(self, tmp_path):
        spec = small_spec(distances=(2,))
        run_sweep(spec, cache=CompilationCache(str(tmp_path)), shard_shots=SHARD)
        [dem_path] = [p for p in tmp_path.iterdir() if p.name.endswith(".dem.json")]
        os.utime(dem_path, (1, 1))
        before = dem_path.stat().st_mtime_ns
        fresh = CompilationCache(cache_dir=str(tmp_path))
        run_sweep(spec, cache=fresh, shard_shots=SHARD)
        assert fresh.disk_hits == 1
        assert dem_path.stat().st_mtime_ns > before

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            CompilationCache(max_disk_mb=0)

    def test_late_dmat_delivery_for_mixed_decoder_sweeps(self):
        # A union_find shard can prime a (worker, circuit) pair before
        # any MWPM shard reaches it; the matrices must then arrive in a
        # late "dmat" message, not be silently dropped.
        class Audit(CountingBackend):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.prime_dmats = []
                self.dmat_messages = []

            def _send(self, worker, message):
                if message[0] == "prime":
                    self.prime_dmats.append((worker, message[5]))
                elif message[0] == "dmat":
                    self.dmat_messages.append((worker, message[1]))
                super()._send(worker, message)

        spec = small_spec(distances=(2,), decoders=("union_find", "mwpm"))
        with Audit(max_workers=2) as backend:
            results = run_sweep(spec, backend=backend, shard_shots=64)
        assert len(results) == 2
        # Every worker primed without matrices got exactly one late
        # delivery; nobody got a duplicate.
        primed_without = {(w, "d") for w, d in backend.prime_dmats if d is None}
        assert len(backend.dmat_messages) == len(set(backend.dmat_messages))
        if primed_without:
            assert backend.dmat_messages
