"""Router tests: constraint compliance, invariants, movement structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import DEFAULT_TIMES
from repro.codes import RepetitionCode, RotatedSurfaceCode, UnrotatedSurfaceCode
from repro.codes.base import Role
from repro.core import Router, build_gate_dag, place
from repro.core.ir import MOVEMENT_KINDS


def _route(code, cap, topo, rounds=1):
    gates = build_gate_dag(code, rounds)
    placement = place(code, cap, topo)
    router = Router(code, placement, gates, DEFAULT_TIMES)
    ops = router.run()
    return ops, placement, router


def _replay_occupancy(ops, placement):
    """Replay ion positions op by op, asserting hardware constraints."""
    device = placement.device
    location = dict(placement.qubit_to_trap)
    occupancy = {c.id: 0 for c in device.components}
    for trap, chain in placement.trap_chains.items():
        occupancy[trap] = len(chain)
    for op in ops:
        if op.kind not in MOVEMENT_KINDS:
            if op.kind in ("CX", "SWAP"):
                a, b = op.ions
                assert location[a] == location[b] == op.components[0], op
            continue
        ion = op.ions[0]
        if op.kind == "SPLIT":
            trap, seg = op.components
            assert location[ion] == trap
            occupancy[trap] -= 1
            occupancy[seg] += 1
            location[ion] = seg
        elif op.kind == "SHUTTLE":
            (seg,) = op.components
            assert location[ion] == seg
        elif op.kind == "JUNCTION_ENTRY":
            seg, junction = op.components
            assert location[ion] == seg
            occupancy[seg] -= 1
            occupancy[junction] += 1
            location[ion] = junction
        elif op.kind == "JUNCTION_EXIT":
            junction, seg = op.components
            assert location[ion] == junction
            occupancy[junction] -= 1
            occupancy[seg] += 1
            location[ion] = seg
        elif op.kind == "MERGE":
            seg, trap = op.components
            assert location[ion] == seg
            occupancy[seg] -= 1
            occupancy[trap] += 1
            location[ion] = trap
        for cid, occ in occupancy.items():
            comp = device.component(cid)
            assert 0 <= occ <= comp.capacity, (op, comp, occ)
    return location, occupancy


CONFIGS = [
    (RepetitionCode(3), 2, "linear"),
    (RepetitionCode(5), 3, "linear"),
    (RepetitionCode(4), 4, "linear"),
    (RotatedSurfaceCode(2), 2, "grid"),
    (RotatedSurfaceCode(3), 2, "grid"),
    (RotatedSurfaceCode(3), 3, "grid"),
    (RotatedSurfaceCode(3), 5, "grid"),
    (RotatedSurfaceCode(3), 2, "switch"),
    (RotatedSurfaceCode(2), 2, "linear"),
    (UnrotatedSurfaceCode(2), 2, "grid"),
]


class TestConstraintCompliance:
    @pytest.mark.parametrize(
        "code,cap,topo", CONFIGS, ids=lambda v: str(v)
    )
    def test_replay_respects_all_hardware_constraints(self, code, cap, topo):
        """Sequential replay: capacities, exclusivity, co-location."""
        ops, placement, _ = _route(code, cap, topo, rounds=2)
        _replay_occupancy(ops, placement)

    @pytest.mark.parametrize("code,cap,topo", CONFIGS, ids=lambda v: str(v))
    def test_all_gates_sequenced_exactly_once(self, code, cap, topo):
        rounds = 2
        gates = build_gate_dag(code, rounds)
        placement = place(code, cap, topo)
        ops = Router(code, placement, gates, DEFAULT_TIMES).run()
        sequenced = [op.gate_id for op in ops if op.gate_id is not None]
        assert sorted(sequenced) == [g.id for g in gates]

    @pytest.mark.parametrize("code,cap,topo", CONFIGS[:6], ids=lambda v: str(v))
    def test_final_state_restores_fill_invariant(self, code, cap, topo):
        ops, placement, router = _route(code, cap, topo)
        _replay_occupancy(ops, placement)
        for trap, chain in router.chains.items():
            assert len(chain) <= cap - 1
        # No ion left in transit.
        for q, loc in router.location.items():
            assert placement.device.component(loc).is_trap

    def test_deps_are_topological(self):
        ops, _, _ = _route(RotatedSurfaceCode(3), 2, "grid")
        for op in ops:
            assert all(d < op.id for d in op.deps)


class TestMovementStructure:
    def test_linear_hop_is_split_shuttle_merge(self):
        ops, _, _ = _route(RepetitionCode(2), 2, "linear")
        moves = [op.kind for op in ops if op.is_movement]
        assert moves[:3] == ["SPLIT", "SHUTTLE", "MERGE"]

    def test_grid_hop_crosses_junction(self):
        ops, _, _ = _route(RotatedSurfaceCode(2), 2, "grid")
        kinds = {op.kind for op in ops if op.is_movement}
        assert "JUNCTION_ENTRY" in kinds and "JUNCTION_EXIT" in kinds

    def test_no_junctions_used_on_linear_device(self):
        ops, _, _ = _route(RepetitionCode(3), 2, "linear")
        kinds = {op.kind for op in ops if op.is_movement}
        assert "JUNCTION_ENTRY" not in kinds

    def test_single_trap_needs_no_movement(self):
        code = RepetitionCode(3)
        ops, _, _ = _route(code, code.num_qubits + 1, "linear")
        assert not any(op.is_movement for op in ops)

    def test_capacity2_has_no_multi_ion_swaps(self):
        """With one resident per trap, swaps occur only on 2-ion chains."""
        ops, _, _ = _route(RotatedSurfaceCode(3), 2, "grid", rounds=2)
        for op in ops:
            if op.kind == "SWAP":
                assert len(op.ions) == 2

    def test_ancilla_is_the_mover(self):
        code = RotatedSurfaceCode(3)
        ops, _, router = _route(code, 2, "grid")
        roles = {q.index: q.role for q in code.qubits}
        movers = {op.ions[0] for op in ops if op.kind == "SPLIT"}
        ancilla_movers = sum(1 for m in movers if roles[m] is Role.ANCILLA)
        assert ancilla_movers / len(movers) > 0.8


class TestDurations:
    def test_movement_durations_match_table1(self):
        ops, _, _ = _route(RotatedSurfaceCode(2), 2, "grid")
        expected = {
            "SPLIT": 80,
            "MERGE": 80,
            "SHUTTLE": 5,
            "JUNCTION_ENTRY": 100,
            "JUNCTION_EXIT": 100,
            "CX": 60,
            "H": 5,
            "M": 400,
            "R": 50,
            "SWAP": 120,
        }
        for op in ops:
            assert op.duration == expected[op.kind], op.kind


class TestScaling:
    @given(st.integers(2, 5))
    @settings(max_examples=4, deadline=None)
    def test_any_distance_routes_on_grid(self, d):
        ops, placement, _ = _route(RotatedSurfaceCode(d), 2, "grid")
        _replay_occupancy(ops, placement)

    @given(st.integers(3, 8), st.integers(2, 5))
    @settings(max_examples=8, deadline=None)
    def test_repetition_any_capacity_on_linear(self, d, cap):
        ops, placement, _ = _route(RepetitionCode(d), cap, "linear")
        _replay_occupancy(ops, placement)
