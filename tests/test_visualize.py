"""Schedule visualisation tests."""

import pytest

from repro.codes import RepetitionCode, RotatedSurfaceCode
from repro.core import (
    busiest_components,
    compile_memory_experiment,
    format_component_timeline,
    format_ion_timeline,
    schedule_gantt,
    utilisation_summary,
)


@pytest.fixture(scope="module")
def program():
    return compile_memory_experiment(
        RotatedSurfaceCode(2), trap_capacity=2, topology="grid", rounds=2
    )


class TestTimelines:
    def test_ion_timeline_contains_gates(self, program):
        code = RotatedSurfaceCode(2)
        ancilla = code.ancilla_qubits[0].index
        text = format_ion_timeline(program, ancilla)
        assert f"ion {ancilla}" in text
        assert "M" in text and "R" in text

    def test_ion_timeline_is_chronological(self, program):
        text = format_ion_timeline(program, 0, limit=1000)
        times = [
            float(line.split("t=")[1].split("us")[0])
            for line in text.splitlines()
            if "t=" in line
        ]
        assert times == sorted(times)

    def test_timeline_limit_truncates(self, program):
        text = format_ion_timeline(program, 4, limit=2)
        assert "more" in text

    def test_component_timeline(self, program):
        trap = program.qubit_to_trap[0]
        text = format_component_timeline(program, trap)
        assert f"component {trap}" in text


class TestUtilisation:
    def test_fractions_sum_to_one(self, program):
        summary = utilisation_summary(program)
        total = (
            summary["gate_fraction"]
            + summary["movement_fraction"]
            + summary["swap_fraction"]
        )
        assert total == pytest.approx(1.0)

    def test_parallelism_above_one(self, program):
        """Capacity-2 grids genuinely overlap work across traps."""
        assert utilisation_summary(program)["parallelism"] > 1.2

    def test_single_chain_has_no_movement_fraction(self):
        code = RepetitionCode(3)
        program = compile_memory_experiment(
            code, code.num_qubits + 1, "linear", rounds=2
        )
        summary = utilisation_summary(program)
        assert summary["movement_fraction"] == 0.0
        # Everything serialises in one trap: parallelism ~ 1.
        assert summary["parallelism"] == pytest.approx(1.0, abs=0.05)

    def test_busiest_components_ranked(self, program):
        ranking = busiest_components(program, top=3)
        assert len(ranking) == 3
        times = [t for _, t in ranking]
        assert times == sorted(times, reverse=True)


class TestGantt:
    def test_gantt_renders(self, program):
        traps = sorted({program.qubit_to_trap[q] for q in (0, 1)})
        text = schedule_gantt(program, traps, 0, 2000, width=40)
        lines = text.splitlines()
        assert len(lines) == len(traps) + 1
        for line in lines[1:]:
            assert len(line.split("|")[1]) == 40

    def test_gantt_shows_activity(self, program):
        trap = program.qubit_to_trap[0]
        text = schedule_gantt(program, [trap], width=60)
        body = text.splitlines()[1]
        assert any(ch != "." for ch in body.split("|")[1])

    def test_gantt_validates_window(self, program):
        with pytest.raises(ValueError):
            schedule_gantt(program, [0], t0=100, t1=100)
