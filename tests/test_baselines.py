"""Baseline compiler tests (Table 3 comparators)."""

import pytest

from repro.baselines import BaselineFailure, compile_muzzle_like, compile_qccdsim_like
from repro.codes import RepetitionCode, RotatedSurfaceCode
from repro.core import compile_memory_experiment


class TestQccdSimLike:
    def test_compiles_repetition_linear(self):
        program = compile_qccdsim_like(RepetitionCode(3), 2, "linear", rounds=2)
        assert program.stats.num_gates > 0
        assert program.stats.movement_ops > 0

    def test_sequential_order_costs_movement(self):
        """Without commutation analysis the baseline cannot alternate
        check directions across rounds, so it moves ions more."""
        code = RepetitionCode(5)
        ours = compile_memory_experiment(code, 2, "linear", rounds=3)
        theirs = compile_qccdsim_like(code, 2, "linear", rounds=3)
        assert theirs.stats.movement_time_us > ours.stats.movement_time_us

    def test_more_movement_than_ours_on_surface_code(self):
        code = RotatedSurfaceCode(2)
        ours = compile_memory_experiment(code, 2, "grid", rounds=2)
        theirs = compile_qccdsim_like(code, 2, "grid", rounds=2)
        assert theirs.stats.movement_ops > ours.stats.movement_ops
        assert theirs.stats.movement_time_us > ours.stats.movement_time_us


class TestMuzzleLike:
    def test_compiles_repetition_linear(self):
        program = compile_muzzle_like(RepetitionCode(3), 2, "linear", rounds=2)
        assert program.stats.num_gates > 0

    def test_line_placement_beats_round_robin_at_cap3(self):
        """Muzzle's geometry-aware fill wins on linear chains (Table 3
        R,*,3,L rows, where it beats QCCDSim)."""
        code = RepetitionCode(5)
        muzzle = compile_muzzle_like(code, 3, "linear", rounds=3)
        qccdsim = compile_qccdsim_like(code, 3, "linear", rounds=3)
        assert muzzle.stats.movement_ops <= qccdsim.stats.movement_ops

    def test_ours_beats_both_everywhere(self):
        """Table 3's headline: our compiler wins every configuration."""
        cases = [
            (RepetitionCode(3), 2, "linear"),
            (RepetitionCode(5), 3, "linear"),
            (RotatedSurfaceCode(2), 2, "grid"),
            (RotatedSurfaceCode(3), 3, "grid"),
        ]
        for code, cap, topo in cases:
            ours = compile_memory_experiment(code, cap, topo, rounds=3)
            for baseline in (compile_qccdsim_like, compile_muzzle_like):
                try:
                    theirs = baseline(code, cap, topo, rounds=3)
                except BaselineFailure:
                    continue  # a failure also counts as a win
                assert (
                    ours.stats.movement_time_us
                    <= theirs.stats.movement_time_us * 1.05
                ), (code.name, code.distance, cap, topo, baseline.__name__)


class TestFailureModes:
    def test_device_too_small_raises(self):
        # Force a placement failure by requesting an undersized device:
        # round-robin fill of 2d-1 qubits into ceil(n/(cap-1)) traps
        # always fits, so instead check the error path directly.
        from repro.baselines.qccdsim_like import _round_robin_placement

        code = RepetitionCode(3)
        placement = _round_robin_placement(code, 3, "linear")
        assert sorted(placement.qubit_to_trap) == list(range(code.num_qubits))

    def test_baseline_failure_is_runtime_error(self):
        assert issubclass(BaselineFailure, RuntimeError)

    def test_greedy_router_has_no_deadlock_recovery(self):
        from repro.baselines.qccdsim_like import _GreedyRouter

        assert _GreedyRouter._force_unblock.__qualname__.startswith(
            "_GreedyRouter"
        )
