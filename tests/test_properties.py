"""Cross-cutting property-based tests (hypothesis) on pipeline invariants.

These complement the per-module property tests: each property here
exercises several subsystems at once on randomly drawn configurations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import DEFAULT_TIMES
from repro.codes import RepetitionCode, RotatedSurfaceCode, make_code
from repro.core import (
    build_gate_dag,
    compile_memory_experiment,
    compute_stats,
    place,
    program_to_circuit,
    schedule_asap,
    schedule_type_exclusive,
)
from repro.core.ir import MOVEMENT_KINDS
from repro.core.route import Router
from repro.noise import DEFAULT_NOISE
from repro.sim import TableauSimulator

# Strategies ------------------------------------------------------------

small_configs = st.sampled_from([
    ("repetition", 3, 2, "linear"),
    ("repetition", 4, 3, "linear"),
    ("repetition", 5, 2, "linear"),
    ("rotated_surface", 2, 2, "grid"),
    ("rotated_surface", 3, 2, "grid"),
    ("rotated_surface", 3, 4, "grid"),
    ("rotated_surface", 2, 2, "switch"),
])


class TestCompilerInvariants:
    @given(small_configs, st.integers(1, 3))
    @settings(max_examples=12, deadline=None)
    def test_every_compile_is_deterministic_and_complete(self, config, rounds):
        name, d, cap, topo = config
        code = make_code(name, d)
        a = compile_memory_experiment(code, cap, topo, rounds=rounds)
        b = compile_memory_experiment(code, cap, topo, rounds=rounds)
        assert [op.kind for op in a.ops] == [op.kind for op in b.ops]
        assert a.stats.makespan_us == b.stats.makespan_us
        gate_ids = [op.gate_id for op in a.ops if op.gate_id is not None]
        assert len(gate_ids) == len(set(gate_ids))
        expected = len(build_gate_dag(code, rounds))
        assert len(gate_ids) == expected

    @given(small_configs)
    @settings(max_examples=8, deadline=None)
    def test_schedule_start_times_respect_deps(self, config):
        name, d, cap, topo = config
        code = make_code(name, d)
        program = compile_memory_experiment(code, cap, topo, rounds=2)
        for op in program.ops:
            for dep in op.deps:
                assert program.start[op.id] + 1e-9 >= program.end(dep)

    @given(small_configs)
    @settings(max_examples=6, deadline=None)
    def test_wise_schedule_never_faster(self, config):
        name, d, cap, topo = config
        code = make_code(name, d)
        gates = build_gate_dag(code, 2)
        placement = place(code, cap, topo)
        ops = Router(code, placement, gates, DEFAULT_TIMES).run()
        asap = schedule_asap(ops)
        wise = schedule_type_exclusive(ops)
        end_asap = max(asap[o.id] + o.duration for o in ops)
        end_wise = max(wise[o.id] + o.duration for o in ops)
        assert end_wise + 1e-9 >= end_asap

    @given(small_configs)
    @settings(max_examples=6, deadline=None)
    def test_compiled_circuit_noiseless_determinism(self, config):
        """The strongest invariant: any compiled config measures its
        stabilizers deterministically in the absence of noise."""
        name, d, cap, topo = config
        code = make_code(name, d)
        program = compile_memory_experiment(code, cap, topo, rounds=2)
        export = program_to_circuit(program, code, DEFAULT_NOISE)
        clean = export.circuit.without_noise()
        rec = np.array(TableauSimulator(clean.num_qubits, seed=0).run(clean))
        for group in clean.detector_records():
            assert rec[group].sum() % 2 == 0

    @given(small_configs, st.integers(1, 3))
    @settings(max_examples=8, deadline=None)
    def test_stats_partition_ops(self, config, rounds):
        name, d, cap, topo = config
        code = make_code(name, d)
        program = compile_memory_experiment(code, cap, topo, rounds=rounds)
        stats = program.stats
        n_movement = sum(1 for op in program.ops if op.kind in MOVEMENT_KINDS)
        n_swaps = sum(1 for op in program.ops if op.kind == "SWAP")
        n_gates = len(program.ops) - n_movement - n_swaps
        assert stats.movement_ops == n_movement + n_swaps
        assert stats.num_gates == n_gates


class TestMonotonicityProperties:
    @given(st.integers(2, 6))
    @settings(max_examples=5, deadline=None)
    def test_more_rounds_longer_makespan(self, d):
        code = RepetitionCode(d)
        m1 = compile_memory_experiment(code, 2, "linear", rounds=1).stats.makespan_us
        m3 = compile_memory_experiment(code, 2, "linear", rounds=3).stats.makespan_us
        assert m3 > m1

    @given(st.integers(2, 5))
    @settings(max_examples=4, deadline=None)
    def test_movement_scales_with_rounds(self, d):
        code = RotatedSurfaceCode(min(d, 3))
        one = compile_memory_experiment(code, 2, "grid", rounds=1).stats
        three = compile_memory_experiment(code, 2, "grid", rounds=3).stats
        assert three.movement_ops > one.movement_ops

    @given(st.floats(1.0, 10.0))
    @settings(max_examples=20, deadline=None)
    def test_improvement_scales_all_error_rates_down(self, factor):
        from repro.noise import (
            measurement_error,
            reset_error,
            single_qubit_error,
            two_qubit_error,
        )

        base = DEFAULT_NOISE
        better = base.improved(factor)
        for fn, args in (
            (two_qubit_error, (40.0, 2, 10.0)),
            (single_qubit_error, (5.0, 2, 10.0)),
        ):
            assert fn(better, *args) == pytest.approx(fn(base, *args) / factor)
        assert measurement_error(better) == pytest.approx(
            measurement_error(base) / factor
        )
        assert reset_error(better) == pytest.approx(reset_error(base) / factor)


class TestExportProperties:
    @given(small_configs)
    @settings(max_examples=6, deadline=None)
    def test_export_measurement_bookkeeping(self, config):
        name, d, cap, topo = config
        code = make_code(name, d)
        rounds = 2
        program = compile_memory_experiment(code, cap, topo, rounds=rounds)
        export = program_to_circuit(program, code, DEFAULT_NOISE)
        n_anc = len(code.ancilla_qubits)
        n_data = len(code.data_qubits)
        assert export.circuit.num_measurements == rounds * n_anc + n_data
        assert len(export.meas_index) == rounds * n_anc + n_data
        # Record indices are unique and within range.
        indices = sorted(export.meas_index.values())
        assert indices == list(range(rounds * n_anc + n_data))

    @given(small_configs)
    @settings(max_examples=6, deadline=None)
    def test_noise_probabilities_valid(self, config):
        name, d, cap, topo = config
        code = make_code(name, d)
        program = compile_memory_experiment(code, cap, topo, rounds=2)
        export = program_to_circuit(program, code, DEFAULT_NOISE)
        for inst in export.circuit.instructions:
            for p in inst.args:
                if inst.name in ("DEPOLARIZE1", "DEPOLARIZE2", "X_ERROR",
                                 "Z_ERROR", "PAULI_CHANNEL_1"):
                    assert 0.0 <= p <= 0.76
