"""Toolflow tests: the Figure-2 evaluation pipeline end to end."""

import pytest

from repro.toolflow import DesignSpaceExplorer, EvaluationRecord, format_table, ratio


class TestEvaluate:
    @pytest.fixture(scope="class")
    def explorer(self):
        return DesignSpaceExplorer(code_name="rotated_surface")

    def test_compile_only_record(self, explorer):
        record = explorer.evaluate(3, capacity=2, topology="grid", rounds=2)
        assert record.round_time_us > 0
        assert record.movement_ops > 0
        assert record.electrodes > 0
        assert record.data_rate_bitps > 0
        assert record.ler_per_round is None  # no shots requested

    def test_with_simulation(self, explorer):
        record = explorer.evaluate(
            2, capacity=2, topology="grid", rounds=2, shots=300
        )
        assert record.shots == 300
        assert record.ler_per_round is not None
        assert 0 < record.ler_per_round < 1
        assert "max_nbar" in record.extras

    def test_wise_wiring_changes_resources_and_time(self, explorer):
        std = explorer.evaluate(4, capacity=2, wiring="standard", rounds=2)
        wise = explorer.evaluate(4, capacity=2, wiring="wise", rounds=2)
        assert wise.num_dacs < std.num_dacs / 10
        assert wise.round_time_us > std.round_time_us

    def test_default_rounds_is_distance(self, explorer):
        record = explorer.evaluate(3, capacity=2)
        assert record.rounds == 3

    def test_gate_improvement_lowers_ler(self, explorer):
        base = explorer.evaluate(2, capacity=2, rounds=2, shots=800)
        improved = explorer.evaluate(
            2, capacity=2, rounds=2, shots=800, gate_improvement=10.0
        )
        assert improved.ler_per_round < base.ler_per_round

    def test_repetition_explorer(self):
        ex = DesignSpaceExplorer(code_name="repetition")
        record = ex.evaluate(3, capacity=2, topology="linear", rounds=2)
        assert record.code == "repetition"

    def test_sweep_distances(self, explorer):
        records = explorer.sweep_distances([2, 3], capacity=2, rounds=2)
        assert [r.distance for r in records] == [2, 3]

    def test_ler_projection_pipeline(self):
        ex = DesignSpaceExplorer(code_name="rotated_surface")
        records, proj = ex.ler_projection(
            [2, 3], shots=400, capacity=2, topology="grid",
            gate_improvement=5.0, rounds=2,
        )
        assert len(records) == 2
        assert proj.ler_at(5) > 0


class TestRecord:
    def test_as_row_keys(self):
        record = EvaluationRecord(
            code="rotated_surface",
            distance=3,
            capacity=2,
            topology="grid",
            wiring="standard",
            gate_improvement=1.0,
            rounds=3,
        )
        row = record.as_row()
        assert row["d"] == 3 and row["cap"] == 2
        assert row["ler_round"] is None

    def test_movement_per_round(self):
        record = EvaluationRecord(
            code="r", distance=3, capacity=2, topology="grid",
            wiring="standard", gate_improvement=1.0, rounds=4,
            movement_ops=40,
        )
        assert record.movement_ops_per_round == 10


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["alpha", 1.5], ["b", None]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert "NaN" in lines[3]

    def test_large_and_small_floats_scientific(self):
        text = format_table(["v"], [[1.3e12], [2e-9]])
        assert "e+" in text.lower() or "e1" in text
        assert "e-09" in text

    def test_ratio(self):
        assert ratio(6, 3) == 2
        assert ratio(1, 0) == float("inf")
