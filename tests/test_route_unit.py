"""Focused unit tests for router internals (pathfinding, swaps, hops)."""

import pytest

from repro.arch import DEFAULT_TIMES, grid_device, linear_device
from repro.codes import RepetitionCode, RotatedSurfaceCode
from repro.core import build_gate_dag, place
from repro.core.route import Router, RoutingError


def _router(code, cap, topo, rounds=1):
    gates = build_gate_dag(code, rounds)
    placement = place(code, cap, topo)
    return Router(code, placement, gates, DEFAULT_TIMES)


class TestPathfinding:
    def test_dijkstra_prefers_short_paths(self):
        router = _router(RepetitionCode(4), 2, "linear")
        traps = [t.id for t in router.device.traps]
        alloc = {c.id: 0 for c in router.device.components}
        path = router._find_path(traps[0], traps[1], alloc)
        assert path is not None
        assert path[0] == traps[0] and path[-1] == traps[1]
        assert len(path) == 3  # trap, segment, trap

    def test_dijkstra_blocked_by_full_component(self):
        router = _router(RepetitionCode(3), 2, "linear")
        traps = [t.id for t in router.device.traps]
        alloc = {c.id: 0 for c in router.device.components}
        # Saturate the only segment between trap 0 and trap 1.
        seg = router.device.neighbors(traps[0])[0]
        alloc[seg] = 1
        assert router._find_path(traps[0], traps[1], alloc) is None

    def test_same_trap_returns_none(self):
        router = _router(RepetitionCode(3), 2, "linear")
        trap = router.device.traps[0].id
        alloc = {c.id: 0 for c in router.device.components}
        assert router._find_path(trap, trap, alloc) is None

    def test_static_distance_caches_and_matches(self):
        router = _router(RotatedSurfaceCode(2), 2, "grid")
        traps = [t.id for t in router.device.traps]
        d1 = router._static_distance(traps[0], traps[1])
        d2 = router._static_distance(traps[0], traps[1])
        assert d1 == d2
        # One diagonal grid hop: split+shuttle+entry+exit+shuttle+merge.
        expected = 80 + 5 + 100 + 100 + 5 + 80
        neighbours = router.device.neighbor_traps(traps[0])
        dist = router._static_distance(traps[0], neighbours[0])
        assert dist == pytest.approx(expected)

    def test_hop_cost_by_topology(self):
        grid_router = _router(RotatedSurfaceCode(2), 2, "grid")
        line_router = _router(RepetitionCode(3), 2, "linear")
        assert grid_router._hop_cost() == pytest.approx(370)
        assert line_router._hop_cost() == pytest.approx(165)


class TestSwapEmission:
    def test_no_swaps_when_ion_at_end(self):
        router = _router(RepetitionCode(4), 4, "linear")
        trap = next(
            t for t, chain in router.chains.items() if len(chain) >= 2
        )
        chain = router.chains[trap]
        ion = chain[0]
        before = len(router.ops)
        router._emit_swaps_to_end(trap, ion, 0)
        assert len(router.ops) == before  # already at that end

    def test_swaps_move_ion_to_far_end(self):
        router = _router(RepetitionCode(4), 4, "linear")
        trap = next(
            t for t, chain in router.chains.items() if len(chain) >= 3
        )
        chain = router.chains[trap]
        ion = chain[0]
        router._emit_swaps_to_end(trap, ion, 1)
        assert router.chains[trap][-1] == ion
        swaps = [op for op in router.ops if op.kind == "SWAP"]
        assert len(swaps) == len(chain) - 1
        for op in swaps:
            assert op.duration == DEFAULT_TIMES.swap


class TestHopEmission:
    def test_hop_updates_location_and_chains(self):
        router = _router(RepetitionCode(3), 2, "linear")
        traps = [t.id for t in router.device.traps]
        src = traps[0]
        dst = traps[1]
        ion = router.chains[src][0]
        alloc = router._occupancy()
        path = router._find_path(src, dst, alloc)
        router._emit_hop(ion, path)
        assert router.location[ion] == dst
        assert ion in router.chains[dst]
        assert ion not in router.chains[src]

    def test_hop_emits_expected_primitive_sequence(self):
        router = _router(RepetitionCode(3), 2, "linear")
        traps = [t.id for t in router.device.traps]
        ion = router.chains[traps[0]][0]
        alloc = router._occupancy()
        path = router._find_path(traps[0], traps[1], alloc)
        router._emit_hop(ion, path)
        kinds = [op.kind for op in router.ops]
        assert kinds == ["SPLIT", "SHUTTLE", "MERGE"]

    def test_two_hop_passes_through_intermediate_trap(self):
        router = _router(RepetitionCode(3), 2, "linear")
        traps = [t.id for t in router.device.traps]
        ion = router.chains[traps[0]][0]
        # Empty the intermediate trap so no swaps are needed.
        middle_chain = router.chains[traps[1]]
        displaced = list(middle_chain)
        for q in displaced:
            middle_chain.remove(q)
            router.chains[traps[2]].append(q)
            router.location[q] = traps[2]
        alloc = router._occupancy()
        alloc[traps[2]] = 0  # admit the path in spite of our shuffling
        path = router._dijkstra(traps[0], alloc, lambda n: n == traps[2])
        router._emit_hop(ion, path)
        kinds = [op.kind for op in router.ops]
        assert kinds == [
            "SPLIT", "SHUTTLE", "MERGE",  # into the intermediate trap
            "SPLIT", "SHUTTLE", "MERGE",  # out the other side
        ]


class TestOccupancy:
    def test_occupancy_counts_chains(self):
        router = _router(RotatedSurfaceCode(2), 2, "grid")
        alloc = router._occupancy()
        for trap_id, chain in router.chains.items():
            assert alloc[trap_id] == len(chain)
        for seg in router.device.segments:
            assert alloc[seg.id] == 0

    def test_op_concurrency_windows(self):
        router = _router(RotatedSurfaceCode(2), 2, "switch")
        hub = router.device.junctions[0]
        assert router._op_concurrency(hub.id) == hub.capacity
        trap = router.device.traps[0]
        assert router._op_concurrency(trap.id) == 1


class TestDeadlockReporting:
    def test_error_type(self):
        assert issubclass(RoutingError, RuntimeError)

    def test_deadlock_error_names_blocked_gates_and_occupancy(self):
        """A routing deadlock must be diagnosable from the message alone:
        the blocked gate ids/operands and the trap occupancy appear."""
        router = _router(RotatedSurfaceCode(2), 2, "grid")
        # Make every path search fail: all movement, restoration and
        # forced-unblock attempts come up empty, so the run loop's
        # stall guard trips.
        router._dijkstra = lambda *a, **k: None
        with pytest.raises(RoutingError) as excinfo:
            router.run()
        message = str(excinfo.value)
        blocked = router._blocked_gates()
        assert blocked, "the stalled router should still report blocked gates"
        for gate in blocked[:8]:
            assert f"#{gate.id} {gate.kind}" in message
        assert "trap occupancy" in message
        assert f"capacity {router.device.trap_capacity}" in message
        # The occupancy map itself (trap -> residents) is in the text.
        occupied = [t for t, c in sorted(router.chains.items()) if c]
        assert f"{occupied[0]}: {len(router.chains[occupied[0]])}" in message
        assert router.name in message
