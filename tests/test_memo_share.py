"""Cross-worker syndrome-memo dedupe (worker protocol v3).

Covers the three layers separately and together: the
:class:`SyndromeMemo` sharding primitives (ownership, outbox, absorb,
shared-hit accounting), the worker message handler (config / memo
messages, the 8th published reply element), and the driver-side
replication loop on a synchronous stub pool — including the guarantee
that sharing never changes failure counts, only where decoding work
happens.
"""

import numpy as np
import pytest

from repro.decoders import (
    DetectorGraph,
    MwpmDecoder,
    SyndromeMemo,
    memo_owner,
    native,
)
from repro.decoders.batch import decode_packed_dedup
from repro.engine import SweepSpec
from repro.engine.progress import ProgressReporter
from repro.engine.runner import (
    ShardExecutor,
    WorkerPoolBackend,
    handle_worker_message,
    run_sweep,
)
from repro.sim import DemError, DetectorErrorModel, pack_bool_rows


# ----------------------------------------------------------------------
# SyndromeMemo sharding primitives
# ----------------------------------------------------------------------
class TestMemoSharding:
    def test_memo_owner_is_deterministic_and_in_range(self):
        keys = [bytes([i, i * 3 % 251]) for i in range(64)]
        for slots in (1, 2, 3, 7):
            owners = [memo_owner(key, slots) for key in keys]
            assert owners == [memo_owner(key, slots) for key in keys]
            assert all(0 <= owner < slots for owner in owners)
        # Non-degenerate spread: more than one slot actually owns keys.
        assert len({memo_owner(key, 4) for key in keys}) > 1

    def test_enable_sharing_validates_slot(self):
        memo = SyndromeMemo()
        with pytest.raises(ValueError):
            memo.enable_sharing(2, 2)
        with pytest.raises(ValueError):
            memo.enable_sharing(0, 0)
        memo.enable_sharing(1, 2)
        assert memo.sharing

    def test_outbox_only_queues_owned_entries(self):
        memo = SyndromeMemo()
        memo.enable_sharing(0, 2)
        keys = [bytes([i]) * 8 for i in range(32)]
        for i, key in enumerate(keys):
            memo.insert(key, i)
        drained = memo.drain_outbox()
        assert drained  # slot 0 owns some of 32 random-ish keys
        assert all(memo_owner(key, 2) == 0 for key, _ in drained)
        assert len(memo.table) == 32  # unowned entries still cached locally
        assert memo.drain_outbox() == []  # drain clears

    def test_absorb_counts_new_entries_and_marks_remote(self):
        memo = SyndromeMemo()
        memo.enable_sharing(0, 2)
        memo.insert(b"local-key", 5)
        assert memo.absorb([(b"peer-key", 7), (b"local-key", 5)]) == 1
        assert memo.table[b"peer-key"] == 7
        assert b"peer-key" in memo.remote_keys
        assert b"local-key" not in memo.remote_keys
        # Absorbed entries never re-enter the outbox.
        assert all(key != b"peer-key" for key, _ in memo.drain_outbox())

    def test_disable_sharing_clears_outbox(self):
        memo = SyndromeMemo()
        memo.enable_sharing(0, 1)  # slot 0 of 1 owns everything
        memo.insert(b"k", 1)
        memo.disable_sharing()
        assert not memo.sharing
        assert memo.drain_outbox() == []

    def test_shared_hits_counted_on_absorbed_entries_only(self):
        dem = DetectorErrorModel(3, 1)
        dem.errors.append(DemError((0,), (0,), 0.05))
        dem.errors.append(DemError((0, 1), (), 0.05))
        dem.errors.append(DemError((1, 2), (0,), 0.05))
        dem.errors.append(DemError((2,), (), 0.05))
        graph = DetectorGraph.from_dem(dem)
        decoder = MwpmDecoder(graph)
        rows = np.array([[True, False, False], [False, True, True]])
        words = pack_bool_rows(rows)
        expected = decode_packed_dedup(decoder.decode_unique_words, words)

        memo = SyndromeMemo()
        memo.absorb([(words[0].tobytes(), int(expected[0]))])
        got = decode_packed_dedup(
            decoder.decode_unique_words, words, memo=memo
        )
        assert np.array_equal(got, expected)
        hits, misses, entries, shared = memo.snapshot()
        assert (hits, misses, shared) == (1, 1, 1)
        # A second pass hits both rows but only one is a *shared* hit.
        decode_packed_dedup(decoder.decode_unique_words, words, memo=memo)
        hits, misses, entries, shared = memo.snapshot()
        assert (hits, misses, shared) == (3, 1, 2)


# ----------------------------------------------------------------------
# Worker message handler (protocol v3)
# ----------------------------------------------------------------------
def _primed_executor(share=None):
    executor = ShardExecutor()
    if share is not None:
        executor.set_memo_share(share)
    return executor


class TestWorkerProtocol:
    def test_config_applies_memo_share_and_native(self):
        executor = ShardExecutor()
        try:
            handle_worker_message(
                executor,
                ("config", {"memo_share": {"slot": 1, "slots": 3},
                            "native_blossom": True}),
            )
            assert executor._memo_share == (1, 3)
            assert native.requested()
            handle_worker_message(executor, ("config", {}))
            assert executor._memo_share is None
            assert not native.requested()
        finally:
            native.configure(False)

    def test_memo_message_for_unknown_circuit_is_dropped(self):
        executor = _primed_executor({"slot": 0, "slots": 2})
        reply = handle_worker_message(
            executor, ("memo", "no-such-circuit", "mwpm", [(b"k", 1)], 0)
        )
        assert reply is None  # tolerated, no error reply

    def test_shard_reply_appends_published_entries_when_sharing(self):
        from repro.engine.cache import CompilationCache

        from repro.codes import RepetitionCode, UniformNoise, ideal_memory_circuit
        from repro.engine.cache import dem_to_jsonable
        from repro.sim import circuit_to_dem

        circ = ideal_memory_circuit(
            RepetitionCode(3), rounds=2, noise=UniformNoise(0.03)
        )
        dem_data = dem_to_jsonable(circuit_to_dem(circ))
        seed = np.random.SeedSequence(3)

        # slots=1: the single worker owns every key, so any new memo
        # entry must be published with the reply.
        executor = _primed_executor({"slot": 0, "slots": 1})
        handle_worker_message(
            executor, ("prime", "ckt", str(circ), dem_data, dem_data, None, 0)
        )
        reply = handle_worker_message(
            executor, ("shard", 0, "ckt", "mwpm", "frame", 128, seed, 0)
        )
        assert reply[0] == "ok" and len(reply) == 8
        published = reply[7]
        assert published and all(
            isinstance(key, bytes) and isinstance(mask, int)
            for key, mask in published
        )
        # Entries drain exactly once: an identical shard re-decodes
        # nothing new, so the reply shrinks back to the unshared shape.
        reply2 = handle_worker_message(
            executor, ("shard", 1, "ckt", "mwpm", "frame", 128, seed, 0)
        )
        assert len(reply2) == 6

        # Sharing off: same shard, classic 6-tuple reply.
        executor2 = _primed_executor()
        handle_worker_message(
            executor2, ("prime", "ckt", str(circ), dem_data, dem_data, None, 0)
        )
        reply3 = handle_worker_message(
            executor2, ("shard", 0, "ckt", "mwpm", "frame", 128, seed, 0)
        )
        assert len(reply3) == 6
        assert reply3[2] == reply[2]  # sharing never changes failures


# ----------------------------------------------------------------------
# Driver-side replication on a synchronous stub pool
# ----------------------------------------------------------------------
class StubPoolBackend(WorkerPoolBackend):
    """Real WorkerPoolBackend bookkeeping and the real worker message
    handler over a synchronous in-process transport (mirror of the
    telemetry-protocol stub, at protocol 3)."""

    name = "stub"

    def __init__(self, workers: int = 2, protocol: int = 3):
        self.queue_depth = 2
        self._workers = workers
        self._protocol = protocol
        self._executors = [ShardExecutor() for _ in range(workers)]
        self._replies: list[tuple] = []
        self.sent: list[tuple[int, tuple]] = []
        self._init_pool()
        self._load = [0] * workers

    def _ensure_workers(self) -> None:
        pass

    def _live_workers(self) -> list[int]:
        return list(range(self._workers))

    def _worker_slots(self) -> int:
        return self._workers

    def _worker_protocol(self, worker: int) -> int:
        return self._protocol

    def _send(self, worker: int, message: tuple) -> None:
        self.sent.append((worker, message))
        reply = handle_worker_message(self._executors[worker], message)
        if reply is not None:
            self._replies.append(reply)

    def poll(self):
        outcomes = []
        while self._replies:
            outcome = self._handle(self._replies.pop(0))
            if outcome is not None:
                outcomes.append(outcome)
        return outcomes

    def wait(self):
        return self.poll()

    def close(self) -> None:
        pass

    def terminate(self) -> None:
        pass


def _spec(**overrides):
    base = dict(
        distances=(3,), shots=4096, rounds=2, master_seed=7,
        gate_improvements=(5.0,),
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestDriverReplication:
    def test_config_carries_slot_assignment(self):
        backend = StubPoolBackend(workers=2)
        run_sweep(_spec(shots=512), backend=backend, shard_shots=64)
        configs = sorted(
            message[1]["memo_share"]["slot"]
            for _, message in backend.sent if message[0] == "config"
        )
        assert configs == [0, 1]
        slots = {
            message[1]["memo_share"]["slots"]
            for _, message in backend.sent if message[0] == "config"
        }
        assert slots == {2}

    def test_memo_entries_replicate_and_shared_hits_flow(self):
        backend = StubPoolBackend(workers=2)
        [result] = run_sweep(_spec(), backend=backend, shard_shots=64)
        memo_msgs = [m for _, m in backend.sent if m[0] == "memo"]
        assert memo_msgs, "no replication traffic despite shared syndromes"
        health = backend.pool_health()
        share = health["memo_share"]
        assert share["published_entries"] > 0
        assert share["pushed_entries"] > 0
        assert share["segments"] == 1
        extras = result.extras["memo"]
        assert extras.get("shared_hits", 0) > 0
        assert extras["hits"] >= extras["shared_hits"]

    def test_sharing_never_changes_failure_counts(self):
        shared = StubPoolBackend(workers=3)
        [with_share] = run_sweep(_spec(), backend=shared, shard_shots=64)

        unshared = StubPoolBackend(workers=3)
        unshared.memo_share = False
        [without] = run_sweep(_spec(), backend=unshared, shard_shots=64)
        assert not any(m[0] == "memo" for _, m in unshared.sent)
        assert not any(
            "memo_share" in m[1] for _, m in unshared.sent if m[0] == "config"
        )
        assert with_share.failures == without.failures
        assert with_share.shots == without.shots

    def test_protocol2_pool_never_engages_memo_share(self):
        backend = StubPoolBackend(workers=2, protocol=2)
        [result] = run_sweep(_spec(shots=512), backend=backend, shard_shots=64)
        assert not any(m[0] == "memo" for _, m in backend.sent)
        assert not any(m[0] == "config" for _, m in backend.sent)
        assert result.failures is not None
        assert "memo_share" not in backend.pool_health()

    def test_duplicate_publishes_counted_once(self):
        backend = StubPoolBackend(workers=1)
        meta = ("ckt", "mwpm")
        backend._merge_memo(meta, [(b"k1", 3), (b"k2", 5)], origin=0)
        backend._merge_memo(meta, [(b"k1", 3)], origin=0)
        assert backend._memo_published == 2
        assert backend._memo_duplicates == 1
        assert len(backend._memo_segments[meta]) == 2


# ----------------------------------------------------------------------
# Progress surfaces
# ----------------------------------------------------------------------
class TestProgressSurfaces:
    def _reporter(self, lines):
        reporter = ProgressReporter()
        reporter._emit = lines.append
        reporter.start(1)
        return reporter

    def test_finish_line_reports_cross_worker_hits(self):
        lines: list[str] = []
        reporter = self._reporter(lines)
        reporter.finish(
            memo_stats={
                "hits": 10, "misses": 4, "peak_entries": 4, "shared_hits": 3,
            }
        )
        assert any("(3 cross-worker)" in line for line in lines)

    def test_status_line_reports_cross_worker_rate(self):
        lines: list[str] = []
        reporter = self._reporter(lines)
        reporter.status({
            "shards_done": 2,
            "memo": {"hits": 8, "misses": 2, "hit_rate": 0.8,
                     "shared_hits": 5},
        })
        assert any("50.0% cross-worker" in line for line in lines)
