"""Decoder tests: graph construction, MWPM, union-find, lookup oracle."""

import numpy as np
import pytest

from repro.codes import (
    RepetitionCode,
    RotatedSurfaceCode,
    UniformNoise,
    ideal_memory_circuit,
)
from repro.decoders import (
    DetectorGraph,
    LookupDecoder,
    MwpmDecoder,
    UnionFindDecoder,
    llr_weight,
)
from repro.sim import DemError, DetectorErrorModel, FrameSimulator, circuit_to_dem


def _line_graph(n=4, p=0.05):
    """Repetition-code-like detector line with boundary at both ends."""
    dem = DetectorErrorModel(n, 1)
    dem.errors.append(DemError((0,), (0,), p))       # boundary edge, logical
    for i in range(n - 1):
        dem.errors.append(DemError((i, i + 1), (), p))
    dem.errors.append(DemError((n - 1,), (), p))     # other boundary
    return DetectorGraph.from_dem(dem)


class TestDetectorGraph:
    def test_weights_are_llr(self):
        graph = _line_graph(p=0.05)
        for edge in graph.edges:
            assert edge.weight == pytest.approx(llr_weight(0.05))

    def test_edge_count(self):
        graph = _line_graph(4)
        assert len(graph.edges) == 5  # 3 internal + 2 boundary

    def test_rejects_hyperedges(self):
        dem = DetectorErrorModel(3, 0, [DemError((0, 1, 2), (), 0.1)])
        with pytest.raises(ValueError):
            DetectorGraph.from_dem(dem)

    def test_parallel_edges_fold(self):
        dem = DetectorErrorModel(2, 0)
        dem.errors.append(DemError((0, 1), (), 0.1))
        dem.errors.append(DemError((0, 1), (), 0.1))
        graph = DetectorGraph.from_dem(dem)
        assert len(graph.edges) == 1
        assert graph.edges[0].probability == pytest.approx(0.18)

    def test_distance_and_path_mask(self):
        graph = _line_graph(4, p=0.05)
        w = llr_weight(0.05)
        # 0 and 3 connect through the boundary node (2 edges), which is
        # equivalent to matching each endpoint to its own boundary.
        assert graph.distance(0, 3) == pytest.approx(2 * w)
        assert graph.distance(1, 2) == pytest.approx(w)
        assert graph.distance(0, graph.boundary) == pytest.approx(w)
        # Path 1 -> left boundary crosses the logical edge.
        assert graph.path_observable_mask(1, graph.boundary) in (0, 1)

    def test_floor_probability(self):
        dem = DetectorErrorModel(1, 1)
        dem.errors.append(DemError((), (0,), 0.01))
        graph = DetectorGraph.from_dem(dem)
        assert graph.floor_probability() == pytest.approx(0.01)


class TestMwpmDecoder:
    def test_empty_syndrome_no_correction(self):
        dec = MwpmDecoder(_line_graph())
        assert dec.decode(np.zeros(4, dtype=bool)) == 0

    def test_single_flag_matches_to_boundary(self):
        graph = _line_graph(4)
        dec = MwpmDecoder(graph)
        syndrome = np.zeros(4, dtype=bool)
        syndrome[0] = True  # nearest boundary is the logical edge
        assert dec.decode(syndrome) == 1

    def test_pair_matches_internally(self):
        graph = _line_graph(4)
        dec = MwpmDecoder(graph)
        syndrome = np.zeros(4, dtype=bool)
        syndrome[1] = syndrome[2] = True
        # Internal match crosses no logical edge.
        assert dec.decode(syndrome) == 0

    def test_far_flag_prefers_near_boundary(self):
        graph = _line_graph(4)
        dec = MwpmDecoder(graph)
        syndrome = np.zeros(4, dtype=bool)
        syndrome[3] = True
        assert dec.decode(syndrome) == 0  # right boundary, no logical


class TestDecoderAccuracy:
    @pytest.fixture(scope="class")
    def repetition_setup(self):
        code = RepetitionCode(3)
        circ = ideal_memory_circuit(code, rounds=3, noise=UniformNoise(0.01))
        dem = circuit_to_dem(circ)
        graph = DetectorGraph.from_dem(dem)
        sample = FrameSimulator(circ, seed=42).sample(3000)
        return dem, graph, sample

    def test_mwpm_suppresses_repetition_errors(self, repetition_setup):
        _, graph, sample = repetition_setup
        dec = MwpmDecoder(graph)
        fails = dec.logical_failures(sample.detectors, sample.observables)
        # Raw (undecoded) failure rate for comparison.
        raw = sample.observables[:, 0].mean()
        assert fails.mean() < raw
        assert fails.mean() < 0.01

    def test_union_find_close_to_mwpm(self, repetition_setup):
        _, graph, sample = repetition_setup
        mwpm = MwpmDecoder(graph).logical_failures(
            sample.detectors, sample.observables
        )
        uf = UnionFindDecoder(graph).logical_failures(
            sample.detectors, sample.observables
        )
        # Union-find trades accuracy for speed; it must still decode far
        # better than chance and within an order of magnitude of MWPM.
        assert uf.mean() <= max(10 * mwpm.mean(), 0.04)

    def test_lookup_oracle_at_least_as_good_on_weight1(self, repetition_setup):
        dem, graph, sample = repetition_setup
        lookup = LookupDecoder(dem, max_weight=1)
        mwpm = MwpmDecoder(graph)
        # Compare on shots with at most 2 flagged detectors.
        light = sample.detectors.sum(axis=1) <= 2
        dets = sample.detectors[light][:200]
        obs = sample.observables[light][:200]
        lk = (lookup.decode_batch(dets) & 1) != obs[:, 0]
        mw = (mwpm.decode_batch(dets) & 1) != obs[:, 0]
        assert lk.mean() <= mw.mean() + 0.05

    def test_surface_code_distance_suppression(self):
        """LER decreases with distance below threshold (MWPM)."""
        rates = []
        for d in (3, 5):
            code = RotatedSurfaceCode(d)
            circ = ideal_memory_circuit(code, rounds=d, noise=UniformNoise(0.003))
            graph = DetectorGraph.from_dem(circuit_to_dem(circ))
            sample = FrameSimulator(circ, seed=7).sample(2500)
            fails = MwpmDecoder(graph).logical_failures(
                sample.detectors, sample.observables
            )
            rates.append((fails.sum() + 0.5) / (len(fails) + 1))
        assert rates[1] < rates[0]


class TestLookupDecoder:
    def test_rejects_bad_weight(self):
        dem = DetectorErrorModel(1, 0, [DemError((0,), (), 0.1)])
        with pytest.raises(ValueError):
            LookupDecoder(dem, max_weight=0)

    def test_exact_on_single_errors(self):
        dem = DetectorErrorModel(2, 1)
        dem.errors.append(DemError((0,), (0,), 0.1))
        dem.errors.append(DemError((1,), (), 0.1))
        dec = LookupDecoder(dem, max_weight=1)
        assert dec.decode(np.array([True, False])) == 1
        assert dec.decode(np.array([False, True])) == 0
        assert dec.decode(np.array([False, False])) == 0

    def test_unknown_syndrome_abstains(self):
        dem = DetectorErrorModel(3, 1, [DemError((0,), (0,), 0.1)])
        dec = LookupDecoder(dem, max_weight=1)
        assert dec.decode(np.array([True, True, True])) == 0
