"""Deduplicated batch decoding: exactness, memoisation, mixin sharing."""

import numpy as np
import pytest

from repro.codes import RepetitionCode, UniformNoise, ideal_memory_circuit
from repro.decoders import (
    BatchDecoderMixin,
    DetectorGraph,
    LookupDecoder,
    MwpmDecoder,
    SyndromeMemo,
    UnionFindDecoder,
    decode_batch_dedup,
)
from repro.sim import FrameSimulator, circuit_to_dem


@pytest.fixture(scope="module")
def setup():
    circ = ideal_memory_circuit(
        RepetitionCode(3), rounds=3, noise=UniformNoise(0.01)
    )
    dem = circuit_to_dem(circ)
    graph = DetectorGraph.from_dem(dem)
    sample = FrameSimulator(circ, seed=42).sample(2000)
    return dem, graph, sample


def _decoders(dem, graph):
    return [
        MwpmDecoder(graph),
        UnionFindDecoder(graph),
        LookupDecoder(dem, max_weight=2),
    ]


class TestDedupeExactness:
    def test_dedupe_matches_per_shot_decoding(self, setup):
        dem, graph, sample = setup
        for decoder in _decoders(dem, graph):
            fast = decoder.decode_batch(sample.detectors, dedupe=True)
            slow = decoder.decode_batch(sample.detectors, dedupe=False)
            assert np.array_equal(fast, slow), type(decoder).__name__

    def test_logical_failures_identical_with_dedupe_on_off(self, setup):
        dem, graph, sample = setup
        for decoder in _decoders(dem, graph):
            on = decoder.logical_failures(
                sample.detectors, sample.observables, dedupe=True
            )
            off = decoder.logical_failures(
                sample.detectors, sample.observables, dedupe=False
            )
            assert np.array_equal(on, off), type(decoder).__name__

    def test_single_row_batch(self, setup):
        dem, graph, sample = setup
        decoder = MwpmDecoder(graph)
        row = sample.detectors[:1]
        assert decoder.decode_batch(row).tolist() == [decoder.decode(row[0])]


class TestSyndromeMemo:
    def test_memo_carries_across_batches(self, setup):
        dem, graph, sample = setup
        decoder = MwpmDecoder(graph)
        first = decoder.decode_batch(sample.detectors[:1000])
        memo = decoder.syndrome_memo()
        distinct = len(memo)
        assert distinct > 0 and memo.misses == distinct and memo.hits == 0
        # Second batch over the same shots: every syndrome is a hit.
        second = decoder.decode_batch(sample.detectors[:1000])
        assert np.array_equal(first, second)
        assert len(memo) == distinct
        assert memo.hits == distinct

    def test_each_distinct_syndrome_decoded_once(self, setup):
        dem, graph, sample = setup
        calls = 0

        def counting_decode(row):
            nonlocal calls
            calls += 1
            return 0

        batch = sample.detectors[:1000]
        distinct = len(np.unique(np.packbits(batch, axis=1), axis=0))
        memo = SyndromeMemo()
        decode_batch_dedup(counting_decode, batch, memo=memo)
        assert calls == distinct
        decode_batch_dedup(counting_decode, batch, memo=memo)
        assert calls == distinct  # all hits the second time

    def test_memo_limit_stops_insertion_not_decoding(self):
        memo = SyndromeMemo(limit=2)
        rows = np.eye(8, dtype=bool)
        out = decode_batch_dedup(lambda row: int(row.argmax()), rows, memo=memo)
        assert out.tolist() == list(range(8))
        assert len(memo) == 2

    def test_scatter_restores_shot_order(self):
        rows = np.array(
            [[1, 0], [0, 1], [1, 0], [0, 0], [0, 1]], dtype=bool
        )
        out = decode_batch_dedup(lambda row: int(2 * row[0] + row[1]), rows)
        assert out.tolist() == [2, 1, 2, 0, 1]


class TestMixinSharing:
    def test_single_logical_failures_implementation(self):
        # The reduction must live on the mixin, not be re-copied per
        # decoder class.
        for cls in (MwpmDecoder, UnionFindDecoder, LookupDecoder):
            assert issubclass(cls, BatchDecoderMixin)
            assert "logical_failures" not in cls.__dict__
            assert "decode_batch" not in cls.__dict__
        assert "logical_failures" in BatchDecoderMixin.__dict__

    def test_lookup_decoder_gained_logical_failures(self, setup):
        dem, graph, sample = setup
        lookup = LookupDecoder(dem, max_weight=2)
        fails = lookup.logical_failures(
            sample.detectors[:200], sample.observables[:200]
        )
        assert fails.dtype == bool and fails.shape == (200,)
