"""Deduplicated batch decoding: exactness, memoisation, mixin sharing,
and the packed ``decode_packed_batch`` decoder protocol."""

import numpy as np
import pytest

from repro.codes import RepetitionCode, UniformNoise, ideal_memory_circuit
from repro.decoders import (
    BatchDecoderMixin,
    DetectorGraph,
    LookupDecoder,
    MwpmDecoder,
    SyndromeMemo,
    UnionFindDecoder,
    decode_batch_dedup,
    decode_packed_dedup,
)
from repro.sim import FrameSimulator, PackedShard, circuit_to_dem, pack_bool_rows


@pytest.fixture(scope="module")
def setup():
    circ = ideal_memory_circuit(
        RepetitionCode(3), rounds=3, noise=UniformNoise(0.01)
    )
    dem = circuit_to_dem(circ)
    graph = DetectorGraph.from_dem(dem)
    sample = FrameSimulator(circ, seed=42).sample(2000)
    return dem, graph, sample


def _decoders(dem, graph):
    return [
        MwpmDecoder(graph),
        UnionFindDecoder(graph),
        LookupDecoder(dem, max_weight=2),
    ]


class TestDedupeExactness:
    def test_dedupe_matches_per_shot_decoding(self, setup):
        dem, graph, sample = setup
        for decoder in _decoders(dem, graph):
            fast = decoder.decode_batch(sample.detectors, dedupe=True)
            slow = decoder.decode_batch(sample.detectors, dedupe=False)
            assert np.array_equal(fast, slow), type(decoder).__name__

    def test_logical_failures_identical_with_dedupe_on_off(self, setup):
        dem, graph, sample = setup
        for decoder in _decoders(dem, graph):
            on = decoder.logical_failures(
                sample.detectors, sample.observables, dedupe=True
            )
            off = decoder.logical_failures(
                sample.detectors, sample.observables, dedupe=False
            )
            assert np.array_equal(on, off), type(decoder).__name__

    def test_single_row_batch(self, setup):
        dem, graph, sample = setup
        decoder = MwpmDecoder(graph)
        row = sample.detectors[:1]
        assert decoder.decode_batch(row).tolist() == [decoder.decode(row[0])]


class TestSyndromeMemo:
    def test_memo_carries_across_batches(self, setup):
        dem, graph, sample = setup
        decoder = MwpmDecoder(graph)
        first = decoder.decode_batch(sample.detectors[:1000])
        memo = decoder.syndrome_memo()
        distinct = len(memo)
        assert distinct > 0 and memo.misses == distinct and memo.hits == 0
        # Second batch over the same shots: every syndrome is a hit.
        second = decoder.decode_batch(sample.detectors[:1000])
        assert np.array_equal(first, second)
        assert len(memo) == distinct
        assert memo.hits == distinct

    def test_each_distinct_syndrome_decoded_once(self, setup):
        dem, graph, sample = setup
        calls = 0

        def counting_decode(row):
            nonlocal calls
            calls += 1
            return 0

        batch = sample.detectors[:1000]
        distinct = len(np.unique(np.packbits(batch, axis=1), axis=0))
        memo = SyndromeMemo()
        decode_batch_dedup(counting_decode, batch, memo=memo)
        assert calls == distinct
        decode_batch_dedup(counting_decode, batch, memo=memo)
        assert calls == distinct  # all hits the second time

    def test_memo_limit_stops_insertion_not_decoding(self):
        memo = SyndromeMemo(limit=2)
        rows = np.eye(8, dtype=bool)
        out = decode_batch_dedup(lambda row: int(row.argmax()), rows, memo=memo)
        assert out.tolist() == list(range(8))
        assert len(memo) == 2

    def test_scatter_restores_shot_order(self):
        rows = np.array(
            [[1, 0], [0, 1], [1, 0], [0, 0], [0, 1]], dtype=bool
        )
        out = decode_batch_dedup(lambda row: int(2 * row[0] + row[1]), rows)
        assert out.tolist() == [2, 1, 2, 0, 1]


class TestPackedProtocol:
    """The packed-native decoder protocol must agree with the boolean
    boundary APIs on every decoder."""

    def test_decode_packed_batch_matches_boolean(self, setup):
        dem, graph, sample = setup
        words = pack_bool_rows(sample.detectors)
        for decoder in _decoders(dem, graph):
            packed = decoder.decode_packed_batch(words)
            ref = decoder.decode_batch(sample.detectors, dedupe=False)
            assert np.array_equal(packed, ref), type(decoder).__name__

    def test_logical_failures_packed_matches_boolean(self, setup):
        dem, graph, sample = setup
        shard = PackedShard.from_bool(sample.detectors, sample.observables)
        for decoder in _decoders(dem, graph):
            packed = decoder.logical_failures_packed(
                shard.det_words, shard.obs_words
            )
            ref = decoder.logical_failures(
                sample.detectors, sample.observables, dedupe=False
            )
            assert np.array_equal(packed, ref), type(decoder).__name__

    def test_packed_dedupe_off_reference_path(self, setup):
        dem, graph, sample = setup
        words = pack_bool_rows(sample.detectors[:200])
        decoder = MwpmDecoder(graph)
        on = decoder.decode_packed_batch(words, dedupe=True)
        off = decoder.decode_packed_batch(words, dedupe=False)
        assert np.array_equal(on, off)

    def test_memo_shared_between_packed_and_boolean_entry(self, setup):
        dem, graph, sample = setup
        decoder = MwpmDecoder(graph)
        words = pack_bool_rows(sample.detectors[:500])
        decoder.decode_packed_batch(words)
        memo = decoder.syndrome_memo()
        distinct = len(memo)
        assert distinct > 0 and memo.misses == distinct
        # The boolean entry packs to the same words: all hits.
        decoder.decode_batch(sample.detectors[:500])
        assert memo.misses == distinct and memo.hits == distinct

    def test_decode_unique_words_sees_only_distinct_misses(self, setup):
        dem, graph, sample = setup
        seen_batches = []

        class Probe(BatchDecoderMixin):
            num_detectors = sample.detectors.shape[1]

            def decode(self, row):
                return 0

            def decode_unique_words(self, det_words):
                seen_batches.append(len(det_words))
                return np.zeros(len(det_words), dtype=np.int64)

        probe = Probe()
        words = pack_bool_rows(sample.detectors)
        distinct = len(np.unique(words, axis=0))
        probe.decode_packed_batch(words)
        assert seen_batches == [distinct]  # one batched call, misses only
        probe.decode_packed_batch(words)
        assert seen_batches == [distinct]  # second pass: all memo hits

    def test_decode_packed_dedup_validates_correction_count(self):
        words = pack_bool_rows(np.eye(4, dtype=bool))
        with pytest.raises(ValueError, match="corrections"):
            decode_packed_dedup(lambda uniq: np.zeros(1, dtype=np.int64), words)

    def test_memo_snapshot_and_stats(self):
        memo = SyndromeMemo(limit=8)
        assert memo.snapshot() == (0, 0, 0, 0)
        rows = np.eye(3, dtype=bool)
        decode_batch_dedup(lambda row: int(row.argmax()), rows, memo=memo)
        assert memo.snapshot() == (0, 3, 3, 0)
        assert memo.stats() == {
            "hits": 0, "misses": 3, "shared_hits": 0, "entries": 3, "limit": 8,
        }


class TestMixinSharing:
    def test_single_logical_failures_implementation(self):
        # The reduction must live on the mixin, not be re-copied per
        # decoder class.
        for cls in (MwpmDecoder, UnionFindDecoder, LookupDecoder):
            assert issubclass(cls, BatchDecoderMixin)
            assert "logical_failures" not in cls.__dict__
            assert "decode_batch" not in cls.__dict__
        assert "logical_failures" in BatchDecoderMixin.__dict__

    def test_lookup_decoder_gained_logical_failures(self, setup):
        dem, graph, sample = setup
        lookup = LookupDecoder(dem, max_weight=2)
        fails = lookup.logical_failures(
            sample.detectors[:200], sample.observables[:200]
        )
        assert fails.dtype == bool and fails.shape == (200,)
