"""QEC code structure tests: geometry, stabilizers, logicals, rounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import (
    RepetitionCode,
    RotatedSurfaceCode,
    UnrotatedSurfaceCode,
    ideal_memory_circuit,
    make_code,
    memory_detector_spec,
    syndrome_round,
)
from repro.codes.base import Role
from repro.sim import PauliString, TableauSimulator


def _check_pauli(code, check):
    p = PauliString(code.num_qubits)
    for d in check.data:
        if check.basis == "X":
            p.x[d] = True
        else:
            p.z[d] = True
    return p


def _logical(code, which):
    p = PauliString(code.num_qubits)
    support = code.logical_z if which == "Z" else code.logical_x
    for d in support:
        if which == "Z":
            p.z[d] = True
        else:
            p.x[d] = True
    return p


ALL_CODES = [
    RepetitionCode(2),
    RepetitionCode(3),
    RepetitionCode(5),
    RotatedSurfaceCode(2),
    RotatedSurfaceCode(3),
    RotatedSurfaceCode(4),
    RotatedSurfaceCode(5),
    UnrotatedSurfaceCode(2),
    UnrotatedSurfaceCode(3),
]


class TestQubitCounts:
    @pytest.mark.parametrize("d", range(2, 9))
    def test_rotated_counts(self, d):
        code = RotatedSurfaceCode(d)
        assert code.num_qubits == 2 * d * d - 1
        assert len(code.data_qubits) == d * d
        assert len(code.ancilla_qubits) == d * d - 1

    @pytest.mark.parametrize("d", range(2, 7))
    def test_unrotated_counts(self, d):
        code = UnrotatedSurfaceCode(d)
        assert code.num_qubits == (2 * d - 1) ** 2
        assert len(code.data_qubits) == d * d + (d - 1) ** 2

    @pytest.mark.parametrize("d", range(2, 9))
    def test_repetition_counts(self, d):
        code = RepetitionCode(d)
        assert len(code.data_qubits) == d
        assert len(code.ancilla_qubits) == d - 1

    def test_distance_below_two_rejected(self):
        for cls in (RepetitionCode, RotatedSurfaceCode, UnrotatedSurfaceCode):
            with pytest.raises(ValueError):
                cls(1)

    def test_make_code_factory(self):
        assert isinstance(make_code("repetition", 3), RepetitionCode)
        assert isinstance(make_code("rotated_surface", 3), RotatedSurfaceCode)
        with pytest.raises(ValueError):
            make_code("steane", 3)


class TestStabilizerStructure:
    @pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: f"{c.name}-{c.distance}")
    def test_checks_pairwise_commute(self, code):
        paulis = [_check_pauli(code, c) for c in code.checks]
        for i in range(len(paulis)):
            for j in range(i + 1, len(paulis)):
                assert paulis[i].commutes_with(paulis[j])

    @pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: f"{c.name}-{c.distance}")
    def test_logicals_commute_with_checks(self, code):
        for which in ("Z", "X"):
            logical = _logical(code, which)
            for check in code.checks:
                assert logical.commutes_with(_check_pauli(code, check)), (
                    which,
                    check,
                )

    @pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: f"{c.name}-{c.distance}")
    def test_logicals_anticommute_with_each_other(self, code):
        assert not _logical(code, "Z").commutes_with(_logical(code, "X"))

    @pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: f"{c.name}-{c.distance}")
    def test_logical_weight_is_distance(self, code):
        assert len(code.logical_z) == code.distance or isinstance(
            code, RepetitionCode
        )
        if isinstance(code, RepetitionCode):
            assert len(code.logical_z) == 1
            assert len(code.logical_x) == code.distance
        else:
            assert len(code.logical_x) == code.distance

    @pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: f"{c.name}-{c.distance}")
    def test_check_weights(self, code):
        for check in code.checks:
            assert 2 <= check.weight <= 4

    @pytest.mark.parametrize("d", (3, 5, 7))
    def test_rotated_interior_checks_weight4(self, d):
        code = RotatedSurfaceCode(d)
        weight4 = [c for c in code.checks if c.weight == 4]
        weight2 = [c for c in code.checks if c.weight == 2]
        assert len(weight4) == (d - 1) ** 2
        assert len(weight2) == 2 * (d - 1)


class TestLayerSchedule:
    @pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: f"{c.name}-{c.distance}")
    def test_no_data_conflicts_per_layer(self, code):
        # base._validate raises on construction; assert explicitly too.
        for layer in range(code.num_layers):
            seen = set()
            for check in code.checks:
                if layer < len(check.data_by_layer):
                    d = check.data_by_layer[layer]
                    if d is not None:
                        assert d not in seen
                        seen.add(d)

    @pytest.mark.parametrize("d", (3, 5))
    def test_rotated_hook_pairs_are_safe(self, d):
        """Last two data of X checks horizontal, of Z checks vertical."""
        code = RotatedSurfaceCode(d)
        pos = {q.index: q.pos for q in code.qubits}
        for check in code.checks:
            tail = [q for q in check.data_by_layer[2:] if q is not None]
            if len(tail) < 2:
                continue
            (x1, y1), (x2, y2) = pos[tail[0]], pos[tail[1]]
            if check.basis == "X":
                assert y1 == y2, "X hook pair must be horizontal"
            else:
                assert x1 == x2, "Z hook pair must be vertical"

    @pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: f"{c.name}-{c.distance}")
    def test_syndrome_round_shape(self, code):
        round_layers = syndrome_round(code)
        gates = [g for layer in round_layers.layers for g, _ in layer]
        assert gates[0] == "R"
        assert gates[-1] == "M"
        pairs = round_layers.all_two_qubit_pairs()
        expected = sum(c.weight for c in code.checks)
        assert len(pairs) == expected


class TestInteractionGraph:
    def test_nodes_and_edges(self):
        code = RotatedSurfaceCode(3)
        graph = code.interaction_graph()
        assert graph.number_of_nodes() == code.num_qubits
        expected_edges = sum(c.weight for c in code.checks)
        assert graph.number_of_edges() == expected_edges

    def test_early_layers_weigh_more(self):
        code = RotatedSurfaceCode(3)
        graph = code.interaction_graph()
        check = next(c for c in code.checks if c.weight == 4)
        first = check.data_by_layer[0]
        last = check.data_by_layer[-1]
        assert (
            graph[check.ancilla][first]["weight"]
            > graph[check.ancilla][last]["weight"]
        )


class TestMemoryExperiments:
    @pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: f"{c.name}-{c.distance}")
    @pytest.mark.parametrize("basis", ["Z", "X"])
    def test_noiseless_determinism(self, code, basis):
        circ = ideal_memory_circuit(code, rounds=2, basis=basis)
        rec = np.array(TableauSimulator(circ.num_qubits, seed=1).run(circ))
        for group in circ.detector_records():
            assert rec[group].sum() % 2 == 0
        obs = circ.observable_records()[0]
        assert rec[obs].sum() % 2 == 0

    def test_detector_count(self):
        code = RotatedSurfaceCode(3)
        rounds = 4
        spec = memory_detector_spec(code, rounds, "Z")
        n_z = len(code.checks_of_basis("Z"))
        n_all = len(code.checks)
        expected = n_z + (rounds - 1) * n_all + n_z
        assert len(spec.groups) == expected

    def test_observable_is_logical_support(self):
        code = RotatedSurfaceCode(3)
        spec = memory_detector_spec(code, 2, "Z")
        assert sorted(q for q, r in spec.observable) == sorted(code.logical_z)
        spec_x = memory_detector_spec(code, 2, "X")
        assert sorted(q for q, r in spec_x.observable) == sorted(code.logical_x)

    def test_invalid_args_rejected(self):
        code = RepetitionCode(3)
        with pytest.raises(ValueError):
            memory_detector_spec(code, 0, "Z")
        with pytest.raises(ValueError):
            memory_detector_spec(code, 1, "Y")
        with pytest.raises(ValueError):
            ideal_memory_circuit(code, 1, basis="Y")

    @given(st.integers(2, 5), st.integers(1, 4))
    @settings(max_examples=12, deadline=None)
    def test_repetition_memory_deterministic_any_shape(self, d, rounds):
        code = RepetitionCode(d)
        circ = ideal_memory_circuit(code, rounds=rounds)
        rec = np.array(TableauSimulator(circ.num_qubits, seed=0).run(circ))
        for group in circ.detector_records():
            assert rec[group].sum() % 2 == 0


class TestRoles:
    @pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: f"{c.name}-{c.distance}")
    def test_roles_partition(self, code):
        data = {q.index for q in code.data_qubits}
        anc = {q.index for q in code.ancilla_qubits}
        assert data | anc == set(range(code.num_qubits))
        assert not data & anc

    @pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: f"{c.name}-{c.distance}")
    def test_ancillas_have_basis(self, code):
        for q in code.ancilla_qubits:
            assert q.basis in ("X", "Z")
        for q in code.data_qubits:
            assert q.basis is None
