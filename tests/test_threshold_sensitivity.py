"""Tests for threshold scanning and noise sensitivity analysis."""

import pytest

from repro.codes import RepetitionCode, RotatedSurfaceCode
from repro.ler import ThresholdScan, scan_threshold
from repro.ler.estimator import LerResult
from repro.noise import DEFAULT_NOISE
from repro.toolflow import sensitivity_analysis


class TestThresholdScan:
    @pytest.fixture(scope="class")
    def scan(self):
        # Rates chosen so every grid point sees tens of failures at this
        # shot budget — a sub-threshold point near 4e-3 and a clearly
        # super-threshold point at 2.5e-2.
        return scan_threshold(
            RotatedSurfaceCode,
            distances=(3, 5),
            physical_rates=(4e-3, 2.5e-2),
            rounds=3,
            shots=6000,
            seed=5,
        )

    def test_grid_complete(self, scan):
        assert len(scan.results) == 4
        for key, result in scan.results.items():
            assert isinstance(result, LerResult)

    def test_below_threshold_big_code_wins(self, scan):
        assert scan.suppression_at(4e-3) > 1.0

    def test_above_threshold_big_code_loses(self, scan):
        assert scan.suppression_at(2.5e-2) < 1.0

    def test_threshold_in_plausible_range(self, scan):
        """Circuit-level depolarising threshold ~0.3-2% for MWPM."""
        th = scan.threshold_estimate()
        assert th is not None
        assert 5e-4 < th < 2.5e-2

    def test_requires_two_distances(self):
        with pytest.raises(ValueError):
            scan_threshold(RotatedSurfaceCode, distances=(3,))

    def test_manual_scan_object(self):
        results = {
            (3, 0.001): LerResult(1000, 10, 1),
            (5, 0.001): LerResult(1000, 2, 1),
            (3, 0.02): LerResult(1000, 100, 1),
            (5, 0.02): LerResult(1000, 300, 1),
        }
        scan = ThresholdScan((3, 5), (0.001, 0.02), results)
        th = scan.threshold_estimate()
        assert th is not None and 0.001 < th < 0.02

    def test_no_crossing_returns_none(self):
        results = {
            (3, 0.001): LerResult(1000, 10, 1),
            (5, 0.001): LerResult(1000, 2, 1),
            (3, 0.002): LerResult(1000, 20, 1),
            (5, 0.002): LerResult(1000, 4, 1),
        }
        scan = ThresholdScan((3, 5), (0.001, 0.002), results)
        assert scan.threshold_estimate() is None


class TestSensitivity:
    @pytest.fixture(scope="class")
    def entries(self):
        return sensitivity_analysis(
            DEFAULT_NOISE,
            distance=2,
            capacity=2,
            gate_improvement=5.0,
            shots=1500,
            parameters={
                "two-qubit base error": "p_2q_base",
                "reset error": "p_reset",
            },
        )

    def test_sorted_by_swing(self, entries):
        swings = [e.swing for e in entries]
        assert swings == sorted(swings, reverse=True)

    def test_all_parameters_present(self, entries):
        names = {e.parameter for e in entries}
        assert names == {"two-qubit base error", "reset error"}

    def test_two_qubit_error_matters(self, entries):
        """Doubling the dominant channel must move the LER."""
        entry = next(e for e in entries if e.parameter == "two-qubit base error")
        assert entry.swing > 1.2
        assert entry.ler_at_double > entry.ler_at_half

    def test_swing_is_at_least_one(self, entries):
        for entry in entries:
            assert entry.swing >= 1.0
