"""Exact tableau simulator tests: known identities and state facts."""

import numpy as np
import pytest

from repro.sim import PauliString, StabilizerCircuit, TableauSimulator


class TestSingleQubit:
    def test_fresh_qubit_measures_zero(self):
        sim = TableauSimulator(1)
        assert sim.measure(0) is False

    def test_x_flips_measurement(self):
        sim = TableauSimulator(1)
        sim.x_gate(0)
        assert sim.measure(0) is True

    def test_h_gives_random_then_collapsed(self):
        sim = TableauSimulator(1, seed=7)
        sim.h(0)
        assert not sim.is_deterministic(0)
        first = sim.measure(0)
        assert sim.is_deterministic(0)
        assert sim.measure(0) == first

    def test_hzh_equals_x(self):
        sim = TableauSimulator(1)
        sim.h(0)
        sim.z_gate(0)
        sim.h(0)
        assert sim.measure(0) is True

    def test_s_squared_is_z(self):
        sim = TableauSimulator(1)
        sim.h(0)  # |+>
        sim.s(0)
        sim.s(0)  # Z|+> = |->
        sim.h(0)  # |1>
        assert sim.measure(0) is True

    def test_s_dag_inverts_s(self):
        sim = TableauSimulator(1)
        sim.h(0)
        sim.s(0)
        sim.s_dag(0)
        sim.h(0)
        assert sim.measure(0) is False

    def test_sqrt_x_squared_is_x(self):
        sim = TableauSimulator(1)
        sim.sqrt_x(0)
        sim.sqrt_x(0)
        assert sim.measure(0) is True

    def test_y_gate_flips_z_basis(self):
        sim = TableauSimulator(1)
        sim.y_gate(0)
        assert sim.measure(0) is True


class TestTwoQubit:
    def test_bell_pair_correlated(self):
        for seed in range(8):
            sim = TableauSimulator(2, seed=seed)
            sim.h(0)
            sim.cx(0, 1)
            assert sim.measure(0) == sim.measure(1)

    def test_cz_phase_kickback(self):
        # CZ between |+> and |1> flips the plus state.
        sim = TableauSimulator(2)
        sim.h(0)
        sim.x_gate(1)
        sim.cz(0, 1)
        sim.h(0)
        assert sim.measure(0) is True

    def test_swap(self):
        sim = TableauSimulator(2)
        sim.x_gate(0)
        sim.swap(0, 1)
        assert sim.measure(0) is False
        assert sim.measure(1) is True

    def test_ghz_parity(self):
        for seed in range(5):
            sim = TableauSimulator(3, seed=seed)
            sim.h(0)
            sim.cx(0, 1)
            sim.cx(1, 2)
            bits = [sim.measure(q) for q in range(3)]
            assert len(set(bits)) == 1  # all equal


class TestStateInspection:
    def test_initial_stabilizers_are_z(self):
        sim = TableauSimulator(2)
        stabs = sim.stabilizers()
        assert stabs[0] == PauliString.from_str("ZI")
        assert stabs[1] == PauliString.from_str("IZ")

    def test_bell_stabilizers(self):
        sim = TableauSimulator(2)
        sim.h(0)
        sim.cx(0, 1)
        expectations = {
            "XX": 1,
            "ZZ": 1,
            "YY": -1,
            "ZI": 0,
            "XI": 0,
        }
        for text, value in expectations.items():
            assert sim.expectation_of(PauliString.from_str(text)) == value, text

    def test_expectation_of_minus_operator(self):
        sim = TableauSimulator(1)
        sim.x_gate(0)  # |1>: <Z> = -1
        assert sim.expectation_of(PauliString.from_str("Z")) == -1
        assert sim.expectation_of(PauliString.from_str("-Z")) == 1

    def test_reset_restores_zero(self):
        sim = TableauSimulator(1, seed=3)
        sim.h(0)
        sim.reset(0)
        assert sim.measure(0) is False
        assert sim.record == [False]  # reset's internal measure not recorded

    def test_reset_x_gives_plus(self):
        sim = TableauSimulator(1)
        sim.reset_x(0)
        assert sim.expectation_of(PauliString.from_str("X")) == 1


class TestRunCircuit:
    def test_run_ignores_noise_ops(self):
        circ = StabilizerCircuit()
        circ.append("X_ERROR", (0,), (1.0,))
        circ.append("M", (0,))
        sim = TableauSimulator(1)
        record = sim.run(circ)
        assert record == [False]

    def test_mr_resets(self):
        circ = StabilizerCircuit()
        circ.append("X", (0,))
        circ.append("MR", (0,))
        circ.append("M", (0,))
        record = TableauSimulator(1).run(circ)
        assert record == [True, False]

    def test_mx_on_plus(self):
        circ = StabilizerCircuit()
        circ.append("RX", (0,))
        circ.append("MX", (0,))
        record = TableauSimulator(1).run(circ)
        assert record == [False]

    def test_measurement_count_matches(self):
        circ = StabilizerCircuit()
        circ.append("R", (0, 1))
        circ.append("M", (0, 1))
        circ.append("M", (0,))
        record = TableauSimulator(2).run(circ)
        assert len(record) == 3
