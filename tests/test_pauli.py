"""Unit and property tests for the Pauli algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import PauliString


def pauli_strings(max_qubits=6):
    chars = st.sampled_from("IXYZ")
    return st.builds(
        lambda body, phase: PauliString.from_str(phase + body),
        st.text(chars, min_size=1, max_size=max_qubits),
        st.sampled_from(["+", "-", "i", "-i"]),
    )


class TestConstruction:
    def test_from_str_identity(self):
        p = PauliString.from_str("III")
        assert p.is_identity()
        assert p.weight == 0
        assert p.num_qubits == 3

    def test_from_str_parses_components(self):
        p = PauliString.from_str("XYZ")
        assert p.component(0) == "X"
        assert p.component(1) == "Y"
        assert p.component(2) == "Z"

    def test_from_str_phases(self):
        assert PauliString.from_str("+X").phase == 0
        assert PauliString.from_str("iX").phase == 1
        assert PauliString.from_str("-X").phase == 2
        assert PauliString.from_str("-iX").phase == 3

    def test_from_str_rejects_garbage(self):
        with pytest.raises(ValueError):
            PauliString.from_str("XQZ")

    def test_single(self):
        p = PauliString.single(5, 2, "Y")
        assert p.weight == 1
        assert p.component(2) == "Y"
        assert p.support() == [2]

    def test_mismatched_xz_length_rejected(self):
        with pytest.raises(ValueError):
            PauliString(x=np.zeros(3, bool), z=np.zeros(4, bool))

    def test_roundtrip_str(self):
        for text in ("+XIZ", "-YY", "+i" + "XZ", "-i" + "ZZZ"):
            assert str(PauliString.from_str(text)) == text.replace("i", "i")


class TestAlgebra:
    def test_xx_commute(self):
        a = PauliString.from_str("XI")
        b = PauliString.from_str("XX")
        assert a.commutes_with(b)

    def test_xz_anticommute(self):
        a = PauliString.from_str("X")
        b = PauliString.from_str("Z")
        assert not a.commutes_with(b)

    def test_product_xz_is_minus_iy(self):
        x = PauliString.from_str("X")
        z = PauliString.from_str("Z")
        prod = x * z
        assert prod.component(0) == "Y"
        # X*Z = -iY
        assert prod == PauliString.from_str("-iY")

    def test_product_zx_is_plus_iy(self):
        z = PauliString.from_str("Z")
        x = PauliString.from_str("X")
        assert z * x == PauliString.from_str("iY")

    def test_y_squared_is_identity(self):
        y = PauliString.from_str("Y")
        assert (y * y).is_identity()
        assert (y * y).phase == 0

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            PauliString.from_str("X") * PauliString.from_str("XX")
        with pytest.raises(ValueError):
            PauliString.from_str("X").commutes_with(PauliString.from_str("XX"))

    @given(pauli_strings())
    @settings(max_examples=100, deadline=None)
    def test_self_product_is_identity_up_to_phase(self, p):
        prod = p * p
        assert not prod.x.any() and not prod.z.any()
        assert prod.phase in (0, 2)

    @given(st.integers(1, 5), st.data())
    @settings(max_examples=100, deadline=None)
    def test_product_associative(self, n, data):
        chars = st.text(st.sampled_from("IXYZ"), min_size=n, max_size=n)
        a = PauliString.from_str(data.draw(chars))
        b = PauliString.from_str(data.draw(chars))
        c = PauliString.from_str(data.draw(chars))
        assert (a * b) * c == a * (b * c)

    @given(st.integers(1, 5), st.data())
    @settings(max_examples=100, deadline=None)
    def test_commutation_symmetric(self, n, data):
        chars = st.text(st.sampled_from("IXYZ"), min_size=n, max_size=n)
        a = PauliString.from_str(data.draw(chars))
        b = PauliString.from_str(data.draw(chars))
        assert a.commutes_with(b) == b.commutes_with(a)

    @given(st.integers(1, 5), st.data())
    @settings(max_examples=100, deadline=None)
    def test_product_commutation_phase(self, n, data):
        """ab = +/- ba with sign matching the symplectic product."""
        chars = st.text(st.sampled_from("IXYZ"), min_size=n, max_size=n)
        a = PauliString.from_str(data.draw(chars))
        b = PauliString.from_str(data.draw(chars))
        ab = a * b
        ba = b * a
        expected_phase_diff = 0 if a.commutes_with(b) else 2
        assert (ab.phase - ba.phase) % 4 == expected_phase_diff
        assert np.array_equal(ab.x, ba.x) and np.array_equal(ab.z, ba.z)

    def test_hash_consistency(self):
        a = PauliString.from_str("XZ")
        b = PauliString.from_str("XZ")
        assert a == b
        assert hash(a) == hash(b)
        assert a != PauliString.from_str("-XZ")
