"""Fault-tolerance chaos harness for the distributed execution engine.

Proves the PR's three guarantees end to end:

- **worker crash recovery** — a worker lost mid-sweep (virtual drop,
  SIGKILL, broken socket) never kills the sweep and never changes the
  failure counts: lost shards rerun on survivors with their original
  ``SeedSequence`` streams, so totals stay bit-identical to a
  crash-free serial run;
- **no-survivor behaviour** — when *every* worker is dead the sweep
  raises :class:`NoLiveWorkersError` promptly instead of hanging;
- **shard-level checkpointing** — a driver SIGKILLed between shards
  resumes mid-job from its checkpointed shards, re-executing none of
  them, and converges to the same result as an uninterrupted run.
"""

import random
import signal
import socket
import textwrap

import pytest

from fault_helpers import (
    AbortingSerialBackend,
    CountingSerialBackend,
    FlakyBackend,
    SweepAborted,
    count_shard_lines,
    reap_workers,
    run_sweep_driver,
    run_with_timeout,
    spawn_workers,
    wait_for_shard_lines,
)
from repro.engine import (
    NoLiveWorkersError,
    ResultStore,
    SweepSpec,
    run_sweep,
)
from repro.engine.remote import RemoteBackend, parse_addr, parse_addrs

SHOTS = 600
SHARD = 128


def small_spec(**overrides):
    base = dict(
        distances=(2, 3),
        capacities=(2,),
        shots=SHOTS,
        rounds=2,
        master_seed=7,
    )
    base.update(overrides)
    return SweepSpec(**base)


@pytest.fixture(scope="module")
def serial_reference():
    """Failure counts of the canonical crash-free serial run."""
    return [r.failures for r in run_sweep(small_spec(), shard_shots=SHARD)]


# ----------------------------------------------------------------------
# In-process crash recovery (FlakyBackend: no subprocesses, fast)
# ----------------------------------------------------------------------
class TestFlakyRecovery:
    def test_worker_drop_recovers_bit_identical(self, serial_reference):
        backend = FlakyBackend(workers=2, drop_worker=1, drop_after=2)
        results = run_sweep(small_spec(), backend=backend, shard_shots=SHARD)
        assert [r.failures for r in results] == serial_reference
        # The drop actually happened, and the dead worker's shards ran
        # somewhere: every planned shard executed exactly once.
        assert 1 not in backend._live()
        assert len(backend.executed) == len(set(backend.executed)) == 10

    def test_immediate_drop_recovers(self, serial_reference):
        # Worker 0 dies before completing anything.
        backend = FlakyBackend(workers=3, drop_worker=0, drop_after=0)
        results = run_sweep(small_spec(), backend=backend, shard_shots=SHARD)
        assert [r.failures for r in results] == serial_reference

    def test_all_workers_dead_raises_not_hangs(self):
        backend = FlakyBackend(workers=2, drop_worker="all", drop_after=1)
        result = run_with_timeout(
            lambda: run_sweep(small_spec(), backend=backend, shard_shots=SHARD),
            seconds=30,
        )
        assert isinstance(result.get("error"), NoLiveWorkersError)

    def test_injected_shard_failure_still_fails_the_sweep(self):
        # A shard *error* (bug, bad input) is not a crash to recover
        # from: it must propagate, not silently rerun forever.
        backend = FlakyBackend(workers=2, fail_seq=3)
        with pytest.raises(RuntimeError, match="injected failure"):
            run_sweep(small_spec(), backend=backend, shard_shots=SHARD)

    def test_adaptive_sweep_survives_worker_drop(self):
        # Adaptive mode cannot promise bit-identity under parallelism,
        # but the target/budget contract must hold through a crash.
        spec = small_spec(shots=128, target_failures=15, max_shots=2048)
        backend = FlakyBackend(workers=2, drop_worker=0, drop_after=3)
        results = run_sweep(spec, backend=backend, shard_shots=SHARD)
        for result in results:
            assert result.shots <= spec.max_shots
            if result.extras["adaptive"]["converged"]:
                assert result.failures >= spec.target_failures


class TestRecoveryProperties:
    """Hypothesis-style seed sweep: random small grids, worker counts
    and kill points — recovery must always match the serial run."""

    @pytest.mark.parametrize("trial", range(6))
    def test_crash_recovery_matches_serial(self, trial):
        rng = random.Random(20260729 + trial)
        spec = small_spec(
            distances=rng.choice([(2,), (2, 3)]),
            shots=rng.choice([384, 640]),
            master_seed=rng.randrange(1000),
        )
        shard = rng.choice([64, 128])
        serial = run_sweep(spec, shard_shots=shard)
        workers = rng.randint(2, 3)
        backend = FlakyBackend(
            workers=workers,
            drop_worker=rng.randrange(workers),
            drop_after=rng.randint(0, 5),
        )
        recovered = run_sweep(spec, backend=backend, shard_shots=shard)
        assert [r.failures for r in recovered] == [
            r.failures for r in serial
        ], f"trial {trial}: recovery diverged from serial"

    @pytest.mark.parametrize("trial", range(4))
    def test_shard_resume_matches_uninterrupted(self, trial, tmp_path):
        # Abort a sweep after a random number of shards; the resumed
        # run must credit the checkpoints and land on the exact serial
        # totals without re-executing any checkpointed shard.
        rng = random.Random(777 + trial)
        spec = small_spec(
            distances=(2, 3),
            shots=rng.choice([512, 640]),
            master_seed=rng.randrange(1000),
        )
        shard = rng.choice([64, 128])
        serial = run_sweep(spec, shard_shots=shard)
        path = str(tmp_path / "resume.jsonl")
        kill_point = rng.randint(1, 6)
        aborting = AbortingSerialBackend(kill_point)
        with pytest.raises(SweepAborted):
            run_sweep(spec, results_path=path, shard_shots=shard,
                      backend=aborting)
        assert count_shard_lines(path) == kill_point
        resumed_backend = CountingSerialBackend()
        resumed = run_sweep(spec, results_path=path, shard_shots=shard,
                            backend=resumed_backend)
        assert [r.failures for r in resumed] == [r.failures for r in serial]
        # No checkpointed shard ran twice, and together the two runs
        # executed every planned shard exactly once.
        assert not set(resumed_backend.executed) & set(aborting.executed)
        total = len(aborting.executed) + len(resumed_backend.executed)
        assert total == len(set(aborting.executed + resumed_backend.executed))
        # The sweep completed, so the store compacted its shard lines.
        assert count_shard_lines(path) == 0
        assert len(ResultStore(path).load()) == len(serial)


# ----------------------------------------------------------------------
# Real socket workers (RemoteBackend chaos)
# ----------------------------------------------------------------------
class PrimeCountingRemote(RemoteBackend):
    """RemoteBackend that audits its worker messages."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.primes: list[tuple[int, str]] = []

    def _send(self, worker, message):
        if message[0] == "prime":
            self.primes.append((worker, message[1]))
        super()._send(worker, message)


class KillingRemote(RemoteBackend):
    """RemoteBackend that SIGKILLs one worker process mid-sweep."""

    def __init__(self, addrs, procs, victim, after_outcomes, **kwargs):
        super().__init__(addrs, **kwargs)
        self._victim_procs = procs
        self._victim = victim
        self._after = after_outcomes
        self._seen = 0
        self.killed = False

    def _handle(self, message):
        outcome = super()._handle(message)
        if outcome is not None:
            self._seen += 1
            if not self.killed and self._seen >= self._after:
                self.killed = True
                proc = self._victim_procs[self._victim]
                proc.kill()
                proc.wait()
        return outcome


class SocketDroppingRemote(RemoteBackend):
    """RemoteBackend that severs one worker's socket mid-sweep.

    ``mode="shutdown"`` simulates a network partition (the fd stays
    valid, reads see EOF); ``mode="close"`` simulates the descriptor
    being torn down under the backend (fd becomes invalid).
    """

    def __init__(self, addrs, victim, after_outcomes, mode="shutdown",
                 **kwargs):
        super().__init__(addrs, **kwargs)
        self._victim = victim
        self._after = after_outcomes
        self._mode = mode
        self._seen = 0
        self.dropped = False

    def _handle(self, message):
        outcome = super()._handle(message)
        if outcome is not None:
            self._seen += 1
            if not self.dropped and self._seen >= self._after:
                self.dropped = True
                sock = self._conns[self._victim].sock
                if self._mode == "close":
                    sock.close()
                else:
                    sock.shutdown(socket.SHUT_RDWR)
        return outcome


class TestRemoteBackend:
    def test_addr_parsing(self):
        assert parse_addr("host:123") == ("host", 123)
        assert parse_addrs("a:1, b:2") == [("a", 1), ("b", 2)]
        with pytest.raises(ValueError):
            parse_addr("no-port")
        with pytest.raises(ValueError):
            parse_addrs("")

    def test_matches_serial_and_primes_once(self, serial_reference):
        procs, addrs = spawn_workers(2)
        try:
            with PrimeCountingRemote(addrs) as backend:
                results = run_sweep(
                    small_spec(), backend=backend, shard_shots=SHARD
                )
            assert [r.failures for r in results] == serial_reference
            # Once per (worker, circuit), never twice.
            assert backend.primes
            assert len(backend.primes) == len(set(backend.primes))
            assert len(backend.primes) <= 2 * 2
        finally:
            reap_workers(procs)

    def test_worker_sigkill_mid_sweep_bit_identical(self, serial_reference):
        # The acceptance scenario: one of two workers is SIGKILLed
        # while the sweep runs; the survivor absorbs the lost shards
        # and the totals match the serial backend bit for bit.
        procs, addrs = spawn_workers(2)
        try:
            with KillingRemote(addrs, procs, victim=0, after_outcomes=2) as backend:
                results = run_sweep(
                    small_spec(), backend=backend, shard_shots=SHARD
                )
            assert backend.killed, "kill never triggered: sweep too small?"
            assert [r.failures for r in results] == serial_reference
        finally:
            reap_workers(procs)

    @pytest.mark.parametrize("mode", ["shutdown", "close"])
    def test_socket_drop_recovers_bit_identical(self, serial_reference, mode):
        procs, addrs = spawn_workers(2)
        try:
            with SocketDroppingRemote(addrs, victim=1, after_outcomes=1,
                                      mode=mode) as backend:
                results = run_sweep(
                    small_spec(), backend=backend, shard_shots=SHARD
                )
            assert backend.dropped
            assert [r.failures for r in results] == serial_reference
        finally:
            reap_workers(procs)

    def test_all_workers_dead_raises_not_hangs(self):
        procs, addrs = spawn_workers(1)
        try:
            def doomed():
                with KillingRemote(addrs, procs, victim=0,
                                   after_outcomes=1) as backend:
                    return run_sweep(
                        small_spec(), backend=backend, shard_shots=SHARD
                    )

            result = run_with_timeout(doomed, seconds=60)
            assert isinstance(result.get("error"), NoLiveWorkersError)
        finally:
            reap_workers(procs)

    def test_unreachable_worker_is_a_clear_error(self):
        backend = RemoteBackend(["127.0.0.1:1"], connect_timeout=2.0)
        with pytest.raises(ConnectionError, match="cannot reach repro-worker"):
            run_sweep(small_spec(distances=(2,)), backend=backend,
                      shard_shots=SHARD)


# ----------------------------------------------------------------------
# Driver SIGKILL between shards -> mid-job resume from checkpoints
# ----------------------------------------------------------------------
class TestDriverKill:
    def test_sigkilled_adaptive_driver_resumes_mid_job(self, tmp_path):
        # The acceptance scenario: an adaptive job's driver is
        # SIGKILLed between shards; the resumed run credits the
        # checkpointed shards, re-executes none of them, and lands on
        # the same (shots, failures) as an uninterrupted run.
        path = str(tmp_path / "adaptive.jsonl")
        spec = dict(
            distances=(2,), rounds=2, shots=512, master_seed=11,
            target_failures=200, max_shots=30000, sampler="frame",
        )
        reference = run_sweep(SweepSpec(**spec), shard_shots=256)
        script = textwrap.dedent(f"""
            from repro.engine import SweepSpec, run_sweep
            print("READY", flush=True)
            spec = SweepSpec(**{spec!r})
            run_sweep(spec, results_path={path!r}, shard_shots=256)
            print("DONE", flush=True)
        """)
        proc = run_sweep_driver(script)
        try:
            # The frame sampler keeps shards slow enough to observe;
            # kill as soon as a few checkpoints are on disk.
            assert wait_for_shard_lines(path, 2, timeout=120), \
                "driver wrote no shard checkpoints"
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert "DONE" not in (proc.stdout.read() or "")
        checkpointed = {
            index
            for index in ResultStore(path).load_shards(
                SweepSpec(**spec).expand()[0].key
            )
        }
        assert checkpointed  # the kill really landed mid-job
        backend = CountingSerialBackend()
        [resumed] = run_sweep(SweepSpec(**spec), results_path=path,
                              shard_shots=256, backend=backend)
        executed = {index for _key, index in backend.executed}
        assert not executed & checkpointed, (
            "resume re-executed checkpointed shards"
        )
        [ref] = reference
        assert (resumed.shots, resumed.failures) == (ref.shots, ref.failures)
        # Completed job: its checkpoints are compacted away, and a
        # further run resumes wholesale from the final record.
        assert count_shard_lines(path) == 0
        [third] = run_sweep(SweepSpec(**spec), results_path=path,
                            shard_shots=256)
        assert third.resumed

    def test_sigkilled_fixed_shot_driver_resumes_mid_job(self, tmp_path):
        path = str(tmp_path / "fixed.jsonl")
        spec = dict(
            distances=(2,), rounds=2, shots=20000, master_seed=5,
            sampler="frame",
        )
        script = textwrap.dedent(f"""
            from repro.engine import SweepSpec, run_sweep
            print("READY", flush=True)
            spec = SweepSpec(**{spec!r})
            run_sweep(spec, results_path={path!r}, shard_shots=256)
            print("DONE", flush=True)
        """)
        proc = run_sweep_driver(script)
        try:
            assert wait_for_shard_lines(path, 2, timeout=120)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        job_key = SweepSpec(**spec).expand()[0].key
        checkpointed = set(ResultStore(path).load_shards(job_key))
        assert checkpointed
        backend = CountingSerialBackend()
        [resumed] = run_sweep(SweepSpec(**spec), results_path=path,
                              shard_shots=256, backend=backend)
        executed = {index for _key, index in backend.executed}
        assert not executed & checkpointed
        # All 79 shards accounted for exactly once across both runs.
        assert len(executed | checkpointed) == 79
        assert resumed.shots == 20000
        # Bit-identity with a run that never died.
        [reference] = run_sweep(SweepSpec(**spec), shard_shots=256)
        assert resumed.failures == reference.failures
