"""Scheduler tests: ASAP, critical path, WISE type exclusivity."""

import pytest

from repro.arch import STANDARD_WIRING, WISE_WIRING
from repro.codes import RepetitionCode, RotatedSurfaceCode
from repro.core import (
    build_gate_dag,
    compile_memory_experiment,
    critical_path_lengths,
    makespan,
    place,
    schedule,
    schedule_asap,
    schedule_type_exclusive,
)
from repro.core.ir import QccdOp


def _op(i, kind, dur, deps=()):
    return QccdOp(
        id=i, kind=kind, ions=(0,), components=(0,), duration=dur, deps=tuple(deps)
    )


class TestAsap:
    def test_chain(self):
        ops = [_op(0, "R", 10), _op(1, "CX", 20, [0]), _op(2, "M", 30, [1])]
        start = schedule_asap(ops)
        assert start == [0, 10, 30]
        assert makespan(ops, start) == 60

    def test_parallel_branches(self):
        ops = [
            _op(0, "R", 10),
            _op(1, "CX", 5, [0]),
            _op(2, "CX", 50, [0]),
            _op(3, "M", 10, [1, 2]),
        ]
        start = schedule_asap(ops)
        assert start[1] == start[2] == 10
        assert start[3] == 60

    def test_empty_program(self):
        assert makespan([], []) == 0


class TestCriticalPath:
    def test_longest_path(self):
        ops = [
            _op(0, "R", 10),
            _op(1, "CX", 5, [0]),
            _op(2, "CX", 50, [0]),
            _op(3, "M", 10, [1, 2]),
        ]
        cp = critical_path_lengths(ops)
        assert cp[3] == 10
        assert cp[2] == 60
        assert cp[1] == 15
        assert cp[0] == 70


class TestTypeExclusive:
    def test_different_kinds_serialise(self):
        # Two independent ops of different kinds may not overlap.
        ops = [_op(0, "SPLIT", 80), _op(1, "SHUTTLE", 5)]
        start = schedule_type_exclusive(ops)
        spans = sorted((start[i], start[i] + ops[i].duration) for i in range(2))
        assert spans[0][1] <= spans[1][0] + 1e-9

    def test_same_kind_overlaps(self):
        ops = [_op(0, "SPLIT", 80), _op(1, "SPLIT", 80)]
        start = schedule_type_exclusive(ops)
        assert start == [0, 0]

    def test_dependencies_respected(self):
        ops = [_op(0, "SPLIT", 80), _op(1, "MERGE", 80, [0])]
        start = schedule_type_exclusive(ops)
        assert start[1] >= 80

    def test_wise_never_faster_than_standard(self):
        code = RepetitionCode(3)
        gates = build_gate_dag(code, 2)
        placement = place(code, 2, "linear")
        from repro.arch import DEFAULT_TIMES
        from repro.core import Router

        ops = Router(code, placement, gates, DEFAULT_TIMES).run()
        asap = makespan(ops, schedule_asap(ops))
        wise = makespan(ops, schedule_type_exclusive(ops))
        assert wise >= asap

    def test_dispatch_by_wiring(self):
        ops = [_op(0, "SPLIT", 80), _op(1, "SHUTTLE", 5)]
        std = schedule(ops, STANDARD_WIRING)
        wise = schedule(ops, WISE_WIRING)
        assert std == [0, 0]
        assert wise != [0, 0]


class TestWiseSlowdown:
    def test_wise_slows_surface_code_rounds(self):
        """WISE's shared switch network costs integer-factor slowdowns."""
        code = RotatedSurfaceCode(2)
        std = compile_memory_experiment(
            code, trap_capacity=2, topology="grid", wiring=STANDARD_WIRING, rounds=2
        )
        wise = compile_memory_experiment(
            code, trap_capacity=2, topology="grid", wiring=WISE_WIRING, rounds=2
        )
        assert wise.stats.makespan_us > 2 * std.stats.makespan_us

    def test_wise_schedule_is_exclusive(self):
        """No two different op kinds overlap anywhere in the schedule."""
        code = RepetitionCode(3)
        program = compile_memory_experiment(
            code, trap_capacity=2, topology="linear", wiring=WISE_WIRING, rounds=1
        )
        events = []
        for op in program.ops:
            start = program.start[op.id]
            events.append((start, start + op.duration, op.kind))
        for i, (s1, e1, k1) in enumerate(events):
            for s2, e2, k2 in events[i + 1:]:
                overlap = min(e1, e2) - max(s1, s2)
                if overlap > 1e-9:
                    assert k1 == k2, (k1, k2, overlap)
