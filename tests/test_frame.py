"""Frame simulator tests: statistics and agreement with the tableau."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FrameSimulator, StabilizerCircuit, TableauSimulator


def _measurement_flip_rate(circ, shots=20000, seed=11):
    sample = FrameSimulator(circ, seed=seed).sample(shots)
    return sample.measurements.mean(axis=0)


class TestNoiseChannels:
    def test_x_error_rate(self):
        circ = StabilizerCircuit()
        circ.append("R", (0,))
        circ.append("X_ERROR", (0,), (0.25,))
        circ.append("M", (0,))
        rate = _measurement_flip_rate(circ)[0]
        assert abs(rate - 0.25) < 0.02

    def test_z_error_invisible_in_z_basis(self):
        circ = StabilizerCircuit()
        circ.append("R", (0,))
        circ.append("Z_ERROR", (0,), (0.5,))
        circ.append("M", (0,))
        assert _measurement_flip_rate(circ)[0] == 0.0

    def test_z_error_visible_after_h(self):
        circ = StabilizerCircuit()
        circ.append("RX", (0,))
        circ.append("Z_ERROR", (0,), (0.3,))
        circ.append("MX", (0,))
        rate = _measurement_flip_rate(circ)[0]
        assert abs(rate - 0.3) < 0.02

    def test_y_error_flips_both_bases(self):
        circ = StabilizerCircuit()
        circ.append("R", (0,))
        circ.append("Y_ERROR", (0,), (0.2,))
        circ.append("M", (0,))
        rate = _measurement_flip_rate(circ)[0]
        assert abs(rate - 0.2) < 0.02

    def test_depolarize1_z_fraction_invisible(self):
        # 1/3 of depolarising events are pure Z: invisible to M.
        circ = StabilizerCircuit()
        circ.append("R", (0,))
        circ.append("DEPOLARIZE1", (0,), (0.3,))
        circ.append("M", (0,))
        rate = _measurement_flip_rate(circ)[0]
        assert abs(rate - 0.2) < 0.02  # 0.3 * 2/3

    def test_depolarize2_marginal(self):
        # Each qubit sees X or Y on 8 of the 15 components.
        circ = StabilizerCircuit()
        circ.append("R", (0, 1))
        circ.append("DEPOLARIZE2", (0, 1), (0.3,))
        circ.append("M", (0, 1))
        rates = _measurement_flip_rate(circ)
        expected = 0.3 * 8 / 15
        assert abs(rates[0] - expected) < 0.02
        assert abs(rates[1] - expected) < 0.02

    def test_pauli_channel_1(self):
        circ = StabilizerCircuit()
        circ.append("R", (0,))
        circ.append("PAULI_CHANNEL_1", (0,), (0.1, 0.05, 0.5))
        circ.append("M", (0,))
        rate = _measurement_flip_rate(circ)[0]
        assert abs(rate - 0.15) < 0.02  # X + Y flip Z-measurements

    def test_reset_clears_frame(self):
        circ = StabilizerCircuit()
        circ.append("R", (0,))
        circ.append("X_ERROR", (0,), (1.0,))
        circ.append("R", (0,))
        circ.append("M", (0,))
        assert _measurement_flip_rate(circ, shots=500)[0] == 0.0

    def test_mr_reports_then_clears(self):
        circ = StabilizerCircuit()
        circ.append("R", (0,))
        circ.append("X_ERROR", (0,), (1.0,))
        circ.append("MR", (0,))
        circ.append("M", (0,))
        rates = _measurement_flip_rate(circ, shots=500)
        assert rates[0] == 1.0
        assert rates[1] == 0.0


class TestFramePropagation:
    def test_cx_propagates_x_to_target(self):
        circ = StabilizerCircuit()
        circ.append("R", (0, 1))
        circ.append("X_ERROR", (0,), (1.0,))
        circ.append("CX", (0, 1))
        circ.append("M", (0, 1))
        rates = _measurement_flip_rate(circ, shots=200)
        assert rates[0] == 1.0 and rates[1] == 1.0

    def test_cx_propagates_z_to_control(self):
        circ = StabilizerCircuit()
        circ.append("RX", (0, 1))
        circ.append("Z_ERROR", (1,), (1.0,))
        circ.append("CX", (0, 1))
        circ.append("MX", (0, 1))
        rates = _measurement_flip_rate(circ, shots=200)
        assert rates[0] == 1.0 and rates[1] == 1.0

    def test_h_conjugated_z_error_flips(self):
        # |0> -H-> |+> -Z-> |-> -H-> |1>: the Z frame becomes an X frame.
        circ = StabilizerCircuit()
        circ.append("R", (0,))
        circ.append("H", (0,))
        circ.append("Z_ERROR", (0,), (1.0,))
        circ.append("H", (0,))
        circ.append("M", (0,))
        assert _measurement_flip_rate(circ, shots=200)[0] == 1.0

    def test_swap_moves_frame(self):
        circ = StabilizerCircuit()
        circ.append("R", (0, 1))
        circ.append("X_ERROR", (0,), (1.0,))
        circ.append("SWAP", (0, 1))
        circ.append("M", (0, 1))
        rates = _measurement_flip_rate(circ, shots=200)
        assert rates[0] == 0.0 and rates[1] == 1.0

    def test_detector_xor_of_records(self):
        circ = StabilizerCircuit()
        circ.append("R", (0,))
        circ.append("X_ERROR", (0,), (1.0,))
        circ.append("M", (0,))
        circ.append("M", (0,))
        circ.append("DETECTOR", (-1, -2))
        sample = FrameSimulator(circ, seed=1).sample(100)
        # Both measurements flip, so the detector parity cancels.
        assert not sample.detectors.any()

    def test_observable_accumulates(self):
        circ = StabilizerCircuit()
        circ.append("R", (0,))
        circ.append("X_ERROR", (0,), (1.0,))
        circ.append("M", (0,))
        circ.append("OBSERVABLE_INCLUDE", (-1,), (0,))
        sample = FrameSimulator(circ, seed=1).sample(50)
        assert sample.observables.all()

    def test_shots_must_be_positive(self):
        circ = StabilizerCircuit()
        circ.append("M", (0,))
        with pytest.raises(ValueError):
            FrameSimulator(circ).sample(0)


class TestAgreementWithTableau:
    """Deterministic circuits: frame flips must match exact simulation."""

    @given(st.integers(0, 2 ** 16 - 1), st.sampled_from("XYZ"), st.integers(0, 2))
    @settings(max_examples=80, deadline=None)
    def test_conjugated_error_flips_match_tableau(self, spec, error_kind, error_q):
        """U, forced error, U-dagger: every measurement is deterministic,
        so the frame sampler's flips must equal the exact simulation's
        outcome difference bit for bit."""
        n = 3
        gates = []
        bits = spec
        for _ in range(5):
            kind = bits % 4
            bits //= 4
            q = bits % 3
            bits //= 3
            gates.append((kind, q))

        def apply(circ, kind, q, inverse):
            if kind == 0:
                circ.append("H", (q,))
            elif kind == 1:
                for _ in range(3 if inverse else 1):
                    circ.append("S", (q,))
            elif kind == 2:
                circ.append("CX", (q, (q + 1) % n))
            else:
                circ.append("CZ", (q, (q + 1) % n))

        def build(error_name):
            circ = StabilizerCircuit()
            circ.append("R", tuple(range(n)))
            for kind, q in gates:
                apply(circ, kind, q, inverse=False)
            if error_name:
                circ.append(error_name, (error_q,), (1.0,))
            for kind, q in reversed(gates):
                apply(circ, kind, q, inverse=True)
            circ.append("M", tuple(range(n)))
            return circ

        clean_rec = np.array(TableauSimulator(n, seed=0).run(build(None)))
        assert not clean_rec.any()  # U then U-dagger returns to |000>
        noisy = build(f"{error_kind}_ERROR")
        # Exact run with the error as a real Pauli gate.
        exact = StabilizerCircuit()
        for inst in noisy.instructions:
            if inst.name.endswith("_ERROR"):
                exact.append(inst.name[0], inst.targets)
            else:
                exact.append(inst.name, inst.targets, inst.args)
        err_rec = np.array(TableauSimulator(n, seed=0).run(exact))
        frame = FrameSimulator(noisy, seed=0).sample(4)
        for shot in frame.measurements:
            assert np.array_equal(shot, err_rec)
