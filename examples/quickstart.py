"""Quickstart: compile one surface-code logical qubit onto a QCCD device.

Builds a distance-3 rotated surface code, compiles its memory
experiment onto the paper's recommended architecture (trap capacity 2,
grid topology, standard wiring), prints the compiled schedule's
headline metrics, and estimates the logical error rate by sampling the
noisy circuit and decoding with minimum-weight perfect matching.

Run:  python examples/quickstart.py
"""

from repro.codes import RotatedSurfaceCode
from repro.core import compile_memory_experiment, program_to_circuit
from repro.ler import estimate_logical_error_rate
from repro.noise import DEFAULT_NOISE


def main() -> None:
    distance = 3
    code = RotatedSurfaceCode(distance)
    print(f"Code: {code.name} d={distance} "
          f"({len(code.data_qubits)} data + {len(code.ancilla_qubits)} ancilla qubits)")

    program = compile_memory_experiment(
        code,
        trap_capacity=2,
        topology="grid",
        rounds=distance,
    )
    stats = program.stats
    print(f"Compiled {len(program.ops)} QCCD operations "
          f"({stats.num_gates} gates, {stats.movement_ops} transport primitives)")
    print(f"QEC round time: {stats.round_time_us:.0f} us "
          f"({stats.makespan_us:.0f} us for {program.rounds} rounds)")
    print(f"Movement time: {stats.movement_time_us:.0f} us total, "
          f"{stats.gate_swaps} in-trap gate swaps")

    # Noisy simulation at a 5x gate improvement (the paper's optimistic
    # near-term scenario, ~1e-3 two-qubit error).
    noise = DEFAULT_NOISE.improved(5.0)
    export = program_to_circuit(program, code, noise)
    print(f"Noisy circuit: {len(export.circuit)} instructions, "
          f"{export.circuit.num_detectors} detectors, "
          f"peak chain energy {export.max_nbar:.0f} quanta")

    result = estimate_logical_error_rate(
        export.circuit, rounds=program.rounds, shots=4000, seed=7
    )
    print(f"Logical error rate: {result.per_round:.2e} per round "
          f"({result.failures}/{result.shots} shots failed)")


if __name__ == "__main__":
    main()
