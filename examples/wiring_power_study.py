"""Control wiring study: standard one-DAC-per-electrode vs WISE.

Reproduces the Section 7.4 trade-off at example scale: WISE's switch
network cuts DAC count (and hence controller data rate and power) by
about two orders of magnitude, but serialises primitive operations so
the logical clock slows dramatically.

Run:  python examples/wiring_power_study.py
"""

from repro.arch import STANDARD_WIRING, WISE_WIRING
from repro.codes import RotatedSurfaceCode
from repro.core import QccdCompiler, CompilerConfig
from repro.toolflow import format_table


def main() -> None:
    rows = []
    for d in (3, 5):
        code = RotatedSurfaceCode(d)
        for wiring in (STANDARD_WIRING, WISE_WIRING):
            config = CompilerConfig(
                code=code,
                trap_capacity=2,
                topology="grid",
                wiring=wiring,
                rounds=2,
            )
            compiler = QccdCompiler(config)
            program = compiler.compile()
            resources = wiring.resources(compiler.placement().device)
            rows.append([
                d,
                wiring.name,
                round(program.stats.round_time_us, 0),
                resources.num_dacs,
                round(resources.data_rate_bitps / 1e9, 3),
                round(resources.power_w, 1),
            ])
    print(format_table(
        ["d", "wiring", "round (us)", "DACs", "Gbit/s", "power (W)"], rows
    ))

    std = [r for r in rows if r[1] == "standard"]
    wise = [r for r in rows if r[1] == "wise"]
    slow = wise[-1][2] / std[-1][2]
    saving = std[-1][4] / wise[-1][4]
    print(f"\nAt d={std[-1][0]}: WISE is {slow:.1f}x slower per QEC round but "
          f"needs {saving:.0f}x less controller bandwidth —")
    print("the power-versus-cycle-time wall of Sec. 7.4: neither wiring "
          "scheme scales to hundreds of logical qubits on its own.")


if __name__ == "__main__":
    main()
