"""Design-space exploration: trap capacity and topology sweeps.

Reproduces the architectural questions of Sections 7.2-7.3 at small
scale: how does QEC round time depend on communication topology and on
trap capacity, and why is a capacity of two the right choice?

Run:  python examples/design_space_exploration.py
"""

from repro.codes import RotatedSurfaceCode
from repro.core import steady_round_time
from repro.toolflow import DesignSpaceExplorer, format_table


def topology_study(distances=(3, 5)) -> None:
    print("== Communication topology (Figure 8a), capacity 2 ==")
    rows = []
    for topo in ("grid", "switch", "linear"):
        row = [topo]
        for d in distances:
            rt = steady_round_time(
                RotatedSurfaceCode(d), trap_capacity=2, topology=topo
            )
            row.append(round(rt, 0))
        rows.append(row)
    headers = ["topology"] + [f"d={d} round (us)" for d in distances]
    print(format_table(headers, rows))
    print("-> linear congestion explodes with distance; grid tracks the\n"
          "   idealised all-to-all switch, so grid wins on buildability.\n")


def capacity_study(distances=(3, 5, 7)) -> None:
    print("== Trap capacity (Figure 9), grid topology ==")
    rows = []
    for cap in (2, 3, 5, 12):
        row = [cap]
        for d in distances:
            rt = steady_round_time(
                RotatedSurfaceCode(d), trap_capacity=cap, topology="grid"
            )
            row.append(round(rt, 0))
        rows.append(row)
    headers = ["capacity"] + [f"d={d} round (us)" for d in distances]
    print(format_table(headers, rows))
    print("-> capacity 2 keeps the cycle time roughly constant in code\n"
          "   distance; larger traps serialise gates and slow down as the\n"
          "   code grows — the paper's headline architectural result.\n")


def hardware_study() -> None:
    print("== Hardware footprint per design point (Sec. 5.2) ==")
    explorer = DesignSpaceExplorer()
    rows = []
    for cap in (2, 5, 12):
        record = explorer.evaluate(5, capacity=cap, topology="grid", rounds=2)
        rows.append([
            cap,
            record.num_traps,
            record.num_junctions,
            record.electrodes,
            round(record.data_rate_bitps / 1e9, 2),
            round(record.power_w, 1),
        ])
    print(format_table(
        ["capacity", "traps", "junctions", "electrodes", "Gbit/s", "W"], rows
    ))
    print("-> smaller traps need more junctions, but the electrode bill is\n"
          "   dominated by what the *logical error rate target* forces you\n"
          "   to build (see the fig11 benchmark for that comparison).")


if __name__ == "__main__":
    topology_study()
    capacity_study()
    hardware_study()
