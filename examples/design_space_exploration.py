"""Design-space exploration: trap capacity and topology sweeps.

Reproduces the architectural questions of Sections 7.2-7.3 at small
scale: how does QEC round time depend on communication topology and on
trap capacity, and why is a capacity of two the right choice?

The grid studies run through the execution engine (``repro.engine``):
a declarative :class:`SweepSpec` expands into jobs, each unique
circuit is compiled once, and Monte-Carlo shots can be sharded over
worker processes without changing any sampled number.

Run:  python examples/design_space_exploration.py
"""

from repro.codes import RotatedSurfaceCode
from repro.core import steady_round_time
from repro.engine import SweepSpec
from repro.toolflow import DesignSpaceExplorer, format_table


def topology_study(distances=(3, 5)) -> None:
    print("== Communication topology (Figure 8a), capacity 2 ==")
    rows = []
    for topo in ("grid", "switch", "linear"):
        row = [topo]
        for d in distances:
            rt = steady_round_time(
                RotatedSurfaceCode(d), trap_capacity=2, topology=topo
            )
            row.append(round(rt, 0))
        rows.append(row)
    headers = ["topology"] + [f"d={d} round (us)" for d in distances]
    print(format_table(headers, rows))
    print("-> linear congestion explodes with distance; grid tracks the\n"
          "   idealised all-to-all switch, so grid wins on buildability.\n")


def capacity_study(distances=(3, 5, 7)) -> None:
    print("== Trap capacity (Figure 9), grid topology ==")
    rows = []
    for cap in (2, 3, 5, 12):
        row = [cap]
        for d in distances:
            rt = steady_round_time(
                RotatedSurfaceCode(d), trap_capacity=cap, topology="grid"
            )
            row.append(round(rt, 0))
        rows.append(row)
    headers = ["capacity"] + [f"d={d} round (us)" for d in distances]
    print(format_table(headers, rows))
    print("-> capacity 2 keeps the cycle time roughly constant in code\n"
          "   distance; larger traps serialise gates and slow down as the\n"
          "   code grows — the paper's headline architectural result.\n")


def hardware_study() -> None:
    print("== Hardware footprint per design point (Sec. 5.2) ==")
    explorer = DesignSpaceExplorer()
    spec = SweepSpec(distances=(5,), capacities=(2, 5, 12), rounds=2, shots=0)
    rows = []
    for record in explorer.sweep(spec):
        rows.append([
            record.capacity,
            record.num_traps,
            record.num_junctions,
            record.electrodes,
            round(record.data_rate_bitps / 1e9, 2),
            round(record.power_w, 1),
        ])
    print(format_table(
        ["capacity", "traps", "junctions", "electrodes", "Gbit/s", "W"], rows
    ))
    print("-> smaller traps need more junctions, but the electrode bill is\n"
          "   dominated by what the *logical error rate target* forces you\n"
          "   to build (see the fig11 benchmark for that comparison).\n")


def ler_study(workers: int = 2) -> None:
    print("== Engine-backed Monte-Carlo LER sweep (Sec. 6.4) ==")
    explorer = DesignSpaceExplorer()
    spec = SweepSpec(
        distances=(3, 5),
        capacities=(2,),
        gate_improvements=(5.0,),
        decoders=("mwpm", "union_find"),
        shots=3000,
        master_seed=2026,
    )
    records = explorer.sweep(spec, workers=workers, progress=True)
    rows = [
        [r.distance, r.extras["decoder"], r.failures, f"{r.ler_per_round:.2e}"]
        for r in records
    ]
    print(format_table(["d", "decoder", "failures", "LER/round"], rows))
    print("-> one SweepSpec = four jobs but only two compiled circuits\n"
          "   (decoders share the cached DEM); shots are sharded over\n"
          f"   {workers} worker processes with seed-stable streams.")


def adaptive_study() -> None:
    print("\n== Adaptive shot allocation ==")
    from repro.engine import run_sweep

    # d=2 fails often (converges in a few shards); d=3 is an order of
    # magnitude quieter.  With a failure target, the scheduler retires
    # the noisy point early and reinvests the budget in the quiet one.
    spec = SweepSpec(
        distances=(2, 3),
        rounds=2,
        shots=512,
        target_failures=50,
        max_shots=16384,
        master_seed=2026,
    )
    rows = []
    for result in run_sweep(spec, shard_shots=512):
        info = result.extras["adaptive"]
        rows.append([
            result.job.distance, result.shots, result.failures,
            "yes" if info["converged"] else "no (budget cap)",
        ])
    print(format_table(["d", "shots spent", "failures", "converged"], rows))
    print("-> equal failure targets, unequal budgets: sampling effort\n"
          "   flows to where the statistics are still poor.")


if __name__ == "__main__":
    topology_study()
    capacity_study()
    hardware_study()
    ler_study()
    adaptive_study()
