"""Lattice surgery extension: compiling a merged two-patch workload.

The paper (Sec. 8) argues its single-logical-qubit findings extend to
multi-qubit fault-tolerant programs because lattice surgery — the
standard way to entangle surface-code logical qubits — just runs
parity-check rounds on a temporarily merged, wider patch.  This example
merges two distance-3 patches for a logical ZZ measurement and pushes
the merged patch through the identical compiler and noise pipeline.

Run:  python examples/lattice_surgery_patch.py
"""

from repro.codes import RotatedSurfaceCode, merged_patch
from repro.core import compile_memory_experiment, program_to_circuit, steady_round_time
from repro.ler import estimate_logical_error_rate
from repro.noise import DEFAULT_NOISE
from repro.toolflow import format_table


def main() -> None:
    distance = 3
    square = RotatedSurfaceCode(distance)
    merged = merged_patch(distance)

    print(f"single patch : {square.dx if hasattr(square, 'dx') else distance}"
          f"x{distance} data grid, {square.num_qubits} qubits")
    print(f"merged patch : {merged.dx}x{merged.dy} data grid, "
          f"{merged.num_qubits} qubits "
          f"(two d={distance} patches + 1-column seam)\n")

    rows = []
    for name, code in (("single", square), ("merged", merged)):
        round_time = steady_round_time(code, trap_capacity=2, topology="grid")
        program = compile_memory_experiment(
            code, trap_capacity=2, topology="grid", rounds=2
        )
        per_check = program.stats.movement_ops / (2 * len(code.checks))
        rows.append([name, len(code.checks), round(round_time, 0),
                     round(per_check, 1)])
    print(format_table(
        ["patch", "checks", "round time (us)", "moves/check/round"], rows
    ))

    # The merged patch still suppresses errors like a memory experiment.
    program = compile_memory_experiment(
        merged, trap_capacity=2, topology="grid", rounds=2
    )
    export = program_to_circuit(program, merged, DEFAULT_NOISE.improved(5.0))
    result = estimate_logical_error_rate(
        export.circuit, rounds=2, shots=2500, seed=11
    )
    print(f"\nmerged-patch logical error rate (5x gates): "
          f"{result.per_round:.2e} per round "
          f"({result.failures}/{result.shots} failures)")
    print("\nThe merged patch costs the same per parity check as the single"
          "\npatch and keeps the capacity-2 constant cycle time — Sec. 8's"
          "\nargument that the architectural findings survive lattice"
          "\nsurgery, verified end to end.")


if __name__ == "__main__":
    main()
