"""Artifact-style driver: reproduce the paper's headline numbers in one run.

Runs a condensed version of every evaluation experiment and prints a
single paper-vs-measured summary.  The full benchmark harness
(`pytest benchmarks/ --benchmark-only`) runs larger sweeps with
assertions; this script is the quick human-readable tour.

Run:  python examples/reproduce_paper.py   (takes several minutes)
"""

import time

from repro.baselines import BaselineFailure, compile_muzzle_like, compile_qccdsim_like
from repro.codes import RotatedSurfaceCode
from repro.core import compile_memory_experiment, optimal_estimate, steady_round_time
from repro.ler import fit_projection
from repro.toolflow import DesignSpaceExplorer, format_table


def claim(label, paper, measured):
    return [label, paper, measured]


def main() -> None:
    t_start = time.time()
    rows = []
    explorer = DesignSpaceExplorer()

    # 1. Compiler near-optimality (Table 2).
    code = RotatedSurfaceCode(3)
    optimal = optimal_estimate(code, "grid", 2)
    measured_rt = steady_round_time(code, 2, "grid")
    program = compile_memory_experiment(code, 2, "grid", rounds=3)
    moves = program.stats.movement_ops / 3
    rows.append(claim(
        "compiler vs expert schedule (moves/round, d=3)",
        "288 vs 288 (1.00x)",
        f"{moves:.0f} vs {optimal.movement_ops_per_round} "
        f"({moves / optimal.movement_ops_per_round:.2f}x)",
    ))
    rows.append(claim(
        "round time vs zero-contention optimum",
        "<= 1.11x",
        f"{measured_rt / optimal.round_time_us:.2f}x",
    ))

    # 2. Baseline comparison (Table 3).
    ours = compile_memory_experiment(code, 2, "grid", rounds=5).stats
    best = None
    for fn in (compile_qccdsim_like, compile_muzzle_like):
        try:
            stats = fn(code, 2, "grid", rounds=5).stats
            if best is None or stats.movement_time_us < best:
                best = stats.movement_time_us
        except BaselineFailure:
            pass
    rows.append(claim(
        "movement time vs best baseline (S,3,2,G)",
        "~2-6x better",
        f"{best / ours.movement_time_us:.2f}x better",
    ))

    # 3. Topology (Figure 8a).
    grid5 = steady_round_time(RotatedSurfaceCode(5), 2, "grid")
    linear5 = steady_round_time(RotatedSurfaceCode(5), 2, "linear")
    switch5 = steady_round_time(RotatedSurfaceCode(5), 2, "switch")
    rows.append(claim(
        "linear vs grid round time (d=5)",
        "~12x slower", f"{linear5 / grid5:.1f}x slower",
    ))
    rows.append(claim(
        "switch vs grid round time (d=5)",
        "about equal", f"{switch5 / grid5:.2f}x",
    ))

    # 4. Capacity (Figure 9).
    cap2 = [steady_round_time(RotatedSurfaceCode(d), 2, "grid") for d in (3, 7)]
    cap12 = [steady_round_time(RotatedSurfaceCode(d), 12, "grid") for d in (3, 7)]
    rows.append(claim(
        "capacity-2 round time growth d=3 -> 7",
        "constant", f"{cap2[1] / cap2[0]:.2f}x",
    ))
    rows.append(claim(
        "capacity-12 round time growth d=3 -> 7",
        "grows with d", f"{cap12[1] / cap12[0]:.2f}x",
    ))

    # 5. LER projections (Figure 10).  Shot counts rise with the
    # improvement factor: at 10x a d=5 shot fails with p ~ 3e-5, so
    # pinning Lambda needs ~1e5 samples.
    for improvement, paper_d, shots in ((5.0, "18", 50000), (10.0, "13", 120000)):
        points = []
        for d in (3, 5):
            record = explorer.evaluate(
                d, capacity=2, topology="grid",
                gate_improvement=improvement, shots=shots,
            )
            points.append((d, record.ler_per_round))
        proj = fit_projection(points)
        target = proj.distance_for(1e-9)
        rows.append(claim(
            f"distance for 1e-9 at {improvement:.0f}x gates",
            f"d = {paper_d}",
            "unreachable" if target is None else f"d = {target}",
        ))

    print(format_table(["claim", "paper", "measured"], rows))
    print(f"\ntotal runtime: {time.time() - t_start:.0f}s")
    print("Full sweeps with assertions: pytest benchmarks/ --benchmark-only")


if __name__ == "__main__":
    main()
