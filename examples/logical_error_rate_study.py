"""Logical error rate study: Monte-Carlo measurement plus projection.

Small-scale version of Figure 10's methodology: sample the compiled
noisy circuits at feasible distances, fit the suppression model
p_L(d) = A * Lambda^-((d+1)/2), and project the code distance needed
for the paper's 1e-9 practicality target.

Run:  python examples/logical_error_rate_study.py  [--fast]
"""

import sys

from repro.ler import fit_projection
from repro.toolflow import DesignSpaceExplorer, format_table


def main(fast: bool = False) -> None:
    distances = (2, 3) if fast else (3, 5)
    shots = 1500 if fast else 8000
    explorer = DesignSpaceExplorer()

    rows = []
    for improvement in (1.0, 5.0, 10.0):
        points = []
        for d in distances:
            record = explorer.evaluate(
                d,
                capacity=2,
                topology="grid",
                gate_improvement=improvement,
                shots=shots,
                decoder="union_find" if improvement == 1.0 else "mwpm",
            )
            points.append((d, record.ler_per_round))
        projection = fit_projection(points)
        target_d = projection.distance_for(1e-9)
        rows.append([
            f"{improvement:.0f}x",
            *(f"{p:.2e}" for _, p in points),
            f"{projection.lam:.2f}",
            "unreachable" if target_d is None else str(target_d),
        ])

    headers = (
        ["improvement"]
        + [f"p_L(d={d})/round" for d in distances]
        + ["Lambda", "d for 1e-9"]
    )
    print(format_table(headers, rows))
    print(
        "\nBelow threshold, each +2 of distance divides the logical error\n"
        "rate by Lambda; the paper reaches its 1e-9 target near d=13-18\n"
        "for 10x-5x gate improvements on the capacity-2 grid."
    )


if __name__ == "__main__":
    main(fast="--fast" in sys.argv)
