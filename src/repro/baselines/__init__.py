"""Reimplementations of the compilers the paper benchmarks against."""

from .muzzle_like import compile_muzzle_like
from .qccdsim_like import BaselineFailure, compile_qccdsim_like

__all__ = ["BaselineFailure", "compile_muzzle_like", "compile_qccdsim_like"]
