"""Muzzle-the-Shuttle-style baseline compiler (Saki et al., DATE 2022).

Reimplementation of the published strategy: a shuttle-count-minimising
compiler for **linear multi-trap** devices.

- placement follows the qubit line order (geometry-aware for linear
  chains, which is why it beats QCCDSim-like on repetition codes);
- gates are processed as a sequential list (no QEC structure);
- when a gate spans traps, the operand with the *smaller lookahead
  weight* (fewer remaining two-qubit gates) is shuttled — the paper's
  shuttle-direction heuristic;
- junction-rich topologies were outside the original tool's scope; on
  grids the greedy strategy frequently deadlocks, which we surface as
  :class:`BaselineFailure` — the NaN entries of Table 3.
"""

from __future__ import annotations

from ..arch.timing import DEFAULT_TIMES, OperationTimes
from ..codes.base import StabilizerCode
from ..core.compiler import compute_stats
from ..core.ir import CompiledProgram, LogicalGate
from ..core.place import Placement, build_device_for, layout_positions
from ..core.schedule import schedule_asap
from ..core.translate import build_gate_dag
from .qccdsim_like import BaselineFailure, _GreedyRouter, _sequentialise


class _MuzzleRouter(_GreedyRouter):
    """Greedy router with Muzzle's lookahead mover selection."""

    def _mover_and_destination(self, gate: LogicalGate):
        a, b = gate.qubits
        if self._lookahead_weight(a) <= self._lookahead_weight(b):
            return a, self.location[b]
        return b, self.location[a]

    def _lookahead_weight(self, qubit: int) -> int:
        pending = 0
        for gid in self._qubit_gates[qubit]:
            if gid not in self._sequenced and self.gates[gid].kind == "CX":
                pending += 1
        return pending


def _line_order_placement(
    code: StabilizerCode, capacity: int, topology: str
) -> Placement:
    device, clusters = build_device_for(code, capacity, topology)
    del clusters
    pos = layout_positions(code)
    ordered = sorted(
        (q.index for q in code.qubits), key=lambda q: (pos[q][1], pos[q][0])
    )
    traps = device.traps
    per_trap = capacity - 1
    qubit_to_trap: dict[int, int] = {}
    trap_chains: dict[int, list[int]] = {t.id: [] for t in traps}
    trap_idx = 0
    for qubit in ordered:
        while len(trap_chains[traps[trap_idx].id]) >= per_trap:
            trap_idx += 1
            if trap_idx >= len(traps):
                raise BaselineFailure("device too small for line-order fill")
        trap_id = traps[trap_idx].id
        trap_chains[trap_id].append(qubit)
        qubit_to_trap[qubit] = trap_id
    return Placement(device, qubit_to_trap, trap_chains)


def compile_muzzle_like(
    code: StabilizerCode,
    trap_capacity: int = 2,
    topology: str = "linear",
    rounds: int = 5,
    basis: str = "Z",
    times: OperationTimes = DEFAULT_TIMES,
) -> CompiledProgram:
    """Compile with the Muzzle-like strategy; raises BaselineFailure."""
    gates = _sequentialise(build_gate_dag(code, rounds, basis))
    placement = _line_order_placement(code, trap_capacity, topology)
    router = _MuzzleRouter(code, placement, gates, times)
    ops = router.run()
    start = schedule_asap(ops)
    stats = compute_stats(ops, start, rounds)
    return CompiledProgram(
        ops=ops,
        start=start,
        rounds=rounds,
        qubit_to_trap=dict(placement.qubit_to_trap),
        stats=stats,
    )
