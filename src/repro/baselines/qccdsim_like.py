"""QCCDSim-style baseline compiler (Murali et al., ASPLOS 2020).

Reimplementation of the *strategy* of the NISQ-era QCCDSim toolflow the
paper benchmarks against (Table 3):

- gates are kept as a **sequential list** (no commutation analysis — a
  general-purpose NISQ compiler cannot assume parity-check structure);
- initial placement is a round-robin fill of traps in qubit-index
  order, ignoring the code geometry;
- routing is **on demand**: when the next gate in program order spans
  two traps, the ancilla-side ion is shuttled along the statically
  shortest path, moving other ions out of the way only by displacing
  one resident when the destination trap is full;
- no capacity reservation or look-ahead, so compilation fails
  (``BaselineFailure``) when the greedy displacement cannot free the
  destination — exactly the NaN rows of Table 3.
"""

from __future__ import annotations

from ..arch.timing import DEFAULT_TIMES, OperationTimes
from ..codes.base import StabilizerCode
from ..core.compiler import compute_stats
from ..core.ir import CompiledProgram, LogicalGate
from ..core.place import Placement
from ..core.route import Router
from ..core.schedule import schedule_asap
from ..core.translate import build_gate_dag


class BaselineFailure(RuntimeError):
    """The baseline compiler could not produce a legal schedule."""


def _sequentialise(gates: list[LogicalGate]) -> list[LogicalGate]:
    """Replace the commutation DAG with strict program order."""
    for i, gate in enumerate(gates):
        gate.deps = [i - 1] if i > 0 else []
    return gates


class _GreedyRouter(Router):
    """Router stripped of the paper compiler's optimisations."""

    DETOUR_TOLERANCE = float("inf")  # never waits; always takes a path

    def _restoration_path(self, ion, alloc):
        # No prefetching: surplus ions go to the nearest free slot.
        src = self.location[ion]
        return self._find_path_to_any(
            src,
            alloc,
            lambda t: alloc[t] < self.device.trap_capacity - 1 and t != src,
        )

    def _force_unblock(self):
        # The NISQ-era tools have no deadlock-recovery pass: a stuck
        # greedy route is a compilation failure (the NaN rows).
        return False

    def run(self):
        try:
            return super().run()
        except Exception as exc:  # deadlocks surface as failures (NaN)
            raise BaselineFailure(str(exc)) from exc


def _round_robin_placement(
    code: StabilizerCode, capacity: int, topology: str
) -> Placement:
    from ..core.place import build_device_for

    device, clusters = build_device_for(code, capacity, topology)
    del clusters  # geometry-aware clustering is exactly what we drop
    traps = device.traps
    per_trap = capacity - 1
    qubit_to_trap: dict[int, int] = {}
    trap_chains: dict[int, list[int]] = {t.id: [] for t in traps}
    trap_idx = 0
    for qubit in code.qubits:
        while len(trap_chains[traps[trap_idx].id]) >= per_trap:
            trap_idx += 1
            if trap_idx >= len(traps):
                raise BaselineFailure("device too small for round-robin fill")
        trap_id = traps[trap_idx].id
        trap_chains[trap_id].append(qubit.index)
        qubit_to_trap[qubit.index] = trap_id
    return Placement(device, qubit_to_trap, trap_chains)


def compile_qccdsim_like(
    code: StabilizerCode,
    trap_capacity: int = 2,
    topology: str = "linear",
    rounds: int = 5,
    basis: str = "Z",
    times: OperationTimes = DEFAULT_TIMES,
) -> CompiledProgram:
    """Compile with the QCCDSim-like strategy; raises BaselineFailure."""
    gates = _sequentialise(build_gate_dag(code, rounds, basis))
    placement = _round_robin_placement(code, trap_capacity, topology)
    router = _GreedyRouter(code, placement, gates, times)
    ops = router.run()
    start = schedule_asap(ops)
    stats = compute_stats(ops, start, rounds)
    return CompiledProgram(
        ops=ops,
        start=start,
        rounds=rounds,
        qubit_to_trap=dict(placement.qubit_to_trap),
        stats=stats,
    )
