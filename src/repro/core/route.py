"""The ``greedy`` routing strategy (Sec. 4.3, Figure 7).

The paper's router, re-expressed on the shared substrate
(:class:`repro.core.routing_base.RoutingStrategy`).  It works in
passes; each pass:

1. sequences every ready gate whose qubits already share a trap;
2. plans shortest admissible paths for the ancillas of blocked gates,
   in gate-priority order, reserving occupancy along each path so the
   trap-capacity / junction-exclusivity / segment-exclusivity
   constraints hold no matter how the scheduler overlaps the pass;
3. emits the movement primitives (split / shuttle / junction entry and
   exit / merge, with in-trap gate swaps when the leaving ion is not at
   a chain end);
4. sequences the gates the movements enabled;
5. restores the fill invariant — every trap ends the pass at most
   ``capacity - 1`` full — by re-routing surplus ions *towards their
   next gate*, which doubles as prefetching and is where most of the
   compiler's movement savings come from.

Happens-before edges are tracked per ion and per hardware component,
so the schedule derived later can overlap everything that is physically
independent.

Only the pass structure and the priority-order movement policy live
here; pathfinding, emission and invariant restoration are substrate
machinery, so this strategy is bit-identical to the pre-strategy
``Router`` monolith by construction.
"""

from __future__ import annotations

from .ir import QccdOp
from .routing_base import RoutingError, RoutingStrategy, register_router

__all__ = ["GreedyRouter", "Router", "RoutingError"]


@register_router("greedy")
class GreedyRouter(RoutingStrategy):
    """Multi-pass greedy router: priority-ordered movement with
    conservative per-path occupancy reservation."""

    def _movement_phase(self) -> int:
        """Plan and emit one batch of ancilla movements (steps 2-7)."""
        alloc = self._occupancy()
        moved: set[int] = set()
        plans: list[tuple[int, list[int]]] = []
        for gate in self._blocked_gates():
            mover, dest = self._mover_and_destination(gate)
            if mover in moved:
                continue
            path = self._find_path(self.location[mover], dest, alloc)
            if path is None:
                continue
            alloc[self.location[mover]] -= 1
            for comp in path[1:]:
                alloc[comp] += 1
            plans.append((mover, path))
            moved.add(mover)
        for mover, path in plans:
            self._emit_hop(mover, path)
        return len(plans)

    def run(self) -> list[QccdOp]:
        stall_guard = 0
        while len(self._sequenced) < len(self.gates):
            progressed = 0
            progressed += self._sequence_local_gates()
            progressed += self._movement_phase()
            progressed += self._sequence_local_gates()
            progressed += self._restore_invariants()
            if progressed == 0:
                stall_guard += 1
                if stall_guard > 25 or not self._force_unblock():
                    raise self._deadlock_error()
            else:
                stall_guard = 0
        # Final cleanup restores the fill invariant unconditionally so
        # the program ends in a legal steady state.
        self._final_restore()
        return self.ops


# Backwards-compatible name: the pre-strategy monolith was ``Router``.
Router = GreedyRouter
