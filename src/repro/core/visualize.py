"""Text rendering of compiled schedules.

Debugging a QCCD schedule means answering "what was trap 7 doing at
t = 1200 us?" — these helpers render a compiled program as a per-ion
event log and as a component-occupancy timeline, entirely in plain
text so they work in any terminal or test log.
"""

from __future__ import annotations

from .ir import CompiledProgram, QccdOp


def _strategy_tag(program: CompiledProgram) -> str:
    """Header suffix naming the strategies that produced a program.

    Routing traces from different strategies are otherwise
    indistinguishable once rendered — the tag makes side-by-side
    comparisons self-describing.
    """
    return f" [router={program.router} placer={program.placer}]"


def format_ion_timeline(
    program: CompiledProgram, ion: int, limit: int = 50
) -> str:
    """Chronological event log of one ion (code qubit)."""
    events = [
        op for op in program.ops_in_time_order() if ion in op.ions
    ]
    lines = [f"ion {ion}: {len(events)} operations{_strategy_tag(program)}"]
    for op in events[:limit]:
        start = program.start[op.id]
        comps = ",".join(str(c) for c in op.components)
        partners = [q for q in op.ions if q != ion]
        partner = f" with {partners[0]}" if partners else ""
        lines.append(
            f"  t={start:9.1f}us  {op.kind:<15} @[{comps}]{partner}"
        )
    if len(events) > limit:
        lines.append(f"  ... {len(events) - limit} more")
    return "\n".join(lines)


def format_component_timeline(
    program: CompiledProgram, component: int, limit: int = 50
) -> str:
    """Chronological usage log of one hardware component."""
    events = [
        op
        for op in program.ops_in_time_order()
        if component in op.components
    ]
    lines = [
        f"component {component}: {len(events)} operations"
        f"{_strategy_tag(program)}"
    ]
    for op in events[:limit]:
        start = program.start[op.id]
        ions = ",".join(str(q) for q in op.ions)
        lines.append(f"  t={start:9.1f}us  {op.kind:<15} ions[{ions}]")
    if len(events) > limit:
        lines.append(f"  ... {len(events) - limit} more")
    return "\n".join(lines)


def utilisation_summary(program: CompiledProgram) -> dict[str, float]:
    """Aggregate where wall-clock time goes in a schedule.

    Returns the fraction of total op-time spent in gates, transport and
    gate swaps, plus the schedule's parallelism (total op-time over
    makespan).
    """
    gate_time = 0.0
    move_time = 0.0
    swap_time = 0.0
    for op in program.ops:
        if op.is_movement:
            move_time += op.duration
        elif op.kind == "SWAP":
            swap_time += op.duration
        else:
            gate_time += op.duration
    total = gate_time + move_time + swap_time
    makespan = program.stats.makespan_us
    return {
        "gate_fraction": gate_time / total if total else 0.0,
        "movement_fraction": move_time / total if total else 0.0,
        "swap_fraction": swap_time / total if total else 0.0,
        "parallelism": total / makespan if makespan else 0.0,
    }


def busiest_components(
    program: CompiledProgram, top: int = 5
) -> list[tuple[int, float]]:
    """Components ranked by total busy time (the congestion hotspots)."""
    busy: dict[int, float] = {}
    for op in program.ops:
        for comp in op.components:
            busy[comp] = busy.get(comp, 0.0) + op.duration
    ranked = sorted(busy.items(), key=lambda kv: -kv[1])
    return ranked[:top]


def schedule_gantt(
    program: CompiledProgram,
    components: list[int],
    t0: float = 0.0,
    t1: float | None = None,
    width: int = 78,
) -> str:
    """ASCII Gantt chart of selected components over [t0, t1).

    Each row is a component; each column a time bucket; the cell shows
    the first letter of the op kind occupying the component (``.`` for
    idle).
    """
    if t1 is None:
        t1 = program.stats.makespan_us
    if t1 <= t0:
        raise ValueError("need t1 > t0")
    bucket = (t1 - t0) / width
    lines = [
        f"time {t0:.0f}..{t1:.0f}us, one column = {bucket:.1f}us"
        f"{_strategy_tag(program)}"
    ]
    for comp in components:
        row = ["."] * width
        for op in program.ops:
            if comp not in op.components:
                continue
            start = program.start[op.id]
            end = start + op.duration
            if end <= t0 or start >= t1:
                continue
            lo = max(int((start - t0) / bucket), 0)
            hi = min(int((end - t0) / bucket) + 1, width)
            for i in range(lo, hi):
                row[i] = op.kind[0]
        lines.append(f"{comp:>5} |{''.join(row)}|")
    return "\n".join(lines)
