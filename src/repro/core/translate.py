"""Translation pass: parity-check circuit -> commutation-aware gate DAG.

CNOT/H/M/R are kept as composite gates (their native decomposition into
MS + rotations is encoded in the timing and noise models), so this pass
focuses on the *dependency structure*: a gate depends on an earlier
gate only when they share a qubit and do not commute.  Classification
on the shared qubit:

- CX control acts as a Z-type coupling, CX target as X-type;
- same type on the shared qubit -> the gates commute -> no edge;
- different types, or any non-unitary op (M, R) or basis change (H),
  -> edge.

This keeps every check's CX gates mutually reorderable and lets checks
of the same basis interleave freely across rounds, which the router
exploits to avoid round-trip ion movements.
"""

from __future__ import annotations

from ..codes.base import StabilizerCode
from .ir import LogicalGate

# How a gate acts on one of its qubits, for commutation checks.
_Z_TYPE = "z"
_X_TYPE = "x"
_BLOCKING = "n"  # M, R, H: order against everything on this qubit


def _actions(gate_kind: str, qubits: tuple[int, ...]):
    """Yield (qubit, action-class) pairs for a gate."""
    if gate_kind == "CX":
        control, target = qubits
        yield control, _Z_TYPE
        yield target, _X_TYPE
    else:
        for q in qubits:
            yield q, _BLOCKING


class _DependencyTracker:
    """Per-qubit history used to add only non-commuting edges."""

    def __init__(self):
        # qubit -> (last blocking gate id | None, gates since then by class)
        self._state: dict[int, tuple[int | None, dict[str, list[int]]]] = {}

    def register(self, gate: LogicalGate) -> None:
        deps: set[int] = set()
        for qubit, action in _actions(gate.kind, gate.qubits):
            last_blocking, since = self._state.get(
                qubit, (None, {_Z_TYPE: [], _X_TYPE: []})
            )
            if action == _BLOCKING:
                if last_blocking is not None:
                    deps.add(last_blocking)
                deps.update(since[_Z_TYPE])
                deps.update(since[_X_TYPE])
                self._state[qubit] = (gate.id, {_Z_TYPE: [], _X_TYPE: []})
            else:
                if last_blocking is not None:
                    deps.add(last_blocking)
                conflicting = _X_TYPE if action == _Z_TYPE else _Z_TYPE
                deps.update(since[conflicting])
                since[action].append(gate.id)
                self._state[qubit] = (last_blocking, since)
        deps.discard(gate.id)
        gate.deps = sorted(deps)


def build_gate_dag(
    code: StabilizerCode, rounds: int, basis: str = "Z"
) -> list[LogicalGate]:
    """The full memory-experiment gate DAG (prep + rounds + readout)."""
    if basis not in ("X", "Z"):
        raise ValueError("basis must be 'X' or 'Z'")
    if rounds < 1:
        raise ValueError("need at least one round")
    gates: list[LogicalGate] = []
    tracker = _DependencyTracker()

    def add(kind: str, qubits: tuple[int, ...], round_idx: int, layer: int) -> None:
        gate = LogicalGate(len(gates), kind, qubits, round_idx, layer)
        gates.append(gate)
        tracker.register(gate)

    data = [q.index for q in code.data_qubits]
    # State preparation: reset all data; X-basis memory adds Hadamards.
    for q in data:
        add("R", (q,), -1, 0)
    if basis == "X":
        for q in data:
            add("H", (q,), -1, 1)

    num_layers = code.num_layers
    for r in range(rounds):
        # Emit layer-by-layer across checks so that dependency edges
        # between anticommuting CX pairs follow the code's conflict-free
        # layer schedule (emitting check-by-check would impose an
        # arbitrary sequential order between neighbouring checks).
        for check in code.checks:
            add("R", (check.ancilla,), r, 0)
        for check in code.checks:
            if check.basis == "X":
                add("H", (check.ancilla,), r, 1)
        check_cx_ids: dict[int, list[int]] = {c.ancilla: [] for c in code.checks}
        for layer in range(num_layers):
            for check in code.checks:
                if layer >= len(check.data_by_layer):
                    continue
                d = check.data_by_layer[layer]
                if d is None:
                    continue
                pair = (d, check.ancilla) if check.basis == "Z" else (check.ancilla, d)
                add("CX", pair, r, 2 + layer)
                check_cx_ids[check.ancilla].append(gates[-1].id)
        # Hook-safety barrier: an ancilla fault after the second CX of a
        # weight-4 check spreads to whichever two data qubits come last,
        # so the code's hook-safe layer orders are only preserved if the
        # first half of each check's CXs precedes the second half.  The
        # router may still permute freely *within* each half.
        for ids in check_cx_ids.values():
            if len(ids) < 3:
                continue
            half = (len(ids) + 1) // 2
            for early in ids[:half]:
                for late in ids[half:]:
                    if early not in gates[late].deps:
                        gates[late].deps.append(early)
                        gates[late].deps.sort()
        for check in code.checks:
            if check.basis == "X":
                add("H", (check.ancilla,), r, 2 + num_layers)
        for check in code.checks:
            add("M", (check.ancilla,), r, 3 + num_layers)

    # Final data readout (H first for X-basis memory).
    if basis == "X":
        for q in data:
            add("H", (q,), rounds, 0)
    for q in data:
        add("M", (q,), rounds, 1)
    return gates
