"""The ``layered`` routing strategy: DAG-layer priority-queue routing.

Surface_Code_Routing-style: the commutation-aware gate DAG is bucketed
into *dependency layers* (a gate's layer is its longest dependency-path
depth), and the router resolves one layer at a time.  Within a layer
every gate is ready by construction, so the router drains a priority
queue of the layer's gates: local gates are sequenced immediately,
blocked gates get their movers batch-routed, and the fill invariant is
restored once per layer rather than once per pass — movement is
batched at layer granularity, which trades the greedy router's eager
prefetching for strictly layer-synchronous phases (the shape a
fixed-cadence control system schedules naturally).

All pathfinding, emission, invariant restoration and deadlock escapes
come from the shared substrate
(:class:`repro.core.routing_base.RoutingStrategy`).
"""

from __future__ import annotations

import heapq
from collections import defaultdict

from .ir import QccdOp
from .routing_base import RoutingStrategy, register_router

__all__ = ["LayeredRouter"]


@register_router("layered")
class LayeredRouter(RoutingStrategy):
    """Layer-synchronous router over the gate DAG's depth buckets."""

    # A layer whose gates make no progress for this many consecutive
    # iterations is deadlocked even after forced unblocking.
    STALL_LIMIT = 25

    def _dag_layers(self) -> list[list[int]]:
        """Gate ids bucketed by longest dependency-path depth.

        Dependencies always reference earlier gate ids, so one forward
        sweep computes every depth; within a bucket gates keep priority
        order via the queue below.
        """
        depth: dict[int, int] = {}
        for gate in self.gates:
            depth[gate.id] = 1 + max(
                (depth[d] for d in gate.deps), default=-1
            )
        buckets: dict[int, list[int]] = defaultdict(list)
        for gate in self.gates:
            buckets[depth[gate.id]].append(gate.id)
        return [buckets[k] for k in sorted(buckets)]

    def _layer_movement(self, pending: set[int]) -> int:
        """Batch-route movers for this layer's blocked gates.

        Gates are drained from a priority queue (round, layer, id) and
        their movers routed with conservative occupancy reservation, so
        one batch never oversubscribes a trap, junction or segment.
        """
        queue: list[tuple[tuple[int, int, int], int]] = []
        for gid in pending:
            if gid not in self._ready:
                continue
            gate = self.gates[gid]
            if len({self.location[q] for q in gate.qubits}) > 1:
                heapq.heappush(queue, (gate.priority, gid))
        alloc = self._occupancy()
        moved: set[int] = set()
        plans: list[tuple[int, list[int]]] = []
        while queue:
            _, gid = heapq.heappop(queue)
            gate = self.gates[gid]
            mover, dest = self._mover_and_destination(gate)
            if mover in moved:
                continue
            path = self._find_path(self.location[mover], dest, alloc)
            if path is None:
                continue
            alloc[self.location[mover]] -= 1
            for comp in path[1:]:
                alloc[comp] += 1
            plans.append((mover, path))
            moved.add(mover)
        for mover, path in plans:
            self._emit_hop(mover, path)
        return len(plans)

    def run(self) -> list[QccdOp]:
        for layer in self._dag_layers():
            pending = set(layer)
            stall_guard = 0
            while not pending.issubset(self._sequenced):
                progressed = self._sequence_local_gates()
                progressed += self._layer_movement(pending)
                progressed += self._sequence_local_gates()
                # Restoring the fill invariant every pass (not just at
                # the layer barrier) drains congestion as it forms —
                # full traps along a corridor otherwise wall off the
                # layer's remaining movers on sparse topologies.
                progressed += self._restore_invariants()
                if progressed == 0:
                    # Escalation ladder: first drain full traps however
                    # far their escape (layer-batched movement can wall
                    # off a corridor with full traps whose every escape
                    # exceeds the routine restoration bound), then
                    # force-unblock the oldest blocked gate.
                    progressed += self._drain_overfull()
                if progressed == 0:
                    stall_guard += 1
                    if stall_guard > self.STALL_LIMIT or not self._force_unblock():
                        raise self._deadlock_error()
                else:
                    stall_guard = 0
            # Layer barrier: movement stays batched at layer
            # granularity, so the next layer starts from a legal
            # steady state.
            self._restore_invariants()
        self._final_restore()
        return self.ops
