"""The ``parallel`` routing strategy: conflict-graph independent sets.

Enola-style MIS routing: each movement phase plans a candidate shortest
path for *every* blocked gate against the same base occupancy, builds a
conflict graph over the candidates (two moves conflict when their paths
share any hardware component — including endpoints, which is what makes
component-disjoint moves jointly admissible), and greedily selects a
maximal independent set, preferring low-conflict movers and breaking
ties by gate priority.  The selected moves are compatible by
construction, so the scheduler can overlap the whole batch; conflicting
movers simply wait for the next phase rather than convoying behind a
reservation made moments earlier.

Compared with the ``greedy`` strategy — which routes in strict priority
order and lets early reservations detour or defer later movers — the
independent-set selection maximises the number of *simultaneous*
compatible moves per phase.

All pathfinding, emission, invariant restoration and deadlock escapes
come from the shared substrate
(:class:`repro.core.routing_base.RoutingStrategy`).
"""

from __future__ import annotations

from .ir import QccdOp
from .routing_base import RoutingStrategy, register_router

__all__ = ["ParallelRouter"]


@register_router("parallel")
class ParallelRouter(RoutingStrategy):
    """Per-phase maximal-independent-set selection of compatible moves."""

    def _candidate_moves(self) -> list[tuple[tuple[int, int, int], int, list[int]]]:
        """One feasible move per blocked gate's mover.

        Every candidate is planned against the same base occupancy (no
        accumulated reservations), so selection — not planning order —
        decides which moves run this phase.
        """
        alloc = self._occupancy()
        candidates = []
        claimed: set[int] = set()
        for gate in self._blocked_gates():
            mover, dest = self._mover_and_destination(gate)
            if mover in claimed:
                continue
            path = self._find_path(self.location[mover], dest, alloc)
            if path is None:
                continue
            claimed.add(mover)
            candidates.append((gate.priority, mover, path))
        return candidates

    def _select_independent(self, candidates) -> list[tuple[int, list[int]]]:
        """Greedy maximal independent set over the path-conflict graph.

        Classic min-degree greedy MIS: repeatedly take the candidate
        with the fewest remaining conflicts (ties to higher gate
        priority), then drop its neighbours.  Conflicts are shared
        components — sources, corridors and destinations alike — so any
        two selected paths are component-disjoint and the batch is
        jointly admissible given each path was individually admissible.
        """
        n = len(candidates)
        footprint = [set(path) for _, _, path in candidates]
        conflicts: list[set[int]] = [set() for _ in range(n)]
        for i in range(n):
            for j in range(i + 1, n):
                if footprint[i] & footprint[j]:
                    conflicts[i].add(j)
                    conflicts[j].add(i)
        alive = set(range(n))
        selected: list[tuple[int, list[int]]] = []
        while alive:
            best = min(alive, key=lambda i: (len(conflicts[i] & alive), candidates[i][0]))
            _, mover, path = candidates[best]
            selected.append((mover, path))
            alive.discard(best)
            alive -= conflicts[best]
        return selected

    def _movement_phase(self) -> int:
        candidates = self._candidate_moves()
        if not candidates:
            return 0
        selected = self._select_independent(candidates)
        for mover, path in selected:
            self._emit_hop(mover, path)
        return len(selected)

    def run(self) -> list[QccdOp]:
        stall_guard = 0
        while len(self._sequenced) < len(self.gates):
            progressed = 0
            progressed += self._sequence_local_gates()
            progressed += self._movement_phase()
            progressed += self._sequence_local_gates()
            progressed += self._restore_invariants()
            if progressed == 0:
                # Same stall ladder as the layered router: drain full
                # traps past the routine restoration bound before
                # force-unblocking (independent-set selection can defer
                # a region long enough for it to congest solid).
                progressed += self._drain_overfull()
            if progressed == 0:
                stall_guard += 1
                if stall_guard > 25 or not self._force_unblock():
                    raise self._deadlock_error()
            else:
                stall_guard = 0
        self._final_restore()
        return self.ops
