"""Compiler intermediate representation.

Three levels (Figure 5):

1. :class:`LogicalGate` — the parity-check circuit as a *commutation-
   aware dependency DAG* over code qubits.  Edges exist only between
   gates that share a qubit and do not commute, so the router is free
   to reorder commuting checks (this freedom is a large part of the
   compiler's advantage over gate-list baselines).
2. :class:`QccdOp` — gates bound to traps plus movement primitives,
   with happens-before edges over ions and hardware components.
3. The scheduled program — :class:`QccdOp` plus start times, produced
   by the scheduler and wrapped in :class:`CompiledProgram`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

GATE_KINDS = ("CX", "H", "M", "R", "SWAP")
MOVEMENT_KINDS = ("SPLIT", "MERGE", "SHUTTLE", "JUNCTION_ENTRY", "JUNCTION_EXIT")


@dataclass
class LogicalGate:
    """One gate of the translated parity-check circuit."""

    id: int
    kind: str                 # 'CX' | 'H' | 'M' | 'R'
    qubits: tuple[int, ...]   # code-qubit ids; CX is (control, target)
    round: int                # -1 = state prep, rounds = final readout
    layer: int                # position within the round (priority)
    deps: list[int] = field(default_factory=list)

    @property
    def priority(self) -> tuple[int, int, int]:
        """Smaller sorts earlier: round, then layer, then id."""
        return (self.round, self.layer, self.id)


@dataclass
class QccdOp:
    """One scheduled hardware operation."""

    id: int
    kind: str                     # GATE_KINDS or MOVEMENT_KINDS entry
    ions: tuple[int, ...]         # code qubits riding the involved ions
    components: tuple[int, ...]   # device components occupied
    duration: float               # microseconds
    deps: tuple[int, ...]
    gate_id: int | None = None    # back-reference for gates
    round: int = 0

    @property
    def is_movement(self) -> bool:
        return self.kind in MOVEMENT_KINDS

    @property
    def is_gate_swap(self) -> bool:
        return self.kind == "SWAP"


@dataclass
class ProgramStats:
    """Metrics of a compiled program (Sec. 6.3)."""

    makespan_us: float
    rounds: int
    movement_ops: int          # t7-t11 primitives plus gate swaps
    movement_time_us: float    # sum of movement-op durations
    gate_swaps: int
    num_gates: int
    ops_by_kind: dict[str, int]

    @property
    def round_time_us(self) -> float:
        return self.makespan_us / max(self.rounds, 1)


@dataclass
class CompiledProgram:
    """The compiler's output: a timed QCCD instruction stream."""

    ops: list[QccdOp]
    start: list[float]
    rounds: int
    qubit_to_trap: dict[int, int]    # initial placement
    stats: ProgramStats
    router: str = "greedy"           # routing strategy that produced ops
    placer: str = "projection"       # placement strategy behind qubit_to_trap

    def end(self, op_id: int) -> float:
        return self.start[op_id] + self.ops[op_id].duration

    def ops_in_time_order(self) -> list[QccdOp]:
        return sorted(self.ops, key=lambda op: (self.start[op.id], op.id))
