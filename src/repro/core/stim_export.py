"""Export a compiled schedule to a noisy stabilizer circuit (Sec. 6.4).

This is the bridge between the compiler and the logical-error-rate
simulation: ops are replayed in scheduled time order; transport
primitives update the per-ion heating ledger; gates receive
depolarising noise whose strength reflects the chain energy at their
scheduled moment (channels e2/e3); every gap in a qubit's timeline —
idling or riding a shuttle — contributes T2 dephasing (e1); resets and
measurements add their X-flip channels (e4/e5).  Detector and
observable annotations follow the memory-experiment wiring from
``repro.codes.circuits`` using the (qubit, round) labels carried by the
compiled ops, so the hardware-dependent measurement *order* never
breaks the detector structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codes.base import StabilizerCode
from ..codes.circuits import attach_detectors, memory_detector_spec
from ..noise.fidelity import (
    dephasing_error,
    measurement_error,
    reset_error,
    single_qubit_error,
    two_qubit_error,
)
from ..noise.heating import HeatingLedger
from ..noise.parameters import NoiseParameters
from ..sim.circuit import StabilizerCircuit
from .ir import CompiledProgram


@dataclass
class ExportResult:
    circuit: StabilizerCircuit
    meas_index: dict[tuple[int, int], int]
    max_nbar: float


def fold_probability(p: float, repetitions: int) -> float:
    """Probability that an odd number of ``repetitions`` flips occur."""
    q = 1.0
    for _ in range(repetitions):
        q *= 1.0 - 2.0 * p
    return (1.0 - q) / 2.0


def program_to_circuit(
    program: CompiledProgram,
    code: StabilizerCode,
    noise: NoiseParameters,
    basis: str = "Z",
    chain_sizes: dict[int, int] | None = None,
) -> ExportResult:
    """Noisy stabilizer circuit for a compiled memory experiment.

    ``chain_sizes`` optionally overrides the chain length seen by each
    gate (keyed by op id); by default the length is approximated by the
    trap occupancy implied by co-scheduled ions, which the compiler's
    trap-fill invariant bounds by the trap capacity.
    """
    circuit = StabilizerCircuit()
    ledger = HeatingLedger(noise.heating)
    meas_index: dict[tuple[int, int], int] = {}
    last_busy: dict[int, float] = {}
    max_nbar = 0.0
    capacity = _infer_capacity(program)

    for op in program.ops_in_time_order():
        t0 = program.start[op.id]
        t1 = t0 + op.duration
        if op.is_movement:
            nbar = ledger.record_movement(op.ions[0], op.kind)
            max_nbar = max(max_nbar, nbar)
            continue

        # Idle dephasing since each participating qubit was last busy.
        for q in op.ions:
            gap = t0 - last_busy.get(q, t0)
            if gap > 1e-9:
                p_idle = dephasing_error(noise, gap)
                if p_idle > 0:
                    circuit.append("Z_ERROR", (q,), (p_idle,))
            last_busy[q] = t1

        chain = capacity if chain_sizes is None else chain_sizes.get(op.id, capacity)
        if op.kind == "R":
            circuit.append("R", op.ions)
            circuit.append("X_ERROR", op.ions, (reset_error(noise),))
            ledger.record_reset(op.ions[0])
        elif op.kind == "M":
            q = op.ions[0]
            circuit.append("X_ERROR", (q,), (measurement_error(noise),))
            round_key = -1 if op.round >= program.rounds else op.round
            meas_index[(q, round_key)] = circuit.num_measurements
            circuit.append("M", (q,))
        elif op.kind == "H":
            circuit.append("H", op.ions)
            p = single_qubit_error(noise, op.duration, chain, ledger.of(op.ions[0]))
            circuit.append("DEPOLARIZE1", op.ions, (p,))
        elif op.kind == "CX":
            circuit.append("CX", op.ions)
            nbar = ledger.pair_nbar(*op.ions)
            p2 = two_qubit_error(noise, op.duration, chain, nbar)
            circuit.append("DEPOLARIZE2", op.ions, (p2,))
            p1 = single_qubit_error(noise, op.duration, chain, nbar)
            circuit.append("DEPOLARIZE1", op.ions, (p1,))
        elif op.kind == "SWAP":
            # A gate swap exchanges the *states* of two ions; the code
            # qubits ride along with their states, so in code-qubit space
            # the operation is the identity — only its noise remains.
            nbar = ledger.pair_nbar(*op.ions)
            p2 = fold_probability(
                two_qubit_error(noise, op.duration / 3.0, chain, nbar), 3
            )
            circuit.append("DEPOLARIZE2", op.ions, (p2,))
        else:
            raise ValueError(f"unexpected op kind {op.kind}")

    spec = memory_detector_spec(code, program.rounds, basis)
    attach_detectors(circuit, spec, meas_index)
    return ExportResult(circuit, meas_index, max_nbar)


def _infer_capacity(program: CompiledProgram) -> int:
    """Chain length proxy: ions per trap under the fill invariant."""
    if not program.qubit_to_trap:
        return 2
    counts: dict[int, int] = {}
    for trap in program.qubit_to_trap.values():
        counts[trap] = counts.get(trap, 0) + 1
    return max(max(counts.values()) + 1, 2)
