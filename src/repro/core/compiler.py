"""Top-level QEC-to-QCCD compiler (Figure 5)."""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import telemetry
from ..arch.timing import DEFAULT_TIMES, OperationTimes
from ..arch.wiring import STANDARD_WIRING, WiringMethod
from ..codes.base import StabilizerCode
from .ir import MOVEMENT_KINDS, CompiledProgram, ProgramStats, QccdOp
from .place import Placement, place
from .routing_base import router_by_name
from .schedule import makespan, schedule
from .translate import build_gate_dag

# Importing the strategy modules registers them; ``route`` also carries
# the back-compat ``Router`` name.
from . import route as _route  # noqa: F401
from . import route_layered as _route_layered  # noqa: F401
from . import route_parallel as _route_parallel  # noqa: F401


@dataclass
class CompilerConfig:
    """Everything needed to compile a memory experiment."""

    code: StabilizerCode
    trap_capacity: int = 2
    topology: str = "grid"
    wiring: WiringMethod = STANDARD_WIRING
    rounds: int = 1
    basis: str = "Z"
    times: OperationTimes = field(default_factory=lambda: DEFAULT_TIMES)
    router: str = "greedy"
    placer: str = "projection"

    def operation_times(self) -> OperationTimes:
        return self.wiring.operation_times(self.times)


def compute_stats(
    ops: list[QccdOp], start: list[float], rounds: int
) -> ProgramStats:
    by_kind: dict[str, int] = {}
    movement_ops = 0
    movement_time = 0.0
    gate_swaps = 0
    num_gates = 0
    for op in ops:
        by_kind[op.kind] = by_kind.get(op.kind, 0) + 1
        if op.kind in MOVEMENT_KINDS:
            movement_ops += 1
            movement_time += op.duration
        elif op.kind == "SWAP":
            gate_swaps += 1
            movement_ops += 1
            movement_time += op.duration
        else:
            num_gates += 1
    return ProgramStats(
        makespan_us=makespan(ops, start),
        rounds=rounds,
        movement_ops=movement_ops,
        movement_time_us=movement_time,
        gate_swaps=gate_swaps,
        num_gates=num_gates,
        ops_by_kind=by_kind,
    )


class QccdCompiler:
    """Compile a QEC memory experiment onto a QCCD device.

    Pipeline: translate (commutation-aware DAG) -> place (pluggable
    placement strategy, default partition + Hungarian) -> route
    (pluggable routing strategy, default multi-pass shortest paths) ->
    schedule (ASAP or WISE type-exclusive list scheduling).  Strategies
    are selected by name via ``config.router`` / ``config.placer``
    (see :mod:`repro.core.routing_base` and :mod:`repro.core.place`).
    """

    def __init__(self, config: CompilerConfig):
        self.config = config

    def compile(self) -> CompiledProgram:
        cfg = self.config
        router_cls = router_by_name(cfg.router)
        with telemetry.span("compile.translate"):
            gates = build_gate_dag(cfg.code, cfg.rounds, cfg.basis)
        with telemetry.span("compile.place", placer=cfg.placer):
            placement = self.placement()
        with telemetry.span("compile.route", router=cfg.router):
            router = router_cls(cfg.code, placement, gates, cfg.operation_times())
            ops = router.run()
        with telemetry.span("compile.schedule"):
            start = schedule(ops, cfg.wiring)
        stats = compute_stats(ops, start, cfg.rounds)
        return CompiledProgram(
            ops=ops,
            start=start,
            rounds=cfg.rounds,
            qubit_to_trap=dict(placement.qubit_to_trap),
            stats=stats,
            router=cfg.router,
            placer=cfg.placer,
        )

    def placement(self) -> Placement:
        cfg = self.config
        return place(cfg.code, cfg.trap_capacity, cfg.topology, placer=cfg.placer)


def compile_memory_experiment(
    code: StabilizerCode,
    trap_capacity: int = 2,
    topology: str = "grid",
    wiring: WiringMethod = STANDARD_WIRING,
    rounds: int = 1,
    basis: str = "Z",
    router: str = "greedy",
    placer: str = "projection",
) -> CompiledProgram:
    """One-call convenience wrapper used by examples and benchmarks."""
    config = CompilerConfig(
        code=code,
        trap_capacity=trap_capacity,
        topology=topology,
        wiring=wiring,
        rounds=rounds,
        basis=basis,
        router=router,
        placer=placer,
    )
    return QccdCompiler(config).compile()


def steady_round_time(
    code: StabilizerCode,
    trap_capacity: int = 2,
    topology: str = "grid",
    wiring: WiringMethod = STANDARD_WIRING,
    basis: str = "Z",
    probe_rounds: tuple[int, int] = (2, 4),
) -> float:
    """Steady-state QEC round time via a two-point slope.

    Compiling r1 and r2 rounds and taking the makespan slope removes
    the one-off cost of state preparation and final readout, giving the
    per-round time the paper's Figures 8-9 report.
    """
    r1, r2 = probe_rounds
    if r2 <= r1:
        raise ValueError("probe rounds must be increasing")
    m1 = compile_memory_experiment(
        code, trap_capacity, topology, wiring, rounds=r1, basis=basis
    ).stats.makespan_us
    m2 = compile_memory_experiment(
        code, trap_capacity, topology, wiring, rounds=r2, basis=basis
    ).stats.makespan_us
    return (m2 - m1) / (r2 - r1)
