"""Placement pass: cluster code qubits and map clusters to traps.

Following Sec. 4.2: qubits are partitioned into balanced clusters of
``capacity - 1`` (one slot per trap stays free for visiting ions) by a
top-down regular partition of the code layout, and clusters are mapped
to traps by a pluggable :class:`PlacementStrategy`:

* ``projection`` (the paper's scheme, and the default): minimum-cost
  assignment (Hungarian algorithm) of cluster centroids to trap sites
  on normalised geometric distance — scipy's Jonker-Volgenant solver is
  the polynomial-time equivalent of the paper's subset-enumeration +
  Hungarian scheme.
* ``window`` (Enola-style incremental placement): clusters are placed
  one at a time, most-connected-to-the-placed-set first, each onto the
  free trap that minimises interaction-weighted distance to its already
  placed neighbours — a windowed/partial placement that optimises the
  interactions that matter instead of the global geometric projection.

Strategies register themselves in :data:`PLACERS`; the sweep engine and
CLI select them by name, exactly like routing strategies
(:mod:`repro.core.routing_base`).

Devices are built to fit the workload: for capacity 2 on a grid the
trap sites exactly tile the code layout (the dedicated logical-qubit
tile a hardware designer would produce); larger clusters get a
near-square band grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..arch.device import QCCDDevice
from ..arch.topologies import grid_device_from_sites, linear_device, switch_device
from ..codes.base import StabilizerCode
from ..codes.rectangular import RectangularRotatedCode
from ..codes.rotated_surface import RotatedSurfaceCode


@dataclass
class Placement:
    """Result of the placement pass."""

    device: QCCDDevice
    qubit_to_trap: dict[int, int]
    trap_chains: dict[int, list[int]]   # initial chain order per trap

    @property
    def used_traps(self) -> list[int]:
        return sorted(self.trap_chains)


def layout_positions(code: StabilizerCode) -> dict[int, tuple[float, float]]:
    """Code-qubit positions in *router frame* coordinates.

    The rotated surface code's interaction graph is a unit grid only
    after a 45-degree rotation ((x+y)/2, (x-y)/2); other codes already
    live on a unit-ish grid.
    """
    if isinstance(code, (RotatedSurfaceCode, RectangularRotatedCode)):
        return {
            q.index: ((q.pos[0] + q.pos[1]) / 2.0, (q.pos[0] - q.pos[1]) / 2.0)
            for q in code.qubits
        }
    return {q.index: (q.pos[0] / 2.0, q.pos[1] / 2.0) for q in code.qubits}


def partition_qubits(code: StabilizerCode, cluster_size: int) -> list[list[int]]:
    """Top-down regular partition into balanced clusters.

    ``cluster_size == 1`` keeps qubits as singletons (capacity-2
    devices).  Otherwise qubits are sliced into near-square bands by
    the router-frame coordinates — the recursive-bisection equivalent
    for grid-like codes, preserving neighbourhoods (Figure 6).
    """
    if cluster_size < 1:
        raise ValueError("cluster size must be positive")
    pos = layout_positions(code)
    order = sorted(pos, key=lambda q: (pos[q][1], pos[q][0]))
    if cluster_size == 1:
        return [[q] for q in order]
    k = math.ceil(len(order) / cluster_size)

    def build(rows: int) -> list[list[int]]:
        clusters: list[list[int]] = []
        bands = _split_even(order, rows)
        per_band = _spread(k, len(bands))
        for band, n_clusters in zip(bands, per_band):
            band_sorted = sorted(band, key=lambda q: (pos[q][0], pos[q][1]))
            clusters.extend(_split_even(band_sorted, n_clusters))
        return [c for c in clusters if c]

    # Try band counts around sqrt(k) and keep the most balanced tiling
    # (ties broken towards square-ish bands for locality).
    target = max(1, round(math.sqrt(k)))
    best = None
    best_key = None
    for rows in range(1, min(k, target + 2) + 1):
        clusters = build(rows)
        sizes = [len(c) for c in clusters]
        if max(sizes) > cluster_size:
            continue
        key = (max(sizes) - min(sizes), abs(rows - target))
        if best_key is None or key < best_key:
            best, best_key = clusters, key
    assert best is not None  # rows=1 always yields sizes within bounds
    return best


def _split_even(items: list, parts: int) -> list[list]:
    """Split into ``parts`` contiguous chunks differing by at most one."""
    parts = max(1, min(parts, len(items)))
    base, extra = divmod(len(items), parts)
    out = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        out.append(items[start:start + size])
        start += size
    return out

def _spread(total: int, bins: int) -> list[int]:
    base, extra = divmod(total, bins)
    return [base + (1 if i < extra else 0) for i in range(bins)]


def build_device_for(
    code: StabilizerCode, capacity: int, topology: str
) -> tuple[QCCDDevice, list[list[int]]]:
    """Device sized for the code plus the clusters it will host."""
    clusters = partition_qubits(code, capacity - 1)
    k = len(clusters)
    if topology == "linear":
        return linear_device(k, capacity), clusters
    if topology == "switch":
        return switch_device(k, capacity), clusters
    if topology == "grid":
        pos = layout_positions(code)
        if capacity == 2:
            sites = [
                (round(pos[c[0]][0]), round(pos[c[0]][1])) for c in clusters
            ]
            # Degenerate collinear layouts (repetition code) keep a grid
            # of distinct sites automatically.
            if len(set(sites)) == len(sites):
                return grid_device_from_sites(sites, capacity), clusters
        rows = max(1, round(math.sqrt(k)))
        cols = math.ceil(k / rows)
        sites = []
        for i in range(k):
            sites.append((i % cols, i // cols))
        return grid_device_from_sites(sites, capacity), clusters
    raise ValueError(f"unknown topology {topology!r}")


# ---------------------------------------------------------------------------
# Placement strategies


PLACERS: dict[str, type["PlacementStrategy"]] = {}


def register_placer(name: str):
    """Class decorator: register a placement strategy under ``name``."""

    def decorator(cls: type["PlacementStrategy"]) -> type["PlacementStrategy"]:
        cls.name = name
        PLACERS[name] = cls
        return cls

    return decorator


def placer_by_name(name: str) -> type["PlacementStrategy"]:
    try:
        return PLACERS[name]
    except KeyError:
        raise ValueError(
            f"unknown placer {name!r}; available: {', '.join(available_placers())}"
        ) from None


def available_placers() -> tuple[str, ...]:
    return tuple(sorted(PLACERS))


class PlacementStrategy:
    """Shared placement machinery: partition, device build, validation.

    Subclasses implement :meth:`_assign`, mapping clusters to traps;
    everything else — clustering, device construction, capacity
    validation and chain assembly — is common, so every strategy yields
    a :class:`Placement` the routers can consume interchangeably.
    """

    name = "base"

    def place(
        self,
        code: StabilizerCode,
        capacity: int,
        topology: str,
        device: QCCDDevice | None = None,
    ) -> Placement:
        if capacity < 2:
            raise ValueError("trap capacity must be at least 2")
        if device is None:
            device, clusters = build_device_for(code, capacity, topology)
        else:
            clusters = partition_qubits(code, capacity - 1)
        # Validate up front: the failure mode is otherwise an opaque
        # shape error deep inside the assignment solver.
        if len(clusters) > len(device.traps):
            raise ValueError(
                f"cannot place {code.name} code with {code.num_qubits} qubits "
                f"(distance {code.distance}) on a {len(device.traps)}-trap "
                f"device at trap capacity {capacity}: {len(clusters)} clusters "
                f"of up to {capacity - 1} resident ion(s) need "
                f"{len(clusters)} traps"
            )
        pos = layout_positions(code)
        assignment = self._assign(code, clusters, pos, device)
        qubit_to_trap: dict[int, int] = {}
        trap_chains: dict[int, list[int]] = {}
        for cluster_idx, trap_id in assignment:
            cluster = clusters[cluster_idx]
            chain = sorted(cluster, key=lambda q: (pos[q][0], pos[q][1]))
            trap_chains[trap_id] = chain
            for q in cluster:
                qubit_to_trap[q] = trap_id
        return Placement(device, qubit_to_trap, trap_chains)

    def _assign(
        self,
        code: StabilizerCode,
        clusters: list[list[int]],
        pos: dict[int, tuple[float, float]],
        device: QCCDDevice,
    ) -> list[tuple[int, int]]:
        """Return ``(cluster_index, trap_id)`` pairs, one per cluster."""
        raise NotImplementedError


def _centroids(
    clusters: list[list[int]], pos: dict[int, tuple[float, float]]
) -> np.ndarray:
    return np.array(
        [
            [
                sum(pos[q][0] for q in cluster) / len(cluster),
                sum(pos[q][1] for q in cluster) / len(cluster),
            ]
            for cluster in clusters
        ]
    )


@register_placer("projection")
class ProjectionPlacer(PlacementStrategy):
    """Global geometric projection: Hungarian-match centroids to traps."""

    def _assign(self, code, clusters, pos, device):
        centroids = _centroids(clusters, pos)
        traps = device.traps
        trap_pos = np.array([t.pos for t in traps])
        # Normalise both point sets to the unit square so the metric is
        # scale-free, then assign at minimum total squared distance.
        cost = _assignment_cost(centroids, trap_pos)
        rows, cols = linear_sum_assignment(cost)
        return [
            (int(cluster_idx), traps[trap_idx].id)
            for cluster_idx, trap_idx in zip(rows, cols)
        ]


@register_placer("window")
class WindowPlacer(PlacementStrategy):
    """Incremental placement of interacting clusters (Enola-style).

    The cluster interaction graph inherits the code's layer-weighted
    qubit interaction graph (earlier entanglement → heavier edge).  The
    heaviest cluster seeds at its geometrically nearest trap; every
    subsequent step places the unplaced cluster most connected to the
    placed window onto the free trap minimising interaction-weighted
    distance to its placed neighbours (geometric distance to its own
    centroid breaks ties, so isolated clusters still land sensibly).
    """

    def _assign(self, code, clusters, pos, device):
        k = len(clusters)
        cluster_of = {q: i for i, cluster in enumerate(clusters) for q in cluster}
        weight = np.zeros((k, k))
        for a, b, data in code.interaction_graph().edges(data=True):
            ca, cb = cluster_of.get(a), cluster_of.get(b)
            if ca is None or cb is None or ca == cb:
                continue
            weight[ca, cb] += data["weight"]
            weight[cb, ca] += data["weight"]

        traps = device.traps
        norm_centroids = _normalise(_centroids(clusters, pos))
        norm_traps = _normalise(np.array([t.pos for t in traps]))

        def trap_dist(i: int, j: int) -> float:
            return float(np.linalg.norm(norm_traps[i] - norm_traps[j]))

        placed: dict[int, int] = {}  # cluster index -> trap index
        free = set(range(len(traps)))
        order: list[tuple[int, int]] = []
        while len(placed) < k:
            if placed:
                # Most connected to the current window; index breaks ties.
                cluster = max(
                    (c for c in range(k) if c not in placed),
                    key=lambda c: (sum(weight[c, p] for p in placed), -c),
                )
            else:
                cluster = max(range(k), key=lambda c: (weight[c].sum(), -c))
            anchors = [(p, weight[cluster, p]) for p in placed if weight[cluster, p] > 0]
            trap_idx = min(
                free,
                key=lambda t: (
                    sum(w * trap_dist(t, placed[p]) for p, w in anchors),
                    float(np.linalg.norm(norm_traps[t] - norm_centroids[cluster])),
                    t,
                ),
            )
            placed[cluster] = trap_idx
            free.discard(trap_idx)
            order.append((cluster, traps[trap_idx].id))
        return order


def place(
    code: StabilizerCode,
    capacity: int,
    topology: str,
    placer: str = "projection",
    device: QCCDDevice | None = None,
) -> Placement:
    """Cluster qubits, build the device, assign clusters to traps.

    ``placer`` selects the :class:`PlacementStrategy` by registry name;
    the default reproduces the paper's Hungarian projection exactly.
    """
    return placer_by_name(placer)().place(code, capacity, topology, device=device)


def _assignment_cost(points_a: np.ndarray, points_b: np.ndarray) -> np.ndarray:
    a = _normalise(points_a)
    b = _normalise(points_b)
    diff = a[:, None, :] - b[None, :, :]
    return (diff ** 2).sum(axis=2)


def _normalise(points: np.ndarray) -> np.ndarray:
    points = points.astype(float)
    span = points.max(axis=0) - points.min(axis=0)
    span[span == 0] = 1.0
    return (points - points.min(axis=0)) / span
