"""Scheduling pass (Sec. 4.4).

The router's happens-before edges already encode every per-component
exclusivity (gates serialise within a trap, one ion per segment or
junction), so under the standard wiring an ASAP schedule along the
dependency DAG is optimal for the given operation order.

The WISE wiring adds a *global* constraint: the shared switch network
can drive only one kind of primitive at a time, so operations of
different types must not overlap anywhere on the device.  For that
case we run resource-constrained list scheduling with time-weighted
critical-path priority (the classic Graham/Hu policy the paper cites).
"""

from __future__ import annotations

import heapq

from ..arch.wiring import WiringMethod
from .ir import QccdOp


def critical_path_lengths(ops: list[QccdOp]) -> list[float]:
    """Longest path (in time) from each op to the end of the program."""
    cp = [0.0] * len(ops)
    dependents: list[list[int]] = [[] for _ in ops]
    for op in ops:
        for dep in op.deps:
            dependents[dep].append(op.id)
    for op in reversed(ops):
        tail = max((cp[d] for d in dependents[op.id]), default=0.0)
        cp[op.id] = op.duration + tail
    return cp


def schedule_asap(ops: list[QccdOp]) -> list[float]:
    """Start times from pure dependency-driven ASAP scheduling."""
    start = [0.0] * len(ops)
    for op in ops:  # ops are emitted in topological order
        ready = 0.0
        for dep in op.deps:
            ready = max(ready, start[dep] + ops[dep].duration)
        start[op.id] = ready
    return start


def schedule_type_exclusive(ops: list[QccdOp]) -> list[float]:
    """List scheduling under WISE's one-primitive-type-at-a-time rule."""
    n = len(ops)
    cp = critical_path_lengths(ops)
    indegree = [len(op.deps) for op in ops]
    dependents: list[list[int]] = [[] for _ in ops]
    for op in ops:
        for dep in op.deps:
            dependents[dep].append(op.id)

    earliest = [0.0] * n        # dependency-imposed earliest start
    start = [0.0] * n
    ready: list[tuple[float, int]] = []  # (-critical path, id)
    for op in ops:
        if indegree[op.id] == 0:
            heapq.heappush(ready, (-cp[op.id], op.id))

    running: list[tuple[float, int]] = []  # (end time, id)
    running_kinds: dict[str, int] = {}
    now = 0.0
    done = 0
    deferred: list[tuple[float, int]] = []
    while done < n:
        # Start every ready op compatible with the current mode.
        while ready:
            neg_cp, oid = heapq.heappop(ready)
            op = ops[oid]
            if earliest[oid] > now or (
                running_kinds and op.kind not in running_kinds
            ):
                deferred.append((neg_cp, oid))
                continue
            start[oid] = now
            heapq.heappush(running, (now + op.duration, oid))
            running_kinds[op.kind] = running_kinds.get(op.kind, 0) + 1
        for item in deferred:
            heapq.heappush(ready, item)
        deferred = []

        if not running:
            # Nothing running: jump to the next dependency release.
            pending_times = [earliest[oid] for _, oid in ready]
            if not pending_times:
                raise RuntimeError("scheduler starved with pending operations")
            now = min(t for t in pending_times if t > now - 1e-12)
            continue

        end_time, oid = heapq.heappop(running)
        now = max(now, end_time)
        finished = [oid]
        while running and running[0][0] <= now + 1e-12:
            finished.append(heapq.heappop(running)[1])
        for fid in finished:
            op = ops[fid]
            running_kinds[op.kind] -= 1
            if running_kinds[op.kind] == 0:
                del running_kinds[op.kind]
            done += 1
            for dep_id in dependents[fid]:
                indegree[dep_id] -= 1
                earliest[dep_id] = max(earliest[dep_id], now)
                if indegree[dep_id] == 0:
                    heapq.heappush(ready, (-cp[dep_id], dep_id))
    return start


def schedule(ops: list[QccdOp], wiring: WiringMethod) -> list[float]:
    if wiring.type_exclusive:
        return schedule_type_exclusive(ops)
    return schedule_asap(ops)


def makespan(ops: list[QccdOp], start: list[float]) -> float:
    return max(
        (start[op.id] + op.duration for op in ops), default=0.0
    )
