"""Hand-derived optimal schedules (the paper's "theoretical minimum").

Table 2 validates the compiler against expert manual mappings.  These
formulas are derived *within our documented timing model* (the same
one the compiler uses), so compiler/optimal ratios are apples-to-apples:

- linear hop (trap-segment-trap): split + shuttle + merge
  = 3 ops, 165 us;
- two-trap linear hop through an intermediate trap adds merge + split;
- grid/switch hop (trap-segment-junction-segment-trap): 6 ops, 370 us;
- CX = 60 us, H = 5 us, M = 400 us, R = 50 us; in-trap operations
  serialise.

Derivations are in the docstrings of the individual functions; the
test suite asserts the compiler lands within the paper's reported
optimality band (<= ~1.15x) of these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.timing import DEFAULT_TIMES, OperationTimes
from ..codes.base import StabilizerCode
from ..codes.repetition import RepetitionCode
from ..codes.rotated_surface import RotatedSurfaceCode


@dataclass(frozen=True)
class OptimalEstimate:
    """Per-round optima for one (code, topology, capacity) config."""

    round_time_us: float
    movement_ops_per_round: int
    movement_time_per_round_us: float


def _linear_hop(times: OperationTimes, intermediate_traps: int = 0) -> tuple[int, float]:
    ops = 3 + 3 * intermediate_traps
    t = times.split + times.shuttle + times.merge
    t += intermediate_traps * (times.merge + times.split + times.shuttle)
    return ops, t


def _grid_hop(times: OperationTimes) -> tuple[int, float]:
    ops = 6
    t = (
        times.split
        + 2 * times.shuttle
        + times.junction_entry
        + times.junction_exit
        + times.merge
    )
    return ops, t


def optimal_estimate(
    code: StabilizerCode,
    topology: str,
    capacity: int,
    times: OperationTimes = DEFAULT_TIMES,
) -> OptimalEstimate:
    """Expert-mapping optimum for the supported Table-2 configurations."""
    if isinstance(code, RepetitionCode):
        return _repetition_optimal(code, topology, capacity, times)
    if isinstance(code, RotatedSurfaceCode):
        return _rotated_optimal(code, topology, capacity, times)
    raise ValueError(f"no hand-optimised mapping for {code.name}")


def single_chain_round_time(
    code: StabilizerCode, times: OperationTimes = DEFAULT_TIMES
) -> float:
    """Everything in one trap: complete serialisation, zero movement."""
    total = 0.0
    for check in code.checks:
        total += times.reset + times.measurement
        total += check.weight * times.cx
        if check.basis == "X":
            total += 2 * times.hadamard
    return total


def _repetition_optimal(
    code: RepetitionCode, topology: str, capacity: int, times: OperationTimes
) -> OptimalEstimate:
    d = code.distance
    n_anc = d - 1
    if capacity >= code.num_qubits:
        return OptimalEstimate(single_chain_round_time(code, times), 0, 0.0)
    if topology != "linear":
        raise ValueError("repetition-code optima are derived for linear devices")
    if capacity == 2:
        # Steady state with commuting-order alternation: per round each
        # ancilla performs one zero-hop CX where it parked and one
        # two-trap hop (through its empty home trap) to the other data
        # ion.  Critical path: M + R + CX + double-hop + CX.
        hop_ops, hop_t = _linear_hop(times, intermediate_traps=1)
        round_time = (
            times.measurement + times.reset + 2 * times.cx + hop_t
        )
        return OptimalEstimate(round_time, hop_ops * n_anc, hop_t * n_anc)
    # capacity >= 3: clusters of capacity-1 qubits.  An expert mapping
    # groups each ancilla with its left data ion; per round the ancilla
    # hops to the neighbouring cluster and back (single-segment hops),
    # and in-trap gates serialise over the cluster.
    cluster = capacity - 1
    hops_per_round = 2
    hop_ops, hop_t = _linear_hop(times)
    ancillas_per_trap = max(1, _ceil_div(n_anc * cluster, code.num_qubits))
    serial_gates = ancillas_per_trap * (
        times.reset + 2 * times.cx + times.measurement
    )
    round_time = serial_gates + hops_per_round * hop_t
    boundary_anc = n_anc - max(0, n_anc - 2)
    del boundary_anc
    moving_ancillas = _repetition_moving_ancillas(d, cluster)
    return OptimalEstimate(
        round_time,
        hops_per_round * hop_ops * moving_ancillas,
        hops_per_round * hop_t * moving_ancillas,
    )


def _repetition_moving_ancillas(d: int, cluster: int) -> int:
    """Ancillas whose checks straddle a cluster boundary."""
    qubits = 2 * d - 1
    moving = 0
    for ancilla_pos in range(1, qubits, 2):
        left, right = ancilla_pos - 1, ancilla_pos + 1
        cluster_of = lambda q: q // cluster
        if not (
            cluster_of(left) == cluster_of(ancilla_pos) == cluster_of(right)
        ):
            moving += 1
    return moving


def _rotated_optimal(
    code: RotatedSurfaceCode, topology: str, capacity: int, times: OperationTimes
) -> OptimalEstimate:
    if capacity >= code.num_qubits:
        return OptimalEstimate(single_chain_round_time(code, times), 0, 0.0)
    if capacity != 2 or topology not in ("grid", "switch"):
        raise ValueError(
            "rotated-surface optima are derived for capacity 2 on grid/switch"
        )
    hop_ops, hop_t = _grid_hop(times)
    # Steady state: an interior ancilla tours its four data traps, one
    # diagonal (single-junction) hop apart, then needs roughly two more
    # hops to close the tour / vacate the final data trap before the
    # next round (the same accounting that makes the paper's Table-2
    # "theoretic" count 36 primitives per ancilla-round at d=3).  The
    # serial chain per round is M + R + 2H (X checks) + 4 x (hop + CX);
    # other visitors' merges/gates/splits overlap with the tour in the
    # expert schedule.
    hops = sum(check.weight + 2 for check in code.checks)
    round_time = (
        times.measurement
        + times.reset
        + 2 * times.hadamard
        + 4 * (hop_t + times.cx)
    )
    return OptimalEstimate(round_time, hops * hop_ops, hops * hop_t)


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)
