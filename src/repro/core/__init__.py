"""The paper's core contribution: the QEC-to-QCCD compiler."""

from .compiler import (
    CompilerConfig,
    QccdCompiler,
    compile_memory_experiment,
    compute_stats,
    steady_round_time,
)
from .ir import (
    GATE_KINDS,
    MOVEMENT_KINDS,
    CompiledProgram,
    LogicalGate,
    ProgramStats,
    QccdOp,
)
from .optimal import OptimalEstimate, optimal_estimate, single_chain_round_time
from .place import (
    PLACERS,
    Placement,
    PlacementStrategy,
    ProjectionPlacer,
    WindowPlacer,
    available_placers,
    build_device_for,
    layout_positions,
    partition_qubits,
    place,
    placer_by_name,
    register_placer,
)
from .route import GreedyRouter, Router, RoutingError
from .route_layered import LayeredRouter
from .route_parallel import ParallelRouter
from .routing_base import (
    ROUTERS,
    RoutingStrategy,
    available_routers,
    register_router,
    router_by_name,
)
from .schedule import (
    critical_path_lengths,
    makespan,
    schedule,
    schedule_asap,
    schedule_type_exclusive,
)
from .stim_export import ExportResult, fold_probability, program_to_circuit
from .translate import build_gate_dag
from .visualize import (
    busiest_components,
    format_component_timeline,
    format_ion_timeline,
    schedule_gantt,
    utilisation_summary,
)

__all__ = [
    "CompilerConfig",
    "QccdCompiler",
    "compile_memory_experiment",
    "compute_stats",
    "steady_round_time",
    "GATE_KINDS",
    "MOVEMENT_KINDS",
    "CompiledProgram",
    "LogicalGate",
    "ProgramStats",
    "QccdOp",
    "OptimalEstimate",
    "optimal_estimate",
    "single_chain_round_time",
    "Placement",
    "PlacementStrategy",
    "ProjectionPlacer",
    "WindowPlacer",
    "PLACERS",
    "available_placers",
    "placer_by_name",
    "register_placer",
    "build_device_for",
    "layout_positions",
    "partition_qubits",
    "place",
    "Router",
    "GreedyRouter",
    "LayeredRouter",
    "ParallelRouter",
    "RoutingStrategy",
    "RoutingError",
    "ROUTERS",
    "available_routers",
    "router_by_name",
    "register_router",
    "critical_path_lengths",
    "makespan",
    "schedule",
    "schedule_asap",
    "schedule_type_exclusive",
    "ExportResult",
    "fold_probability",
    "program_to_circuit",
    "build_gate_dag",
    "busiest_components",
    "format_component_timeline",
    "format_ion_timeline",
    "schedule_gantt",
    "utilisation_summary",
]
