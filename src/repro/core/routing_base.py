"""Routing substrate and the compiler strategy registries.

The router monolith is split into a shared substrate and pluggable
strategies.  :class:`RoutingStrategy` owns everything every router
needs regardless of *policy*:

- occupancy / allocation tracking (trap chains, ion locations, per-
  component capacity admissibility);
- congestion-aware Dijkstra path search with static-distance detour
  bounds;
- movement emission (split / shuttle / junction entry and exit / merge,
  with in-trap swaps to reach a chain end) under happens-before
  tracking per ion and per hardware component;
- gate-DAG bookkeeping (ready set, sequencing, per-qubit gate cursors
  for prefetch routing);
- the fill-invariant restoration pass and the deadlock-escape ladder.

A concrete strategy supplies only the *policy*: how movement is
batched and ordered each pass.  Today's strategies:

- ``greedy`` (:class:`repro.core.route.GreedyRouter`) — the paper's
  multi-pass priority-order router, unchanged;
- ``layered`` (:class:`repro.core.route_layered.LayeredRouter`) —
  gates bucketed into dependency layers, movement batched per layer
  through a priority queue (Surface_Code_Routing-style);
- ``parallel`` (:class:`repro.core.route_parallel.ParallelRouter`) —
  per-phase conflict-graph independent-set selection of compatible
  moves (Enola-style MIS routing).

Placement strategies live in :mod:`repro.core.place` behind the same
registry pattern (``projection`` and ``window``).  Both registries are
swept as first-class grid axes by the engine
(:class:`repro.engine.SweepSpec` ``routers`` / ``placers``).
"""

from __future__ import annotations

import heapq
from collections import defaultdict

from ..arch.device import QCCDDevice
from ..arch.timing import OperationTimes
from ..codes.base import Role, StabilizerCode
from .ir import LogicalGate, QccdOp
from .place import Placement


class RoutingError(RuntimeError):
    """Raised when the router cannot make progress (deadlock)."""


# ----------------------------------------------------------------------
# Strategy registries
# ----------------------------------------------------------------------
ROUTERS: dict[str, type["RoutingStrategy"]] = {}


def register_router(name: str):
    """Class decorator adding a routing strategy to the registry."""

    def decorator(cls: type["RoutingStrategy"]) -> type["RoutingStrategy"]:
        cls.name = name
        ROUTERS[name] = cls
        return cls

    return decorator


def router_by_name(name: str) -> type["RoutingStrategy"]:
    try:
        return ROUTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown router {name!r}; expected one of {available_routers()}"
        ) from None


def available_routers() -> tuple[str, ...]:
    return tuple(sorted(ROUTERS))


class RoutingStrategy:
    """Shared substrate every routing strategy builds on.

    Subclasses implement :meth:`run` — the pass structure and movement
    policy — on top of the sequencing, pathfinding, emission and
    invariant-restoration machinery here.  The substrate is exactly the
    pre-strategy ``Router`` internals, so the ``greedy`` strategy built
    on it is bit-identical to the old monolith by construction.
    """

    name = "base"

    def __init__(
        self,
        code: StabilizerCode,
        placement: Placement,
        gates: list[LogicalGate],
        times: OperationTimes,
    ):
        self.code = code
        self.device: QCCDDevice = placement.device
        self.times = times
        self.gates = gates
        self.chains: dict[int, list[int]] = {
            t: list(c) for t, c in placement.trap_chains.items()
        }
        for trap in self.device.traps:
            self.chains.setdefault(trap.id, [])
        self.location: dict[int, int] = dict(placement.qubit_to_trap)
        self.home: dict[int, int] = dict(placement.qubit_to_trap)
        self._role = {q.index: q.role for q in code.qubits}

        self.ops: list[QccdOp] = []
        self._last_ion: dict[int, int] = {}
        # Per-component op history; an op depends on the op `window`
        # places back, where window is the component's op-concurrency:
        # 1 for traps (one laser interaction zone) and segments, the
        # junction capacity for junctions (the switch hub is a
        # non-blocking crossbar).
        self._comp_history: dict[int, list[int]] = {}

        # Gate DAG state.
        self._remaining = {g.id: len(g.deps) for g in gates}
        self._dependents: dict[int, list[int]] = defaultdict(list)
        for g in gates:
            for dep in g.deps:
                self._dependents[dep].append(g.id)
        self._ready: set[int] = {g.id for g in gates if not g.deps}
        self._sequenced: set[int] = set()
        # Per-qubit pending gates in priority order (for prefetch routing).
        self._qubit_gates: dict[int, list[int]] = defaultdict(list)
        for g in sorted(gates, key=lambda g: g.priority):
            for q in g.qubits:
                self._qubit_gates[q].append(g.id)
        self._qubit_cursor: dict[int, int] = defaultdict(int)

    # ------------------------------------------------------------------
    # Strategy interface
    # ------------------------------------------------------------------
    def run(self) -> list[QccdOp]:
        """Sequence every gate; return the emitted op stream."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Emission with happens-before tracking
    # ------------------------------------------------------------------
    def _emit(
        self,
        kind: str,
        ions: tuple[int, ...],
        components: tuple[int, ...],
        duration: float,
        gate_id: int | None = None,
        round_idx: int = 0,
    ) -> int:
        deps = set()
        for ion in ions:
            if ion in self._last_ion:
                deps.add(self._last_ion[ion])
        for comp in components:
            history = self._comp_history.get(comp)
            if history:
                window = self._op_concurrency(comp)
                if len(history) >= window:
                    deps.add(history[-window])
        op = QccdOp(
            id=len(self.ops),
            kind=kind,
            ions=ions,
            components=components,
            duration=duration,
            deps=tuple(sorted(deps)),
            gate_id=gate_id,
            round=round_idx,
        )
        self.ops.append(op)
        for ion in ions:
            self._last_ion[ion] = op.id
        for comp in components:
            self._comp_history.setdefault(comp, []).append(op.id)
        return op.id

    def _op_concurrency(self, comp_id: int) -> int:
        comp = self.device.component(comp_id)
        if comp.is_junction:
            return max(1, comp.capacity)
        return 1

    # ------------------------------------------------------------------
    # Gate DAG bookkeeping
    # ------------------------------------------------------------------
    def _mark_sequenced(self, gate_id: int) -> None:
        self._ready.discard(gate_id)
        self._sequenced.add(gate_id)
        for dep_id in self._dependents.get(gate_id, ()):
            self._remaining[dep_id] -= 1
            if self._remaining[dep_id] == 0:
                self._ready.add(dep_id)

    def _next_gate_of(self, qubit: int) -> LogicalGate | None:
        """The qubit's earliest pending gate (for prefetch routing)."""
        gates = self._qubit_gates[qubit]
        cursor = self._qubit_cursor[qubit]
        while cursor < len(gates) and gates[cursor] in self._sequenced:
            cursor += 1
        self._qubit_cursor[qubit] = cursor
        if cursor < len(gates):
            return self.gates[gates[cursor]]
        return None

    def _gate_partner_trap(self, qubit: int) -> int | None:
        """Trap of the partner of the qubit's next two-qubit gate."""
        gate = self._next_gate_of(qubit)
        if gate is None or gate.kind != "CX":
            return None
        partner = gate.qubits[0] if gate.qubits[1] == qubit else gate.qubits[1]
        return self.location[partner]

    # ------------------------------------------------------------------
    # Pass phases shared by every strategy
    # ------------------------------------------------------------------
    def _sequence_local_gates(self) -> int:
        """Emit all ready gates whose qubits share a trap (fixpoint)."""
        emitted = 0
        while True:
            runnable = [
                gid
                for gid in self._ready
                if len({self.location[q] for q in self.gates[gid].qubits}) == 1
            ]
            if not runnable:
                return emitted
            for gid in sorted(runnable, key=lambda g: self.gates[g].priority):
                gate = self.gates[gid]
                trap = self.location[gate.qubits[0]]
                self._emit(
                    gate.kind,
                    gate.qubits,
                    (trap,),
                    self.times.gate_duration(gate.kind),
                    gate_id=gid,
                    round_idx=gate.round,
                )
                self._mark_sequenced(gid)
                emitted += 1

    def _blocked_gates(self) -> list[LogicalGate]:
        blocked = [
            self.gates[gid]
            for gid in self._ready
            if len({self.location[q] for q in self.gates[gid].qubits}) > 1
        ]
        return sorted(blocked, key=lambda g: g.priority)

    def _mover_and_destination(self, gate: LogicalGate) -> tuple[int, int]:
        """The ancilla moves to the data qubit's trap (Sec. 4.3)."""
        a, b = gate.qubits
        if self._role[a] is Role.ANCILLA:
            return a, self.location[b]
        if self._role[b] is Role.ANCILLA:
            return b, self.location[a]
        # Data-data gates do not occur in parity-check circuits, but route
        # the second operand for completeness.
        return b, self.location[a]

    def _restore_invariants(self) -> int:
        """Drain every trap back to at most capacity - 1 ions.

        Surplus ions are sent towards their next gate when possible
        (prefetching), otherwise to the nearest trap with a free
        resident slot.
        """
        emitted = 0
        alloc = self._occupancy()
        capacity = self.device.trap_capacity
        for trap_id in sorted(self.chains):
            # alloc tracks transit reservations conservatively; actual
            # occupancy is the chain itself (pass-through reservations
            # must not count as residents).
            while len(self.chains[trap_id]) > capacity - 1:
                ion = self._pick_surplus_ion(trap_id)
                path = self._restoration_path(ion, alloc)
                if path is None:
                    break  # let the outer loop detect true deadlocks
                alloc[trap_id] -= 1
                for comp in path[1:]:
                    alloc[comp] += 1
                self._emit_hop(ion, path)
                emitted += 1
        return emitted

    def _pick_surplus_ion(self, trap_id: int) -> int:
        """Prefer ancillas heading elsewhere, then visitors; keep data home.

        Data qubits are gate *hosts* (ancillas come to them), so evicting
        a resident data ion is always the worst choice; an ancilla with a
        pending remote CX is the best, since its eviction doubles as
        prefetch routing.
        """
        chain = self.chains[trap_id]

        def score(q: int):
            gate = self._next_gate_of(q)
            remote_cx = (
                gate is not None
                and gate.kind == "CX"
                and self._gate_partner_trap(q) != trap_id
            )
            is_ancilla = self._role[q] is Role.ANCILLA
            visitor = self.home[q] != trap_id
            # Tie-break towards chain ends to minimise swap insertion.
            end_distance = min(chain.index(q), len(chain) - 1 - chain.index(q))
            return (
                is_ancilla and remote_cx,
                visitor,
                is_ancilla,
                -end_distance,
            )

        return max(chain, key=score)

    def _restoration_path(self, ion: int, alloc: dict[int, int]) -> list[int] | None:
        src = self.location[ion]
        capacity = self.device.trap_capacity
        # Best: prefetch towards the next gate's partner trap.
        preferred = self._gate_partner_trap(ion)
        if preferred is not None and preferred != src:
            path = self._find_path(src, preferred, alloc)
            if path is not None:
                return path
        # Second best: go home (usually empty and nearby).
        home = self.home[ion]
        if home != src and alloc[home] < capacity - 1:
            path = self._find_path(src, home, alloc)
            if path is not None:
                return path
        # Fallback: nearest trap with a free resident slot — but only if
        # it is genuinely nearby.  Long evictions scatter ions across the
        # device and couple distant regions; an over-full trap can simply
        # wait a pass instead (arrivals are blocked by its occupancy).
        path = self._find_path_to_any(
            src,
            alloc,
            lambda t: alloc[t] < capacity - 1 and t != src,
        )
        if (
            not self._strict_restore
            and path is not None
            and self._path_cost(path) > 2.2 * self._hop_cost()
        ):
            return None
        return path

    _strict_restore = False

    def _drain_overfull(self) -> int:
        """Fill-invariant restoration with the nearby-only bound lifted.

        Stall escalation for strategies that batch movement (layered /
        parallel): their restricted per-pass movement can let full traps
        accumulate until every escape exceeds the routine restoration
        bound, walling off a corridor.  Paying for distant evictions
        beats deadlocking.
        """
        self._strict_restore = True
        try:
            return self._restore_invariants()
        finally:
            self._strict_restore = False

    def _final_restore(self) -> None:
        """Unconditionally restore the fill invariant (end of program).

        Run with the nearby-only eviction bound lifted so the program
        ends in a legal steady state whatever the strategy left behind.
        """
        self._drain_overfull()

    def _hop_cost(self) -> float:
        """Cost of one nominal inter-trap hop on this device."""
        times = self.times
        if self.device.num_junctions:
            return (
                times.split
                + 2 * times.shuttle
                + times.junction_entry
                + times.junction_exit
                + times.merge
            )
        return times.split + times.shuttle + times.merge

    # ------------------------------------------------------------------
    # Pathfinding
    # ------------------------------------------------------------------
    def _occupancy(self) -> dict[int, int]:
        alloc = {c.id: 0 for c in self.device.components}
        for trap_id, chain in self.chains.items():
            alloc[trap_id] = len(chain)
        return alloc

    def _node_cost(self, comp_id: int, is_destination: bool) -> float:
        comp = self.device.component(comp_id)
        times = self.times
        if comp.is_segment:
            return times.shuttle
        if comp.is_junction:
            return times.junction_entry + times.junction_exit
        if is_destination:
            return times.merge
        # Pass-through trap: merge + split, plus swaps past any residents.
        occupants = len(self.chains.get(comp_id, ()))
        return times.merge + times.split + occupants * times.swap

    def _admissible(self, comp_id: int, alloc: dict[int, int]) -> bool:
        comp = self.device.component(comp_id)
        return alloc[comp_id] < comp.capacity

    def _find_path(
        self, src: int, dst: int, alloc: dict[int, int]
    ) -> list[int] | None:
        """Shortest admissible path, unless waiting a pass is cheaper.

        When contention forces a detour much longer than the uncongested
        route, deferring to a later pass beats convoying through distant
        junctions — the key to distance-independent cycle times on the
        grid (Sec. 7.3).
        """
        if src == dst:
            return None
        path = self._dijkstra(src, alloc, lambda node: node == dst)
        if path is None:
            return None
        free_cost = self._static_distance(src, dst)
        taken_cost = self._path_cost(path)
        if taken_cost > self.DETOUR_TOLERANCE * free_cost + 1e-9:
            return None
        return path

    DETOUR_TOLERANCE = 1.35

    def _path_cost(self, path: list[int]) -> float:
        cost = self.times.split
        for i, node in enumerate(path[1:], start=1):
            cost += self._node_cost(node, i == len(path) - 1)
        return cost

    def _static_distance(self, src: int, dst: int) -> float:
        """Uncongested travel cost on the empty device (cached)."""
        cache = getattr(self, "_static_dist_cache", None)
        if cache is None:
            cache = {}
            self._static_dist_cache = cache
        if src not in cache:
            graph = self.device.graph()
            dist = {src: self.times.split}
            heap = [(self.times.split, src)]
            seen: set[int] = set()
            while heap:
                d, node = heapq.heappop(heap)
                if node in seen:
                    continue
                seen.add(node)
                for nxt in graph.neighbors(node):
                    if nxt in seen:
                        continue
                    comp = self.device.component(nxt)
                    if comp.is_trap:
                        step = self.times.merge + self.times.split
                    elif comp.is_junction:
                        step = self.times.junction_entry + self.times.junction_exit
                    else:
                        step = self.times.shuttle
                    nd = d + step
                    if nd < dist.get(nxt, float("inf")):
                        dist[nxt] = nd
                        heapq.heappush(heap, (nd, nxt))
            cache[src] = dist
        # Destination traps cost a merge only; undo the split added by
        # the pass-through accounting above.
        value = cache[src].get(dst, float("inf"))
        if value != float("inf") and self.device.component(dst).is_trap:
            value -= self.times.split
        return value

    def _find_path_to_any(self, src, alloc, accept) -> list[int] | None:
        return self._dijkstra(src, alloc, accept)

    def _dijkstra(self, src: int, alloc: dict[int, int], accept) -> list[int] | None:
        graph = self.device.graph()
        dist = {src: self.times.split}
        prev: dict[int, int] = {}
        heap = [(self.times.split, src)]
        visited: set[int] = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            comp = self.device.component(node)
            if node != src and comp.is_trap and accept(node):
                path = [node]
                while node != src:
                    node = prev[node]
                    path.append(node)
                path.reverse()
                return path
            for nxt in graph.neighbors(node):
                if nxt in visited or not self._admissible(nxt, alloc):
                    continue
                is_dest = self.device.component(nxt).is_trap
                nd = d + self._node_cost(nxt, is_dest)
                if nd < dist.get(nxt, float("inf")):
                    dist[nxt] = nd
                    prev[nxt] = node
                    heapq.heappush(heap, (nd, nxt))
        return None

    # ------------------------------------------------------------------
    # Movement emission
    # ------------------------------------------------------------------
    def _emit_swaps_to_end(self, trap_id: int, ion: int, end: int) -> None:
        chain = self.chains[trap_id]
        idx = chain.index(ion)
        target = 0 if end == 0 else len(chain) - 1
        step = -1 if target < idx else 1
        while idx != target:
            other = chain[idx + step]
            self._emit("SWAP", (ion, other), (trap_id,), self.times.swap)
            chain[idx], chain[idx + step] = chain[idx + step], chain[idx]
            idx += step

    def _emit_hop(self, ion: int, path: list[int]) -> None:
        """Emit the primitive sequence moving ``ion`` along ``path``.

        ``path`` alternates trap / segment / (junction / segment)* /
        trap and may pass through intermediate traps (linear devices),
        which costs a merge, possible swaps, and a split.
        """
        device = self.device
        times = self.times
        src = path[0]
        self._emit_swaps_to_end(src, ion, device.port_end(src, path[1]))
        self.chains[src].remove(ion)
        self._emit("SPLIT", (ion,), (src, path[1]), times.split)

        i = 1
        while i < len(path):
            node = path[i]
            comp = device.component(node)
            if comp.is_segment:
                self._emit("SHUTTLE", (ion,), (node,), times.shuttle)
                nxt = path[i + 1]
                nxt_comp = device.component(nxt)
                if nxt_comp.is_junction:
                    self._emit(
                        "JUNCTION_ENTRY", (ion,), (node, nxt), times.junction_entry
                    )
                else:
                    self._emit("MERGE", (ion,), (node, nxt), times.merge)
                    end = device.port_end(nxt, node)
                    if end == 0:
                        self.chains[nxt].insert(0, ion)
                    else:
                        self.chains[nxt].append(ion)
                    self.location[ion] = nxt
            elif comp.is_junction:
                nxt = path[i + 1]
                self._emit("JUNCTION_EXIT", (ion,), (node, nxt), times.junction_exit)
            else:
                # Intermediate trap: we just merged in; split out again.
                if i + 1 < len(path):
                    out_seg = path[i + 1]
                    self._emit_swaps_to_end(node, ion, device.port_end(node, out_seg))
                    self.chains[node].remove(ion)
                    self._emit("SPLIT", (ion,), (node, out_seg), times.split)
            i += 1

    # ------------------------------------------------------------------
    # Deadlock handling
    # ------------------------------------------------------------------
    def _deadlock_error(self) -> RoutingError:
        """A :class:`RoutingError` carrying the stuck state.

        Names the blocked gates (id, kind, operands) and the current
        trap occupancy so a deadlock report is diagnosable without
        re-running under a debugger.
        """
        pending = len(self.gates) - len(self._sequenced)
        blocked = self._blocked_gates()
        shown = ", ".join(f"#{g.id} {g.kind}{g.qubits}" for g in blocked[:8])
        if len(blocked) > 8:
            shown += f", ... {len(blocked) - 8} more"
        if not blocked:
            shown = "none (dependency stall)"
        occupancy = {
            trap: len(chain)
            for trap, chain in sorted(self.chains.items())
            if chain
        }
        return RoutingError(
            f"{self.name} router deadlocked with {pending} gate(s) pending "
            f"on {self.device.topology} device; blocked gates: [{shown}]; "
            f"trap occupancy (capacity {self.device.trap_capacity}): "
            f"{occupancy}"
        )

    def _force_unblock(self) -> bool:
        """Deadlock breaker for the oldest blocked gate.

        Tries, in order: routing the mover with the detour tolerance
        lifted; evicting an uninvolved ion from the destination trap;
        evicting a bystander from the mover's own trap.  All escapes
        ignore the tolerance — correctness over optimality.
        """
        blocked = self._blocked_gates()
        if not blocked:
            return False
        capacity = self.device.trap_capacity
        for gate in blocked:
            mover, dest = self._mover_and_destination(gate)
            alloc = self._occupancy()
            # (1) Route the mover directly, however congested the path.
            path = self._dijkstra(
                self.location[mover], alloc, lambda node: node == dest
            )
            if path is not None:
                self._emit_hop(mover, path)
                return True
            # (2) Make room at the destination.
            if self._evict_one(dest, keep=set(gate.qubits), alloc=alloc):
                return True
            # (3) Clear the first over-full trap along the uncongested
            # route (linear devices: a full trap in the corridor blocks
            # every path; evicting from the destination cannot help).
            corridor = self._dijkstra(
                self.location[mover],
                {c.id: 0 for c in self.device.components},
                lambda node: node == dest,
            )
            if corridor is not None:
                for node in corridor[1:-1]:
                    comp = self.device.component(node)
                    if comp.is_trap and alloc[node] >= capacity:
                        if self._evict_one(node, keep=set(), alloc=alloc):
                            return True
        return False

    def _evict_one(self, trap_id: int, keep: set[int], alloc: dict[int, int]) -> bool:
        """Move one bystander ion out of ``trap_id`` to any free slot."""
        capacity = self.device.trap_capacity
        for victim in list(self.chains[trap_id]):
            if victim in keep:
                continue
            path = self._find_path_to_any(
                trap_id,
                alloc,
                lambda t: alloc[t] < capacity - 1 and t != trap_id,
            )
            if path is not None:
                self._emit_hop(victim, path)
                return True
            return False
        return False
