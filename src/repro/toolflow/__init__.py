"""Design-space exploration toolflow (the paper's Figure 2 pipeline)."""

from .explorer import DesignSpaceExplorer
from .records import EvaluationRecord
from .report import format_table, ratio
from .sensitivity import SensitivityEntry, sensitivity_analysis

__all__ = [
    "DesignSpaceExplorer",
    "EvaluationRecord",
    "format_table",
    "ratio",
    "SensitivityEntry",
    "sensitivity_analysis",
]
