"""Design-space exploration toolflow (the paper's Figure 2 pipeline)."""

from .explorer import DesignSpaceExplorer, record_from_job_result
from .records import EvaluationRecord
from .report import format_table, ratio
from .sensitivity import SensitivityEntry, sensitivity_analysis

__all__ = [
    "DesignSpaceExplorer",
    "record_from_job_result",
    "EvaluationRecord",
    "format_table",
    "ratio",
    "SensitivityEntry",
    "sensitivity_analysis",
]
