"""Noise-parameter sensitivity analysis for design points.

The paper fixes one calibrated noise model; a designer adopting its
recommendations will want to know which *physical* parameters the
conclusions are most sensitive to.  This module perturbs each noise
parameter in turn (halving and doubling it) and reports the resulting
logical-error-rate swing for a chosen design point — a tornado-diagram
style analysis over the e1-e5 channels and the heating model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..noise.parameters import NoiseParameters
from .explorer import DesignSpaceExplorer

# Parameter name -> attribute on NoiseParameters.
SWEEPABLE = {
    "T2": "t2_us",
    "measurement error": "p_measurement",
    "reset error": "p_reset",
    "two-qubit base error": "p_2q_base",
    "one-qubit base error": "p_1q_base",
    "thermal factor A0": "thermal_a0",
    "background heating": "gamma_per_us",
}


@dataclass(frozen=True)
class SensitivityEntry:
    """LER response of one parameter to a halve/double perturbation."""

    parameter: str
    baseline_ler: float
    ler_at_half: float
    ler_at_double: float

    @property
    def swing(self) -> float:
        """Multiplicative spread of the LER across the perturbation."""
        lo = min(self.ler_at_half, self.ler_at_double, self.baseline_ler)
        hi = max(self.ler_at_half, self.ler_at_double, self.baseline_ler)
        return hi / max(lo, 1e-300)


def sensitivity_analysis(
    base_noise: NoiseParameters,
    distance: int = 3,
    capacity: int = 2,
    topology: str = "grid",
    gate_improvement: float = 5.0,
    shots: int = 4000,
    parameters: dict[str, str] | None = None,
    seed: int = 2026,
) -> list[SensitivityEntry]:
    """Halve/double each noise parameter and measure the LER response.

    Returns entries sorted by decreasing swing (the most influential
    parameter first).  Note T2 works inversely: halving it *increases*
    dephasing.
    """
    parameters = parameters if parameters is not None else SWEEPABLE

    def evaluate(noise: NoiseParameters) -> float:
        explorer = DesignSpaceExplorer(noise=noise, seed=seed)
        record = explorer.evaluate(
            distance,
            capacity=capacity,
            topology=topology,
            gate_improvement=gate_improvement,
            shots=shots,
        )
        return record.ler_per_round

    baseline = evaluate(base_noise)
    entries = []
    for label, attr in parameters.items():
        value = getattr(base_noise, attr)
        low = evaluate(replace(base_noise, **{attr: value * 0.5}))
        high = evaluate(replace(base_noise, **{attr: value * 2.0}))
        entries.append(
            SensitivityEntry(
                parameter=label,
                baseline_ler=baseline,
                ler_at_half=low,
                ler_at_double=high,
            )
        )
    entries.sort(key=lambda e: -e.swing)
    return entries
