"""Command-line interface for the design-space exploration toolflow.

Usage examples::

    python -m repro.toolflow.cli evaluate --distance 3 --capacity 2
    python -m repro.toolflow.cli sweep --distances 3 5 --capacities 2 5 \\
        --topology grid --csv results.csv
    python -m repro.toolflow.cli sweep --distances 3 5 --shots 20000 \\
        --workers 4 --results sweep.jsonl --cache-dir .demcache --progress
    python -m repro.toolflow.cli sweep --distances 3 5 \\
        --decoders mwpm union_find --topologies grid switch \\
        --shots 2000 --target-failures 100 --max-shots 200000
    python -m repro.toolflow.cli sweep --distances 3 5 \\
        --routers greedy layered parallel --placers projection window \\
        --topology grid --csv strategies.csv
    python -m repro.toolflow.cli sweep --distances 3 5 --shots 20000 \\
        --backend remote --workers-addr host1:7930,host2:7930 \\
        --results sweep.jsonl
    python -m repro.toolflow.cli project --distances 3 5 \\
        --improvement 5 --shots 8000 --target 1e-9

``evaluate`` runs one design point (optionally with a Monte-Carlo LER
estimate), ``sweep`` runs a grid of design points through the
execution engine (``repro.engine``) — with optional multiprocessing
shot sharding, an on-disk compilation cache, and JSONL resume —
``project`` fits the suppression model and reports the code distance
needed for a target logical error rate.
"""

from __future__ import annotations

import argparse
import csv
import sys

from ..core import available_placers, available_routers
from ..engine.runner import DEFAULT_SHARD_SHOTS
from ..ler.projection import fit_projection
from .explorer import DesignSpaceExplorer
from .report import format_table

_RECORD_COLUMNS = [
    "code", "d", "cap", "topo", "wiring", "router", "placer", "improve",
    "round_us", "move_ops", "electrodes", "dacs", "Gbit/s", "W", "ler_round",
]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--code", default="rotated_surface",
                        choices=["rotated_surface", "unrotated_surface", "repetition"])
    parser.add_argument("--topology", default="grid",
                        choices=["grid", "linear", "switch"])
    parser.add_argument("--wiring", default="standard",
                        choices=["standard", "wise"])
    parser.add_argument("--router", default="greedy",
                        choices=list(available_routers()),
                        help="routing strategy (see repro.core.routing_base)")
    parser.add_argument("--placer", default="projection",
                        choices=list(available_placers()),
                        help="placement strategy (see repro.core.place)")
    parser.add_argument("--improvement", type=float, default=1.0)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--shots", type=int, default=0,
                        help="Monte-Carlo shots for LER (0 = skip)")
    parser.add_argument("--decoder", default="mwpm",
                        choices=["mwpm", "union_find"])
    parser.add_argument("--seed", type=int, default=2026)


def _evaluate_records(args, distances, capacities):
    explorer = DesignSpaceExplorer(code_name=args.code, seed=args.seed)
    records = []
    for d in distances:
        for cap in capacities:
            records.append(
                explorer.evaluate(
                    d,
                    capacity=cap,
                    topology=args.topology,
                    wiring=args.wiring,
                    gate_improvement=args.improvement,
                    rounds=args.rounds,
                    shots=args.shots,
                    decoder=args.decoder,
                    router=args.router,
                    placer=args.placer,
                )
            )
    return records


def _print_records(records, csv_path=None, out=None):
    out = out if out is not None else sys.stdout
    rows = [[rec.as_row()[col] for col in _RECORD_COLUMNS] for rec in records]
    print(format_table(_RECORD_COLUMNS, rows), file=out)
    if csv_path:
        with open(csv_path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(_RECORD_COLUMNS)
            writer.writerows(rows)
        print(f"wrote {len(rows)} rows to {csv_path}", file=out)


def cmd_evaluate(args) -> int:
    records = _evaluate_records(args, [args.distance], [args.capacity])
    _print_records(records, args.csv)
    return 0


def cmd_sweep(args) -> int:
    """Grid sweep driven by the execution engine (repro.engine).

    Unlike ``evaluate``, this compiles each unique circuit once, can
    shard Monte-Carlo shots over worker processes, and can resume an
    interrupted sweep from a JSON-lines result store.  Every grid axis
    accepts multiple values: the plural flags (``--topologies``,
    ``--wirings``, ``--improvements``, ``--decoders``) default to their
    singular counterparts, and the sweep expands the full
    cross-product.

    ``--backend remote --workers-addr host:port,...`` fans the shot
    shards out to ``repro-worker`` processes over TCP; a worker lost
    mid-sweep is recovered (its shards rerun on survivors with their
    original seeds), and with ``--results`` every completed shard is
    checkpointed so even a killed driver resumes mid-job.

    Observability: ``--trace out.json`` records a Chrome
    ``trace_event`` file (load in https://ui.perfetto.dev — one lane
    per worker), ``--telemetry-jsonl`` dumps every metric and span as
    JSON lines, and ``--status [SECS]`` prints a live per-phase /
    per-worker status line while the sweep runs.  All three enable
    telemetry; sampled failure counts are bit-identical either way.
    """
    from .. import telemetry
    from ..decoders import native
    from ..engine import SweepSpec

    if args.native_blossom:
        # Opt into the compiled large-cluster matcher (no-op where
        # numba is absent); pool drivers forward the setting to their
        # workers via the config message.
        native.configure(True)
    memo_share = not args.no_memo_share
    backend = None
    if args.backend == "remote" or (
        args.backend == "auto" and args.workers_addr
    ):
        from ..engine.remote import RemoteBackend

        if not args.workers_addr:
            print("--backend remote requires --workers-addr host:port[,...]",
                  file=sys.stderr)
            return 2
        backend = RemoteBackend(
            args.workers_addr, memo_share=memo_share, elastic=args.elastic,
        )
    elif args.backend == "serial":
        from ..engine import SerialBackend

        backend = SerialBackend()
    elif args.backend == "multiprocess" or (
        args.backend == "auto" and args.workers > 1
    ):
        from ..engine import MultiprocessBackend

        # An explicit worker count is honoured exactly (even 1); only
        # the unset default (0) falls back to cpu_count.
        backend = MultiprocessBackend(
            args.workers if args.workers >= 1 else None,
            memo_share=memo_share,
        )

    spec = SweepSpec(
        code=args.code,
        distances=tuple(args.distances),
        capacities=tuple(args.capacities),
        topologies=tuple(args.topologies or [args.topology]),
        wirings=tuple(args.wirings or [args.wiring]),
        routers=tuple(args.routers or [args.router]),
        placers=tuple(args.placers or [args.placer]),
        gate_improvements=tuple(args.improvements or [args.improvement]),
        decoders=tuple(args.decoders or [args.decoder]),
        rounds=args.rounds,
        shots=args.shots,
        master_seed=args.seed,
        target_failures=args.target_failures,
        max_shots=args.max_shots,
        sampler=args.sampler,
        target_rel_stderr=args.target_rel_stderr,
    )
    telemetry_on = bool(
        args.trace or args.telemetry_jsonl or args.status is not None
    )
    if telemetry_on:
        telemetry.configure(enabled=True, trace=bool(args.trace))
    explorer = DesignSpaceExplorer(code_name=args.code, seed=args.seed)
    options = dict(
        workers=args.workers,
        cache_dir=args.cache_dir,
        cache_max_mb=args.cache_max_mb,
        results_path=args.results,
        shard_shots=args.shard_shots,
        # --status implies progress: the live view needs a reporter.
        progress=args.progress or args.status is not None,
        checkpoint_shards=not args.no_shard_checkpoints,
        status_interval=args.status,
        steal=not args.no_steal,
    )
    if backend is not None:
        # CLI-constructed backends are CLI-owned: close (or, on error,
        # terminate) them here rather than inside the runner.
        with backend:
            records = explorer.sweep(spec, backend=backend, **options)
    else:
        records = explorer.sweep(spec, **options)
    if args.trace:
        events = telemetry.write_chrome_trace(args.trace, telemetry.get())
        print(f"wrote {events} trace event(s) to {args.trace}", file=sys.stderr)
    if args.telemetry_jsonl:
        lines = telemetry.get().export_jsonl(args.telemetry_jsonl)
        print(f"wrote {lines} telemetry line(s) to {args.telemetry_jsonl}",
              file=sys.stderr)
    _print_records(records, args.csv)
    return 0


def cmd_project(args) -> int:
    if args.shots <= 0:
        print("project requires --shots > 0", file=sys.stderr)
        return 2
    records = _evaluate_records(args, args.distances, [args.capacity])
    points = [(r.distance, r.ler_per_round) for r in records]
    projection = fit_projection(points)
    _print_records(records, args.csv)
    print(f"Lambda = {projection.lam:.3f} "
          f"({'below' if projection.below_threshold else 'above'} threshold)")
    d = projection.distance_for(args.target)
    if d is None:
        print(f"target {args.target:g} unreachable (above threshold)")
    else:
        print(f"distance for {args.target:g}: d = {d} "
              f"(projected p_L = {projection.ler_at(d):.2e})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.toolflow",
        description="QCCD surface-code design-space exploration (Figure 2)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_eval = sub.add_parser("evaluate", help="one design point")
    p_eval.add_argument("--distance", type=int, required=True)
    p_eval.add_argument("--capacity", type=int, default=2)
    p_eval.add_argument("--csv", default=None)
    _add_common(p_eval)
    p_eval.set_defaults(func=cmd_evaluate)

    p_sweep = sub.add_parser(
        "sweep", help="grid of design points (engine-backed; shardable, resumable)"
    )
    p_sweep.add_argument("--distances", type=int, nargs="+", required=True)
    p_sweep.add_argument("--capacities", type=int, nargs="+", default=[2])
    # Plural grid axes: each defaults to its singular flag, so
    # "--decoder mwpm" and "--decoders mwpm union_find" both work and
    # the sweep always expands the full cross-product.
    p_sweep.add_argument("--topologies", nargs="+", default=None,
                         choices=["grid", "linear", "switch"],
                         help="topology grid axis (default: --topology)")
    p_sweep.add_argument("--wirings", nargs="+", default=None,
                         choices=["standard", "wise"],
                         help="wiring grid axis (default: --wiring)")
    p_sweep.add_argument("--routers", nargs="+", default=None,
                         choices=list(available_routers()),
                         help="routing-strategy grid axis (default: --router)")
    p_sweep.add_argument("--placers", nargs="+", default=None,
                         choices=list(available_placers()),
                         help="placement-strategy grid axis (default: --placer)")
    p_sweep.add_argument("--improvements", type=float, nargs="+", default=None,
                         help="gate-improvement grid axis (default: --improvement)")
    p_sweep.add_argument("--decoders", nargs="+", default=None,
                         choices=["mwpm", "union_find"],
                         help="decoder grid axis (default: --decoder)")
    p_sweep.add_argument("--target-failures", type=int, default=None,
                         help="adaptive mode: stop sampling a design point "
                              "once it shows this many failures (--shots "
                              "becomes the initial tranche)")
    p_sweep.add_argument("--target-rel-stderr", type=float, default=None,
                         help="adaptive mode: retire a design point once "
                              "stderr/ler falls below this bound (may be "
                              "combined with --target-failures)")
    p_sweep.add_argument("--max-shots", type=int, default=None,
                         help="adaptive mode: per-point shot budget "
                              "(default: 100x --shots)")
    p_sweep.add_argument("--csv", default=None)
    p_sweep.add_argument("--backend", default="auto",
                         choices=["auto", "serial", "multiprocess", "remote"],
                         help="execution backend (auto = serial, or "
                              "multiprocess when --workers > 1, or remote "
                              "when --workers-addr is given)")
    p_sweep.add_argument("--workers-addr", default=None,
                         metavar="HOST:PORT[,HOST:PORT...]",
                         help="repro-worker addresses for the remote "
                              "backend; a worker lost mid-sweep is "
                              "recovered on the survivors")
    p_sweep.add_argument("--elastic", action="store_true",
                         help="remote backend: treat --workers-addr as an "
                              "elastic membership roster — tolerate "
                              "unreachable workers at start (any one "
                              "suffices) and rescan mid-sweep so "
                              "serve-forever workers can join a running "
                              "sweep")
    p_sweep.add_argument("--no-steal", action="store_true",
                         help="disable driver-side work stealing (by "
                              "default a fixed-shot job's straggling tail "
                              "shards are re-sharded across idle worker "
                              "slots; failure counts are bit-identical "
                              "either way)")
    p_sweep.add_argument("--no-memo-share", action="store_true",
                         help="disable cross-worker syndrome-memo "
                              "sharing on pool backends (per-worker "
                              "memos only, as before protocol v3)")
    p_sweep.add_argument("--native-blossom", action="store_true",
                         help="opt into the numba-compiled large-"
                              "cluster matcher where available "
                              "(ignored, with a pure-python fallback, "
                              "when numba is not installed)")
    p_sweep.add_argument("--no-shard-checkpoints", action="store_true",
                         help="with --results: skip per-shard checkpoint "
                              "records (interrupted jobs then restart "
                              "instead of resuming mid-job)")
    p_sweep.add_argument("--workers", type=int, default=0,
                         help="worker processes for shot sharding (0/1 = serial)")
    p_sweep.add_argument("--shard-shots", type=int, default=DEFAULT_SHARD_SHOTS,
                         help="shots per shard (fixed; determines RNG streams)")
    p_sweep.add_argument("--results", default=None, metavar="PATH",
                         help="JSONL result store; completed jobs are "
                              "skipped on re-run")
    p_sweep.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="on-disk DEM / distance-matrix cache shared "
                              "across runs")
    p_sweep.add_argument("--cache-max-mb", type=float, default=None,
                         metavar="MB",
                         help="size bound for --cache-dir; least-recently-"
                              "used entries are evicted past it")
    p_sweep.add_argument("--sampler", default="dem",
                         choices=["dem", "frame"],
                         help="syndrome sampler: 'dem' = bit-packed DEM-"
                              "direct fast path, 'frame' = gate-by-gate "
                              "circuit replay (pre-fast-path keys and "
                              "shard RNG streams)")
    p_sweep.add_argument("--trace", default=None, metavar="PATH",
                         help="enable telemetry and write a Chrome "
                              "trace_event JSON file (Perfetto-loadable, "
                              "one lane per worker)")
    p_sweep.add_argument("--telemetry-jsonl", default=None, metavar="PATH",
                         help="enable telemetry and dump every metric / "
                              "phase aggregate / span as JSON lines")
    p_sweep.add_argument("--status", type=float, nargs="?", const=5.0,
                         default=None, metavar="SECS",
                         help="enable telemetry and print a live status "
                              "line (per-phase time share, memo hit rate, "
                              "worker utilisation) every SECS seconds "
                              "(default 5); implies --progress")
    p_sweep.add_argument("--progress", action="store_true",
                         help="per-job progress lines on stderr, plus an "
                              "end-of-sweep summary with compilation-cache "
                              "and syndrome-memo (dedupe) statistics")
    _add_common(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_proj = sub.add_parser("project", help="fit and extrapolate LER")
    p_proj.add_argument("--distances", type=int, nargs="+", required=True)
    p_proj.add_argument("--capacity", type=int, default=2)
    p_proj.add_argument("--target", type=float, default=1e-9)
    p_proj.add_argument("--csv", default=None)
    _add_common(p_proj)
    p_proj.set_defaults(func=cmd_project)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
