"""Result records produced by the design-space explorer."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EvaluationRecord:
    """Everything the toolflow knows about one design point (Figure 2).

    One record corresponds to one (code, distance, capacity, topology,
    wiring, gate improvement) combination — a single point on one of
    the paper's figures.
    """

    code: str
    distance: int
    capacity: int
    topology: str
    wiring: str
    gate_improvement: float
    rounds: int

    # Compilation strategies (default-valued so records stored before
    # the strategy layer still deserialise)
    router: str = "greedy"
    placer: str = "projection"

    # Compiler metrics
    round_time_us: float = 0.0
    makespan_us: float = 0.0
    movement_ops: int = 0
    movement_time_us: float = 0.0
    gate_swaps: int = 0

    # Hardware metrics (Sec. 5.2)
    num_traps: int = 0
    num_junctions: int = 0
    electrodes: int = 0
    num_dacs: int = 0
    data_rate_bitps: float = 0.0
    power_w: float = 0.0

    # Logical error rate (optional — only when simulated)
    shots: int = 0
    failures: int = 0
    ler_per_shot: float | None = None
    ler_per_round: float | None = None

    extras: dict = field(default_factory=dict)

    @property
    def movement_ops_per_round(self) -> float:
        return self.movement_ops / max(self.rounds, 1)

    def as_row(self) -> dict:
        """Flat dict for report tables."""
        return {
            "code": self.code,
            "d": self.distance,
            "cap": self.capacity,
            "topo": self.topology,
            "wiring": self.wiring,
            "router": self.router,
            "placer": self.placer,
            "improve": self.gate_improvement,
            "round_us": round(self.round_time_us, 1),
            "move_ops": self.movement_ops,
            "electrodes": self.electrodes,
            "dacs": self.num_dacs,
            "Gbit/s": round(self.data_rate_bitps / 1e9, 3),
            "W": round(self.power_w, 1),
            "ler_round": self.ler_per_round,
        }
