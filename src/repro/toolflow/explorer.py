"""Design-space exploration toolflow (Figure 2).

``DesignSpaceExplorer.evaluate`` runs one design point through the
whole stack: compile -> schedule -> resource model -> (optionally)
noisy-circuit export, DEM extraction, decoding, LER estimate.  The
sweep helpers drive the figure-level experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.wiring import WiringMethod, wiring_by_name
from ..codes import make_code
from ..core.compiler import CompilerConfig, QccdCompiler
from ..core.stim_export import program_to_circuit
from ..ler.estimator import estimate_logical_error_rate
from ..ler.projection import LerProjection, fit_projection
from ..noise.parameters import DEFAULT_NOISE, NoiseParameters
from .records import EvaluationRecord


@dataclass
class DesignSpaceExplorer:
    """Sweeps QCCD design points for one QEC code family."""

    code_name: str = "rotated_surface"
    noise: NoiseParameters = field(default_factory=lambda: DEFAULT_NOISE)
    seed: int = 2026

    def evaluate(
        self,
        distance: int,
        capacity: int = 2,
        topology: str = "grid",
        wiring: str | WiringMethod = "standard",
        gate_improvement: float = 1.0,
        rounds: int | None = None,
        shots: int = 0,
        decoder: str = "mwpm",
        basis: str = "Z",
    ) -> EvaluationRecord:
        """Run one design point through the Figure-2 pipeline."""
        wiring_method = (
            wiring if isinstance(wiring, WiringMethod) else wiring_by_name(wiring)
        )
        rounds = rounds if rounds is not None else distance
        code = make_code(self.code_name, distance)
        config = CompilerConfig(
            code=code,
            trap_capacity=capacity,
            topology=topology,
            wiring=wiring_method,
            rounds=rounds,
            basis=basis,
        )
        compiler = QccdCompiler(config)
        program = compiler.compile()
        placement = compiler.placement()
        resources = wiring_method.resources(placement.device)

        record = EvaluationRecord(
            code=self.code_name,
            distance=distance,
            capacity=capacity,
            topology=topology,
            wiring=wiring_method.name,
            gate_improvement=gate_improvement,
            rounds=rounds,
            round_time_us=program.stats.round_time_us,
            makespan_us=program.stats.makespan_us,
            movement_ops=program.stats.movement_ops,
            movement_time_us=program.stats.movement_time_us,
            gate_swaps=program.stats.gate_swaps,
            num_traps=resources.num_traps,
            num_junctions=resources.num_junctions,
            electrodes=resources.electrodes,
            num_dacs=resources.num_dacs,
            data_rate_bitps=resources.data_rate_bitps,
            power_w=resources.power_w,
        )

        if shots > 0:
            noise = self.noise.improved(gate_improvement)
            if wiring_method.cooled_gates:
                noise = noise.with_cooling()
            export = program_to_circuit(program, code, noise, basis=basis)
            result = estimate_logical_error_rate(
                export.circuit,
                rounds=rounds,
                shots=shots,
                decoder=decoder,
                seed=self.seed,
            )
            record.shots = result.shots
            record.failures = result.failures
            record.ler_per_shot = result.per_shot
            record.ler_per_round = result.per_round
            record.extras["max_nbar"] = export.max_nbar
        return record

    # ------------------------------------------------------------------
    # Figure-level sweeps
    # ------------------------------------------------------------------
    def sweep_distances(
        self,
        distances: list[int],
        shots: int = 0,
        **kwargs,
    ) -> list[EvaluationRecord]:
        return [self.evaluate(d, shots=shots, **kwargs) for d in distances]

    def ler_projection(
        self,
        distances: list[int],
        shots: int = 2000,
        **kwargs,
    ) -> tuple[list[EvaluationRecord], LerProjection]:
        """Measure small distances, fit the suppression model (Fig 10)."""
        records = self.sweep_distances(distances, shots=shots, **kwargs)
        points = [
            (r.distance, r.ler_per_round)
            for r in records
            if r.ler_per_round is not None
        ]
        return records, fit_projection(points)
