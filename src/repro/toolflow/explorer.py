"""Design-space exploration toolflow (Figure 2).

``DesignSpaceExplorer.evaluate`` runs one design point through the
whole stack: compile -> schedule -> resource model -> (optionally)
noisy-circuit export, DEM extraction, decoding, LER estimate.  The
sweep helpers drive the figure-level experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.wiring import WiringMethod, wiring_by_name
from ..engine.runner import Runner, compile_design_point
from ..engine.sweep import SweepJob
from ..ler.estimator import estimate_logical_error_rate
from ..ler.projection import LerProjection, fit_projection
from ..noise.parameters import DEFAULT_NOISE, NoiseParameters
from .records import EvaluationRecord


def record_from_job_result(result) -> EvaluationRecord:
    """Rebuild an :class:`EvaluationRecord` from an engine
    :class:`repro.engine.JobResult` (fresh or resumed from a store)."""
    record = EvaluationRecord(**result.metrics)
    record.extras.update(result.extras)
    record.extras["decoder"] = result.job.decoder
    record.extras["job_key"] = result.job.key
    ler = result.ler
    if ler is not None:
        record.shots = ler.shots
        record.failures = ler.failures
        record.ler_per_shot = ler.per_shot
        record.ler_per_round = ler.per_round
    return record


@dataclass
class DesignSpaceExplorer:
    """Sweeps QCCD design points for one QEC code family."""

    code_name: str = "rotated_surface"
    noise: NoiseParameters = field(default_factory=lambda: DEFAULT_NOISE)
    seed: int = 2026

    def evaluate(
        self,
        distance: int,
        capacity: int = 2,
        topology: str = "grid",
        wiring: str | WiringMethod = "standard",
        gate_improvement: float = 1.0,
        rounds: int | None = None,
        shots: int = 0,
        decoder: str = "mwpm",
        basis: str = "Z",
        router: str = "greedy",
        placer: str = "projection",
    ) -> EvaluationRecord:
        """Run one design point through the Figure-2 pipeline."""
        wiring_method = (
            wiring if isinstance(wiring, WiringMethod) else wiring_by_name(wiring)
        )
        rounds = rounds if rounds is not None else distance
        job = SweepJob(
            code=self.code_name,
            distance=distance,
            capacity=capacity,
            topology=topology,
            wiring=wiring_method.name,
            gate_improvement=gate_improvement,
            decoder=decoder,
            rounds=rounds,
            shots=shots,
            basis=basis,
            router=router,
            placer=placer,
        )
        artifacts = compile_design_point(
            job, self.noise, need_circuit=shots > 0, wiring_method=wiring_method
        )
        record = EvaluationRecord(**artifacts.metrics)

        if shots > 0:
            result = estimate_logical_error_rate(
                artifacts.circuit,
                rounds=rounds,
                shots=shots,
                decoder=decoder,
                seed=self.seed,
            )
            record.shots = result.shots
            record.failures = result.failures
            record.ler_per_shot = result.per_shot
            record.ler_per_round = result.per_round
            record.extras.update(artifacts.extras)
        return record

    # ------------------------------------------------------------------
    # Figure-level sweeps
    # ------------------------------------------------------------------
    def sweep(self, spec, **runner_options) -> list[EvaluationRecord]:
        """Run a :class:`repro.engine.SweepSpec` grid through the engine.

        Unlike :meth:`evaluate` in a loop, the engine compiles each
        unique circuit's DEM / detector graph once, can shard shots
        over worker processes (``workers=N``), and can resume from a
        JSON-lines store (``results_path=...``) — see
        :class:`repro.engine.Runner` for the options.  The explorer's
        noise model is applied; the sweep's ``master_seed`` governs
        sampling.
        """
        if spec.code != self.code_name:
            raise ValueError(
                f"spec.code {spec.code!r} disagrees with this explorer's "
                f"code_name {self.code_name!r}; build the SweepSpec with "
                f"code={self.code_name!r}"
            )
        runner_options.setdefault("noise", self.noise)
        results = Runner(spec, **runner_options).run()
        return [record_from_job_result(r) for r in results]

    def sweep_distances(
        self,
        distances: list[int],
        shots: int = 0,
        **kwargs,
    ) -> list[EvaluationRecord]:
        return [self.evaluate(d, shots=shots, **kwargs) for d in distances]

    def ler_projection(
        self,
        distances: list[int],
        shots: int = 2000,
        **kwargs,
    ) -> tuple[list[EvaluationRecord], LerProjection]:
        """Measure small distances, fit the suppression model (Fig 10)."""
        records = self.sweep_distances(distances, shots=shots, **kwargs)
        points = [
            (r.distance, r.ler_per_round)
            for r in records
            if r.ler_per_round is not None
        ]
        return records, fit_projection(points)
