"""Plain-text tables for benchmark and example output."""

from __future__ import annotations

from typing import Iterable


def format_table(headers: list[str], rows: Iterable[Iterable]) -> str:
    """Monospace table with right-aligned numeric columns."""
    rendered = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.2e}"
        return f"{value:,.1f}"
    return str(value)


def ratio(a: float, b: float) -> float:
    """Safe ratio used by comparison tables."""
    if b == 0:
        return float("inf")
    return a / b
