"""JSON-lines result persistence with resume support.

Each completed :class:`~repro.engine.sweep.SweepJob` appends one JSON
object to the store, keyed by the job's content hash.  Re-running a
sweep against the same store skips every job whose key is already
present — the property that makes long sweeps interruptible.  Loading
is tolerant of a truncated final line (the signature of a run killed
mid-write).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from ..ler.estimator import LerResult
from .sweep import SweepJob


@dataclass
class JobResult:
    """Outcome of one sweep job.

    ``failures`` is ``None`` for compile-only jobs (``shots == 0``).
    ``metrics`` carries the compiler / resource numbers for the design
    point (field names match :class:`repro.toolflow.records.EvaluationRecord`),
    so higher layers can rebuild full records from a resumed store.
    """

    job: SweepJob
    shots: int
    failures: int | None
    rounds: int
    metrics: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)
    elapsed_s: float = 0.0
    resumed: bool = False
    # The run configuration the sample was drawn under (master seed,
    # shard layout, noise fingerprint).  A job key alone is not enough
    # to reuse a stored result: the same design point sampled under a
    # different seed or noise model is a different experiment.
    run_config: dict = field(default_factory=dict)

    @property
    def key(self) -> str:
        return self.job.key

    @property
    def ler(self) -> LerResult | None:
        if self.failures is None:
            return None
        return LerResult(shots=self.shots, failures=self.failures, rounds=self.rounds)

    @property
    def per_shot(self) -> float | None:
        ler = self.ler
        return None if ler is None else ler.per_shot

    @property
    def per_round(self) -> float | None:
        ler = self.ler
        return None if ler is None else ler.per_round

    def to_jsonable(self) -> dict:
        return {
            "key": self.key,
            "job": self.job.to_dict(),
            "shots": self.shots,
            "failures": self.failures,
            "rounds": self.rounds,
            "metrics": self.metrics,
            "extras": self.extras,
            "elapsed_s": self.elapsed_s,
            "run_config": self.run_config,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "JobResult":
        return cls(
            job=SweepJob.from_dict(data["job"]),
            shots=int(data["shots"]),
            failures=None if data["failures"] is None else int(data["failures"]),
            rounds=int(data["rounds"]),
            metrics=dict(data.get("metrics", {})),
            extras=dict(data.get("extras", {})),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            resumed=True,
            run_config=dict(data.get("run_config", {})),
        )


class ResultStore:
    """Append-only JSONL store of :class:`JobResult` records."""

    def __init__(self, path: str):
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)

    def load(self) -> dict[str, JobResult]:
        """All stored results by job key; silently drops corrupt lines.

        Later lines win, so a job re-sampled under a new run
        configuration supersedes the stale record.
        """
        results: dict[str, JobResult] = {}
        if not os.path.exists(self.path):
            return results
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    result = JobResult.from_jsonable(data)
                except (ValueError, KeyError, TypeError):
                    continue  # truncated / corrupt line from an interrupted run
                results[result.key] = result
        return results

    def completed_keys(self) -> set[str]:
        return set(self.load())

    def append(self, result: JobResult) -> None:
        # A run killed mid-write can leave a truncated final line with
        # no newline; appending straight after it would corrupt this
        # record too, so repair the separator first.
        needs_newline = False
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                needs_newline = fh.read(1) != b"\n"
        with open(self.path, "a") as fh:
            if needs_newline:
                fh.write("\n")
            fh.write(json.dumps(result.to_jsonable()) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def __len__(self) -> int:
        return len(self.load())
