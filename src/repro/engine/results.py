"""JSON-lines result persistence with resume support.

Each completed :class:`~repro.engine.sweep.SweepJob` appends one JSON
object to the store, keyed by the job's content hash.  Re-running a
sweep against the same store skips every job whose key is already
present — the property that makes long sweeps interruptible.  Loading
is tolerant of a truncated final line (the signature of a run killed
mid-write).

The store also checkpoints at **shard** granularity: the runner
appends one :class:`ShardRecord` line per completed shot shard, so a
job interrupted mid-sampling resumes from its surviving shards instead
of restarting.  Shard lines are written *before* the job's final
record and are superseded by it — ``load_shards`` only surfaces shard
records appended after the key's latest job record, and ``compact``
rewrites the file without the superseded lines.  Stores written before
shard checkpointing existed simply contain no shard lines (and old
readers skip shard lines as unparseable), so the format is compatible
in both directions.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from ..ler.estimator import LerResult
from .sweep import SweepJob


@dataclass
class JobResult:
    """Outcome of one sweep job.

    ``failures`` is ``None`` for compile-only jobs (``shots == 0``).
    ``metrics`` carries the compiler / resource numbers for the design
    point (field names match :class:`repro.toolflow.records.EvaluationRecord`),
    so higher layers can rebuild full records from a resumed store.
    """

    job: SweepJob
    shots: int
    failures: int | None
    rounds: int
    metrics: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)
    elapsed_s: float = 0.0
    resumed: bool = False
    # The run configuration the sample was drawn under (master seed,
    # shard layout, noise fingerprint).  A job key alone is not enough
    # to reuse a stored result: the same design point sampled under a
    # different seed or noise model is a different experiment.
    run_config: dict = field(default_factory=dict)

    @property
    def key(self) -> str:
        return self.job.key

    @property
    def ler(self) -> LerResult | None:
        if self.failures is None:
            return None
        return LerResult(shots=self.shots, failures=self.failures, rounds=self.rounds)

    @property
    def per_shot(self) -> float | None:
        ler = self.ler
        return None if ler is None else ler.per_shot

    @property
    def per_round(self) -> float | None:
        ler = self.ler
        return None if ler is None else ler.per_round

    def to_jsonable(self) -> dict:
        return {
            "key": self.key,
            "job": self.job.to_dict(),
            "shots": self.shots,
            "failures": self.failures,
            "rounds": self.rounds,
            "metrics": self.metrics,
            "extras": self.extras,
            "elapsed_s": self.elapsed_s,
            "run_config": self.run_config,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "JobResult":
        return cls(
            job=SweepJob.from_dict(data["job"]),
            shots=int(data["shots"]),
            failures=None if data["failures"] is None else int(data["failures"]),
            rounds=int(data["rounds"]),
            metrics=dict(data.get("metrics", {})),
            extras=dict(data.get("extras", {})),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            resumed=True,
            run_config=dict(data.get("run_config", {})),
        )


@dataclass
class ShardRecord:
    """One checkpointed shot shard of a job still being sampled.

    Carries everything needed to credit the shard to a resumed job
    without re-executing it: the tallies, and the ``run_config`` the
    sample was drawn under (a shard sampled under a different master
    seed or shard layout belongs to a different experiment and must
    not be credited).
    """

    job_key: str
    shard_index: int
    shots: int
    failures: int
    elapsed_s: float = 0.0
    run_config: dict = field(default_factory=dict)
    # Telemetry-enabled runs checkpoint the shard's per-phase seconds
    # too, so a resumed job's phase attribution stays complete.  None
    # (telemetry off) serialises to no field at all — records stay
    # byte-identical to pre-telemetry stores.
    phases: dict | None = None

    def to_jsonable(self) -> dict:
        # The top-level "shard" wrapper is the format discriminator:
        # pre-checkpoint readers fail to parse it as a JobResult (no
        # "job" field) and skip the line as corrupt, which is exactly
        # the backward-compatible behaviour we want.
        body = {
            "job_key": self.job_key,
            "shard_index": self.shard_index,
            "shots": self.shots,
            "failures": self.failures,
            "elapsed_s": self.elapsed_s,
            "run_config": self.run_config,
        }
        if self.phases:
            body["phases"] = self.phases
        return {"shard": body}

    @classmethod
    def from_jsonable(cls, data: dict) -> "ShardRecord":
        body = data["shard"]
        phases = body.get("phases")
        return cls(
            job_key=str(body["job_key"]),
            shard_index=int(body["shard_index"]),
            shots=int(body["shots"]),
            failures=int(body["failures"]),
            elapsed_s=float(body.get("elapsed_s", 0.0)),
            run_config=dict(body.get("run_config", {})),
            phases=dict(phases) if phases else None,
        )


class ResultStore:
    """Append-only JSONL store of :class:`JobResult` records and
    :class:`ShardRecord` checkpoints.

    Loads are memoized against the file's stat signature: polling
    ``len(store)`` / ``completed_keys()`` during a sweep costs one
    ``stat`` instead of re-parsing the whole JSONL (O(n²) over a sweep
    otherwise).  ``append`` / ``append_shard`` keep the memo coherent;
    a write by another process changes the signature and forces a
    re-read.
    """

    def __init__(self, path: str):
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._cache: dict[str, JobResult] | None = None
        self._shards: dict[str, dict[int, ShardRecord]] = {}
        self._signature: tuple[int, int] | None = None
        self.file_reads = 0  # parse passes over the file (for tests)

    def _stat_signature(self) -> tuple[int, int] | None:
        try:
            st = os.stat(self.path)
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def _parse(self):
        """One pass over the file: ``(jobs, live_shards, keep_lines)``.

        ``keep_lines`` is the set of line numbers a compaction retains:
        each key's latest job record, plus the shard records that
        *follow* it (checkpoints of a newer, unfinished sampling of the
        same key — the final job record supersedes only the shards
        written before it).
        """
        jobs: dict[str, JobResult] = {}
        job_line: dict[str, int] = {}
        shard_entries: dict[tuple[str, int], tuple[int, ShardRecord]] = {}
        with open(self.path) as fh:
            for line_no, line in enumerate(fh):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    if isinstance(data, dict) and "shard" in data:
                        record = ShardRecord.from_jsonable(data)
                        shard_entries[(record.job_key, record.shard_index)] = (
                            line_no, record,
                        )
                        continue
                    result = JobResult.from_jsonable(data)
                except (ValueError, KeyError, TypeError):
                    continue  # truncated / corrupt line from an interrupted run
                jobs[result.key] = result
                job_line[result.key] = line_no
        shards: dict[str, dict[int, ShardRecord]] = {}
        keep = set(job_line.values())
        for (key, index), (line_no, record) in shard_entries.items():
            if line_no > job_line.get(key, -1):
                shards.setdefault(key, {})[index] = record
                keep.add(line_no)
        return jobs, shards, keep

    def _refresh(self) -> None:
        signature = self._stat_signature()
        if self._cache is not None and signature == self._signature:
            return
        if signature is None:
            self._cache, self._shards = {}, {}
        else:
            self.file_reads += 1
            self._cache, self._shards, _ = self._parse()
        self._signature = signature

    def load(self) -> dict[str, JobResult]:
        """All stored results by job key; silently drops corrupt lines.

        Later lines win, so a job re-sampled under a new run
        configuration supersedes the stale record.
        """
        self._refresh()
        return dict(self._cache)

    def load_shards(self, job_key: str) -> dict[int, ShardRecord]:
        """Checkpointed shards of ``job_key`` not yet superseded by a
        final job record, by shard index."""
        self._refresh()
        return dict(self._shards.get(job_key, {}))

    def completed_keys(self) -> set[str]:
        return set(self.load())

    def _append_line(self, payload: str):
        """Append one JSONL line with crash-repair and memo accounting.

        Returns ``(fresh, post_signature)`` — whether the memo matched
        the file before the write *and* the file grew by exactly our
        payload (no interleaved writer), in which case the caller may
        extend the memo instead of dropping it.
        """
        # A run killed mid-write can leave a truncated final line with
        # no newline; appending straight after it would corrupt this
        # record too, so repair the separator first.
        pre_signature = self._stat_signature()
        fresh = self._cache is not None and pre_signature == self._signature
        needs_newline = False
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                needs_newline = fh.read(1) != b"\n"
        if needs_newline:
            payload = "\n" + payload
        with open(self.path, "a") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        post_signature = self._stat_signature()
        expected_size = (pre_signature[1] if pre_signature else 0) + len(
            payload.encode()
        )
        fresh = (
            fresh
            and post_signature is not None
            and post_signature[1] == expected_size
        )
        return fresh, post_signature

    def append(self, result: JobResult) -> None:
        payload = json.dumps(result.to_jsonable()) + "\n"
        fresh, post_signature = self._append_line(payload)
        if fresh:
            # Round-trip the record so the memo is indistinguishable
            # from a disk read (``resumed`` flag, JSON-normalised
            # values).  The final job record supersedes the key's
            # checkpointed shards.
            self._cache[result.key] = JobResult.from_jsonable(result.to_jsonable())
            self._shards.pop(result.key, None)
            self._signature = post_signature
        else:
            # Another process may have written concurrently: drop the
            # memo so the next load re-reads the merged file.
            self._cache = None
            self._shards = {}
            self._signature = None

    def append_shard(self, record: ShardRecord) -> None:
        """Checkpoint one completed shard (fsynced, crash-safe)."""
        payload = json.dumps(record.to_jsonable()) + "\n"
        fresh, post_signature = self._append_line(payload)
        if fresh:
            normalised = ShardRecord.from_jsonable(
                json.loads(json.dumps(record.to_jsonable()))
            )
            self._shards.setdefault(record.job_key, {})[
                record.shard_index
            ] = normalised
            self._signature = post_signature
        else:
            self._cache = None
            self._shards = {}
            self._signature = None

    def compact(self) -> int:
        """Rewrite the store without superseded lines; returns the
        number of lines dropped.

        Superseded means: an older job record for a key that was since
        re-recorded, or a shard checkpoint written before its key's
        final job record.  Shard checkpoints of jobs with no final
        record survive — they are what a resumed run needs.  Not safe
        against a concurrent writer appending mid-rewrite (the store
        has a single-writer append model; compaction is for the owner
        of the sweep).
        """
        if self._stat_signature() is None:
            return 0
        self.file_reads += 1
        _jobs, _shards, keep = self._parse()
        kept_lines = []
        dropped = 0
        with open(self.path) as fh:
            for line_no, line in enumerate(fh):
                if line_no in keep:
                    kept_lines.append(line if line.endswith("\n") else line + "\n")
                elif line.strip():
                    dropped += 1
        if dropped == 0:
            return 0
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            fh.writelines(kept_lines)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._cache = None
        self._shards = {}
        self._signature = None
        return dropped

    def __len__(self) -> int:
        return len(self.load())
