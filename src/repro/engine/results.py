"""JSON-lines result persistence with resume support.

Each completed :class:`~repro.engine.sweep.SweepJob` appends one JSON
object to the store, keyed by the job's content hash.  Re-running a
sweep against the same store skips every job whose key is already
present — the property that makes long sweeps interruptible.  Loading
is tolerant of a truncated final line (the signature of a run killed
mid-write).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from ..ler.estimator import LerResult
from .sweep import SweepJob


@dataclass
class JobResult:
    """Outcome of one sweep job.

    ``failures`` is ``None`` for compile-only jobs (``shots == 0``).
    ``metrics`` carries the compiler / resource numbers for the design
    point (field names match :class:`repro.toolflow.records.EvaluationRecord`),
    so higher layers can rebuild full records from a resumed store.
    """

    job: SweepJob
    shots: int
    failures: int | None
    rounds: int
    metrics: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)
    elapsed_s: float = 0.0
    resumed: bool = False
    # The run configuration the sample was drawn under (master seed,
    # shard layout, noise fingerprint).  A job key alone is not enough
    # to reuse a stored result: the same design point sampled under a
    # different seed or noise model is a different experiment.
    run_config: dict = field(default_factory=dict)

    @property
    def key(self) -> str:
        return self.job.key

    @property
    def ler(self) -> LerResult | None:
        if self.failures is None:
            return None
        return LerResult(shots=self.shots, failures=self.failures, rounds=self.rounds)

    @property
    def per_shot(self) -> float | None:
        ler = self.ler
        return None if ler is None else ler.per_shot

    @property
    def per_round(self) -> float | None:
        ler = self.ler
        return None if ler is None else ler.per_round

    def to_jsonable(self) -> dict:
        return {
            "key": self.key,
            "job": self.job.to_dict(),
            "shots": self.shots,
            "failures": self.failures,
            "rounds": self.rounds,
            "metrics": self.metrics,
            "extras": self.extras,
            "elapsed_s": self.elapsed_s,
            "run_config": self.run_config,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "JobResult":
        return cls(
            job=SweepJob.from_dict(data["job"]),
            shots=int(data["shots"]),
            failures=None if data["failures"] is None else int(data["failures"]),
            rounds=int(data["rounds"]),
            metrics=dict(data.get("metrics", {})),
            extras=dict(data.get("extras", {})),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            resumed=True,
            run_config=dict(data.get("run_config", {})),
        )


class ResultStore:
    """Append-only JSONL store of :class:`JobResult` records.

    Loads are memoized against the file's stat signature: polling
    ``len(store)`` / ``completed_keys()`` during a sweep costs one
    ``stat`` instead of re-parsing the whole JSONL (O(n²) over a sweep
    otherwise).  ``append`` keeps the memo coherent; a write by
    another process changes the signature and forces a re-read.
    """

    def __init__(self, path: str):
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._cache: dict[str, JobResult] | None = None
        self._signature: tuple[int, int] | None = None
        self.file_reads = 0  # parse passes over the file (for tests)

    def _stat_signature(self) -> tuple[int, int] | None:
        try:
            st = os.stat(self.path)
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def load(self) -> dict[str, JobResult]:
        """All stored results by job key; silently drops corrupt lines.

        Later lines win, so a job re-sampled under a new run
        configuration supersedes the stale record.
        """
        signature = self._stat_signature()
        if self._cache is not None and signature == self._signature:
            return dict(self._cache)
        results: dict[str, JobResult] = {}
        if signature is not None:
            self.file_reads += 1
            with open(self.path) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        data = json.loads(line)
                        result = JobResult.from_jsonable(data)
                    except (ValueError, KeyError, TypeError):
                        continue  # truncated / corrupt line from an interrupted run
                    results[result.key] = result
        self._cache = results
        self._signature = signature
        return dict(results)

    def completed_keys(self) -> set[str]:
        return set(self.load())

    def append(self, result: JobResult) -> None:
        # A run killed mid-write can leave a truncated final line with
        # no newline; appending straight after it would corrupt this
        # record too, so repair the separator first.
        pre_signature = self._stat_signature()
        fresh = self._cache is not None and pre_signature == self._signature
        needs_newline = False
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                needs_newline = fh.read(1) != b"\n"
        payload = json.dumps(result.to_jsonable()) + "\n"
        if needs_newline:
            payload = "\n" + payload
        with open(self.path, "a") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        post_signature = self._stat_signature()
        expected_size = (pre_signature[1] if pre_signature else 0) + len(
            payload.encode()
        )
        if fresh and post_signature is not None and post_signature[1] == expected_size:
            # The memo matched the file before our write and the file
            # grew by exactly our payload (no interleaved writer), so
            # extending it keeps the two coherent without a re-parse.
            # Round-trip the record so the memo is indistinguishable
            # from a disk read (``resumed`` flag, JSON-normalised
            # values).
            self._cache[result.key] = JobResult.from_jsonable(result.to_jsonable())
            self._signature = post_signature
        else:
            # Another process may have written concurrently: drop the
            # memo so the next load re-reads the merged file.
            self._cache = None
            self._signature = None

    def __len__(self) -> int:
        return len(self.load())
