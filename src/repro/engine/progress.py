"""Progress reporting for sweep runs.

Long sweeps are the normal case, so the runner narrates: one line per
job (completed, or skipped via resume) with running counts and the
job's failure tally, plus a final summary including compilation-cache
statistics.  Disabled reporters swallow everything, so library callers
pay nothing.
"""

from __future__ import annotations

import sys
import time


class ProgressReporter:
    """Prints one status line per finished job to ``stream``."""

    def __init__(self, enabled: bool = True, stream=None):
        self.enabled = enabled
        self.stream = stream if stream is not None else sys.stderr
        self.total = 0
        self.done = 0
        self.skipped = 0
        self._t0 = time.monotonic()

    # ------------------------------------------------------------------
    def start(self, total: int) -> None:
        self.total = total
        self.done = 0
        self.skipped = 0
        self._t0 = time.monotonic()
        self._emit(f"sweep: {total} job(s)")

    def job_skipped(self, key: str) -> None:
        self.done += 1
        self.skipped += 1
        self._emit(f"[{self.done}/{self.total}] skip (resumed) {key}")

    def job_done(
        self,
        key: str,
        failures: int | None,
        elapsed_s: float,
        shots: int | None = None,
    ) -> None:
        self.done += 1
        tally = "compile-only" if failures is None else f"failures={failures}"
        if shots is not None and failures is not None:
            tally += f"/{shots} shots"
        self._emit(f"[{self.done}/{self.total}] done {key} {tally} ({elapsed_s:.1f}s)")

    def finish(
        self,
        cache_stats: dict | None = None,
        memo_stats: dict | None = None,
        setup_s: float | None = None,
        phase_s: dict | None = None,
        steal_stats: dict | None = None,
    ) -> None:
        """End-of-sweep summary line.

        ``setup_s`` is the total per-job setup time (compile + DEM +
        cache) the runner measured; ``phase_s`` is the sweep-wide
        per-phase seconds dict from telemetry-enabled runs;
        ``steal_stats`` the scheduler's straggler-steal counters — all
        optional so older callers keep working unchanged.
        """
        elapsed = time.monotonic() - self._t0
        line = (
            f"sweep finished: {self.done}/{self.total} job(s), "
            f"{self.skipped} resumed, {elapsed:.1f}s"
        )
        if setup_s is not None and setup_s > 0.0:
            line += f" | setup: {setup_s:.1f}s"
        if cache_stats:
            # Partial stats dicts (custom caches, older stores) must
            # not crash the end-of-sweep summary.
            line += (
                f" | cache: {cache_stats.get('misses', 0)} compiled, "
                f"{cache_stats.get('hits', 0)} hits, "
                f"{cache_stats.get('disk_hits', 0)} disk hits"
            )
        if memo_stats and (
            memo_stats.get("hits", 0) or memo_stats.get("misses", 0)
        ):
            # Syndrome-memo traffic: without it, a dedupe regression
            # (near-threshold points where every syndrome is distinct)
            # is invisible from the sweep summary.
            line += (
                f" | memo: {memo_stats.get('hits', 0)} hits, "
                f"{memo_stats.get('misses', 0)} misses, "
                f"{memo_stats.get('peak_entries', 0)} peak entries"
            )
            shared = memo_stats.get("shared_hits", 0)
            if shared:
                # Hits served by entries another worker decoded first —
                # the cross-worker half of the dedupe rate.
                line += f" ({shared} cross-worker)"
        self._emit(line)
        if phase_s:
            self._emit("phases: " + format_phase_share(phase_s))
        if steal_stats and steal_stats.get("steals"):
            # Straggler-steal summary: how many tail shards the
            # scheduler re-sharded onto idle capacity (statistics are
            # bit-identical either way; this is purely a latency lever).
            self._emit(
                f"steals: {steal_stats['steals']} straggler shard(s) "
                f"re-sharded into {steal_stats.get('windows', 0)} "
                f"window(s) ({steal_stats.get('stolen_shots', 0)} shots)"
            )

    def status(self, snapshot: dict) -> None:
        """Live mid-sweep status (the runner calls this every
        ``status_interval`` seconds): job/shard progress, per-phase
        time share, memo hit rate, and — on pool backends — per-worker
        utilisation with straggler flags."""
        elapsed = time.monotonic() - self._t0
        line = (
            f"status: {self.done}/{self.total} job(s), "
            f"{snapshot.get('shards_done', 0)} shard(s), {elapsed:.1f}s"
        )
        memo = snapshot.get("memo") or {}
        if "hit_rate" in memo:
            line += f" | memo hit rate {memo['hit_rate']:.1%}"
            shared = memo.get("shared_hits", 0)
            total = memo.get("hits", 0) + memo.get("misses", 0)
            if shared and total:
                line += f" ({shared / total:.1%} cross-worker)"
        phase_s = snapshot.get("phase_s")
        if phase_s:
            line += " | " + format_phase_share(phase_s)
        steals = snapshot.get("steals")
        if steals and steals.get("steals"):
            line += (
                f" | steals {steals['steals']} "
                f"({steals.get('windows', 0)} windows)"
            )
        self._emit(line)
        pool = snapshot.get("pool")
        if pool and pool.get("workers"):
            self._emit("workers: " + format_pool_health(pool))

    # ------------------------------------------------------------------
    def _emit(self, line: str) -> None:
        if not self.enabled:
            return
        print(line, file=self.stream)
        if hasattr(self.stream, "flush"):
            self.stream.flush()


def format_phase_share(phase_s: dict) -> str:
    """``name 42% (1.3s)`` fragments, largest share first."""
    total = sum(phase_s.values())
    if total <= 0.0:
        return "(no phase data)"
    parts = []
    for name, seconds in sorted(
        phase_s.items(), key=lambda item: -item[1]
    ):
        parts.append(f"{name} {seconds / total:.0%} ({seconds:.2f}s)")
    return ", ".join(parts)


def format_pool_health(pool: dict) -> str:
    """One fragment per worker plus pool-wide crash/resubmit counts.

    A worker whose on-worker busy time trails the pool's best by more
    than half is flagged as a straggler — the thing to look at when a
    distributed sweep's wall clock stops scaling.
    """
    workers = pool.get("workers", {})
    best_busy = max(
        (stats.get("busy_s", 0.0) for stats in workers.values()), default=0.0
    )
    parts = []
    for label, stats in sorted(workers.items()):
        fragment = (
            f"{label} {stats.get('shards', 0)} shard(s) "
            f"busy {stats.get('busy_s', 0.0):.1f}s"
        )
        slots = stats.get("slots", 1)
        if slots > 1 or "busy_slots" in stats:
            # Slot occupancy: how many of the worker's concurrency
            # lanes hold an in-flight shard right now.
            fragment += f" slots {stats.get('busy_slots', 0)}/{slots}"
        inflight = stats.get("inflight", 0)
        if inflight:
            fragment += f" +{inflight} inflight"
        if best_busy > 0.0 and stats.get("busy_s", 0.0) < 0.5 * best_busy:
            fragment += " [straggler]"
        parts.append(fragment)
    line = "; ".join(parts) if parts else "(none)"
    crashes = pool.get("crashes", 0)
    if crashes:
        line += (
            f" | {crashes} crash(es), "
            f"{pool.get('resubmitted_shards', 0)} shard(s) resubmitted"
        )
    return line


def make_progress(progress) -> ProgressReporter:
    """Normalise a user-supplied progress argument.

    Accepts a :class:`ProgressReporter`, a truthy flag (report to
    stderr), or anything falsy (silent).
    """
    if isinstance(progress, ProgressReporter):
        return progress
    return ProgressReporter(enabled=bool(progress))
