"""Progress reporting for sweep runs.

Long sweeps are the normal case, so the runner narrates: one line per
job (completed, or skipped via resume) with running counts and the
job's failure tally, plus a final summary including compilation-cache
statistics.  Disabled reporters swallow everything, so library callers
pay nothing.
"""

from __future__ import annotations

import sys
import time


class ProgressReporter:
    """Prints one status line per finished job to ``stream``."""

    def __init__(self, enabled: bool = True, stream=None):
        self.enabled = enabled
        self.stream = stream if stream is not None else sys.stderr
        self.total = 0
        self.done = 0
        self.skipped = 0
        self._t0 = time.monotonic()

    # ------------------------------------------------------------------
    def start(self, total: int) -> None:
        self.total = total
        self.done = 0
        self.skipped = 0
        self._t0 = time.monotonic()
        self._emit(f"sweep: {total} job(s)")

    def job_skipped(self, key: str) -> None:
        self.done += 1
        self.skipped += 1
        self._emit(f"[{self.done}/{self.total}] skip (resumed) {key}")

    def job_done(
        self,
        key: str,
        failures: int | None,
        elapsed_s: float,
        shots: int | None = None,
    ) -> None:
        self.done += 1
        tally = "compile-only" if failures is None else f"failures={failures}"
        if shots is not None and failures is not None:
            tally += f"/{shots} shots"
        self._emit(f"[{self.done}/{self.total}] done {key} {tally} ({elapsed_s:.1f}s)")

    def finish(
        self,
        cache_stats: dict | None = None,
        memo_stats: dict | None = None,
    ) -> None:
        elapsed = time.monotonic() - self._t0
        line = (
            f"sweep finished: {self.done}/{self.total} job(s), "
            f"{self.skipped} resumed, {elapsed:.1f}s"
        )
        if cache_stats:
            # Partial stats dicts (custom caches, older stores) must
            # not crash the end-of-sweep summary.
            line += (
                f" | cache: {cache_stats.get('misses', 0)} compiled, "
                f"{cache_stats.get('hits', 0)} hits, "
                f"{cache_stats.get('disk_hits', 0)} disk hits"
            )
        if memo_stats and (
            memo_stats.get("hits", 0) or memo_stats.get("misses", 0)
        ):
            # Syndrome-memo traffic: without it, a dedupe regression
            # (near-threshold points where every syndrome is distinct)
            # is invisible from the sweep summary.
            line += (
                f" | memo: {memo_stats.get('hits', 0)} hits, "
                f"{memo_stats.get('misses', 0)} misses, "
                f"{memo_stats.get('peak_entries', 0)} peak entries"
            )
        self._emit(line)

    # ------------------------------------------------------------------
    def _emit(self, line: str) -> None:
        if not self.enabled:
            return
        print(line, file=self.stream)
        if hasattr(self.stream, "flush"):
            self.stream.flush()


def make_progress(progress) -> ProgressReporter:
    """Normalise a user-supplied progress argument.

    Accepts a :class:`ProgressReporter`, a truthy flag (report to
    stderr), or anything falsy (silent).
    """
    if isinstance(progress, ProgressReporter):
        return progress
    return ProgressReporter(enabled=bool(progress))
