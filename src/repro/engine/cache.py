"""Content-addressed compilation cache for sweep execution.

DEM extraction and detector-graph construction dominate the fixed cost
of a Monte-Carlo point, and a sweep revisits the same circuit many
times (one circuit per design point, shared by every decoder and every
shot shard).  The cache keys compiled artefacts by a stable hash of
the circuit *text* — the same serialisation that round-trips through
:mod:`repro.sim.text_format` — so identical circuits hit regardless of
how they were built.

Two layers:

- in-memory: ``circuit key -> CompiledCircuit`` (DEM + detector graph),
  plus memoised decoder instances per (circuit, decoder name);
- on-disk (optional ``cache_dir``): the merged DEM as JSON, so a fresh
  process — a resumed run, or a multiprocessing worker pool — skips
  DEM extraction entirely and only rebuilds the cheap graph.

Counters (``hits`` / ``misses`` / ``disk_hits``) are exposed so tests
can assert each unique circuit is compiled exactly once per sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

from ..decoders.graph import DetectorGraph
from ..ler.estimator import make_decoder
from ..sim.circuit import StabilizerCircuit
from ..sim.dem import DemError, DetectorErrorModel, circuit_to_dem


def circuit_key(text: str) -> str:
    """Content hash identifying a circuit by its text serialisation."""
    return hashlib.sha256(text.encode()).hexdigest()


def dem_to_jsonable(dem: DetectorErrorModel) -> dict:
    """JSON-safe representation of a detector error model."""
    return {
        "num_detectors": dem.num_detectors,
        "num_observables": dem.num_observables,
        "errors": [
            [[int(d) for d in err.detectors],
             [int(o) for o in err.observables],
             float(err.probability)]
            for err in dem.errors
        ],
    }


def dem_from_jsonable(data: dict) -> DetectorErrorModel:
    """Inverse of :func:`dem_to_jsonable`."""
    errors = [
        DemError(tuple(dets), tuple(obs), float(p))
        for dets, obs, p in data["errors"]
    ]
    return DetectorErrorModel(
        int(data["num_detectors"]), int(data["num_observables"]), errors
    )


@dataclass
class CompiledCircuit:
    """One circuit's cached compilation artefacts."""

    key: str
    circuit: StabilizerCircuit
    text: str
    dem: DetectorErrorModel
    graph: DetectorGraph


@dataclass
class CompilationCache:
    """In-memory + on-disk cache of DEMs, detector graphs and decoders."""

    cache_dir: str | None = None

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0

    _compiled: dict[str, CompiledCircuit] = field(default_factory=dict, repr=False)
    _decoders: dict[tuple[str, str], object] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        if self.cache_dir:
            os.makedirs(self.cache_dir, exist_ok=True)

    # ------------------------------------------------------------------
    def compiled(self, circuit: StabilizerCircuit, text: str | None = None) -> CompiledCircuit:
        """The DEM + detector graph for ``circuit``, compiling at most once."""
        if text is None:
            text = str(circuit)
        key = circuit_key(text)
        entry = self._compiled.get(key)
        if entry is not None:
            self.hits += 1
            return entry
        dem = self._load_dem(key)
        if dem is not None:
            self.disk_hits += 1
        else:
            self.misses += 1
            dem = circuit_to_dem(circuit)
            self._store_dem(key, dem)
        entry = CompiledCircuit(
            key=key,
            circuit=circuit,
            text=text,
            dem=dem,
            graph=DetectorGraph.from_dem(dem),
        )
        self._compiled[key] = entry
        return entry

    def decoder(self, compiled: CompiledCircuit, name: str):
        """A decoder for ``compiled``, constructed at most once per name."""
        memo_key = (compiled.key, name)
        dec = self._decoders.get(memo_key)
        if dec is None:
            dec = make_decoder(compiled.graph, name)
            self._decoders[memo_key] = dec
        return dec

    # ------------------------------------------------------------------
    @property
    def unique_circuits(self) -> int:
        return len(self._compiled)

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "unique_circuits": self.unique_circuits,
        }

    # ------------------------------------------------------------------
    def _dem_path(self, key: str) -> str | None:
        if not self.cache_dir:
            return None
        return os.path.join(self.cache_dir, f"{key}.dem.json")

    def _load_dem(self, key: str) -> DetectorErrorModel | None:
        path = self._dem_path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path) as fh:
                return dem_from_jsonable(json.load(fh))
        except (OSError, ValueError, KeyError):
            return None  # corrupt entry: fall through to recompilation

    def _store_dem(self, key: str, dem: DetectorErrorModel) -> None:
        path = self._dem_path(key)
        if path is None:
            return
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(dem_to_jsonable(dem), fh)
        os.replace(tmp, path)
