"""Content-addressed compilation cache for sweep execution.

DEM extraction, detector-graph construction and decoder-side artefacts
dominate the fixed cost of a Monte-Carlo point, and a sweep revisits
the same circuit many times (one circuit per design point, shared by
every decoder and every shot shard).  The cache keys compiled artefacts
by a stable hash of the circuit *text* — the same serialisation that
round-trips through :mod:`repro.sim.text_format` — so identical
circuits hit regardless of how they were built.  Content addressing is
also what keeps the cache correct across compilation strategies: jobs
differing in ``router`` / ``placer`` compile different circuits and
hash to different keys automatically, while strategies that happen to
produce identical circuits share one entry — no strategy field is (or
needs to be) part of the key.

Two layers:

- in-memory: ``circuit key -> CompiledCircuit`` (DEM + detector graph),
  plus memoised decoder instances per (circuit, decoder name), the
  bit-packed :class:`~repro.sim.dem_sampler.DemSampler` per circuit,
  and the MWPM all-pairs ``(dist, pred)`` matrices per circuit;
- on-disk (optional ``cache_dir``): both merged DEMs as JSON — the
  graphlike decoder-side model (``.dem.json``) and the exact
  sampler-side model (``.sdem.json``) — plus the distance matrices as
  ``.npz``, so a fresh process — a resumed run, or a multiprocessing
  worker pool — skips DEM extraction *and* the all-pairs Dijkstra
  entirely.

The on-disk layer can be size-bounded (``max_disk_mb``): after every
write the least-recently-used entries are evicted until the directory
fits, and reads refresh an entry's recency, so a long-lived shared
cache keeps the circuits that sweeps actually revisit.

Counters (``hits`` / ``misses`` / ``disk_hits`` / ``dmat_disk_hits`` /
``evictions``) are exposed so tests can assert each unique circuit is
compiled exactly once per sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

import numpy as np

from ..decoders.graph import DetectorGraph
from ..ler.estimator import make_decoder
from ..sim.circuit import StabilizerCircuit
from ..sim.dem import DemError, DetectorErrorModel, circuit_to_dems
from ..sim.dem_sampler import DemSampler
from ..telemetry import span

# Disk-cache entry suffixes, in eviction scope: the graphlike
# (decoder-side) DEM, the exact (sampler-side) DEM, and the MWPM
# all-pairs distance matrices.
_DISK_SUFFIXES = (".dem.json", ".sdem.json", ".dmat.npz")


def circuit_key(text: str) -> str:
    """Content hash identifying a circuit by its text serialisation."""
    return hashlib.sha256(text.encode()).hexdigest()


def dem_to_jsonable(dem: DetectorErrorModel) -> dict:
    """JSON-safe representation of a detector error model."""
    return {
        "num_detectors": dem.num_detectors,
        "num_observables": dem.num_observables,
        "errors": [
            [[int(d) for d in err.detectors],
             [int(o) for o in err.observables],
             float(err.probability)]
            for err in dem.errors
        ],
    }


def dem_from_jsonable(data: dict) -> DetectorErrorModel:
    """Inverse of :func:`dem_to_jsonable`."""
    errors = [
        DemError(tuple(dets), tuple(obs), float(p))
        for dets, obs, p in data["errors"]
    ]
    return DetectorErrorModel(
        int(data["num_detectors"]), int(data["num_observables"]), errors
    )


@dataclass
class CompiledCircuit:
    """One circuit's cached compilation artefacts.

    ``dem`` is the graphlike (decomposed) model the decoders consume;
    ``sampling_dem`` is the exact (undecomposed) model the DEM-direct
    sampler draws from — splitting hyperedges before sampling would
    decorrelate detector flips that co-occur physically.
    """

    key: str
    circuit: StabilizerCircuit
    text: str
    dem: DetectorErrorModel
    sampling_dem: DetectorErrorModel
    graph: DetectorGraph


@dataclass
class CompilationCache:
    """In-memory + on-disk cache of DEMs, graphs, decoders and
    decoder-side artefacts (DEM samplers, MWPM distance matrices)."""

    cache_dir: str | None = None
    # On-disk size bound in megabytes (None = unbounded).  Enforced by
    # LRU eviction over the cache files after every write.
    max_disk_mb: float | None = None

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    dmat_disk_hits: int = 0
    evictions: int = 0

    _compiled: dict[str, CompiledCircuit] = field(default_factory=dict, repr=False)
    _decoders: dict[tuple[str, str], object] = field(default_factory=dict, repr=False)
    _samplers: dict[str, DemSampler] = field(default_factory=dict, repr=False)
    _dmats: dict[str, tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self):
        if self.max_disk_mb is not None and self.max_disk_mb <= 0:
            raise ValueError("max_disk_mb must be positive (or None)")
        if self.cache_dir:
            os.makedirs(self.cache_dir, exist_ok=True)

    # ------------------------------------------------------------------
    def compiled(self, circuit: StabilizerCircuit, text: str | None = None) -> CompiledCircuit:
        """The DEM + detector graph for ``circuit``, compiling at most once."""
        if text is None:
            text = str(circuit)
        key = circuit_key(text)
        entry = self._compiled.get(key)
        if entry is not None:
            self.hits += 1
            return entry
        dem = self._load_dem(key, ".dem.json")
        sampling_dem = self._load_dem(key, ".sdem.json")
        if dem is not None and sampling_dem is not None:
            self.disk_hits += 1
        else:
            self.misses += 1
            with span("dem"):
                sampling_dem, dem = circuit_to_dems(circuit)
            self._store_dem(key, ".dem.json", dem)
            self._store_dem(key, ".sdem.json", sampling_dem)
        entry = CompiledCircuit(
            key=key,
            circuit=circuit,
            text=text,
            dem=dem,
            sampling_dem=sampling_dem,
            graph=DetectorGraph.from_dem(dem),
        )
        self._compiled[key] = entry
        return entry

    def decoder(self, compiled: CompiledCircuit, name: str):
        """A decoder for ``compiled``, constructed at most once per name."""
        memo_key = (compiled.key, name)
        dec = self._decoders.get(memo_key)
        if dec is None:
            if name == "mwpm":
                # Prime the graph with the cached all-pairs matrices so
                # decoder construction never recomputes the Dijkstra.
                self.distance_matrix(compiled)
            dec = make_decoder(compiled.graph, name)
            self._decoders[memo_key] = dec
        return dec

    def dem_sampler(self, compiled: CompiledCircuit) -> DemSampler:
        """The bit-packed DEM-direct sampler, compiled at most once.

        Built from the *exact* DEM: correlations between the detectors
        of one mechanism are physical and must survive sampling.
        """
        sampler = self._samplers.get(compiled.key)
        if sampler is None:
            sampler = DemSampler(compiled.sampling_dem)
            self._samplers[compiled.key] = sampler
        return sampler

    def distance_matrix(
        self, compiled: CompiledCircuit
    ) -> tuple[np.ndarray, np.ndarray]:
        """The MWPM ``(dist, pred)`` all-pairs matrices for ``compiled``.

        Memory, then disk, then one Dijkstra — and the result is
        injected into the compiled detector graph, so every decoder
        built on it shares the same arrays.
        """
        entry = self._dmats.get(compiled.key)
        if entry is None:
            entry = self._load_dmat(compiled.key, compiled.graph.num_nodes)
            if entry is not None:
                self.dmat_disk_hits += 1
                compiled.graph.set_shortest_paths(*entry)
            else:
                with span("dijkstra"):
                    entry = compiled.graph.shortest_paths()
                self._store_dmat(compiled.key, *entry)
            self._dmats[compiled.key] = entry
        return entry

    def peek_distance_matrix(
        self, key: str
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Already-materialised matrices for ``key``, without computing."""
        return self._dmats.get(key)

    # ------------------------------------------------------------------
    @property
    def unique_circuits(self) -> int:
        return len(self._compiled)

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "dmat_disk_hits": self.dmat_disk_hits,
            "evictions": self.evictions,
            "unique_circuits": self.unique_circuits,
        }

    # ------------------------------------------------------------------
    def _entry_path(self, key: str, suffix: str) -> str | None:
        if not self.cache_dir:
            return None
        return os.path.join(self.cache_dir, f"{key}{suffix}")

    @staticmethod
    def _touch(path: str) -> None:
        """Refresh an entry's recency so LRU eviction spares it."""
        try:
            os.utime(path)
        except OSError:
            pass

    def _load_dem(self, key: str, suffix: str) -> DetectorErrorModel | None:
        path = self._entry_path(key, suffix)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path) as fh:
                dem = dem_from_jsonable(json.load(fh))
        except (OSError, ValueError, KeyError):
            return None  # corrupt entry: fall through to recompilation
        self._touch(path)
        return dem

    def _store_dem(self, key: str, suffix: str, dem: DetectorErrorModel) -> None:
        path = self._entry_path(key, suffix)
        if path is None:
            return
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(dem_to_jsonable(dem), fh)
        os.replace(tmp, path)
        self._evict()

    def _load_dmat(
        self, key: str, num_nodes: int
    ) -> tuple[np.ndarray, np.ndarray] | None:
        path = self._entry_path(key, ".dmat.npz")
        if path is None or not os.path.exists(path):
            return None
        try:
            with np.load(path) as payload:
                dist = payload["dist"]
                pred = payload["pred"]
        except (OSError, ValueError, KeyError):
            return None  # corrupt entry: fall through to recomputation
        shape = (num_nodes, num_nodes)
        if dist.shape != shape or pred.shape != shape:
            return None  # stale/inconsistent entry: recompute
        self._touch(path)
        return dist, pred

    def _store_dmat(self, key: str, dist: np.ndarray, pred: np.ndarray) -> None:
        path = self._entry_path(key, ".dmat.npz")
        if path is None:
            return
        tmp = f"{path}.tmp.{os.getpid()}.npz"
        with open(tmp, "wb") as fh:
            np.savez(fh, dist=dist, pred=pred)
        os.replace(tmp, path)
        self._evict()

    def _evict(self) -> None:
        """Drop least-recently-used disk entries until under the bound."""
        if not self.cache_dir or self.max_disk_mb is None:
            return
        entries = []
        for name in os.listdir(self.cache_dir):
            if not name.endswith(_DISK_SUFFIXES):
                continue
            path = os.path.join(self.cache_dir, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            entries.append((st.st_mtime_ns, st.st_size, path))
        budget = int(self.max_disk_mb * 1024 * 1024)
        total = sum(size for _, size, _ in entries)
        entries.sort()  # oldest first
        for _, size, path in entries:
            if total <= budget:
                break
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            self.evictions += 1
