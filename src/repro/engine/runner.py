"""Sweep job execution: backends, sharding, and the Runner.

The runner walks a :class:`~repro.engine.sweep.SweepSpec`'s job list,
compiles each unique circuit exactly once through the
:class:`~repro.engine.cache.CompilationCache`, and streams the
Monte-Carlo sampling through the cross-job shard scheduler
(:mod:`repro.engine.scheduler`) over a pluggable backend:

- :class:`SerialBackend` runs every shot shard in-process;
- :class:`MultiprocessBackend` fans shards out over worker processes
  with per-worker task queues, priming each worker at most once per
  unique circuit (circuit text, both DEM payloads, MWPM distance
  matrices) — shard messages carry only ``(circuit key, decoder,
  sampler, shots, seed)``, never the circuit text or a DEM payload;
- :class:`repro.engine.remote.RemoteBackend` speaks the same worker
  protocol over TCP sockets to ``repro-worker`` processes on other
  machines.

The pool backends share :class:`WorkerPoolBackend` (submit-side
priming / dispatch / crash-recovery bookkeeping) and their workers
share :class:`ShardExecutor` (worker-side circuit / decoder / sampler
state), so the transports differ only in how bytes move.  A dead
worker no longer kills the sweep: its in-flight shards are disowned
into a lost list the scheduler reaps (``take_lost``) and resubmits to
survivors with their original seeds.

Both consume the *same* shard plan: a job's shots are split into
fixed-size shards, and shard ``i`` samples from an independent RNG
stream spawned via ``np.random.SeedSequence`` from the sweep's master
seed and the job key.  Fixed-shot failure totals are therefore
bit-identical across backends and across worker counts — parallelism
changes only where a shard runs, never what it samples.  Adaptive jobs
(``target_failures`` set) trade that equivalence for early stopping:
the scheduler retires them at their failure target and reinvests the
freed capacity in unconverged design points.
"""

from __future__ import annotations

import hashlib
import logging
import math
import multiprocessing
import os
import queue as queue_module
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from ..arch.wiring import wiring_by_name
from ..codes import make_code
from ..core.compiler import CompilerConfig, QccdCompiler
from ..core.stim_export import program_to_circuit
from ..decoders import native
from ..decoders.batch import SyndromeMemo
from ..decoders.graph import DetectorGraph
from ..ler.estimator import make_decoder
from ..noise.parameters import DEFAULT_NOISE, NoiseParameters
from ..sim.circuit import StabilizerCircuit
from ..sim.dem_sampler import DemSampler, PackedShard
from ..sim.frame import FrameSimulator
from ..sim.text_format import circuit_from_text
from ..telemetry import configure as configure_telemetry
from ..telemetry import get as active_telemetry
from ..telemetry import span
from .cache import CompilationCache, CompiledCircuit, dem_from_jsonable, dem_to_jsonable
from .progress import make_progress
from .results import JobResult, ResultStore, ShardRecord
from .scheduler import JobState, ShardOutcome, ShardTask, StreamScheduler
from .sweep import SweepJob, SweepSpec

logger = logging.getLogger(__name__)

DEFAULT_SHARD_SHOTS = 2048

# Canonical phase ordering for display and worker-lane trace synthesis:
# the pipeline order, then anything novel alphabetically after.
PHASE_ORDER = (
    "compile", "compile.translate", "compile.place", "compile.route",
    "compile.schedule", "dem", "dijkstra", "sample", "sample.draw",
    "sample.place", "sample.xor", "unique", "memo", "decode", "scatter",
    "other",
)


def ordered_phases(phases: dict) -> list[str]:
    """Phase names in canonical pipeline order (unknown names last)."""
    rank = {name: i for i, name in enumerate(PHASE_ORDER)}
    return sorted(phases, key=lambda name: (rank.get(name, len(rank)), name))


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Shard:
    """A fixed slice of one job's shot budget with its own RNG stream.

    A shard may be a *window* of a larger planned shard (work stealing
    re-shards a straggler's tranche): ``parent_shots`` is then the
    planned shard's full shot count and ``offset`` this window's first
    row within it.  The window re-draws the **whole** parent sample
    from the same seed and decodes only its own rows — per-row samples
    and per-row failures are independent of how the batch is split, so
    the windows' failure counts sum to exactly the parent's.
    """

    index: int
    shots: int
    seed: np.random.SeedSequence
    offset: int = 0
    parent_shots: int | None = None


def plan_shards(
    shots: int,
    shard_shots: int,
    master_seed: int,
    job_key: str,
) -> list[Shard]:
    """Deterministic shard layout for one job.

    The layout depends only on (shots, shard_shots, master_seed,
    job_key) — never on the backend or worker count — which is what
    makes sharded and serial execution agree exactly.
    """
    if shots <= 0:
        return []
    if shard_shots < 1:
        raise ValueError("shard_shots must be positive")
    n = math.ceil(shots / shard_shots)
    digest = int.from_bytes(hashlib.sha256(job_key.encode()).digest()[:8], "big")
    children = np.random.SeedSequence((master_seed, digest)).spawn(n)
    shards = []
    remaining = shots
    for i, child in enumerate(children):
        take = min(shard_shots, remaining)
        shards.append(Shard(index=i, shots=take, seed=child))
        remaining -= take
    return shards


def sample_shard(
    circuit: StabilizerCircuit,
    decoder,
    shard: Shard,
    sampler: DemSampler | None = None,
) -> tuple[int, tuple[int, int, int], dict | None]:
    """Sample one shard and count its logical failures.

    The shard flows packed end to end: a :class:`DemSampler` emits
    :class:`~repro.sim.dem_sampler.PackedShard` words directly (fast
    path, no unpack), while the :class:`FrameSimulator` reference path
    packs its boolean output once at this boundary.  Either way the
    decoder consumes the uint64 words via ``logical_failures_packed``
    and the shard's ``SeedSequence`` fully determines the draw.

    Returns ``(failures, (memo_hits, memo_misses, memo_size,
    memo_shared_hits), phases)`` — the shard's own syndrome-memo
    traffic (``memo_shared_hits`` counts the hits served by entries
    another worker decoded and the driver replicated in) and, when
    telemetry is enabled, its per-phase exclusive seconds (sample /
    unique / memo / decode / scatter, plus ``other`` for the residue
    between the instrumented phases and the shard's wall clock).
    ``phases`` is ``None`` with telemetry off — the hot path stays
    allocation-free.
    """
    telemetry = active_telemetry()
    enabled = telemetry.enabled
    phases0 = telemetry.phase_snapshot() if enabled else None
    draw_shots = (
        shard.parent_shots if shard.parent_shots is not None else shard.shots
    )
    if shard.offset < 0 or shard.offset + shard.shots > draw_shots:
        raise ValueError(
            f"shard window [{shard.offset}, {shard.offset + shard.shots}) "
            f"outside parent draw of {draw_shots} shots"
        )
    with telemetry.span("shard"):
        with telemetry.span("sample"):
            if sampler is not None:
                packed = sampler.sample_packed(draw_shots, seed=shard.seed)
            else:
                sample = FrameSimulator(circuit, seed=shard.seed).sample(
                    draw_shots
                )
                packed = PackedShard.from_bool(
                    sample.detectors, sample.observables
                )
            if shard.parent_shots is not None and (
                shard.offset or shard.shots != draw_shots
            ):
                lo, hi = shard.offset, shard.offset + shard.shots
                packed = PackedShard(
                    packed.det_words[lo:hi], packed.obs_words[lo:hi],
                    packed.num_detectors, packed.num_observables,
                )
        memo = decoder.syndrome_memo()
        hits0, misses0, _, shared0 = memo.snapshot()
        failures = int(
            decoder.logical_failures_packed(
                packed.det_words, packed.obs_words
            ).sum()
        )
        hits1, misses1, size, shared1 = memo.snapshot()
    memo_stats = (hits1 - hits0, misses1 - misses0, size, shared1 - shared0)
    if not enabled:
        return failures, memo_stats, None
    phases = telemetry.phase_delta(phases0)
    # The "shard" span's exclusive time is whatever the instrumented
    # phases did not cover (packing, memo snapshots, glue): surface it
    # as "other" so per-shard phases still sum to shard wall clock.
    residue = phases.pop("shard", 0.0)
    if residue > 0.0:
        phases["other"] = phases.get("other", 0.0) + residue
    return failures, memo_stats, phases


# ----------------------------------------------------------------------
# Execution backends (streaming interface: capacity / submit / poll / wait)
# ----------------------------------------------------------------------
def abort_backend(backend, owned: bool) -> None:
    """Abort-path cleanup shared by every sweep entry point.

    An owned backend dies with the sweep (hard ``terminate`` — a
    graceful close would wait for every queued shard).  A caller-owned
    backend stays alive but must disown its in-flight shards, or a
    later sweep sharing it could absorb this sweep's abandoned
    results.
    """
    if owned:
        backend.terminate()
        return
    abandon = getattr(backend, "abandon_pending", None)
    if abandon is not None:
        abandon()


class SerialBackend:
    """Runs every shard in-process, reusing the parent's cache.

    ``submit`` executes the shard synchronously and buffers the
    outcome, so the scheduler's stream drains eagerly — serial adaptive
    sampling is exactly "one shard at a time until converged".
    """

    name = "serial"
    capacity = 1

    def __init__(self):
        self._outcomes: list[ShardOutcome] = []

    def supports_windows(self) -> bool:
        """Windowed (stolen) sub-shards run fine in-process — though
        with capacity 1 the scheduler never actually steals here."""
        return True

    def submit(
        self, task: ShardTask, compiled: CompiledCircuit, cache: CompilationCache
    ) -> None:
        t0 = time.perf_counter()
        decoder = cache.decoder(compiled, task.decoder)
        sampler = cache.dem_sampler(compiled) if task.sampler == "dem" else None
        failures, memo, phases = sample_shard(
            compiled.circuit, decoder,
            Shard(task.shard_index, task.shots, task.seed,
                  offset=task.offset, parent_shots=task.parent_shots),
            sampler=sampler,
        )
        # worker stays "" — in-process spans already recorded real trace
        # events, so the driver must not synthesize a worker lane too.
        self._outcomes.append(
            ShardOutcome(
                task.seq, task.job_key, task.shots, failures,
                time.perf_counter() - t0, *memo, phases=phases,
            )
        )

    def poll(self) -> list[ShardOutcome]:
        out, self._outcomes = self._outcomes, []
        return out

    def wait(self) -> list[ShardOutcome]:
        return self.poll()

    def abandon_pending(self) -> None:
        """Drop buffered outcomes from an aborted sweep."""
        self._outcomes = []

    def close(self) -> None:
        pass

    def terminate(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, *exc):
        pass


class NoLiveWorkersError(RuntimeError):
    """Every worker of a pool backend is dead.

    Raised instead of hanging when a sweep still has shards to run but
    the pool has no survivor to run them on — the caller sees a clear
    failure within one poll interval, never a silent stall.
    """


class _WorkerDied(Exception):
    """Internal: a transport send hit a dead worker (already disowned);
    the submit loop retries on a survivor."""


class ShardExecutor:
    """Worker-side shard execution state.

    Holds the circuits this worker was primed with and the decoders /
    samplers built from them (lazily, at most once per circuit).
    Shared by the multiprocessing worker loop and the socket worker
    (``repro-worker``): both feed it the same prime / dmat / shard
    messages and differ only in transport.

    A multi-slot worker runs ``run()`` concurrently from ``slots``
    threads.  Decoders are keyed per slot — MWPM/union-find instances
    hold mutable per-decode scratch — while the syndrome memo and the
    DEM sampler are shared across slots per circuit (the memo *is* the
    dedupe; the sampler is stateless per call).  Construction of
    decoders and samplers is serialized by ``_build_lock`` because
    building mutates shared lazy caches on the detector graph.
    """

    def __init__(self, slots: int = 1):
        self.slots = max(1, int(slots))
        self._circuits: dict[str, tuple] = {}
        # (circuit_key, decoder_name, slot) -> decoder instance.
        self._decoders: dict[tuple[str, str, int], object] = {}
        # (circuit_key, decoder_name) -> memo shared by every slot's
        # decoder of that pair (cross-slot dedupe for free).
        self._memos: dict[tuple[str, str], object] = {}
        self._samplers: dict[str, DemSampler] = {}
        self._build_lock = threading.RLock()
        # (slot, slots) while the driver has cross-worker syndrome-memo
        # sharing on for this worker; None otherwise.
        self._memo_share: tuple[int, int] | None = None

    def set_memo_share(self, share) -> None:
        """Apply the driver's memo-sharding assignment (or ``None``).

        ``share`` is the ``{"slot": .., "slots": ..}`` dict from the
        ``config`` message: this worker owns the syndrome keys hashing
        to ``slot`` and queues them for the driver to redistribute.
        Applies to every existing decoder memo and to ones built later.
        """
        if share:
            self._memo_share = (int(share["slot"]), int(share["slots"]))
        else:
            self._memo_share = None
        with self._build_lock:
            for memo in self._memos.values():
                if self._memo_share is not None:
                    memo.enable_sharing(*self._memo_share)
                else:
                    memo.disable_sharing()

    def absorb_memo(self, circuit_key, decoder_name, entries) -> int:
        """Merge peer-decoded memo entries pushed by the driver.

        Tolerant of ordering: if this worker never built the decoder
        (e.g. the circuit was abandoned before its first shard landed
        here) the entries are dropped — the driver keeps the segment
        and will replay it before the next shard of that pair anyway.
        """
        entry = self._circuits.get(circuit_key)
        if entry is None:
            return 0
        return self._memo_for(circuit_key, decoder_name).absorb(entries)

    def drain_memo(self, circuit_key, decoder_name) -> list:
        """Owned memo entries decoded since the last drain (see
        :meth:`repro.decoders.batch.SyndromeMemo.drain_outbox`)."""
        memo = self._memos.get((circuit_key, decoder_name))
        if memo is None:
            return []
        return memo.drain_outbox()

    def _memo_for(self, circuit_key, decoder_name):
        pair = (circuit_key, decoder_name)
        memo = self._memos.get(pair)
        if memo is None:
            with self._build_lock:
                memo = self._memos.get(pair)
                if memo is None:
                    memo = SyndromeMemo()
                    if self._memo_share is not None:
                        memo.enable_sharing(*self._memo_share)
                    self._memos[pair] = memo
        return memo

    def _decoder_for(self, circuit_key, decoder_name, graph, slot: int = 0):
        key = (circuit_key, decoder_name, slot)
        decoder = self._decoders.get(key)
        if decoder is None:
            memo = self._memo_for(circuit_key, decoder_name)
            with self._build_lock:
                decoder = self._decoders.get(key)
                if decoder is None:
                    decoder = make_decoder(graph, decoder_name)
                    # Every slot's decoder of this pair shares one memo.
                    decoder._memo = memo
                    self._decoders[key] = decoder
        return decoder

    def prime(self, circuit_key, circuit_text, dem_data, sdem_data, dmat) -> None:
        circuit = circuit_from_text(circuit_text)
        graph = DetectorGraph.from_dem(dem_from_jsonable(dem_data))
        if dmat is not None:
            # Parent-cached all-pairs matrices: this worker's MWPM
            # decoder skips its own Dijkstra.
            graph.set_shortest_paths(*dmat)
        self._circuits[circuit_key] = (circuit, graph, dem_from_jsonable(sdem_data))

    def set_dmat(self, circuit_key, dmat) -> None:
        # Late distance-matrix delivery: the circuit was primed by a
        # non-MWPM shard, and an MWPM shard is now on its way.
        entry = self._circuits.get(circuit_key)
        built = any(
            key[0] == circuit_key and key[1] == "mwpm" for key in self._decoders
        )
        if entry is not None and not built:
            try:
                entry[1].set_shortest_paths(*dmat)
            except ValueError:
                pass  # shape mismatch: let the decoder compute its own

    def run(
        self, circuit_key, decoder_name, sampler_name, shots, seed,
        offset: int = 0, parent_shots: int | None = None, slot: int = 0,
    ):
        """Sample one shard; returns ``(failures, memo_stats, phases)``."""
        entry = self._circuits.get(circuit_key)
        if entry is None:
            raise RuntimeError(
                f"shard for unprimed circuit {circuit_key[:12]}…: "
                "priming protocol violated"
            )
        circuit, graph, sampling_dem = entry
        decoder = self._decoder_for(
            circuit_key, decoder_name, graph, slot % self.slots
        )
        sampler = None
        if sampler_name == "dem":
            sampler = self._samplers.get(circuit_key)
            if sampler is None:
                with self._build_lock:
                    sampler = self._samplers.get(circuit_key)
                    if sampler is None:
                        sampler = DemSampler(sampling_dem)
                        self._samplers[circuit_key] = sampler
        return sample_shard(
            circuit, decoder,
            Shard(0, shots, seed, offset=offset, parent_shots=parent_shots),
            sampler=sampler,
        )


def handle_worker_message(executor: ShardExecutor, message: tuple, slot: int = 0):
    """Process one driver message; returns the reply tuple or ``None``.

    The request/reply state machine shared by both worker transports:
    ``prime`` / ``dmat`` / ``memo`` update the executor (priming errors
    are reported with ``seq=None``), ``config`` applies worker-side
    settings (telemetry, memo sharding, the native matcher opt-in),
    ``shard`` samples and replies; ``stop`` is the caller's business.
    A shard that ran with telemetry enabled replies with a 7th element
    — its per-phase seconds dict — and a shard that produced owned
    syndrome-memo entries under cross-worker sharing (protocol >= 3)
    appends them as an 8th; drivers on the old 6-tuple protocol never
    enable either, so they never see the longer shapes.

    Protocol >= 4 drivers may extend the 8-element shard tuple with
    ``(offset, parent_shots)`` — a stolen *window* of a planned shard;
    older tuples run unwindowed.  ``slot`` is which of a multi-slot
    worker's lanes is executing this call (the transport appends it to
    the reply itself; see ``remote._serve_connection``).
    """
    kind = message[0]
    if kind == "prime":
        _, circuit_key, circuit_text, dem_data, sdem_data, dmat, epoch = message
        try:
            executor.prime(circuit_key, circuit_text, dem_data, sdem_data, dmat)
        except BaseException:
            return ("error", None, traceback.format_exc(), 0.0, epoch, None)
        return None
    if kind == "dmat":
        _, circuit_key, dmat, epoch = message
        executor.set_dmat(circuit_key, dmat)
        return None
    if kind == "memo":
        # Peer-decoded syndrome entries replicated in by the driver.
        _, circuit_key, decoder_name, entries, _epoch = message
        executor.absorb_memo(circuit_key, decoder_name, entries)
        return None
    if kind == "config":
        # Driver-controlled worker settings.  Settings are per-driver
        # state: a serve-forever worker gets a fresh ``config`` (or
        # none — all off) per session.
        _, settings = message
        configure_telemetry(enabled=bool(settings.get("telemetry", False)))
        executor.set_memo_share(settings.get("memo_share"))
        native.configure(bool(settings.get("native_blossom", False)))
        return None
    (_, seq, circuit_key, decoder_name, sampler_name, shots, seed,
     epoch) = message[:8]
    offset = message[8] if len(message) > 8 else 0
    parent_shots = message[9] if len(message) > 9 else None
    try:
        t0 = time.perf_counter()
        failures, memo, phases = executor.run(
            circuit_key, decoder_name, sampler_name, shots, seed,
            offset=offset, parent_shots=parent_shots, slot=slot,
        )
        elapsed = time.perf_counter() - t0
        published = executor.drain_memo(circuit_key, decoder_name)
        if published:
            return ("ok", seq, failures, elapsed, epoch, memo, phases, published)
        if phases is not None:
            return ("ok", seq, failures, elapsed, epoch, memo, phases)
        return ("ok", seq, failures, elapsed, epoch, memo)
    except BaseException:
        return ("error", seq, traceback.format_exc(), 0.0, epoch, None)


def _worker_main(task_queue, result_queue) -> None:
    """Worker-process loop: prime once per circuit, then sample shards.

    Ctrl-C is the parent's business: a SIGINT delivered to the whole
    foreground group must not kill workers mid-task — the parent
    decides when to terminate them.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    executor = ShardExecutor()
    while True:
        message = task_queue.get()
        if message[0] == "stop":
            break
        reply = handle_worker_message(executor, message)
        if reply is not None:
            result_queue.put(reply)


class WorkerPoolBackend:
    """Submit-side machinery shared by the worker-pool backends.

    The multiprocessing and socket (remote) backends dispatch identical
    messages — ``prime`` (at most once per (worker, circuit): circuit
    text, both DEM payloads, MWPM distance matrices), late ``dmat``
    delivery, tiny payload-free ``shard`` tuples, ``stop`` — and
    receive identical ``("ok"/"error", seq, value, elapsed, epoch,
    memo)`` replies.  This base owns the bookkeeping: priming state,
    per-worker load, the seq -> worker dispatch map, abandoned-sweep
    epochs, and **crash recovery** — a dead worker's in-flight shards
    are disowned into a lost list that the scheduler reaps via
    ``take_lost()`` and resubmits to survivors.

    Subclasses provide the transport: ``_ensure_workers`` (start /
    connect the pool), ``_live_workers`` (surviving worker indices),
    ``_worker_slots`` (pool size for the capacity hint) and ``_send``
    (deliver one message, raising :class:`_WorkerDied` after disowning
    a worker that cannot receive it).
    """

    name = "pool"
    queue_depth: int = 2
    # Cross-worker syndrome-memo dedupe (protocol >= 3): workers shard
    # memo ownership by syndrome hash, publish owned entries with their
    # shard replies, and the driver replicates each worker's new entries
    # to the others piggybacked on shard dispatch.  Default on; pools
    # whose workers speak protocol < 3 silently never engage it.
    memo_share: bool = True

    def _init_pool(self) -> None:
        self._load: list[int] = []
        self._primed: set[tuple[int, str]] = set()
        # Memo-share bookkeeping.  The segment store survives epochs on
        # purpose: syndrome -> correction is deterministic content, so
        # entries learned during an abandoned sweep stay valid for the
        # next sweep of the same (circuit, decoder) pair.
        # task seq -> (circuit_key, decoder) so a reply's published
        # entries can be filed without widening the dispatch tuples.
        self._shard_meta: dict[int, tuple[str, str]] = {}
        # (circuit_key, decoder) -> ordered [(key, mask, origin), ...]
        self._memo_segments: dict[tuple[str, str], list] = {}
        self._memo_known: dict[tuple[str, str], set] = {}
        # (worker, circuit_key, decoder) -> index into the segment of
        # the first entry this worker has not been sent yet.
        self._memo_cursors: dict[tuple[int, str, str], int] = {}
        self._memo_published = 0
        self._memo_duplicates = 0
        self._memo_pushed = 0
        # (worker, circuit) pairs whose prime included the MWPM
        # distance matrices (or received them in a late "dmat" send).
        self._dmat_primed: set[tuple[int, str]] = set()
        self._dem_json: dict[str, tuple] = {}
        # task seq -> (worker index, job key, shots, dispatch time)
        self._dispatch: dict[int, tuple[int, str, int, float]] = {}
        # Workers that received this driver's ("config", ...) settings.
        self._configured: set[int] = set()
        # Pool-health bookkeeping: per-worker result stats, keyed by
        # worker index (labels resolve via _worker_label on export).
        self._wstats: dict[int, dict] = {}
        self._crashes = 0
        self._resubmitted = 0
        # Shards disowned because their worker died, awaiting a
        # take_lost() reap by the scheduler.
        self._lost: list[int] = []
        # Every seq disowned this epoch: a late result for one (queued
        # by a worker just before it died, possibly racing its own
        # resubmission) is dropped, or — if the resubmitted copy is in
        # flight — counted once in its place.
        self._forgotten: set[int] = set()
        # Bumped by abandon_pending(): results echo the epoch they were
        # submitted under, so shards of an aborted sweep can never be
        # attributed to a later sweep sharing this backend.
        self._epoch = 0

    # transport hooks ---------------------------------------------------
    def _ensure_workers(self) -> None:
        raise NotImplementedError

    def _live_workers(self) -> list[int]:
        raise NotImplementedError

    def _worker_slots(self) -> int:
        """Total concurrent-shard slots across live workers (the
        capacity hint).  One per worker unless the transport learns
        otherwise (socket workers advertise theirs in the hello)."""
        raise NotImplementedError

    def _worker_slot_count(self, worker: int) -> int:
        """Concurrent-shard slots of one worker (1 unless advertised)."""
        return 1

    def _send(self, worker: int, message: tuple) -> None:
        raise NotImplementedError

    def _worker_label(self, worker: int) -> str:
        """Stable human-readable worker identity for logs, traces and
        pool health (``host:port`` for remote, ``mp:N`` for local)."""
        return f"{self.name}:{worker}"

    def _worker_protocol(self, worker: int) -> int:
        """Worker protocol version; in-process pools always match the
        driver, socket workers report theirs in the hello."""
        return 2

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Tasks the backend wants in flight: a small per-slot queue
        keeps every worker slot busy without hoarding shards an
        adaptive job may never need.  Shrinks as workers die."""
        return max(1, self._worker_slots()) * self.queue_depth

    def supports_windows(self) -> bool:
        """Whether some live worker can run windowed (stolen)
        sub-shards — the scheduler's steal-eligibility probe.  Window
        fields ride on protocol >= 4 shard tuples, so a pool of only
        older workers reports False and stealing never engages."""
        return any(
            self._worker_protocol(worker) >= 4
            for worker in self._live_workers()
        )

    def stale_pending(self) -> list[int]:
        """In-flight task seqs old enough to be straggler suspects,
        oldest dispatch first.

        "Old enough" is self-tuning: a task qualifies once its
        dispatch age exceeds twice the fastest worker's observed mean
        shard time (floored at 0.25 s), so a freshly submitted stream
        is never stolen from at t=0 — a sweep smaller than pool
        capacity would otherwise be split instantly, duplicating work
        for nothing — while a genuine straggler qualifies within a
        couple of normal shard durations.  Before any shard has
        completed there is no notion of "normal", so nothing
        qualifies."""
        means = [
            stats["busy_s"] / stats["shards"]
            for stats in self._wstats.values() if stats["shards"]
        ]
        if not means:
            return []
        threshold = max(0.25, 2.0 * min(means))
        now = time.perf_counter()
        stale = [
            seq for seq, entry in self._dispatch.items()
            if now - entry[3] > threshold
        ]
        return sorted(stale, key=lambda seq: self._dispatch[seq][3])

    def submit(
        self, task: ShardTask, compiled: CompiledCircuit, cache: CompilationCache
    ) -> None:
        self._ensure_workers()
        while True:
            live = self._live_workers()
            if task.parent_shots is not None:
                # Stolen windows need the protocol-4 shard tuple; in a
                # mixed pool only the newer workers can run them.
                live = [w for w in live if self._worker_protocol(w) >= 4]
                parent = (
                    self._dispatch.get(task.parent_seq)
                    if task.parent_seq is not None else None
                )
                if parent is not None:
                    # A window queued behind its own still-running
                    # parent defeats the steal: route it anywhere else
                    # while an alternative exists.
                    others = [w for w in live if w != parent[0]]
                    if others:
                        live = others
            if not live:
                raise NoLiveWorkersError(
                    f"{self.name} backend: no live worker"
                    + (" speaks protocol >= 4;"
                       if task.parent_shots is not None else ";")
                    + f" cannot run shard {task.shard_index} of job "
                    f"{task.job_key}"
                )
            worker = self._pick_worker(task.circuit_key, live)
            try:
                self._maybe_configure(worker)
                self._dispatch_shard(worker, task, compiled, cache, live)
            except _WorkerDied:
                continue  # _send disowned the worker; try a survivor
            self._load[worker] += 1
            self._dispatch[task.seq] = (
                worker, task.job_key, task.shots, time.perf_counter()
            )
            self._shard_meta[task.seq] = (task.circuit_key, task.decoder)
            return

    def _maybe_configure(self, worker: int) -> None:
        """Ship this driver's settings to a worker exactly once.

        Only when something is actually on (the all-off path must not
        change the wire conversation at all) and only to workers
        speaking a protocol that understands each setting — an old
        worker would crash on an unknown kind, and a protocol-2 worker
        ignores settings keys it never reads, so memo sharding and the
        native matcher are withheld below protocol 3.
        """
        if worker in self._configured:
            return
        self._configured.add(worker)
        protocol = self._worker_protocol(worker)
        settings: dict = {}
        if active_telemetry().enabled:
            settings["telemetry"] = True
        if protocol >= 3:
            if self.memo_share:
                # Slot identity is the worker index; the divisor is the
                # full pool width (dead workers included) so ownership
                # never reshuffles — a dead slot's syndromes simply stop
                # being published, which costs hit rate, not
                # correctness.
                settings["memo_share"] = {
                    "slot": worker,
                    "slots": max(1, len(self._load), worker + 1),
                }
            if native.requested():
                settings["native_blossom"] = True
        if settings and protocol >= 2:
            self._send(worker, ("config", settings))

    def _dispatch_shard(self, worker, task, compiled, cache, live) -> None:
        pair = (worker, task.circuit_key)
        if pair not in self._primed:
            payload = self._dem_json.get(task.circuit_key)
            if payload is None:
                payload = (
                    dem_to_jsonable(compiled.dem),
                    dem_to_jsonable(compiled.sampling_dem),
                )
                self._dem_json[task.circuit_key] = payload
            dem_data, sdem_data = payload
            # MWPM needs the all-pairs distance matrices; computing (or
            # disk-loading) them once in the parent and shipping them
            # in the prime saves one Dijkstra per (worker, circuit).
            if task.decoder == "mwpm":
                dmat = cache.distance_matrix(compiled)
            else:
                dmat = cache.peek_distance_matrix(task.circuit_key)
            self._send(
                worker,
                ("prime", task.circuit_key, compiled.text, dem_data, sdem_data,
                 dmat, self._epoch),
            )
            self._primed.add(pair)
            if dmat is not None:
                self._dmat_primed.add(pair)
            if all((w, task.circuit_key) in self._primed for w in live):
                # Every live worker holds this circuit now; the
                # serialized DEM can never be sent again, so stop
                # retaining it.
                self._dem_json.pop(task.circuit_key, None)
        elif task.decoder == "mwpm" and pair not in self._dmat_primed:
            # The circuit was primed by a non-MWPM shard, without the
            # distance matrices; deliver them before the MWPM shard so
            # the worker never recomputes the Dijkstra.
            self._send(
                worker,
                ("dmat", task.circuit_key, cache.distance_matrix(compiled),
                 self._epoch),
            )
            self._dmat_primed.add(pair)
        self._send_memo_delta(worker, task)
        shard = ("shard", task.seq, task.circuit_key, task.decoder,
                 task.sampler, task.shots, task.seed, self._epoch)
        if task.parent_shots is not None:
            # Stolen window: extend with (offset, parent_shots).  Plain
            # shards keep the 8-tuple so protocol <= 3 workers still
            # unpack them.
            shard = shard + (task.offset, task.parent_shots)
        self._send(worker, shard)

    def _send_memo_delta(self, worker, task) -> None:
        """Replicate peer-published memo entries this worker has not
        seen, piggybacked just before its shard — the worker is about
        to decode this (circuit, decoder) pair, so the entries land
        exactly where and when they can save work."""
        if not self.memo_share or self._worker_protocol(worker) < 3:
            return
        segment = self._memo_segments.get((task.circuit_key, task.decoder))
        if not segment:
            return
        cursor_key = (worker, task.circuit_key, task.decoder)
        cursor = self._memo_cursors.get(cursor_key, 0)
        if cursor >= len(segment):
            return
        self._memo_cursors[cursor_key] = len(segment)
        entries = [
            (key, mask)
            for key, mask, origin in segment[cursor:]
            if origin != worker  # the origin already holds its own
        ]
        if entries:
            self._memo_pushed += len(entries)
            self._send(
                worker,
                ("memo", task.circuit_key, task.decoder, entries, self._epoch),
            )

    def _pick_worker(self, circuit_key: str, live: list[int]) -> int:
        """Least-loaded live worker — load normalized by slot count, so
        a 4-slot worker looks as busy with 4 shards in flight as a
        1-slot worker with one; among ties, prefer one already primed
        for this circuit so priming traffic stays minimal."""
        best = live[0]
        best_rank = None
        for worker in live:
            primed = (worker, circuit_key) in self._primed
            slots = max(1, self._worker_slot_count(worker))
            rank = (self._load[worker] / slots, not primed)
            if best_rank is None or rank < best_rank:
                best, best_rank = worker, rank
        return best

    def _forget_worker(self, worker: int) -> None:
        """Disown a dead worker: its in-flight shards join the lost
        list (for scheduler resubmission) and its priming state is
        dropped so nothing is ever routed to it again."""
        lost = [
            seq for seq, entry in self._dispatch.items() if entry[0] == worker
        ]
        for seq in lost:
            del self._dispatch[seq]
            self._shard_meta.pop(seq, None)
            self._forgotten.add(seq)
        self._lost.extend(lost)
        # The dead worker's replication cursors are garbage now (its
        # slot's unpublished entries die with it; the segments stay —
        # entries already published remain valid for survivors).
        self._memo_cursors = {
            cursor_key: pos
            for cursor_key, pos in self._memo_cursors.items()
            if cursor_key[0] != worker
        }
        self._crashes += 1
        self._resubmitted += len(lost)
        logger.warning(
            "worker %s died with %d shard(s) in flight%s",
            self._worker_label(worker), len(lost),
            f" (lost shard seqs: {lost})" if lost else "",
        )
        if worker < len(self._load):
            self._load[worker] = 0
        self._configured.discard(worker)
        self._primed = {pair for pair in self._primed if pair[0] != worker}
        self._dmat_primed = {
            pair for pair in self._dmat_primed if pair[0] != worker
        }

    def take_lost(self) -> list[int]:
        """Drain the seqs of shards lost to dead workers (scheduler
        crash-recovery protocol)."""
        lost, self._lost = self._lost, []
        return lost

    def _handle(self, message) -> ShardOutcome | None:
        kind, seq, value, elapsed_s, epoch, memo = message[:6]
        # Protocol >= 2 telemetry replies append the phase dict; a
        # worker left enabled by an earlier driver must not leak phases
        # into a telemetry-off run, so gate on our own setting too.
        # Protocol >= 3 memo-sharing replies append the worker's newly
        # owned memo entries as an 8th element.  Multi-slot protocol-4
        # workers always pad to 8 and append the executing slot as a
        # 9th, so each slot gets its own telemetry lane.
        phases = message[6] if len(message) > 6 else None
        published = message[7] if len(message) > 7 else None
        slot = message[8] if len(message) > 8 else None
        if not active_telemetry().enabled:
            phases = None
        if epoch != self._epoch:
            return None  # shard of an abandoned sweep: silently drop
        dispatched = self._dispatch.pop(seq, None)
        meta = self._shard_meta.pop(seq, None)
        if published and meta is not None and self.memo_share:
            self._merge_memo(meta, published, dispatched[0] if dispatched else -1)
        if dispatched is None and seq in self._forgotten:
            # Disowned when its worker died: either the result beat the
            # death notice through a shared queue, or the resubmitted
            # copy already landed.  Shards are seed-deterministic, so
            # whichever copy is counted first is the answer; this one
            # is surplus.
            return None
        if dispatched is not None:
            worker, job_key, shots, t_sent = dispatched
            self._load[worker] -= 1
            self._record_result_stats(worker, float(elapsed_s), t_sent)
        if kind == "error":
            raise RuntimeError(f"worker shard failed:\n{value}")
        if dispatched is None:
            raise RuntimeError(f"result for unknown shard task {seq}")
        memo = memo if memo is not None else (0, 0, 0)
        label = self._worker_label(worker)
        if slot is not None:
            label = f"{label}#s{int(slot)}"
        return ShardOutcome(
            seq, job_key, shots, int(value), float(elapsed_s), *memo,
            phases=phases, worker=label,
        )

    def _merge_memo(self, meta, entries, origin: int) -> None:
        """File a worker's published memo entries into the pool-wide
        segment (first publisher wins; the decode is deterministic, so
        a duplicate key always carries the identical mask)."""
        segment = self._memo_segments.setdefault(meta, [])
        known = self._memo_known.setdefault(meta, set())
        for key, mask in entries:
            if key in known:
                self._memo_duplicates += 1
                continue
            known.add(key)
            segment.append((key, mask, origin))
            self._memo_published += 1

    def _record_result_stats(
        self, worker: int, busy_s: float, t_sent: float
    ) -> None:
        now = time.perf_counter()
        stats = self._wstats.get(worker)
        if stats is None:
            stats = self._wstats[worker] = {
                "shards": 0, "busy_s": 0.0, "overhead_s": 0.0,
                "last_heard": now,
            }
        stats["shards"] += 1
        stats["busy_s"] += busy_s
        # Round-trip minus on-worker execution: queue wait behind the
        # worker's other shards plus (for remote) wire/serialize time.
        stats["overhead_s"] += max(0.0, (now - t_sent) - busy_s)
        stats["last_heard"] = now

    def pool_health(self) -> dict:
        """Driver-side pool snapshot: per-worker utilisation (shards
        done, on-worker busy seconds, queue/wire overhead, in-flight
        count, heartbeat age) plus pool-wide crash/resubmit counts and
        any transport-level extras (wire bytes for the remote pool)."""
        now = time.perf_counter()
        workers = {}
        for worker in sorted(self._wstats):
            stats = self._wstats[worker]
            inflight = self._load[worker] if worker < len(self._load) else 0
            slots = max(1, self._worker_slot_count(worker))
            workers[self._worker_label(worker)] = {
                "shards": stats["shards"],
                "busy_s": stats["busy_s"],
                "overhead_s": stats["overhead_s"],
                "inflight": inflight,
                "slots": slots,
                "busy_slots": min(inflight, slots),
                "heartbeat_age_s": now - stats["last_heard"],
            }
        health = {
            "workers": workers,
            "crashes": self._crashes,
            "resubmitted_shards": self._resubmitted,
        }
        if self.memo_share and self._memo_published:
            # Cross-worker dedupe traffic: distinct entries collected
            # from workers, duplicates they raced to decode anyway, and
            # the fan-out volume pushed back to peers.
            health["memo_share"] = {
                "segments": len(self._memo_segments),
                "published_entries": self._memo_published,
                "duplicate_publishes": self._memo_duplicates,
                "pushed_entries": self._memo_pushed,
            }
        health.update(self._transport_stats())
        return health

    def _transport_stats(self) -> dict:
        """Pool-wide transport extras merged into :meth:`pool_health`."""
        return {}

    def abandon_pending(self) -> None:
        """Disown every in-flight shard (aborted-sweep recovery).

        Workers will still finish the abandoned shards, but their
        results arrive tagged with the old epoch and are dropped — a
        later sweep sharing this backend can never absorb them.
        """
        self._epoch += 1
        for worker, _job_key, _shots, _t_sent in self._dispatch.values():
            if worker < len(self._load):
                self._load[worker] -= 1
        self._dispatch.clear()
        self._shard_meta.clear()
        self._lost = []
        self._forgotten = set()

    def begin_session(self) -> None:
        """Fence off a new sweep's results from an older sweep's.

        Called by the scheduler when it attaches to this backend.  Task
        sequence numbers restart at zero per scheduler, so without a
        fresh epoch a *surplus* result left over from a previous sweep
        on a shared backend (a dead worker's duplicate, still sitting
        in the shared result queue) could be credited to this sweep's
        same-numbered shard.  Bumping the epoch makes every stale
        message identifiable and droppable.
        """
        self.abandon_pending()


class MultiprocessBackend(WorkerPoolBackend):
    """Fans shot shards out over worker processes with per-worker queues.

    Unlike a ``Pool``, the parent controls exactly which worker runs
    which shard, so it can *prime* each worker with a circuit's text
    and DEM payload at most once (``prime`` message) and afterwards
    send only tiny ``(key, decoder, sampler, shots, seed)`` shard
    messages.
    Results stream back over a shared queue that the parent polls with
    an interruptible timed wait — SIGINT reaches the parent promptly
    instead of languishing behind a blocking ``pool.map``.  A worker
    that dies (OOM kill, SIGKILL, segfault) does not kill the sweep:
    its in-flight shards are disowned for the scheduler to resubmit to
    the survivors.
    """

    name = "multiprocess"

    def __init__(
        self,
        max_workers: int | None = None,
        start_method: str | None = None,
        queue_depth: int = 2,
        memo_share: bool = True,
    ):
        self.max_workers = max_workers if max_workers else (os.cpu_count() or 2)
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        self.queue_depth = queue_depth
        self.memo_share = bool(memo_share)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._procs: list = []
        self._task_queues: list = []
        self._result_queue = None
        self._dead: set[int] = set()
        self._init_pool()

    # ------------------------------------------------------------------
    def _worker_label(self, worker: int) -> str:
        return f"mp:{worker}"

    def _worker_protocol(self, worker: int) -> int:
        # In-process workers run this very module: always current.
        return 4

    def _worker_slots(self) -> int:
        if not self._procs:
            return self.max_workers
        return len(self._procs) - len(self._dead)

    def _ensure_workers(self) -> None:
        if self._procs:
            return
        self._result_queue = self._ctx.Queue()
        for _ in range(self.max_workers):
            task_queue = self._ctx.Queue()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(task_queue, self._result_queue),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
            self._task_queues.append(task_queue)
            self._load.append(0)

    def _live_workers(self) -> list[int]:
        self._reap_dead()
        return [w for w in range(len(self._procs)) if w not in self._dead]

    def _reap_dead(self) -> None:
        """Notice dead worker processes and disown their shards."""
        for worker, proc in enumerate(self._procs):
            if worker not in self._dead and not proc.is_alive():
                self._dead.add(worker)
                self._forget_worker(worker)

    def _send(self, worker: int, message: tuple) -> None:
        """Single dispatch point for worker messages (tests hook this
        to count priming traffic)."""
        self._task_queues[worker].put(message)

    # ------------------------------------------------------------------
    def poll(self) -> list[ShardOutcome]:
        outcomes = []
        if self._result_queue is None:
            return outcomes
        while True:
            try:
                message = self._result_queue.get_nowait()
            except queue_module.Empty:
                return outcomes
            outcome = self._handle(message)
            if outcome is not None:
                outcomes.append(outcome)

    def wait(self, poll_interval: float = 0.2) -> list[ShardOutcome]:
        """Wait up to one ``poll_interval`` for a shard to finish.

        The timed ``get`` keeps the parent interruptible: a SIGINT
        lands between polls instead of hanging until a whole job's
        ``map`` returns.  Returns an empty list after one quiet
        interval — the scheduler uses the beat to reap lost shards,
        steal straggler tails, and rescan elastic pools, and only
        treats emptiness as a stall when nothing is in flight at all.
        """
        try:
            message = self._result_queue.get(timeout=poll_interval)
        except queue_module.Empty:
            self._reap_dead()
            if not self._lost and self._procs and \
                    len(self._dead) == len(self._procs):
                # No survivor can ever produce a result; the usual
                # surfacing point is submit() on the scheduler's
                # resubmission attempt, but if wait() is reached
                # first it must raise too, never spin.
                raise NoLiveWorkersError(
                    f"all {len(self._procs)} worker process(es) died"
                )
            return []
        outcome = self._handle(message)
        if outcome is None:
            return self.poll()  # stale epoch / disowned: drain the rest
        return [outcome] + self.poll()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Graceful shutdown: let queued work finish, stop workers."""
        if not self._procs:
            return
        for worker in range(len(self._procs)):
            if worker not in self._dead:
                self._send(worker, ("stop",))
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join()
        self._reset()

    def terminate(self) -> None:
        """Hard shutdown: abandon in-flight shards (interrupt path)."""
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join()
        self._reset()

    def _reset(self) -> None:
        self._procs = []
        self._task_queues = []
        self._result_queue = None
        self._dead = set()
        self._init_pool()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, *exc):
        if exc_type is None:
            self.close()
        else:
            self.terminate()


# ----------------------------------------------------------------------
# Job compilation (design point -> noisy circuit + metrics)
# ----------------------------------------------------------------------
@dataclass
class JobArtifacts:
    """Parent-side compilation products shared by jobs with equal
    ``circuit_params``."""

    metrics: dict
    extras: dict = field(default_factory=dict)
    circuit: StabilizerCircuit | None = None
    text: str | None = None


def compile_design_point(
    job: SweepJob,
    noise: NoiseParameters,
    need_circuit: bool,
    wiring_method=None,
) -> JobArtifacts:
    """Run one design point through compile -> schedule -> resources,
    optionally exporting the noisy stabilizer circuit for sampling.

    ``wiring_method`` overrides the lookup of ``job.wiring`` by name —
    the hook the toolflow uses to evaluate custom wiring schemes.
    """
    if wiring_method is None:
        wiring_method = wiring_by_name(job.wiring)
    code = make_code(job.code, job.distance)
    config = CompilerConfig(
        code=code,
        trap_capacity=job.capacity,
        topology=job.topology,
        wiring=wiring_method,
        rounds=job.rounds,
        basis=job.basis,
        router=job.router,
        placer=job.placer,
    )
    compiler = QccdCompiler(config)
    program = compiler.compile()
    placement = compiler.placement()
    resources = wiring_method.resources(placement.device)
    metrics = {
        "code": job.code,
        "distance": job.distance,
        "capacity": job.capacity,
        "topology": job.topology,
        "wiring": wiring_method.name,
        "router": job.router,
        "placer": job.placer,
        "gate_improvement": job.gate_improvement,
        "rounds": job.rounds,
        "round_time_us": program.stats.round_time_us,
        "makespan_us": program.stats.makespan_us,
        "movement_ops": program.stats.movement_ops,
        "movement_time_us": program.stats.movement_time_us,
        "gate_swaps": program.stats.gate_swaps,
        "num_traps": resources.num_traps,
        "num_junctions": resources.num_junctions,
        "electrodes": resources.electrodes,
        "num_dacs": resources.num_dacs,
        "data_rate_bitps": resources.data_rate_bitps,
        "power_w": resources.power_w,
    }
    artifacts = JobArtifacts(metrics=metrics)
    if need_circuit:
        point_noise = noise.improved(job.gate_improvement)
        if wiring_method.cooled_gates:
            point_noise = point_noise.with_cooling()
        export = program_to_circuit(program, code, point_noise, basis=job.basis)
        artifacts.circuit = export.circuit
        artifacts.text = str(export.circuit)
        artifacts.extras["max_nbar"] = export.max_nbar
    return artifacts


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
class Runner:
    """Executes a sweep: compile (cached), sample (streamed), persist."""

    def __init__(
        self,
        spec: SweepSpec,
        *,
        backend=None,
        workers: int = 0,
        cache: CompilationCache | None = None,
        cache_dir: str | None = None,
        cache_max_mb: float | None = None,
        store: ResultStore | None = None,
        results_path: str | None = None,
        noise: NoiseParameters | None = None,
        shard_shots: int = DEFAULT_SHARD_SHOTS,
        progress=False,
        checkpoint_shards: bool = True,
        telemetry=None,
        status_interval: float | None = None,
        steal: bool = True,
        steal_min_shots: int = 256,
    ):
        self.spec = spec
        self._own_backend = backend is None
        if backend is None:
            backend = (
                MultiprocessBackend(workers) if workers and workers > 1
                else SerialBackend()
            )
        self.backend = backend
        self.cache = (
            cache if cache is not None
            else CompilationCache(cache_dir, max_disk_mb=cache_max_mb)
        )
        if store is None and results_path:
            store = ResultStore(results_path)
        self.store = store
        self.noise = noise if noise is not None else DEFAULT_NOISE
        if shard_shots < 1:
            raise ValueError("shard_shots must be positive")
        self.shard_shots = shard_shots
        # Shard-level checkpointing (needs a store): every completed
        # shard is persisted, so an interrupted job resumes mid-
        # sampling instead of restarting from shard zero.
        self.checkpoint_shards = checkpoint_shards
        self._checkpointed = False
        self.progress = make_progress(progress)
        # The observability surface: defaults to the process registry,
        # which is disabled unless telemetry.configure() switched it on.
        self.telemetry = telemetry if telemetry is not None else active_telemetry()
        # Seconds between live status lines (requires progress); None
        # disables the periodic snapshot.
        self.status_interval = status_interval
        # Straggler work stealing (needs a backend whose workers can
        # run windowed sub-shards; silently inert elsewhere).
        self.steal = bool(steal)
        self.steal_min_shots = steal_min_shots
        self._scheduler: StreamScheduler | None = None
        self._status_last = time.monotonic()
        self._artifacts: dict[tuple, JobArtifacts] = {}
        # Sweep-wide syndrome-memo tallies (hit/miss deltas summed over
        # every shard; peak = largest single memo observed anywhere;
        # shared_hits = hits served by entries another worker decoded).
        self._memo_totals = {
            "hits": 0, "misses": 0, "shared_hits": 0, "peak_entries": 0,
        }
        # Sweep-wide per-phase exclusive seconds (summed over shard
        # outcomes as they land) and total per-job setup time — the
        # phase breakdown the end-of-sweep summary reports.
        self._phase_totals: dict[str, float] = {}
        self._setup_s_total = 0.0
        self._shards_done = 0
        # Live memo traffic for the status view (the job-level
        # _memo_totals only update when a whole job finalizes).
        self._live_memo_hits = 0
        self._live_memo_misses = 0
        self._live_memo_shared = 0
        # What makes two samplings of the same job comparable: stored
        # results are only reused when all of this matches.
        self.run_config = {
            "master_seed": self.spec.master_seed,
            "shard_shots": self.shard_shots,
            "noise": hashlib.sha256(repr(self.noise).encode()).hexdigest()[:12],
        }

    # ------------------------------------------------------------------
    def run(self) -> list[JobResult]:
        jobs = self.spec.expand()
        # A degenerate grid (repeated axis values) expands to duplicate
        # keys; each unique job runs and reports exactly once.
        self.progress.start(len({job.key for job in jobs}))
        completed = self.store.load() if self.store is not None else {}
        results: dict[str, JobResult] = {}
        scheduler = StreamScheduler(
            self.backend, self.cache, on_outcome=self._on_outcome,
            steal=self.steal, steal_min_shots=self.steal_min_shots,
        )
        self._scheduler = scheduler
        try:
            for job in jobs:
                if job.key in results or scheduler.has(job.key):
                    continue  # degenerate grid with repeated axis values
                prior = completed.get(job.key)
                if prior is not None and self._reusable(job, prior):
                    results[job.key] = prior
                    self.progress.job_skipped(job.key)
                    continue
                # Missing, or sampled under a different seed / shard
                # layout / noise model: re-run (the fresh record
                # supersedes the stale one on the next load).
                t0 = time.perf_counter()
                with self.telemetry.span("compile", job=job.key):
                    artifacts = self._artifacts_for(job)
                    if job.shots <= 0:
                        results[job.key] = self._finalize(
                            job, artifacts, time.perf_counter() - t0, None, None
                        )
                        continue
                    compiled = self.cache.compiled(
                        artifacts.circuit, artifacts.text
                    )
                setup_s = time.perf_counter() - t0
                self._setup_s_total += setup_s
                for state in scheduler.add(
                    self._state_for(job, artifacts, compiled, setup_s)
                ):
                    self._finalize_state(state, results)
            for state in scheduler.drain():
                self._finalize_state(state, results)
        except BaseException:
            # Interrupt / failure mid-sweep.  Completed jobs are
            # already in the store for resume.
            abort_backend(self.backend, self._own_backend)
            raise
        else:
            if self._own_backend:
                self.backend.close()
        if self._checkpointed:
            # Every shard checkpointed this run is now superseded by
            # its job's final record; drop the dead lines so the store
            # doesn't grow without bound across runs.
            self.store.compact()
        self.progress.finish(
            self.cache.stats(), self._memo_totals,
            setup_s=self._setup_s_total, phase_s=self._sweep_phases(),
            steal_stats=self.steal_stats or None,
        )
        return [results[job.key] for job in jobs]

    @property
    def steal_stats(self) -> dict:
        """Scheduler steal counters (empty before/without stealing)."""
        if self._scheduler is None:
            return {}
        return self._scheduler.steal_stats()

    def _sweep_phases(self) -> dict[str, float]:
        """Sweep-wide per-phase seconds: shard phases summed over every
        outcome, plus the driver-side phases (compile / dem / dijkstra)
        from the registry — disjoint sets, so no double counting even
        on the serial backend (whose in-process shard spans also land
        in the registry)."""
        phases = dict(self._phase_totals)
        if self.telemetry.enabled:
            driver_side = self.telemetry.phase_totals()
            for name in (
                "compile", "compile.translate", "compile.place",
                "compile.route", "compile.schedule", "dem", "dijkstra",
            ):
                if driver_side.get(name, 0.0) > 0.0:
                    phases[name] = phases.get(name, 0.0) + driver_side[name]
        return phases

    # ------------------------------------------------------------------
    def _on_outcome(self, task: ShardTask, outcome, state) -> None:
        """Absorb one completed shard (scheduler ``on_outcome`` hook):
        checkpoint it, fold its telemetry into the sweep-wide metrics,
        synthesize its worker-lane trace events, and emit a throttled
        live status line when ``status_interval`` is set.

        The final job record appended by ``_finalize`` supersedes the
        checkpoint lines; until it lands, they are what lets an
        interrupted job resume mid-sampling.
        """
        self._shards_done += 1
        self._live_memo_hits += outcome.memo_hits
        self._live_memo_misses += outcome.memo_misses
        self._live_memo_shared += outcome.memo_shared_hits
        if (self.store is not None and self.checkpoint_shards
                and task.parent_shots is None):
            # Stolen windows share their parent's shard_index; a
            # partial window record would collide with (and could be
            # mistaken for) the whole shard on resume, so only whole
            # shards checkpoint.
            self.store.append_shard(ShardRecord(
                job_key=outcome.job_key,
                shard_index=task.shard_index,
                shots=outcome.shots,
                failures=outcome.failures,
                elapsed_s=outcome.elapsed_s,
                run_config=dict(self.run_config),
                phases=outcome.phases,
            ))
            self._checkpointed = True
        if outcome.phases:
            for phase, seconds in outcome.phases.items():
                self._phase_totals[phase] = (
                    self._phase_totals.get(phase, 0.0) + seconds
                )
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.counter("shards_done").inc()
            telemetry.counter("shots_done").inc(outcome.shots)
            telemetry.counter("failures").inc(outcome.failures)
            telemetry.counter("memo_hits").inc(outcome.memo_hits)
            telemetry.counter("memo_misses").inc(outcome.memo_misses)
            if outcome.memo_shared_hits:
                telemetry.counter("memo_shared_hits").inc(
                    outcome.memo_shared_hits
                )
            telemetry.histogram("shard_elapsed_s").observe(outcome.elapsed_s)
            if telemetry.trace and outcome.worker:
                self._synthesize_lane_events(task, outcome, telemetry)
        if self.status_interval is not None:
            now = time.monotonic()
            if now - self._status_last >= self.status_interval:
                self._status_last = now
                self.progress.status(self._status_snapshot())

    def _synthesize_lane_events(self, task, outcome, telemetry) -> None:
        """Worker-lane trace events for one pool-executed shard.

        Pool workers ship phase *durations*, not timestamps (worker
        clocks are not comparable across hosts), so the driver anchors
        the shard at its arrival time minus its measured duration and
        lays the phases out back-to-back inside it.  In-process
        (serial) shards never reach here: their spans recorded real
        driver-lane events already, and ``outcome.worker`` is empty.
        """
        end = telemetry.now()
        start = max(0.0, end - outcome.elapsed_s)
        telemetry.add_event(
            "shard", start, outcome.elapsed_s, lane=outcome.worker,
            attrs={
                "job": outcome.job_key, "shard": task.shard_index,
                "shots": outcome.shots, "failures": outcome.failures,
            },
        )
        t = start
        for name in ordered_phases(outcome.phases or {}):
            dur = outcome.phases[name]
            telemetry.add_event(name, t, dur, lane=outcome.worker)
            t += dur

    def _status_snapshot(self) -> dict:
        """Live sweep state for :meth:`ProgressReporter.status`."""
        hits, misses = self._live_memo_hits, self._live_memo_misses
        snapshot = {
            "shards_done": self._shards_done,
            "phase_s": self._sweep_phases(),
            "memo": {"hits": hits, "misses": misses},
        }
        if self._live_memo_shared:
            snapshot["memo"]["shared_hits"] = self._live_memo_shared
        if hits + misses:
            snapshot["memo"]["hit_rate"] = hits / (hits + misses)
        pool_health = getattr(self.backend, "pool_health", None)
        if pool_health is not None:
            snapshot["pool"] = pool_health()
        steals = self.steal_stats
        if steals.get("steals"):
            snapshot["steals"] = steals
        return snapshot

    def _state_for(
        self, job: SweepJob, artifacts: JobArtifacts, compiled, setup_s: float
    ) -> JobState:
        # Adaptive jobs never shard coarser than their initial tranche:
        # the shard size is the granularity at which early stopping can
        # act, so a tranche must be at least one whole shard.
        shard_shots = (
            min(self.shard_shots, job.shots) if job.adaptive else self.shard_shots
        )
        plan = plan_shards(
            job.shot_cap, shard_shots, self.spec.master_seed, job.key
        )
        tranche = math.ceil(job.shots / shard_shots)
        checkpointed: dict[int, ShardRecord] = {}
        if self.store is not None and self.checkpoint_shards:
            for index, record in self.store.load_shards(job.key).items():
                # A shard sampled under a different master seed / shard
                # layout / noise model is a different experiment; only
                # this run's own configuration may be credited.
                if record.run_config == self.run_config:
                    checkpointed[index] = record
        initial_shots = initial_failures = 0
        initial_work_s = 0.0
        initial_phases: dict[str, float] = {}
        if checkpointed:
            # Resume mid-job: credit the checkpointed shards and plan
            # only the remainder.  The shard RNG streams are positional
            # in the *full* plan, so skipping completed indices leaves
            # every remaining shard's sample bit-identical.
            remaining = []
            tranche_left = 0
            for position, shard in enumerate(plan):
                record = checkpointed.get(shard.index)
                if record is not None and record.shots == shard.shots:
                    initial_shots += record.shots
                    initial_failures += record.failures
                    initial_work_s += record.elapsed_s
                    if record.phases:
                        for phase, seconds in record.phases.items():
                            initial_phases[phase] = (
                                initial_phases.get(phase, 0.0) + seconds
                            )
                else:
                    remaining.append(shard)
                    if position < tranche:
                        tranche_left += 1
            plan, tranche = remaining, tranche_left
        return JobState(
            key=job.key,
            compiled=compiled,
            decoder=job.decoder,
            plan=plan,
            sampler=job.sampler,
            target_failures=job.target_failures,
            target_rel_stderr=job.target_rel_stderr,
            tranche_shards=tranche,
            payload=(job, artifacts, setup_s),
            initial_shots=initial_shots,
            initial_failures=initial_failures,
            initial_work_s=initial_work_s,
            initial_phases=initial_phases,
        )

    def _finalize_state(self, state: JobState, results: dict) -> None:
        job, artifacts, setup_s = state.payload
        extras = dict(artifacts.extras)
        if job.adaptive:
            extras["adaptive"] = {
                "target_failures": job.target_failures,
                "target_rel_stderr": job.target_rel_stderr,
                "max_shots": job.max_shots,
                "initial_shots": job.shots,
                "converged": state.converged,
            }
        extras["memo"] = {
            "hits": state.memo_hits,
            "misses": state.memo_misses,
            "entries": state.memo_size,
        }
        if state.memo_shared_hits:
            extras["memo"]["shared_hits"] = state.memo_shared_hits
        if state.phase_s:
            # Per-phase seconds summed over the job's shards, so stored
            # results record *where* this point's sampling time went.
            extras["phases"] = {
                name: state.phase_s[name] for name in ordered_phases(state.phase_s)
            }
        self._memo_totals["hits"] += state.memo_hits
        self._memo_totals["misses"] += state.memo_misses
        self._memo_totals["shared_hits"] += state.memo_shared_hits
        self._memo_totals["peak_entries"] = max(
            self._memo_totals["peak_entries"], state.memo_size
        )
        # Compile time plus the job's own sampling time across all
        # workers — exclusive of time its shards sat queued behind
        # other jobs, which streaming would otherwise smear into every
        # concurrently-running job's wall clock.
        results[job.key] = self._finalize(
            job, artifacts, setup_s + state.work_s,
            state.shots_done, state.failures, extras,
        )

    def _finalize(
        self,
        job: SweepJob,
        artifacts: JobArtifacts,
        elapsed_s: float,
        shots: int | None,
        failures: int | None,
        extras: dict | None = None,
    ) -> JobResult:
        result = JobResult(
            job=job,
            shots=job.shots if shots is None else shots,
            failures=failures,
            rounds=job.rounds,
            metrics=dict(artifacts.metrics),
            extras=dict(artifacts.extras) if extras is None else extras,
            elapsed_s=elapsed_s,
            run_config=dict(self.run_config),
        )
        if self.store is not None:
            self.store.append(result)
        self.progress.job_done(
            job.key, failures, result.elapsed_s,
            shots=None if failures is None else result.shots,
        )
        return result

    # ------------------------------------------------------------------
    def _reusable(self, job: SweepJob, prior: JobResult) -> bool:
        """Whether a stored result is the same experiment as this run.

        Records resumed from older or corrupt store lines can carry an
        empty ``metrics`` dict (``from_jsonable``'s default); reusing
        one would permanently poison every record rebuilt from it, so
        reuse requires real compiler metrics.  Compile-only jobs never
        sampled anything, so the sampling configuration (seed, shard
        layout, noise) cannot invalidate them.
        """
        if not prior.metrics:
            return False
        if job.shots == 0:
            return True
        return prior.run_config == self.run_config

    def _artifacts_for(self, job: SweepJob) -> JobArtifacts:
        params = job.circuit_params
        artifacts = self._artifacts.get(params)
        need_circuit = job.shots > 0
        if artifacts is None or (need_circuit and artifacts.circuit is None):
            artifacts = compile_design_point(job, self.noise, need_circuit)
            self._artifacts[params] = artifacts
        return artifacts


def run_sweep(spec: SweepSpec, **kwargs) -> list[JobResult]:
    """One-call sweep execution; see :class:`Runner` for options."""
    return Runner(spec, **kwargs).run()


# ----------------------------------------------------------------------
# Ad-hoc adaptive sampling (the engine face of estimate_until_failures)
# ----------------------------------------------------------------------
def sample_adaptive(
    circuit: StabilizerCircuit,
    *,
    decoder: str = "mwpm",
    target_failures: int | None = 20,
    target_rel_stderr: float | None = None,
    max_shots: int = 10 ** 6,
    shard_shots: int = 5000,
    seed: int | None = None,
    backend=None,
    cache: CompilationCache | None = None,
    sampler: str = "dem",
) -> tuple[int, int]:
    """Sample ``circuit`` until ``target_failures`` failures (or, when
    ``target_rel_stderr`` is set, until the estimate's relative
    standard error falls below that bound) or the ``max_shots``
    budget, whichever comes first.

    The first satisfied target retires the job, so a tight precision
    bound needs ``target_failures=None`` (precision-only stopping) —
    otherwise the failure count fires first and caps the achievable
    precision at roughly ``1/sqrt(target_failures)``.

    Runs the same scheduler / shard plan machinery as a sweep job, so
    results are deterministic for a given ``seed`` and the sampling can
    be fanned out over a :class:`MultiprocessBackend`.  Returns
    ``(shots, failures)``.
    """
    if target_failures is None and target_rel_stderr is None:
        raise ValueError(
            "need target_failures and/or target_rel_stderr (otherwise use "
            "a fixed-shot sweep)"
        )
    if target_failures is not None and target_failures < 1:
        raise ValueError("target_failures must be positive")
    if target_rel_stderr is not None and target_rel_stderr <= 0:
        raise ValueError("target_rel_stderr must be positive")
    if shard_shots < 1 or max_shots < shard_shots:
        raise ValueError("need max_shots >= shard_shots >= 1")
    cache = cache if cache is not None else CompilationCache()
    compiled = cache.compiled(circuit)
    if seed is None:
        seed = int(np.random.SeedSequence().entropy) & 0xFFFFFFFF
    own_backend = backend is None
    backend = backend if backend is not None else SerialBackend()
    plan = plan_shards(max_shots, shard_shots, seed, compiled.key)
    state = JobState(
        key=compiled.key,
        compiled=compiled,
        decoder=decoder,
        plan=plan,
        sampler=sampler,
        target_failures=target_failures,
        target_rel_stderr=target_rel_stderr,
        tranche_shards=len(plan),
    )
    scheduler = StreamScheduler(backend, cache)
    try:
        done = scheduler.add(state)
        if not done:
            done = list(scheduler.drain())
    except BaseException:
        abort_backend(backend, own_backend)
        raise
    else:
        if own_backend:
            backend.close()
    [state] = done
    return state.shots_done, state.failures
