"""Sweep job execution: backends, sharding, and the Runner.

The runner walks a :class:`~repro.engine.sweep.SweepSpec`'s job list,
compiles each unique circuit exactly once through the
:class:`~repro.engine.cache.CompilationCache`, and hands the
Monte-Carlo sampling to a pluggable backend:

- :class:`SerialBackend` runs every shot shard in-process;
- :class:`MultiprocessBackend` fans shards out over a worker pool.

Both consume the *same* shard plan: a job's shots are split into
fixed-size shards, and shard ``i`` samples from an independent RNG
stream spawned via ``np.random.SeedSequence`` from the sweep's master
seed and the job key.  Failure totals are therefore bit-identical
across backends and across worker counts — parallelism changes only
where a shard runs, never what it samples.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field

import numpy as np

from ..arch.wiring import wiring_by_name
from ..codes import make_code
from ..core.compiler import CompilerConfig, QccdCompiler
from ..core.stim_export import program_to_circuit
from ..decoders.graph import DetectorGraph
from ..ler.estimator import make_decoder
from ..noise.parameters import DEFAULT_NOISE, NoiseParameters
from ..sim.circuit import StabilizerCircuit
from ..sim.frame import FrameSimulator
from ..sim.text_format import circuit_from_text
from .cache import CompilationCache, CompiledCircuit, dem_from_jsonable, dem_to_jsonable
from .progress import make_progress
from .results import JobResult, ResultStore
from .sweep import SweepJob, SweepSpec

DEFAULT_SHARD_SHOTS = 2048


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Shard:
    """A fixed slice of one job's shot budget with its own RNG stream."""

    index: int
    shots: int
    seed: np.random.SeedSequence


def plan_shards(
    shots: int,
    shard_shots: int,
    master_seed: int,
    job_key: str,
) -> list[Shard]:
    """Deterministic shard layout for one job.

    The layout depends only on (shots, shard_shots, master_seed,
    job_key) — never on the backend or worker count — which is what
    makes sharded and serial execution agree exactly.
    """
    if shots <= 0:
        return []
    if shard_shots < 1:
        raise ValueError("shard_shots must be positive")
    n = math.ceil(shots / shard_shots)
    digest = int.from_bytes(hashlib.sha256(job_key.encode()).digest()[:8], "big")
    children = np.random.SeedSequence((master_seed, digest)).spawn(n)
    shards = []
    remaining = shots
    for i, child in enumerate(children):
        take = min(shard_shots, remaining)
        shards.append(Shard(index=i, shots=take, seed=child))
        remaining -= take
    return shards


def sample_shard(
    circuit: StabilizerCircuit, decoder, shard: Shard
) -> int:
    """Sample one shard and count its logical failures."""
    sample = FrameSimulator(circuit, seed=shard.seed).sample(shard.shots)
    return int(decoder.logical_failures(sample.detectors, sample.observables).sum())


# ----------------------------------------------------------------------
# Execution backends
# ----------------------------------------------------------------------
class SerialBackend:
    """Runs every shard in-process, reusing the parent's cache."""

    name = "serial"

    def run_job(
        self,
        job: SweepJob,
        compiled: CompiledCircuit,
        shards: list[Shard],
        cache: CompilationCache,
    ) -> int:
        decoder = cache.decoder(compiled, job.decoder)
        return sum(sample_shard(compiled.circuit, decoder, s) for s in shards)

    def close(self) -> None:
        pass

    def terminate(self) -> None:
        pass


# Per-worker-process memo: each worker parses / builds a circuit's
# artefacts at most once, however many shards of it it draws.
_WORKER_CIRCUITS: dict = {}
_WORKER_DECODERS: dict = {}


def _init_worker() -> None:
    # Ctrl-C is the parent's business: a SIGINT delivered to the whole
    # foreground group must not kill workers mid-task, or the pool
    # teardown deadlocks.  The parent terminates the pool instead.
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _run_shard_payload(payload) -> int:
    """Worker-side shard execution (must stay module-level picklable)."""
    key, circuit_text, dem_data, decoder_name, shots, seed = payload
    entry = _WORKER_CIRCUITS.get(key)
    if entry is None:
        circuit = circuit_from_text(circuit_text)
        graph = DetectorGraph.from_dem(dem_from_jsonable(dem_data))
        entry = (circuit, graph)
        _WORKER_CIRCUITS[key] = entry
    circuit, graph = entry
    decoder = _WORKER_DECODERS.get((key, decoder_name))
    if decoder is None:
        decoder = make_decoder(graph, decoder_name)
        _WORKER_DECODERS[(key, decoder_name)] = decoder
    return sample_shard(circuit, decoder, Shard(index=0, shots=shots, seed=seed))


class MultiprocessBackend:
    """Fans shot shards out over a ``multiprocessing`` pool.

    The parent compiles once; workers receive the circuit text plus the
    already-extracted DEM (as JSON-safe data), so no worker ever redoes
    DEM extraction — they only rebuild the cheap detector graph, once
    per process per unique circuit.
    """

    name = "multiprocess"

    def __init__(self, max_workers: int | None = None, start_method: str | None = None):
        self.max_workers = max_workers if max_workers else (os.cpu_count() or 2)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._ctx.Pool(
                processes=self.max_workers, initializer=_init_worker
            )
        return self._pool

    def run_job(
        self,
        job: SweepJob,
        compiled: CompiledCircuit,
        shards: list[Shard],
        cache: CompilationCache,
    ) -> int:
        dem_data = dem_to_jsonable(compiled.dem)
        payloads = [
            (compiled.key, compiled.text, dem_data, job.decoder, s.shots, s.seed)
            for s in shards
        ]
        pool = self._ensure_pool()
        return sum(pool.map(_run_shard_payload, payloads))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def terminate(self) -> None:
        """Hard shutdown: abandon in-flight shards (interrupt path)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, *exc):
        if exc_type is None:
            self.close()
        else:
            self.terminate()


# ----------------------------------------------------------------------
# Job compilation (design point -> noisy circuit + metrics)
# ----------------------------------------------------------------------
@dataclass
class JobArtifacts:
    """Parent-side compilation products shared by jobs with equal
    ``circuit_params``."""

    metrics: dict
    extras: dict = field(default_factory=dict)
    circuit: StabilizerCircuit | None = None
    text: str | None = None


def compile_design_point(
    job: SweepJob,
    noise: NoiseParameters,
    need_circuit: bool,
    wiring_method=None,
) -> JobArtifacts:
    """Run one design point through compile -> schedule -> resources,
    optionally exporting the noisy stabilizer circuit for sampling.

    ``wiring_method`` overrides the lookup of ``job.wiring`` by name —
    the hook the toolflow uses to evaluate custom wiring schemes.
    """
    if wiring_method is None:
        wiring_method = wiring_by_name(job.wiring)
    code = make_code(job.code, job.distance)
    config = CompilerConfig(
        code=code,
        trap_capacity=job.capacity,
        topology=job.topology,
        wiring=wiring_method,
        rounds=job.rounds,
        basis=job.basis,
    )
    compiler = QccdCompiler(config)
    program = compiler.compile()
    placement = compiler.placement()
    resources = wiring_method.resources(placement.device)
    metrics = {
        "code": job.code,
        "distance": job.distance,
        "capacity": job.capacity,
        "topology": job.topology,
        "wiring": wiring_method.name,
        "gate_improvement": job.gate_improvement,
        "rounds": job.rounds,
        "round_time_us": program.stats.round_time_us,
        "makespan_us": program.stats.makespan_us,
        "movement_ops": program.stats.movement_ops,
        "movement_time_us": program.stats.movement_time_us,
        "gate_swaps": program.stats.gate_swaps,
        "num_traps": resources.num_traps,
        "num_junctions": resources.num_junctions,
        "electrodes": resources.electrodes,
        "num_dacs": resources.num_dacs,
        "data_rate_bitps": resources.data_rate_bitps,
        "power_w": resources.power_w,
    }
    artifacts = JobArtifacts(metrics=metrics)
    if need_circuit:
        point_noise = noise.improved(job.gate_improvement)
        if wiring_method.cooled_gates:
            point_noise = point_noise.with_cooling()
        export = program_to_circuit(program, code, point_noise, basis=job.basis)
        artifacts.circuit = export.circuit
        artifacts.text = str(export.circuit)
        artifacts.extras["max_nbar"] = export.max_nbar
    return artifacts


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
class Runner:
    """Executes a sweep: compile (cached), sample (sharded), persist."""

    def __init__(
        self,
        spec: SweepSpec,
        *,
        backend=None,
        workers: int = 0,
        cache: CompilationCache | None = None,
        cache_dir: str | None = None,
        store: ResultStore | None = None,
        results_path: str | None = None,
        noise: NoiseParameters | None = None,
        shard_shots: int = DEFAULT_SHARD_SHOTS,
        progress=False,
    ):
        self.spec = spec
        self._own_backend = backend is None
        if backend is None:
            backend = (
                MultiprocessBackend(workers) if workers and workers > 1
                else SerialBackend()
            )
        self.backend = backend
        self.cache = cache if cache is not None else CompilationCache(cache_dir)
        if store is None and results_path:
            store = ResultStore(results_path)
        self.store = store
        self.noise = noise if noise is not None else DEFAULT_NOISE
        if shard_shots < 1:
            raise ValueError("shard_shots must be positive")
        self.shard_shots = shard_shots
        self.progress = make_progress(progress)
        self._artifacts: dict[tuple, JobArtifacts] = {}
        # What makes two samplings of the same job comparable: stored
        # results are only reused when all of this matches.
        self.run_config = {
            "master_seed": self.spec.master_seed,
            "shard_shots": self.shard_shots,
            "noise": hashlib.sha256(repr(self.noise).encode()).hexdigest()[:12],
        }

    # ------------------------------------------------------------------
    def run(self) -> list[JobResult]:
        jobs = self.spec.expand()
        self.progress.start(len(jobs))
        completed = self.store.load() if self.store is not None else {}
        results: list[JobResult] = []
        try:
            for job in jobs:
                prior = completed.get(job.key)
                if prior is not None and self._reusable(job, prior):
                    results.append(prior)
                    self.progress.job_skipped(job.key)
                    continue
                # Missing, or sampled under a different seed / shard
                # layout / noise model: re-run (the fresh record
                # supersedes the stale one on the next load).
                results.append(self._run_job(job))
        except BaseException:
            # Interrupt / failure mid-sweep: a graceful close() would
            # wait for every queued shard, so tear the pool down hard.
            # Completed jobs are already in the store for resume.
            if self._own_backend:
                self.backend.terminate()
            raise
        else:
            if self._own_backend:
                self.backend.close()
        self.progress.finish(self.cache.stats())
        return results

    # ------------------------------------------------------------------
    def _reusable(self, job: SweepJob, prior: JobResult) -> bool:
        """Whether a stored result is the same experiment as this run.

        Compile-only jobs never sampled anything, so the sampling
        configuration (seed, shard layout, noise) cannot invalidate
        them.
        """
        if job.shots == 0:
            return True
        return prior.run_config == self.run_config

    def _run_job(self, job: SweepJob) -> JobResult:
        t0 = time.perf_counter()
        artifacts = self._artifacts_for(job)
        failures: int | None = None
        if job.shots > 0:
            compiled = self.cache.compiled(artifacts.circuit, artifacts.text)
            shards = plan_shards(
                job.shots, self.shard_shots, self.spec.master_seed, job.key
            )
            failures = self.backend.run_job(job, compiled, shards, self.cache)
        result = JobResult(
            job=job,
            shots=job.shots,
            failures=failures,
            rounds=job.rounds,
            metrics=dict(artifacts.metrics),
            extras=dict(artifacts.extras),
            elapsed_s=time.perf_counter() - t0,
            run_config=dict(self.run_config),
        )
        if self.store is not None:
            self.store.append(result)
        self.progress.job_done(job.key, failures, result.elapsed_s)
        return result

    def _artifacts_for(self, job: SweepJob) -> JobArtifacts:
        params = job.circuit_params
        artifacts = self._artifacts.get(params)
        need_circuit = job.shots > 0
        if artifacts is None or (need_circuit and artifacts.circuit is None):
            artifacts = compile_design_point(job, self.noise, need_circuit)
            self._artifacts[params] = artifacts
        return artifacts


def run_sweep(spec: SweepSpec, **kwargs) -> list[JobResult]:
    """One-call sweep execution; see :class:`Runner` for options."""
    return Runner(spec, **kwargs).run()
