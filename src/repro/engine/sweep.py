"""Declarative Monte-Carlo sweep specifications.

Every figure in the paper is a grid over (code distance x noise point x
topology x decoder x ...).  A :class:`SweepSpec` names that grid once;
``expand()`` turns it into a deterministic, stably-ordered list of
:class:`SweepJob` atoms.  Each job carries a content-derived ``key`` so
result stores can resume across runs and caches can recognise repeated
work, and a ``circuit_params`` tuple identifying which jobs share one
compiled circuit (jobs differing only in decoder or shot count reuse
the same DEM and detector graph).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields

_CODES = ("rotated_surface", "unrotated_surface", "repetition")
_TOPOLOGIES = ("grid", "linear", "switch")
_WIRINGS = ("standard", "wise")
_DECODERS = ("mwpm", "union_find")
_SAMPLERS = ("dem", "frame")


@dataclass(frozen=True)
class SweepJob:
    """One atomic unit of sweep work: a single design point + decoder.

    A job is fully self-describing and picklable, so it can be shipped
    to worker processes, serialised into a JSON-lines result store, and
    reconstructed on resume.
    """

    code: str
    distance: int
    capacity: int
    topology: str
    wiring: str
    gate_improvement: float
    decoder: str
    rounds: int
    shots: int
    basis: str = "Z"
    # Adaptive shot allocation: when ``target_failures`` and/or
    # ``target_rel_stderr`` is set, ``shots`` is only the *initial
    # tranche* — the scheduler keeps sampling (up to ``max_shots``)
    # until the job has observed ``target_failures`` logical failures
    # or its estimate's relative standard error has fallen below
    # ``target_rel_stderr`` (a *precision* target), and retires it
    # early once it has.  ``None`` for both means classic fixed-shot
    # sampling.
    target_failures: int | None = None
    max_shots: int | None = None
    # Syndrome sampler: "dem" draws shots directly from the compiled
    # detector error model (bit-packed fast path); "frame" replays the
    # noisy circuit gate-by-gate (the exact reference, and the only
    # mode that existed before the fast path — its keys and shard RNG
    # streams are unchanged, so stored results resume and the sampled
    # syndromes are bit-identical to pre-fast-path sweeps).
    sampler: str = "dem"
    # Adaptive precision stopping (see above); appended after
    # ``sampler`` so positional construction from older call sites is
    # unaffected, and excluded from the key hash when unset so every
    # pre-existing job key carries over bit-identically.
    target_rel_stderr: float | None = None
    # Compilation strategy axes (see repro.core.routing_base and
    # repro.core.place): the routing and placement strategies used to
    # compile this design point.  Appended with the pre-strategy
    # defaults and excluded from the key hash when default-valued, so
    # every job key from before the strategy layer — and with it every
    # stored result and shard RNG stream — carries over bit-identically
    # (the ``sampler`` pattern above).
    router: str = "greedy"
    placer: str = "projection"

    @property
    def adaptive(self) -> bool:
        return (
            self.target_failures is not None
            or self.target_rel_stderr is not None
        )

    @property
    def shot_cap(self) -> int:
        """The most shots this job may ever sample."""
        return self.max_shots if self.adaptive else self.shots

    @property
    def circuit_params(self) -> tuple:
        """The fields that determine the compiled noisy circuit.

        Decoder choice and shot budget do not change the circuit, so
        jobs agreeing on this tuple share one DEM / detector graph.
        """
        return (
            self.code,
            self.distance,
            self.capacity,
            self.topology,
            self.wiring,
            self.gate_improvement,
            self.rounds,
            self.basis,
            self.router,
            self.placer,
        )

    @property
    def key(self) -> str:
        """Stable, human-scannable identity: label prefix + content hash.

        Each sampling mode hashes exactly the fields it had when it was
        introduced: fixed-shot frame jobs hash the original field set
        (no adaptive fields, no sampler field), so their keys — and
        hence their shard RNG streams and stored results — carry over
        unchanged from every release before the DEM-direct fast path.
        """
        content = asdict(self)
        if not self.adaptive:
            del content["target_failures"], content["max_shots"]
        if self.target_rel_stderr is None:
            del content["target_rel_stderr"]
        if self.sampler == "frame":
            del content["sampler"]
        if self.router == "greedy":
            del content["router"]
        if self.placer == "projection":
            del content["placer"]
        payload = json.dumps(content, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(payload.encode()).hexdigest()[:12]
        budget = f"n{self.shots}"
        if self.adaptive:
            goals = []
            if self.target_failures is not None:
                goals.append(f"f{self.target_failures}")
            if self.target_rel_stderr is not None:
                goals.append(f"rse{self.target_rel_stderr:g}")
            budget = f"n{self.shots}-{'-'.join(goals)}of{self.max_shots}"
        # Non-default strategies surface in the label (default-strategy
        # labels — like their hashes — are byte-for-byte pre-strategy).
        strategy = ""
        if self.router != "greedy":
            strategy += f"-{self.router}"
        if self.placer != "projection":
            strategy += f"-{self.placer}"
        return (
            f"{self.code}-d{self.distance}-c{self.capacity}-{self.topology}"
            f"-{self.wiring}{strategy}-x{self.gate_improvement:g}-{self.decoder}"
            f"-r{self.rounds}-{budget}-{digest}"
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SweepJob":
        names = {f.name for f in fields(cls)}
        # Stores written before the DEM-direct fast path carry no
        # sampler field; those experiments were frame-sampled.
        data = dict(data)
        data.setdefault("sampler", "frame")
        # Stores written before the strategy layer compiled with the
        # only strategies that existed.
        data.setdefault("router", "greedy")
        data.setdefault("placer", "projection")
        return cls(**{k: v for k, v in data.items() if k in names})


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid of design points to evaluate.

    ``expand()`` iterates the axes in declaration order (distance
    outermost, decoder innermost), which fixes the job order across
    runs — the property resume and progress reporting rely on.
    ``rounds=None`` means "rounds = distance" per job, matching the
    paper's memory experiments.
    """

    distances: tuple[int, ...]
    code: str = "rotated_surface"
    capacities: tuple[int, ...] = (2,)
    topologies: tuple[str, ...] = ("grid",)
    wirings: tuple[str, ...] = ("standard",)
    gate_improvements: tuple[float, ...] = (1.0,)
    decoders: tuple[str, ...] = ("mwpm",)
    rounds: int | None = None
    shots: int = 2000
    basis: str = "Z"
    master_seed: int = 2026
    # Adaptive shot allocation (see SweepJob): sample each design
    # point until it shows ``target_failures`` failures and/or until
    # ``stderr / ler`` drops below ``target_rel_stderr``, spending at
    # most ``max_shots``; ``shots`` is the initial tranche every job is
    # guaranteed before freed budget is reinvested in noisy points.
    # ``max_shots`` defaults to 100 tranches when left unset.
    target_failures: int | None = None
    max_shots: int | None = None
    # "dem" (default) samples syndromes straight from the compiled
    # detector error model; "frame" opts back into gate-by-gate
    # circuit replay with pre-fast-path keys and shard RNG streams.
    sampler: str = "dem"
    # Adaptive *precision* stopping: retire a design point once the
    # relative standard error of its per-shot LER estimate falls below
    # this bound (e.g. 0.1 for ~10% error bars).
    target_rel_stderr: float | None = None
    # Compilation strategy axes: routing and placement strategies to
    # grid over (names resolved against the repro.core registries).
    routers: tuple[str, ...] = ("greedy",)
    placers: tuple[str, ...] = ("projection",)

    def __post_init__(self):
        for name in ("distances", "capacities", "topologies", "wirings",
                     "gate_improvements", "decoders", "routers", "placers"):
            value = tuple(getattr(self, name))
            if not value:
                raise ValueError(f"{name} must be non-empty")
            object.__setattr__(self, name, value)
        if self.code not in _CODES:
            raise ValueError(f"unknown code {self.code!r}; expected one of {_CODES}")
        for topo in self.topologies:
            if topo not in _TOPOLOGIES:
                raise ValueError(
                    f"unknown topology {topo!r}; expected one of {_TOPOLOGIES}")
        for wiring in self.wirings:
            if wiring not in _WIRINGS:
                raise ValueError(
                    f"unknown wiring {wiring!r}; expected one of {_WIRINGS}")
        for dec in self.decoders:
            if dec not in _DECODERS:
                raise ValueError(
                    f"unknown decoder {dec!r}; expected one of {_DECODERS}")
        if self.sampler not in _SAMPLERS:
            raise ValueError(
                f"unknown sampler {self.sampler!r}; expected one of {_SAMPLERS}")
        # Strategy names validate against the live registries (local
        # import: the spec layer stays cheap to import, and strategies
        # registered by user code are honoured).
        from ..core import available_placers, available_routers

        for router in self.routers:
            if router not in available_routers():
                raise ValueError(
                    f"unknown router {router!r}; expected one of "
                    f"{available_routers()}")
        for placer in self.placers:
            if placer not in available_placers():
                raise ValueError(
                    f"unknown placer {placer!r}; expected one of "
                    f"{available_placers()}")
        if any(d < 2 for d in self.distances):
            raise ValueError("distances must be >= 2")
        if any(c < 1 for c in self.capacities):
            raise ValueError("capacities must be >= 1")
        if self.rounds is not None and self.rounds < 1:
            raise ValueError("rounds must be positive (or None for rounds=distance)")
        if self.shots < 0:
            raise ValueError("shots must be non-negative (0 = compile-only)")
        adaptive = (
            self.target_failures is not None
            or self.target_rel_stderr is not None
        )
        if not adaptive:
            if self.max_shots is not None:
                raise ValueError(
                    "max_shots requires target_failures or target_rel_stderr "
                    "(adaptive mode)"
                )
        else:
            if self.target_failures is not None and self.target_failures < 1:
                raise ValueError("target_failures must be positive")
            if self.target_rel_stderr is not None and self.target_rel_stderr <= 0:
                raise ValueError("target_rel_stderr must be positive")
            if self.shots < 1:
                raise ValueError("adaptive mode needs shots > 0 (the initial tranche)")
            if self.max_shots is None:
                object.__setattr__(self, "max_shots", 100 * self.shots)
            if self.max_shots < self.shots:
                raise ValueError("max_shots must be >= shots (the initial tranche)")

    @property
    def num_jobs(self) -> int:
        return (
            len(self.distances) * len(self.capacities) * len(self.topologies)
            * len(self.wirings) * len(self.routers) * len(self.placers)
            * len(self.gate_improvements) * len(self.decoders)
        )

    def expand(self) -> list[SweepJob]:
        """The deterministic job list for this grid."""
        jobs = []
        for d in self.distances:
            for cap in self.capacities:
                for topo in self.topologies:
                    for wiring in self.wirings:
                        for router in self.routers:
                            for placer in self.placers:
                                for improvement in self.gate_improvements:
                                    for decoder in self.decoders:
                                        jobs.append(SweepJob(
                                            code=self.code,
                                            distance=d,
                                            capacity=cap,
                                            topology=topo,
                                            wiring=wiring,
                                            gate_improvement=improvement,
                                            decoder=decoder,
                                            rounds=self.rounds if self.rounds is not None else d,
                                            shots=self.shots,
                                            basis=self.basis,
                                            target_failures=self.target_failures,
                                            max_shots=self.max_shots,
                                            sampler=self.sampler,
                                            target_rel_stderr=self.target_rel_stderr,
                                            router=router,
                                            placer=placer,
                                        ))
        return jobs
