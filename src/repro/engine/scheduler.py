"""Cross-job streaming shard scheduler with adaptive shot allocation.

The scheduler is the engine's execution core: it turns a set of
:class:`JobState` machines (one per sampled sweep job) into a stream
of :class:`ShardTask` submissions against a backend, absorbing
:class:`ShardOutcome` results as they arrive.  Three properties fall
out of the design:

- **streaming** — shards of *different* jobs are in flight at the same
  time, so a worker pool never drains between jobs and the parent can
  keep compiling the next design point while workers sample the
  previous one;
- **adaptive allocation** — a job with ``target_failures`` set retires
  as soon as it has observed that many failures, and a job with
  ``target_rel_stderr`` set retires once its Jeffreys-smoothed
  relative standard error falls below the bound (a *precision* target:
  noisy points stop early, quiet points keep sampling); the worker
  slots a retired job frees are immediately refilled with shards of
  unconverged jobs (up to each job's ``max_shots``), which is where
  the reinvested budget goes;
- **fixed-shot determinism** — a job without a failure target always
  runs its *entire* shard plan, and failure counts are summed over the
  full plan, so totals are bit-identical across backends, worker
  counts and scheduling order (integer addition commutes).

Backends expose a small streaming interface:

- ``capacity`` — how many tasks the backend wants in flight;
- ``submit(task, compiled, cache)`` — dispatch one shard;
- ``poll()`` — non-blocking drain of finished shards;
- ``wait()`` — block (interruptibly) until at least one shard finishes.

Worker-pool backends additionally expose **crash recovery**:

- ``take_lost()`` — drain the sequence numbers of shards whose worker
  died before reporting a result.

The scheduler remembers every in-flight :class:`ShardTask` and, when a
backend reports losses, resubmits the lost tasks — with their
*original* ``SeedSequence`` streams — to the surviving workers.  A
shard's sample is fully determined by its seed, so a recovered sweep's
failure counts are bit-identical to a crash-free run.  ``wait()`` may
return an empty outcome list after one poll interval; the scheduler
uses each beat to reap losses, steal straggler tails, and let elastic
pools rescan, and only diagnoses a stall when nothing is in flight.

**Work stealing**: when the stream's tail is held by in-flight shards
and the pool has idle capacity, the slowest in-flight shard of a
fixed-shot job is *split* — released from its worker (its eventual
result is dropped as superseded) and resubmitted as several windowed
sub-shards that re-draw the parent's sample from its original seed and
each decode a disjoint row range.  Per-row samples and failures are
independent of the batch split, so the windows' failure counts sum to
exactly what the unstolen shard would have reported: stealing changes
wall-clock, never statistics.  Seeds come from the pre-planned shard
stream, not from timing.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field

import numpy as np

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ShardTask:
    """One shard submission: everything a worker needs, and nothing more.

    Deliberately carries no circuit text and no DEM payload — those are
    shipped to each worker at most once per unique circuit by the
    backend's priming protocol, keyed by ``circuit_key``.
    """

    seq: int
    job_key: str
    circuit_key: str
    decoder: str
    shots: int
    seed: np.random.SeedSequence
    shard_index: int
    # Which syndrome sampler runs the shard: "dem" (bit-packed
    # DEM-direct fast path) or "frame" (gate-by-gate circuit replay).
    sampler: str = "dem"
    # Stolen-window fields: a window re-draws its parent's full
    # ``parent_shots`` sample from ``seed`` and decodes only rows
    # ``[offset, offset + shots)``.  ``parent_shots is None`` means a
    # whole planned shard (the only shape protocol <= 3 workers see).
    offset: int = 0
    parent_shots: int | None = None
    # Scheduler seq of the superseded parent (driver-side routing hint
    # only — never serialized): lets the backend keep a window off the
    # worker still chewing on the parent it replaced.
    parent_seq: int | None = None


@dataclass(frozen=True)
class ShardOutcome:
    """One finished shard's failure tally.

    ``elapsed_s`` is the shard's own sampling time on whichever worker
    ran it, so a job's cost can be reported exclusive of time spent
    queued behind other jobs' shards.  ``memo_hits`` / ``memo_misses``
    are the shard's own syndrome-memo traffic (deltas, so they sum
    across shards); ``memo_size`` is the memo's entry count right after
    the shard, making dedupe behaviour observable from the parent.

    ``phases`` (telemetry-enabled runs only) is the shard's own
    per-phase exclusive seconds — ``{"sample": ..., "unique": ...,
    "decode": ...}`` — measured wherever the shard actually ran, so the
    driver can attribute shard wall-clock across the pipeline.
    ``worker`` labels that location (``"host:port"`` for remote
    workers, ``"mp:N"`` for local processes, ``""`` for in-process
    execution).
    """

    seq: int
    job_key: str
    shots: int
    failures: int
    elapsed_s: float = 0.0
    memo_hits: int = 0
    memo_misses: int = 0
    memo_size: int = 0
    # Hits served by memo entries another worker decoded first and the
    # driver replicated here (cross-worker dedupe, protocol v3).  Sits
    # after memo_size so ``*memo_stats`` unpacking accepts both the old
    # 3-tuple and the new 4-tuple snapshot shapes.
    memo_shared_hits: int = 0
    phases: dict | None = field(default=None, compare=False)
    worker: str = ""


class JobState:
    """Sampling progress of one job: plan cursor, tallies, convergence.

    ``plan`` covers the job's *maximum* budget (``max_shots`` when
    adaptive, ``shots`` otherwise); ``tranche_shards`` marks how many
    of those shards form the guaranteed initial tranche.  ``payload``
    is opaque context the caller gets back on completion (the runner
    stores the job, its artifacts and a start timestamp there).

    ``initial_shots`` / ``initial_failures`` / ``initial_work_s`` seed
    the tallies with checkpointed shard outcomes: a resumed job passes
    the sums of its already-completed shards (and a ``plan`` holding
    only the *remaining* shards), so sampling continues mid-job instead
    of restarting.  An empty remaining plan is legal — the job is done
    on arrival.
    """

    __slots__ = (
        "key", "compiled", "decoder", "sampler", "plan", "target_failures",
        "target_rel_stderr", "tranche_shards", "payload", "next_index",
        "inflight", "shots_done", "failures", "shots_submitted", "work_s",
        "memo_hits", "memo_misses", "memo_size", "memo_shared_hits",
        "phase_s", "retired",
    )

    def __init__(
        self,
        key: str,
        compiled,
        decoder: str,
        plan: list,
        *,
        sampler: str = "dem",
        target_failures: int | None = None,
        target_rel_stderr: float | None = None,
        tranche_shards: int | None = None,
        payload=None,
        initial_shots: int = 0,
        initial_failures: int = 0,
        initial_work_s: float = 0.0,
        initial_phases: dict | None = None,
    ):
        self.key = key
        self.compiled = compiled
        self.decoder = decoder
        self.sampler = sampler
        self.plan = plan
        self.target_failures = target_failures
        self.target_rel_stderr = target_rel_stderr
        self.tranche_shards = (
            len(plan) if tranche_shards is None else min(tranche_shards, len(plan))
        )
        self.payload = payload
        self.next_index = 0
        self.inflight = 0
        self.shots_done = initial_shots
        self.failures = initial_failures
        # Checkpointed shots count as submitted so reinvestment ranking
        # doesn't mistake a resumed job for a starved one.
        self.shots_submitted = initial_shots
        self.work_s = initial_work_s
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_size = 0
        self.memo_shared_hits = 0
        # Per-phase exclusive seconds summed over this job's shards
        # (seeded with checkpointed phases on resume, like work_s).
        self.phase_s: dict[str, float] = dict(initial_phases or {})
        self.retired = False

    # ------------------------------------------------------------------
    @property
    def adaptive(self) -> bool:
        return (
            self.target_failures is not None
            or self.target_rel_stderr is not None
        )

    @property
    def rel_stderr(self) -> float:
        """Jeffreys-smoothed per-shot relative standard error — the
        same smoothing as :class:`repro.ler.estimator.LerResult`, so a
        precision-retired job's stored counts reproduce the bound."""
        p = (self.failures + 0.5) / (self.shots_done + 1.0)
        return math.sqrt(p * (1.0 - p) / (self.shots_done + 1.0)) / p

    @property
    def converged(self) -> bool:
        """A target met — only adaptive jobs ever converge.

        A precision target never retires a job with zero observed
        failures: the explicit ``failures > 0`` guard matters because
        the smoothed zero-failure rel-stderr approaches sqrt(2) from
        *below*, so a loose bound in [~1.22, 1.414) would otherwise
        retire a job that has produced no statistics at all.

        Convergence **latches**: at fixed failures the relative stderr
        *rises* with shots, so a zero-failure in-flight shard landing
        after the bound was met could otherwise push the job back above
        the bound and un-retire it — resuming submission for a point
        whose precision target was already satisfied (and breaking the
        tranche cursor's no-reversal invariant).
        """
        if self.retired:
            return True
        if self.target_failures is not None and (
            self.failures >= self.target_failures
        ):
            self.retired = True
        elif (
            self.target_rel_stderr is not None
            and self.failures > 0
            and self.rel_stderr <= self.target_rel_stderr
        ):
            self.retired = True
        return self.retired

    @property
    def exhausted(self) -> bool:
        return self.next_index >= len(self.plan)

    @property
    def in_tranche(self) -> bool:
        return self.next_index < self.tranche_shards

    @property
    def wants_submission(self) -> bool:
        """Fixed jobs must run their whole plan; adaptive jobs stop
        submitting the moment they converge."""
        return not self.exhausted and not self.converged

    @property
    def done(self) -> bool:
        return self.inflight == 0 and (self.exhausted or self.converged)


class StreamScheduler:
    """Streams shards from many jobs through one backend.

    Submission policy: first resubmit shards lost to dead workers
    (their data is owed to jobs already past the planning cursor), then
    fill every job's initial tranche in job order (so serial execution
    visits jobs in the order the sweep declared them), then reinvest
    free capacity in the adaptive job that has sampled the least so far
    — the starved points catch up first.

    ``on_outcome(task, outcome, state)``, when given, fires once per
    absorbed shard — the hook the runner uses to checkpoint completed
    shards into the result store.
    """

    def __init__(
        self, backend, cache, on_outcome=None, *,
        steal: bool = True, steal_min_shots: int = 256,
    ):
        self.backend = backend
        self.cache = cache
        self.on_outcome = on_outcome
        # Straggler stealing: only meaningful against a backend whose
        # workers can run windowed sub-shards (``supports_windows``);
        # silently inert elsewhere.  ``steal_min_shots`` floors the
        # window size so stealing never shatters a shard into slivers
        # whose per-window overhead outweighs the tail it trims.
        self._steal = bool(steal)
        self._steal_min_shots = max(1, int(steal_min_shots))
        # Seqs of split (stolen-from) parents whose late results must
        # be dropped: their windows are the copies that count.
        self._superseded: set[int] = set()
        self._steals = 0
        self._stolen_shots = 0
        self._steal_windows = 0
        # A shared backend may hold leftovers of an earlier sweep (a
        # dead worker's surplus duplicate result in a shared queue);
        # our seq numbers start at 0, so fence those out before any
        # submission can collide with them.
        begin_session = getattr(backend, "begin_session", None)
        if begin_session is not None:
            begin_session()
        self._states: dict[str, JobState] = {}
        self._order: list[JobState] = []
        self._seq = 0
        self._inflight = 0
        self._unfinished = 0
        # Monotone cursor over _order for tranche filling (a job never
        # regains tranche eligibility, so skipped entries stay skipped)
        # and a completion queue filled by _absorb — both keep the
        # scheduler O(1) per shard instead of O(jobs).
        self._tranche_cursor = 0
        self._newly_done: list[JobState] = []
        # Every in-flight task by sequence number: the source of truth
        # for crash recovery (a lost seq maps back to the exact task —
        # and seed — that must be resubmitted) and for the checkpoint
        # hook (an outcome's shard index lives on the task).
        self._pending: dict[int, tuple[ShardTask, JobState]] = {}
        # Tasks reaped from a dead worker, awaiting resubmission.
        self._retry: list[ShardTask] = []

    # ------------------------------------------------------------------
    def has(self, key: str) -> bool:
        return key in self._states

    def add(self, state: JobState) -> list[JobState]:
        """Register a job and pump the stream without blocking.

        Returns any jobs that completed while pumping (with a serial
        backend that is typically the job just added: submission runs
        the shard in-process, so the stream drains eagerly).
        """
        if state.key in self._states:
            raise ValueError(f"job {state.key!r} already scheduled")
        self._states[state.key] = state
        self._order.append(state)
        if state.done:
            # Nothing left to sample — every shard was checkpointed
            # (or the preloaded tallies already satisfy an adaptive
            # target).  _absorb never runs for such a job, so surface
            # the completion here.
            self._newly_done.append(state)
        else:
            self._unfinished += 1
        self._pump()
        return self._pop_completed()

    def drain(self):
        """Generator of completed jobs; blocks until every job is done."""
        for done in self._pop_completed():
            yield done
        while self._unfinished:
            submitted = self._fill()
            outcomes = self.backend.poll()
            if not outcomes and not submitted:
                if self._inflight == 0:
                    raise RuntimeError(
                        "scheduler stalled: jobs pending but nothing in flight"
                    )
                outcomes = self.backend.wait()
            self._absorb(outcomes)
            for done in self._pop_completed():
                yield done

    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Submit as much as capacity allows; absorb without blocking."""
        while True:
            submitted = self._fill()
            outcomes = self.backend.poll()
            if not outcomes and not submitted:
                return
            self._absorb(outcomes)

    def _fill(self) -> int:
        self._recover()
        capacity = max(1, int(getattr(self.backend, "capacity", 1)))
        submitted = 0
        # Lost shards first: their jobs already committed to these
        # samples (the plan cursor moved past them), so the stream
        # cannot finish until they land somewhere.  state.inflight
        # still counts a queued retry (see _recover), so only the
        # scheduler's capacity slot is re-taken here.
        while self._retry and self._inflight < capacity:
            task = self._retry.pop(0)
            state = self._states[task.job_key]
            if state.converged:
                # Converged while the retry sat queued: its sample can
                # no longer matter — abandon it instead of resubmitting.
                self._drop_task(state)
                continue
            self._inflight += 1
            self._pending[task.seq] = (task, state)
            self.backend.submit(task, state.compiled, self.cache)
            submitted += 1
        while self._inflight < capacity:
            state = self._pick()
            if state is None:
                break
            shard = state.plan[state.next_index]
            task = ShardTask(
                seq=self._seq,
                job_key=state.key,
                circuit_key=state.compiled.key,
                decoder=state.decoder,
                shots=shard.shots,
                seed=shard.seed,
                shard_index=shard.index,
                sampler=state.sampler,
            )
            self._seq += 1
            state.next_index += 1
            state.inflight += 1
            state.shots_submitted += shard.shots
            self._inflight += 1
            self._pending[task.seq] = (task, state)
            self.backend.submit(task, state.compiled, self.cache)
            submitted += 1
        if self._inflight < capacity and not self._retry:
            # No plannable work left but capacity is idle: the stream's
            # tail is held by in-flight stragglers — split one.
            submitted += self._maybe_steal(capacity)
        return submitted

    def _maybe_steal(self, capacity: int) -> int:
        """Split the stalest in-flight fixed-shot shard across the idle
        capacity.  The parent is released immediately (its late result
        is superseded) and ``idle + 1`` windows of it are submitted, so
        post-steal in-flight exactly refills capacity — no re-steal
        churn within one beat, and the stolen rows start moving on idle
        workers while the original worker's effort is simply discarded.
        """
        if not self._steal or self._inflight == 0:
            return 0
        supports = getattr(self.backend, "supports_windows", None)
        if supports is None or not supports():
            return 0
        stale = getattr(self.backend, "stale_pending", None)
        order = stale() if stale is not None else sorted(self._pending)
        for seq in order:
            entry = self._pending.get(seq)
            if entry is None:
                continue
            task, state = entry
            if task.parent_shots is not None or state.adaptive:
                # Never re-split a window; adaptive jobs retire early
                # on their own and a dropped parent would waste their
                # nearly-done sample.
                continue
            idle = capacity - self._inflight
            windows = min(idle + 1, task.shots // self._steal_min_shots)
            if windows < 2:
                continue
            self._split_task(seq, task, state, windows)
            return windows
        return 0

    def _split_task(self, seq, task, state, windows: int) -> None:
        del self._pending[seq]
        self._inflight -= 1
        state.inflight -= 1
        self._superseded.add(seq)
        base, rem = divmod(task.shots, windows)
        offset = 0
        for i in range(windows):
            shots = base + (1 if i < rem else 0)
            child = ShardTask(
                seq=self._seq,
                job_key=task.job_key,
                circuit_key=task.circuit_key,
                decoder=task.decoder,
                shots=shots,
                seed=task.seed,
                shard_index=task.shard_index,
                sampler=task.sampler,
                offset=offset,
                parent_shots=task.shots,
                parent_seq=seq,
            )
            self._seq += 1
            offset += shots
            state.inflight += 1
            self._inflight += 1
            self._pending[child.seq] = (child, state)
            self.backend.submit(child, state.compiled, self.cache)
        self._steals += 1
        self._stolen_shots += task.shots
        self._steal_windows += windows
        logger.info(
            "stole straggler shard %d of job %s (seq %d, %d shots) into "
            "%d windows", task.shard_index, task.job_key, seq, task.shots,
            windows,
        )

    def steal_stats(self) -> dict:
        """Straggler-steal counters (all zero when stealing never
        engaged): parents split, shots re-sharded, windows submitted."""
        if not self._steals:
            return {}
        return {
            "steals": self._steals,
            "stolen_shots": self._stolen_shots,
            "windows": self._steal_windows,
        }

    def _recover(self) -> None:
        """Reap shards lost to dead workers and queue their resubmission.

        The resubmitted task carries its original seed, so the survivor
        draws exactly the sample the dead worker would have — failure
        counts stay bit-identical to a crash-free run.  A lost shard of
        an adaptive job that has *already converged* is dropped instead:
        its result could no longer change the job's outcome, and the
        job may have no surviving capacity to run it on.

        A queued retry releases only the *scheduler's* capacity slot
        (``self._inflight``), never the job's own ``state.inflight``: a
        job still owed a lost sample is not done, even if every shard
        the backend currently holds has landed — otherwise the job
        would finalize early with the lost shard's shots missing and
        then complete a second time when the retry lands, corrupting
        the unfinished-job count.
        """
        take_lost = getattr(self.backend, "take_lost", None)
        if take_lost is None:
            return
        for seq in take_lost():
            # A split parent lost with its worker needs no recovery —
            # its windows carry the sample — just stop tracking it.
            self._superseded.discard(seq)
            entry = self._pending.pop(seq, None)
            if entry is None:
                continue
            task, state = entry
            self._inflight -= 1
            if state.converged:
                self._drop_task(state)
            else:
                logger.warning(
                    "resubmitting shard %d of job %s (seq %d) lost to a "
                    "dead worker", task.shard_index, task.job_key, seq,
                )
                self._retry.append(task)

    def _drop_task(self, state: JobState) -> None:
        """Abandon one lost/queued task of a converged job for good."""
        state.inflight -= 1
        if state.done:
            self._newly_done.append(state)
            self._unfinished -= 1

    def _pick(self) -> JobState | None:
        # Phase 1: guaranteed initial tranches, in declaration order.
        # The cursor only moves forward: a job leaves the tranche phase
        # by exhausting it or converging, and neither reverses.
        while self._tranche_cursor < len(self._order):
            state = self._order[self._tranche_cursor]
            if state.wants_submission and state.in_tranche:
                return state
            self._tranche_cursor += 1
        # Phase 2: reinvest in the least-sampled unconverged job.
        best = None
        best_rank = None
        for position, state in enumerate(self._order):
            if not state.wants_submission:
                continue
            rank = (state.shots_submitted, position)
            if best_rank is None or rank < best_rank:
                best, best_rank = state, rank
        return best

    def _absorb(self, outcomes) -> None:
        for outcome in outcomes:
            if outcome.seq in self._superseded:
                # A split parent finished after all: its windows are
                # the copies that count (identical rows, identical
                # failures), so this result is surplus by construction.
                self._superseded.discard(outcome.seq)
                continue
            state = self._states[outcome.job_key]
            task_entry = self._pending.pop(outcome.seq, None)
            state.inflight -= 1
            self._inflight -= 1
            state.shots_done += outcome.shots
            state.failures += outcome.failures
            state.work_s += outcome.elapsed_s
            state.memo_hits += outcome.memo_hits
            state.memo_misses += outcome.memo_misses
            state.memo_shared_hits += outcome.memo_shared_hits
            if outcome.phases:
                for phase, seconds in outcome.phases.items():
                    state.phase_s[phase] = state.phase_s.get(phase, 0.0) + seconds
            # Peak entry count: shard snapshots of one memo are
            # monotone, so the max is the job's final memo size on its
            # busiest worker.
            state.memo_size = max(state.memo_size, outcome.memo_size)
            if self.on_outcome is not None and task_entry is not None:
                self.on_outcome(task_entry[0], outcome, state)
            if state.done:
                # A job can only complete when its last in-flight shard
                # lands (a queued retry counts as in flight), so this
                # is the one place completions surface.
                self._newly_done.append(state)
                self._unfinished -= 1

    def _pop_completed(self) -> list[JobState]:
        fresh, self._newly_done = self._newly_done, []
        return fresh
