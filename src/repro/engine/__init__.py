"""repro.engine — sharded, cached experiment execution for Monte-Carlo sweeps.

The uniform harness behind the paper's figure sweeps:

- :class:`SweepSpec` / :class:`SweepJob` — a declarative grid over
  (distance x capacity x topology x wiring x noise point x decoder)
  that expands into a deterministic job list (``sweep.py``);
- :class:`CompilationCache` — content-addressed in-memory + on-disk
  caching of DEM extraction, detector graphs, decoders and decoder-side
  artefacts (bit-packed DEM samplers, MWPM all-pairs distance
  matrices), so each unique circuit is compiled exactly once per sweep;
  the disk layer is LRU-size-bounded via ``max_disk_mb`` (``cache.py``);
- :class:`Runner` / :func:`run_sweep` with pluggable backends —
  :class:`SerialBackend`, a :class:`MultiprocessBackend` that shards
  shots over workers with independent ``SeedSequence`` streams and
  merges failure counts bit-identically, and a socket
  :class:`RemoteBackend` speaking the same worker protocol to
  ``repro-worker`` processes on other machines, with worker crash
  recovery (``runner.py``, ``remote.py``);
- :class:`ResultStore` / :class:`JobResult` / :class:`ShardRecord` —
  JSON-lines persistence with resume at job *and* shard granularity:
  completed job keys are skipped, and an interrupted job resumes from
  its checkpointed shards (``results.py``);
- :class:`ProgressReporter` — per-job narration, end-of-sweep
  setup/phase breakdown and the ``--status`` live view (``progress.py``);
- observability — with :func:`repro.telemetry.configure` enabled, every
  pipeline phase runs in a span, shard outcomes carry per-phase
  seconds, pool backends expose ``pool_health()``, and sweeps export
  Chrome traces / JSONL metrics (see :mod:`repro.telemetry`).

Quick start
-----------
>>> from repro.engine import SweepSpec, run_sweep
>>> spec = SweepSpec(distances=(3,), shots=0)          # compile-only
>>> results = run_sweep(spec)
>>> results[0].metrics["round_time_us"] > 0
True
"""

from .cache import CompilationCache, CompiledCircuit, circuit_key
from .progress import ProgressReporter
from .results import JobResult, ResultStore, ShardRecord
from .runner import (
    DEFAULT_SHARD_SHOTS,
    MultiprocessBackend,
    NoLiveWorkersError,
    Runner,
    SerialBackend,
    Shard,
    ShardExecutor,
    WorkerPoolBackend,
    compile_design_point,
    plan_shards,
    run_sweep,
    sample_adaptive,
)
from .scheduler import JobState, ShardOutcome, ShardTask, StreamScheduler
from .sweep import SweepJob, SweepSpec


def __getattr__(name):
    # Lazy so that ``python -m repro.engine.remote`` (the worker entry
    # point) doesn't find the module pre-imported by its own package —
    # runpy warns about that — and plain engine users don't pay the
    # socket machinery import.
    if name == "RemoteBackend":
        from .remote import RemoteBackend

        return RemoteBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "SweepSpec",
    "SweepJob",
    "CompilationCache",
    "CompiledCircuit",
    "circuit_key",
    "Runner",
    "run_sweep",
    "sample_adaptive",
    "SerialBackend",
    "MultiprocessBackend",
    "RemoteBackend",
    "WorkerPoolBackend",
    "ShardExecutor",
    "NoLiveWorkersError",
    "Shard",
    "plan_shards",
    "compile_design_point",
    "DEFAULT_SHARD_SHOTS",
    "JobResult",
    "ResultStore",
    "ShardRecord",
    "ProgressReporter",
    "StreamScheduler",
    "JobState",
    "ShardTask",
    "ShardOutcome",
]
