"""repro.engine — sharded, cached experiment execution for Monte-Carlo sweeps.

The uniform harness behind the paper's figure sweeps:

- :class:`SweepSpec` / :class:`SweepJob` — a declarative grid over
  (distance x capacity x topology x wiring x noise point x decoder)
  that expands into a deterministic job list (``sweep.py``);
- :class:`CompilationCache` — content-addressed in-memory + on-disk
  caching of DEM extraction, detector graphs, decoders and decoder-side
  artefacts (bit-packed DEM samplers, MWPM all-pairs distance
  matrices), so each unique circuit is compiled exactly once per sweep;
  the disk layer is LRU-size-bounded via ``max_disk_mb`` (``cache.py``);
- :class:`Runner` / :func:`run_sweep` with pluggable backends —
  :class:`SerialBackend` and a :class:`MultiprocessBackend` that shards
  shots over workers with independent ``SeedSequence`` streams and
  merges failure counts bit-identically (``runner.py``);
- :class:`ResultStore` / :class:`JobResult` — JSON-lines persistence
  with resume: already-completed job keys are skipped (``results.py``);
- :class:`ProgressReporter` — per-job narration (``progress.py``).

Quick start
-----------
>>> from repro.engine import SweepSpec, run_sweep
>>> spec = SweepSpec(distances=(3,), shots=0)          # compile-only
>>> results = run_sweep(spec)
>>> results[0].metrics["round_time_us"] > 0
True
"""

from .cache import CompilationCache, CompiledCircuit, circuit_key
from .progress import ProgressReporter
from .results import JobResult, ResultStore
from .runner import (
    DEFAULT_SHARD_SHOTS,
    MultiprocessBackend,
    Runner,
    SerialBackend,
    Shard,
    compile_design_point,
    plan_shards,
    run_sweep,
    sample_adaptive,
)
from .scheduler import JobState, ShardOutcome, ShardTask, StreamScheduler
from .sweep import SweepJob, SweepSpec

__all__ = [
    "SweepSpec",
    "SweepJob",
    "CompilationCache",
    "CompiledCircuit",
    "circuit_key",
    "Runner",
    "run_sweep",
    "sample_adaptive",
    "SerialBackend",
    "MultiprocessBackend",
    "Shard",
    "plan_shards",
    "compile_design_point",
    "DEFAULT_SHARD_SHOTS",
    "JobResult",
    "ResultStore",
    "ProgressReporter",
    "StreamScheduler",
    "JobState",
    "ShardTask",
    "ShardOutcome",
]
