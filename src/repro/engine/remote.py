"""Socket-based distributed execution backend.

``RemoteBackend`` speaks the engine's streaming backend protocol
(``capacity`` / ``submit`` / ``poll`` / ``wait`` / ``take_lost``) over
TCP connections to ``repro-worker`` processes — the same worker
messages as the multiprocessing backend (prime once per (worker,
circuit), tiny shard tuples), serialised as length-prefixed pickle
frames.  The worker side runs the very same
:class:`~repro.engine.runner.ShardExecutor` as a multiprocessing
worker; only the transport differs.

Launch workers anywhere the driver can reach::

    repro-worker --listen 0.0.0.0:7930            # or: python -m repro.engine.remote
    repro-worker --listen 0.0.0.0:7931

then point a sweep at them::

    python -m repro.toolflow.cli sweep --distances 3 5 --shots 20000 \
        --backend remote --workers-addr host1:7930,host1:7931

Fault tolerance: a worker that dies mid-sweep (crash, SIGKILL, network
partition — anything that closes or breaks the socket) is disowned;
the scheduler resubmits its in-flight shards, with their original RNG
seeds, to the surviving workers, so failure counts stay bit-identical
to a crash-free run.  When *no* worker survives, the backend raises
:class:`~repro.engine.runner.NoLiveWorkersError` instead of hanging.

Trust model: frames are **pickle** — the worker executes what the
driver sends and trusts it completely (and vice versa).  Run workers
only on hosts/networks you control, exactly like a multiprocessing
pool stretched across machines.
"""

from __future__ import annotations

import argparse
import logging
import os
import pickle
import queue as queue_module
import selectors
import socket
import struct
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from ..decoders import native
from ..telemetry import configure as configure_telemetry
from .runner import (
    NoLiveWorkersError,
    ShardExecutor,
    ShardOutcome,
    WorkerPoolBackend,
    _WorkerDied,
    handle_worker_message,
)

logger = logging.getLogger(__name__)

# Version 2 adds the driver->worker ("config", settings) message and
# the optional 7th (phases) element on "ok" replies.  Version 3 adds
# cross-worker syndrome-memo sharding: the ``memo_share`` /
# ``native_blossom`` config keys, the driver->worker ("memo", circuit,
# decoder, entries, epoch) replication message, and the optional 8th
# (published memo entries) element on "ok" replies.  Version 4 adds
# multi-slot workers and work stealing: the hello grows a capability
# dict (``("hello", 4, {"slots": N})``), shard tuples may extend to 10
# elements with a stolen window's ``(offset, parent_shots)``, and a
# multi-slot worker's "ok" replies are padded to 8 elements and append
# the executing slot as a 9th so each slot gets its own telemetry
# lane.  Drivers gate each feature on the version a worker said hello
# with, so mixed deployments keep working: an old worker simply never
# reports phases, joins the shared memo, or receives a stolen window.
PROTOCOL_VERSION = 4
_HEADER = struct.Struct(">I")
# A frame is bounded by the largest prime payload (two DEM JSONs plus
# the all-pairs distance matrices) — far below this, but cap it so a
# corrupt/hostile header cannot trigger a giant allocation.
_MAX_FRAME = 1 << 31


def _encode_frame(message) -> bytes:
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(payload)) + payload


def parse_addr(addr: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)``."""
    host, sep, port = addr.rpartition(":")
    if not sep or not host:
        raise ValueError(f"worker address {addr!r} is not host:port")
    return host, int(port)


def parse_addrs(addrs) -> list[tuple[str, int]]:
    """A comma-separated address string (or iterable) -> address list."""
    if isinstance(addrs, str):
        addrs = [a for a in addrs.split(",") if a.strip()]
    parsed = []
    for addr in addrs:
        parsed.append(addr if isinstance(addr, tuple) else parse_addr(addr.strip()))
    if not parsed:
        raise ValueError("need at least one worker address")
    return parsed


# ----------------------------------------------------------------------
# Worker side (repro-worker)
# ----------------------------------------------------------------------
def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes, or ``None`` on a clean/broken EOF."""
    chunks = []
    while n:
        try:
            chunk = sock.recv(min(n, 1 << 20))
        except OSError:
            return None
        if not chunk:
            return None
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket):
    """Blocking read of one frame; ``None`` on EOF/reset."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > _MAX_FRAME:
        return None
    payload = _recv_exact(sock, length)
    if payload is None:
        return None
    return pickle.loads(payload)


def _serve_connection(conn: socket.socket, slots: int = 1,
                      chaos_shard_delay: float = 0.0) -> None:
    """One driver session: hello, then prime/dmat/shard until stop/EOF.

    Executor state is per-connection — a new driver always reprimes,
    so stale circuits can never leak between sweeps.

    With ``slots > 1`` the session runs shards concurrently on a
    thread pool of that width: prime / dmat / memo / config messages
    are still applied inline on the receive thread (so a shard never
    races the prime it depends on), only shard messages fan out.
    ``chaos_shard_delay`` sleeps that long before each shard — a fault-
    injection knob for forcing straggler shards in tests/benchmarks.
    """
    slots = max(1, int(slots))
    conn.sendall(
        _encode_frame(("hello", PROTOCOL_VERSION, {"slots": slots}))
    )
    # Telemetry and the native-matcher opt-in are per-driver state: a
    # serve-forever worker must not carry the previous driver's
    # settings into the next session.  (Memo sharding already resets
    # with the per-connection executor.)
    configure_telemetry(enabled=False)
    native.configure(False)
    executor = ShardExecutor(slots=slots)
    if slots == 1:
        while True:
            message = _recv_frame(conn)
            if message is None or message[0] == "stop":
                return
            if chaos_shard_delay and message[0] == "shard":
                time.sleep(chaos_shard_delay)
            reply = handle_worker_message(executor, message)
            if reply is not None:
                conn.sendall(_encode_frame(reply))
    _serve_multislot(conn, executor, slots, chaos_shard_delay)


def _serve_multislot(conn: socket.socket, executor: ShardExecutor,
                     slots: int, chaos_shard_delay: float) -> None:
    """Concurrent shard execution for one multi-slot session.

    Exactly ``slots`` pool threads each claim a slot id from a free
    queue for the duration of one shard, so the slot in a reply names
    which concurrency lane ran it.  Replies are serialised by a send
    lock; ``ok`` replies are padded to 8 elements (phases, published)
    and the slot appended as a 9th — an unambiguous protocol >= 4
    shape the driver turns into per-slot telemetry lanes.
    """
    send_lock = threading.Lock()
    free_slots: queue_module.Queue = queue_module.Queue()
    for slot in range(slots):
        free_slots.put(slot)

    def send(reply) -> None:
        frame = _encode_frame(reply)
        with send_lock:
            conn.sendall(frame)

    def run_shard(message) -> None:
        slot = free_slots.get()
        try:
            if chaos_shard_delay:
                time.sleep(chaos_shard_delay)
            reply = handle_worker_message(executor, message, slot=slot)
        finally:
            free_slots.put(slot)
        if reply is None:
            return
        if reply[0] == "ok":
            reply = reply + (None,) * (8 - len(reply)) + (slot,)
        try:
            send(reply)
        except OSError:
            pass  # driver vanished: the recv loop notices the EOF

    pool = ThreadPoolExecutor(
        max_workers=slots, thread_name_prefix="repro-slot"
    )
    try:
        while True:
            message = _recv_frame(conn)
            if message is None or message[0] == "stop":
                return
            if message[0] == "shard":
                pool.submit(run_shard, message)
            else:
                reply = handle_worker_message(executor, message)
                if reply is not None:
                    send(reply)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def serve(listen: str = "127.0.0.1:0", *, serve_forever: bool = False,
          slots: int = 1, chaos_shard_delay: float = 0.0,
          stream=None) -> None:
    """Run a shard worker: listen, announce the bound address, serve.

    Announces ``repro-worker listening on host:port`` on ``stream``
    (default stdout) so launchers using port 0 can discover the bound
    port.  By default the worker exits when its driver disconnects —
    the right lifetime for job scripts and CI; ``serve_forever`` keeps
    it accepting one driver after another (a long-lived pool node).
    ``slots`` shards run concurrently per session (see
    :func:`_serve_connection`).
    """
    stream = stream if stream is not None else sys.stdout
    host, port = parse_addr(listen)
    with socket.create_server((host, port)) as listener:
        bound_host, bound_port = listener.getsockname()[:2]
        print(f"repro-worker listening on {bound_host}:{bound_port}",
              file=stream, flush=True)
        if slots > 1:
            print(f"repro-worker slots: {slots}", file=stream, flush=True)
        while True:
            conn, _peer = listener.accept()
            try:
                with conn:
                    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                    _serve_connection(
                        conn, slots=slots,
                        chaos_shard_delay=chaos_shard_delay,
                    )
            except (OSError, pickle.UnpicklingError, EOFError):
                pass  # driver vanished mid-frame: drop the session
            if not serve_forever:
                return


def main(argv=None) -> int:
    """``repro-worker`` console entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Shard worker for the sweep engine's remote backend "
                    "(see repro.engine.remote).",
    )
    parser.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="address to listen on (port 0 = pick a free port and "
             "announce it on stdout; default %(default)s)",
    )
    parser.add_argument(
        "--serve-forever", action="store_true",
        help="keep accepting new drivers after one disconnects "
             "(default: exit with the first driver)",
    )
    parser.add_argument(
        "--slots", default="1", metavar="N|auto",
        help="concurrent shard slots to advertise and run ('auto' = "
             "one per CPU core; default %(default)s)",
    )
    parser.add_argument(
        "--chaos-shard-delay", type=float, default=0.0, metavar="SECONDS",
        help="sleep this long before every shard (fault-injection knob "
             "for forcing straggler shards; default off)",
    )
    args = parser.parse_args(argv)
    if args.slots == "auto":
        slots = os.cpu_count() or 1
    else:
        slots = int(args.slots)
    if slots < 1:
        parser.error("--slots must be >= 1 (or 'auto')")
    try:
        serve(
            args.listen, serve_forever=args.serve_forever, slots=slots,
            chaos_shard_delay=args.chaos_shard_delay,
        )
    except KeyboardInterrupt:
        return 130
    return 0


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
class _Connection:
    """Driver-side state of one worker link."""

    __slots__ = (
        "addr", "sock", "buffer", "alive", "protocol", "slots",
        "outbox", "outbox_since", "interest",
    )

    def __init__(self, addr: tuple[str, int], sock: socket.socket):
        self.addr = addr
        self.sock = sock
        self.buffer = bytearray()
        self.alive = True
        self.protocol = 1  # updated from the worker's hello
        self.slots = 1  # concurrent shard lanes (protocol >= 4 hello)
        # Frames queued behind a full socket buffer, flushed by the
        # event loop as the socket turns writable; ``outbox_since``
        # timestamps the last flush progress so a wedged worker
        # surfaces as dead within send_timeout.
        self.outbox = bytearray()
        self.outbox_since: float | None = None
        self.interest = 0  # current selector event mask

    @property
    def label(self) -> str:
        return f"{self.addr[0]}:{self.addr[1]}"


class RemoteBackend(WorkerPoolBackend):
    """Streams shot shards to ``repro-worker`` processes over TCP.

    Accepts the same tasks as the in-process backends and keeps the
    engine's contracts: deterministic shard seeds (so distributed
    failure counts match serial bit for bit), once-per-(worker,
    circuit) priming, epoch-tagged abandonment for shared backends,
    and crash recovery — a broken socket disowns that worker's
    in-flight shards for the scheduler to resubmit to survivors.

    The driver is a single selector-based event loop: sends are queued
    per connection and flushed as sockets turn writable, reads are
    multiplexed in one ``select``, so dispatch latency is independent
    of pool size and one slow worker's full socket buffer never blocks
    the others.

    ``elastic=True`` turns the address list into a *membership*
    roster: unreachable workers at start are tolerated (any one
    suffices) and the driver periodically rescans the list mid-sweep,
    so ``--serve-forever`` nodes can join a running sweep — a joiner
    is primed and receives the replicated memo segments exactly like a
    first-class member.  The default (strict) mode keeps the original
    contract: every listed worker must be reachable at start.
    """

    name = "remote"

    def __init__(
        self,
        addrs,
        *,
        queue_depth: int = 2,
        connect_timeout: float = 10.0,
        send_timeout: float = 60.0,
        memo_share: bool = True,
        elastic: bool = False,
        rescan_interval: float = 2.0,
    ):
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        self.addrs = parse_addrs(addrs)
        self.queue_depth = queue_depth
        self.memo_share = bool(memo_share)
        self.connect_timeout = connect_timeout
        self.send_timeout = send_timeout
        self.elastic = bool(elastic)
        self.rescan_interval = rescan_interval
        self._last_rescan = 0.0
        self._selector: selectors.BaseSelector | None = None
        self._conns: list[_Connection] = []
        # Wire-level metrics (sweep-lifetime totals, surfaced via
        # pool_health): frame bytes each way and driver-side pickle
        # serialisation time.
        self._bytes_out = 0
        self._bytes_in = 0
        self._serialize_s = 0.0
        self._init_pool()

    # transport hooks ---------------------------------------------------
    def _worker_label(self, worker: int) -> str:
        if worker < len(self._conns):
            return self._conns[worker].label
        return f"remote:{worker}"

    def _worker_protocol(self, worker: int) -> int:
        if worker < len(self._conns):
            return self._conns[worker].protocol
        return 1

    def _transport_stats(self) -> dict:
        return {
            "wire": {
                "bytes_out": self._bytes_out,
                "bytes_in": self._bytes_in,
                "serialize_s": self._serialize_s,
            }
        }

    def _worker_slots(self) -> int:
        if not self._conns:
            return len(self.addrs)
        return sum(conn.slots for conn in self._conns if conn.alive)

    def _worker_slot_count(self, worker: int) -> int:
        if worker < len(self._conns):
            return self._conns[worker].slots
        return 1

    def _live_workers(self) -> list[int]:
        return [w for w, conn in enumerate(self._conns) if conn.alive]

    def _connect(self, addr, timeout: float | None = None) -> _Connection:
        """Dial one worker and complete the hello handshake."""
        timeout = self.connect_timeout if timeout is None else timeout
        try:
            sock = socket.create_connection(addr, timeout=timeout)
        except OSError as exc:
            raise ConnectionError(
                f"cannot reach repro-worker at {addr[0]}:{addr[1]}: {exc}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn = _Connection(addr, sock)
        hello = self._blocking_frame(conn)
        if not (isinstance(hello, tuple) and hello[:1] == ("hello",)):
            sock.close()
            raise ConnectionError(
                f"worker at {addr[0]}:{addr[1]} did not say hello "
                f"(got {hello!r}) — is it a repro-worker?"
            )
        if len(hello) > 1:
            conn.protocol = int(hello[1])
        if len(hello) > 2 and isinstance(hello[2], dict):
            # Protocol >= 4 capability dict; today just the slot count.
            conn.slots = max(1, int(hello[2].get("slots", 1)))
        sock.settimeout(None)
        sock.setblocking(False)
        return conn

    def _adopt(self, conn: _Connection) -> int:
        """Append a fresh connection as a new worker index (indices are
        never reused — a rejoining address gets a new identity, so the
        bookkeeping of its previous life can never leak onto it)."""
        worker = len(self._conns)
        self._conns.append(conn)
        self._load.append(0)
        self._update_interest(worker)
        return worker

    def _ensure_workers(self) -> None:
        if self._conns:
            return
        self._selector = selectors.DefaultSelector()
        unreachable: list[tuple] = []
        last_error: ConnectionError | None = None
        for addr in self.addrs:
            try:
                conn = self._connect(addr)
            except ConnectionError as exc:
                if not self.elastic:
                    self._teardown()
                    raise
                unreachable.append(addr)
                last_error = exc
                continue
            self._adopt(conn)
        if not self._conns:
            self._teardown()
            raise last_error  # every address failed; elastic needs one
        for addr in unreachable:
            logger.warning(
                "elastic pool: worker %s:%s unreachable at start; will "
                "keep rescanning", addr[0], addr[1],
            )

    def _rescan(self) -> None:
        """Elastic membership: reconnect roster addresses with no live
        connection (throttled to one pass per ``rescan_interval``)."""
        if not self.elastic or not self._conns:
            return
        now = time.monotonic()
        if now - self._last_rescan < self.rescan_interval:
            return
        self._last_rescan = now
        covered = {conn.addr for conn in self._conns if conn.alive}
        for addr in self.addrs:
            if addr in covered:
                continue
            try:
                conn = self._connect(
                    addr, timeout=min(self.connect_timeout, 0.5)
                )
            except ConnectionError:
                continue
            self._adopt(conn)
            logger.info(
                "elastic pool: worker %s joined with %d slot(s)",
                conn.label, conn.slots,
            )

    def _update_interest(self, worker: int) -> None:
        """Sync one connection's selector registration with its state
        (read always; write only while its outbox holds queued frames)."""
        conn = self._conns[worker]
        if self._selector is None or not conn.alive:
            return
        try:
            if conn.sock.fileno() < 0:
                return
            events = selectors.EVENT_READ
            if conn.outbox:
                events |= selectors.EVENT_WRITE
            if conn.interest == events:
                return
            if conn.interest:
                self._selector.modify(conn.sock, events, worker)
            else:
                self._selector.register(conn.sock, events, worker)
            conn.interest = events
        except (KeyError, ValueError, OSError):
            pass  # a raced-away descriptor is reaped on the next drain

    def _send(self, worker: int, message: tuple) -> None:
        conn = self._conns[worker]
        if not conn.alive:
            raise _WorkerDied(worker)
        t0 = time.perf_counter()
        frame = _encode_frame(message)
        self._serialize_s += time.perf_counter() - t0
        # Queue-and-flush, never block: whatever the socket buffer
        # refuses right now rides in the outbox until the event loop
        # sees the socket writable.  A worker that stops draining its
        # socket surfaces as dead once its outbox stalls for
        # ``send_timeout`` — crash recovery can only fire on an error.
        conn.outbox += frame
        self._bytes_out += len(frame)
        if not self._flush(worker):
            raise _WorkerDied(worker)

    def _flush(self, worker: int) -> bool:
        """Push a connection's outbox as far as the socket allows.
        Returns False when the flush killed the worker."""
        conn = self._conns[worker]
        if not conn.alive:
            return False
        now = time.monotonic()
        while conn.outbox:
            try:
                sent = conn.sock.send(memoryview(conn.outbox))
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._worker_died(worker)
                return False
            if sent == 0:
                break
            del conn.outbox[:sent]
            conn.outbox_since = now  # progress resets the stall clock
        if not conn.outbox:
            conn.outbox_since = None
        elif conn.outbox_since is None:
            conn.outbox_since = now
        elif now - conn.outbox_since > self.send_timeout:
            logger.warning(
                "remote worker %s stopped draining its socket for %.0fs "
                "with %d byte(s) queued; declaring it dead",
                conn.label, self.send_timeout, len(conn.outbox),
            )
            self._worker_died(worker)
            return False
        self._update_interest(worker)
        return True

    # ------------------------------------------------------------------
    def _blocking_frame(self, conn: _Connection):
        """One frame during the (blocking) handshake phase."""
        conn.sock.settimeout(self.connect_timeout)
        return _recv_frame(conn.sock)

    def _worker_died(self, worker: int) -> None:
        conn = self._conns[worker]
        if not conn.alive:
            return
        conn.alive = False
        if self._selector is not None:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass  # never registered, or its fd is already gone
        conn.interest = 0
        conn.outbox = bytearray()
        try:
            conn.sock.close()
        except OSError:
            pass
        # _forget_worker logs the lost shard ids; this names the remote
        # endpoint and what's left of the pool.
        logger.warning(
            "remote worker %s disconnected; %d worker(s) remain",
            conn.label, sum(1 for c in self._conns if c.alive),
        )
        self._forget_worker(worker)

    def _drain(self, timeout: float) -> list[ShardOutcome]:
        """One event-loop turn: rescan (elastic), flush writable
        outboxes, read whatever the live workers sent within
        ``timeout``."""
        outcomes: list[ShardOutcome] = []
        self._rescan()
        # A socket can become invalid under us (closed by a signal
        # handler, torn down by a test's partition simulation): treat
        # that exactly like a death noticed via EOF.
        for worker, conn in enumerate(self._conns):
            if conn.alive and conn.sock.fileno() < 0:
                self._worker_died(worker)
        if self._selector is None or not any(c.alive for c in self._conns):
            return outcomes
        try:
            events = self._selector.select(timeout)
        except (OSError, ValueError):
            # A descriptor went bad between the fileno() sweep and the
            # select: reap it on the next pass.
            return outcomes
        for key, mask in events:
            worker = key.data
            conn = self._conns[worker]
            if not conn.alive:
                continue
            if mask & selectors.EVENT_WRITE and not self._flush(worker):
                continue
            if not mask & selectors.EVENT_READ:
                continue
            try:
                chunk = conn.sock.recv(1 << 20)
            except (BlockingIOError, InterruptedError):
                continue
            except OSError:
                chunk = b""
            if not chunk:
                # EOF / reset: the worker is gone; disown its shards.
                self._worker_died(worker)
                continue
            self._bytes_in += len(chunk)
            conn.buffer.extend(chunk)
            for message in self._parse_buffer(conn):
                outcome = self._handle(message)
                if outcome is not None:
                    outcomes.append(outcome)
        # Age out wedged outboxes even when their sockets never turn
        # writable (the peer advertises no window at all).
        now = time.monotonic()
        for worker, conn in enumerate(self._conns):
            if (conn.alive and conn.outbox and conn.outbox_since is not None
                    and now - conn.outbox_since > self.send_timeout):
                self._flush(worker)  # last chance; kills on stall
        return outcomes

    @staticmethod
    def _parse_buffer(conn: _Connection):
        messages = []
        buffer = conn.buffer
        while len(buffer) >= _HEADER.size:
            (length,) = _HEADER.unpack(buffer[:_HEADER.size])
            if len(buffer) < _HEADER.size + length:
                break
            payload = bytes(buffer[_HEADER.size:_HEADER.size + length])
            del buffer[:_HEADER.size + length]
            messages.append(pickle.loads(payload))
        return messages

    # ------------------------------------------------------------------
    def poll(self) -> list[ShardOutcome]:
        if not self._conns:
            return []
        return self._drain(0.0)

    def wait(self, poll_interval: float = 0.2) -> list[ShardOutcome]:
        """Wait up to one ``poll_interval`` for finished shards.

        May return an empty list: the scheduler uses each quiet beat
        to reap lost shards (``take_lost``), steal straggler tails,
        and let an elastic pool's rescan admit joiners.  Raises
        :class:`NoLiveWorkersError` once nobody is left to wait for —
        never hangs on a dead pool.
        """
        outcomes = self._drain(poll_interval)
        if outcomes or self._lost:
            return outcomes
        if not self._live_workers():
            raise NoLiveWorkersError(
                f"all {len(self._conns)} remote worker(s) disconnected "
                f"with {len(self._dispatch)} shard(s) in flight"
            )
        return []

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Graceful shutdown: tell every live worker to stop, disconnect."""
        for worker, conn in enumerate(self._conns):
            if not conn.alive:
                continue
            try:
                self._send(worker, ("stop",))
            except _WorkerDied:
                continue
        self._teardown()

    def terminate(self) -> None:
        """Hard shutdown: drop the connections (interrupt path).

        Workers notice the EOF, abandon the session, and — unless
        launched with ``--serve-forever`` — exit.
        """
        self._teardown()

    def _teardown(self) -> None:
        for conn in self._conns:
            if conn.alive:
                try:
                    conn.sock.close()
                except OSError:
                    pass
        if self._selector is not None:
            try:
                self._selector.close()
            except OSError:
                pass
            self._selector = None
        self._conns = []
        self._init_pool()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, *exc):
        if exc_type is None:
            self.close()
        else:
            self.terminate()


if __name__ == "__main__":
    raise SystemExit(main())
