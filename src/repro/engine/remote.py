"""Socket-based distributed execution backend.

``RemoteBackend`` speaks the engine's streaming backend protocol
(``capacity`` / ``submit`` / ``poll`` / ``wait`` / ``take_lost``) over
TCP connections to ``repro-worker`` processes — the same worker
messages as the multiprocessing backend (prime once per (worker,
circuit), tiny shard tuples), serialised as length-prefixed pickle
frames.  The worker side runs the very same
:class:`~repro.engine.runner.ShardExecutor` as a multiprocessing
worker; only the transport differs.

Launch workers anywhere the driver can reach::

    repro-worker --listen 0.0.0.0:7930            # or: python -m repro.engine.remote
    repro-worker --listen 0.0.0.0:7931

then point a sweep at them::

    python -m repro.toolflow.cli sweep --distances 3 5 --shots 20000 \
        --backend remote --workers-addr host1:7930,host1:7931

Fault tolerance: a worker that dies mid-sweep (crash, SIGKILL, network
partition — anything that closes or breaks the socket) is disowned;
the scheduler resubmits its in-flight shards, with their original RNG
seeds, to the surviving workers, so failure counts stay bit-identical
to a crash-free run.  When *no* worker survives, the backend raises
:class:`~repro.engine.runner.NoLiveWorkersError` instead of hanging.

Trust model: frames are **pickle** — the worker executes what the
driver sends and trusts it completely (and vice versa).  Run workers
only on hosts/networks you control, exactly like a multiprocessing
pool stretched across machines.
"""

from __future__ import annotations

import argparse
import logging
import pickle
import select
import socket
import struct
import sys
import time

from ..decoders import native
from ..telemetry import configure as configure_telemetry
from .runner import (
    NoLiveWorkersError,
    ShardExecutor,
    ShardOutcome,
    WorkerPoolBackend,
    _WorkerDied,
    handle_worker_message,
)

logger = logging.getLogger(__name__)

# Version 2 adds the driver->worker ("config", settings) message and
# the optional 7th (phases) element on "ok" replies.  Version 3 adds
# cross-worker syndrome-memo sharding: the ``memo_share`` /
# ``native_blossom`` config keys, the driver->worker ("memo", circuit,
# decoder, entries, epoch) replication message, and the optional 8th
# (published memo entries) element on "ok" replies.  Drivers gate each
# feature on the version a worker said hello with, so mixed
# deployments keep working: an old worker simply never reports phases
# or joins the shared memo.
PROTOCOL_VERSION = 3
_HEADER = struct.Struct(">I")
# A frame is bounded by the largest prime payload (two DEM JSONs plus
# the all-pairs distance matrices) — far below this, but cap it so a
# corrupt/hostile header cannot trigger a giant allocation.
_MAX_FRAME = 1 << 31


def _encode_frame(message) -> bytes:
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(payload)) + payload


def parse_addr(addr: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)``."""
    host, sep, port = addr.rpartition(":")
    if not sep or not host:
        raise ValueError(f"worker address {addr!r} is not host:port")
    return host, int(port)


def parse_addrs(addrs) -> list[tuple[str, int]]:
    """A comma-separated address string (or iterable) -> address list."""
    if isinstance(addrs, str):
        addrs = [a for a in addrs.split(",") if a.strip()]
    parsed = []
    for addr in addrs:
        parsed.append(addr if isinstance(addr, tuple) else parse_addr(addr.strip()))
    if not parsed:
        raise ValueError("need at least one worker address")
    return parsed


# ----------------------------------------------------------------------
# Worker side (repro-worker)
# ----------------------------------------------------------------------
def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes, or ``None`` on a clean/broken EOF."""
    chunks = []
    while n:
        try:
            chunk = sock.recv(min(n, 1 << 20))
        except OSError:
            return None
        if not chunk:
            return None
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket):
    """Blocking read of one frame; ``None`` on EOF/reset."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > _MAX_FRAME:
        return None
    payload = _recv_exact(sock, length)
    if payload is None:
        return None
    return pickle.loads(payload)


def _serve_connection(conn: socket.socket) -> None:
    """One driver session: hello, then prime/dmat/shard until stop/EOF.

    Executor state is per-connection — a new driver always reprimes,
    so stale circuits can never leak between sweeps.
    """
    conn.sendall(_encode_frame(("hello", PROTOCOL_VERSION)))
    # Telemetry and the native-matcher opt-in are per-driver state: a
    # serve-forever worker must not carry the previous driver's
    # settings into the next session.  (Memo sharding already resets
    # with the per-connection executor.)
    configure_telemetry(enabled=False)
    native.configure(False)
    executor = ShardExecutor()
    while True:
        message = _recv_frame(conn)
        if message is None or message[0] == "stop":
            return
        reply = handle_worker_message(executor, message)
        if reply is not None:
            conn.sendall(_encode_frame(reply))


def serve(listen: str = "127.0.0.1:0", *, serve_forever: bool = False,
          stream=None) -> None:
    """Run a shard worker: listen, announce the bound address, serve.

    Announces ``repro-worker listening on host:port`` on ``stream``
    (default stdout) so launchers using port 0 can discover the bound
    port.  By default the worker exits when its driver disconnects —
    the right lifetime for job scripts and CI; ``serve_forever`` keeps
    it accepting one driver after another (a long-lived pool node).
    """
    stream = stream if stream is not None else sys.stdout
    host, port = parse_addr(listen)
    with socket.create_server((host, port)) as listener:
        bound_host, bound_port = listener.getsockname()[:2]
        print(f"repro-worker listening on {bound_host}:{bound_port}",
              file=stream, flush=True)
        while True:
            conn, _peer = listener.accept()
            try:
                with conn:
                    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                    _serve_connection(conn)
            except (OSError, pickle.UnpicklingError, EOFError):
                pass  # driver vanished mid-frame: drop the session
            if not serve_forever:
                return


def main(argv=None) -> int:
    """``repro-worker`` console entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Shard worker for the sweep engine's remote backend "
                    "(see repro.engine.remote).",
    )
    parser.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="address to listen on (port 0 = pick a free port and "
             "announce it on stdout; default %(default)s)",
    )
    parser.add_argument(
        "--serve-forever", action="store_true",
        help="keep accepting new drivers after one disconnects "
             "(default: exit with the first driver)",
    )
    args = parser.parse_args(argv)
    try:
        serve(args.listen, serve_forever=args.serve_forever)
    except KeyboardInterrupt:
        return 130
    return 0


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
class _Connection:
    """Driver-side state of one worker link."""

    __slots__ = ("addr", "sock", "buffer", "alive", "protocol")

    def __init__(self, addr: tuple[str, int], sock: socket.socket):
        self.addr = addr
        self.sock = sock
        self.buffer = bytearray()
        self.alive = True
        self.protocol = 1  # updated from the worker's hello

    @property
    def label(self) -> str:
        return f"{self.addr[0]}:{self.addr[1]}"


class RemoteBackend(WorkerPoolBackend):
    """Streams shot shards to ``repro-worker`` processes over TCP.

    Accepts the same tasks as the in-process backends and keeps the
    engine's contracts: deterministic shard seeds (so distributed
    failure counts match serial bit for bit), once-per-(worker,
    circuit) priming, epoch-tagged abandonment for shared backends,
    and crash recovery — a broken socket disowns that worker's
    in-flight shards for the scheduler to resubmit to survivors.
    """

    name = "remote"

    def __init__(
        self,
        addrs,
        *,
        queue_depth: int = 2,
        connect_timeout: float = 10.0,
        send_timeout: float = 60.0,
        memo_share: bool = True,
    ):
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        self.addrs = parse_addrs(addrs)
        self.queue_depth = queue_depth
        self.memo_share = bool(memo_share)
        self.connect_timeout = connect_timeout
        self.send_timeout = send_timeout
        self._conns: list[_Connection] = []
        # Wire-level metrics (sweep-lifetime totals, surfaced via
        # pool_health): frame bytes each way and driver-side pickle
        # serialisation time.
        self._bytes_out = 0
        self._bytes_in = 0
        self._serialize_s = 0.0
        self._init_pool()

    # transport hooks ---------------------------------------------------
    def _worker_label(self, worker: int) -> str:
        if worker < len(self._conns):
            return self._conns[worker].label
        return f"remote:{worker}"

    def _worker_protocol(self, worker: int) -> int:
        if worker < len(self._conns):
            return self._conns[worker].protocol
        return 1

    def _transport_stats(self) -> dict:
        return {
            "wire": {
                "bytes_out": self._bytes_out,
                "bytes_in": self._bytes_in,
                "serialize_s": self._serialize_s,
            }
        }

    def _worker_slots(self) -> int:
        if not self._conns:
            return len(self.addrs)
        return sum(1 for conn in self._conns if conn.alive)

    def _live_workers(self) -> list[int]:
        return [w for w, conn in enumerate(self._conns) if conn.alive]

    def _ensure_workers(self) -> None:
        if self._conns:
            return
        for addr in self.addrs:
            try:
                sock = socket.create_connection(addr, timeout=self.connect_timeout)
            except OSError as exc:
                self._teardown()
                raise ConnectionError(
                    f"cannot reach repro-worker at {addr[0]}:{addr[1]}: {exc}"
                ) from exc
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _Connection(addr, sock)
            hello = self._blocking_frame(conn)
            if not (isinstance(hello, tuple) and hello[:1] == ("hello",)):
                self._teardown()
                raise ConnectionError(
                    f"worker at {addr[0]}:{addr[1]} did not say hello "
                    f"(got {hello!r}) — is it a repro-worker?"
                )
            if len(hello) > 1:
                conn.protocol = int(hello[1])
            sock.settimeout(None)
            sock.setblocking(False)
            self._conns.append(conn)
            self._load.append(0)

    def _send(self, worker: int, message: tuple) -> None:
        conn = self._conns[worker]
        t0 = time.perf_counter()
        frame = _encode_frame(message)
        self._serialize_s += time.perf_counter() - t0
        try:
            # Bounded, not plain blocking: a wedged-but-connected
            # worker (or a silently-dropping partition) whose receive
            # buffer fills must surface as a death within
            # ``send_timeout``, not stall the whole driver inside
            # submit — crash recovery can only fire on an error.
            conn.sock.settimeout(self.send_timeout)
            conn.sock.sendall(frame)
            conn.sock.setblocking(False)
        except OSError:  # includes socket.timeout
            self._worker_died(worker)
            raise _WorkerDied(worker) from None
        self._bytes_out += len(frame)

    # ------------------------------------------------------------------
    def _blocking_frame(self, conn: _Connection):
        """One frame during the (blocking) handshake phase."""
        conn.sock.settimeout(self.connect_timeout)
        return _recv_frame(conn.sock)

    def _worker_died(self, worker: int) -> None:
        conn = self._conns[worker]
        if not conn.alive:
            return
        conn.alive = False
        try:
            conn.sock.close()
        except OSError:
            pass
        # _forget_worker logs the lost shard ids; this names the remote
        # endpoint and what's left of the pool.
        logger.warning(
            "remote worker %s disconnected; %d worker(s) remain",
            conn.label, sum(1 for c in self._conns if c.alive),
        )
        self._forget_worker(worker)

    def _drain(self, timeout: float) -> list[ShardOutcome]:
        """Read whatever the live workers sent within ``timeout``."""
        outcomes: list[ShardOutcome] = []
        # A socket can become invalid under us (closed by a signal
        # handler, torn down by a test's partition simulation): treat
        # that exactly like a death noticed via EOF.
        for worker, conn in enumerate(self._conns):
            if conn.alive and conn.sock.fileno() < 0:
                self._worker_died(worker)
        live = [conn for conn in self._conns if conn.alive]
        if not live:
            return outcomes
        try:
            readable, _, _ = select.select(
                [c.sock for c in live], [], [], timeout
            )
        except (OSError, ValueError):
            # A descriptor went bad between the fileno() sweep and the
            # select: reap it on the next pass.
            return outcomes
        ready = {id(sock) for sock in readable}
        for worker, conn in enumerate(self._conns):
            if not conn.alive or id(conn.sock) not in ready:
                continue
            try:
                chunk = conn.sock.recv(1 << 20)
            except BlockingIOError:
                continue
            except OSError:
                chunk = b""
            if not chunk:
                # EOF / reset: the worker is gone; disown its shards.
                self._worker_died(worker)
                continue
            self._bytes_in += len(chunk)
            conn.buffer.extend(chunk)
            for message in self._parse_buffer(conn):
                outcome = self._handle(message)
                if outcome is not None:
                    outcomes.append(outcome)
        return outcomes

    @staticmethod
    def _parse_buffer(conn: _Connection):
        messages = []
        buffer = conn.buffer
        while len(buffer) >= _HEADER.size:
            (length,) = _HEADER.unpack(buffer[:_HEADER.size])
            if len(buffer) < _HEADER.size + length:
                break
            payload = bytes(buffer[_HEADER.size:_HEADER.size + length])
            del buffer[:_HEADER.size + length]
            messages.append(pickle.loads(payload))
        return messages

    # ------------------------------------------------------------------
    def poll(self) -> list[ShardOutcome]:
        if not self._conns:
            return []
        return self._drain(0.0)

    def wait(self, poll_interval: float = 0.2) -> list[ShardOutcome]:
        """Block until a shard finishes or a worker's death is noticed.

        Returns an empty list when shards were lost (the scheduler
        reaps them via ``take_lost`` and resubmits to survivors) and
        raises :class:`NoLiveWorkersError` once nobody is left to wait
        for — never hangs on a dead pool.
        """
        while True:
            outcomes = self._drain(poll_interval)
            if outcomes:
                return outcomes
            if self._lost:
                return []  # losses for the scheduler to recover
            if not self._live_workers():
                raise NoLiveWorkersError(
                    f"all {len(self._conns)} remote worker(s) disconnected "
                    f"with {len(self._dispatch)} shard(s) in flight"
                )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Graceful shutdown: tell every live worker to stop, disconnect."""
        for worker, conn in enumerate(self._conns):
            if not conn.alive:
                continue
            try:
                self._send(worker, ("stop",))
            except _WorkerDied:
                continue
        self._teardown()

    def terminate(self) -> None:
        """Hard shutdown: drop the connections (interrupt path).

        Workers notice the EOF, abandon the session, and — unless
        launched with ``--serve-forever`` — exit.
        """
        self._teardown()

    def _teardown(self) -> None:
        for conn in self._conns:
            if conn.alive:
                try:
                    conn.sock.close()
                except OSError:
                    pass
        self._conns = []
        self._init_pool()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, *exc):
        if exc_type is None:
            self.close()
        else:
            self.terminate()


if __name__ == "__main__":
    raise SystemExit(main())
