"""Stabilizer-circuit simulation substrate (Stim substitute).

Public surface:

- :class:`PauliString` — symplectic Pauli algebra.
- :class:`StabilizerCircuit` — circuit IR with noise channels,
  DETECTOR and OBSERVABLE_INCLUDE annotations (Stim-style semantics).
- :class:`TableauSimulator` — exact Aaronson-Gottesman simulation.
- :class:`FrameSimulator` — vectorised Pauli-frame sampling.
- :func:`circuit_to_dem` — detector-error-model extraction.
- :class:`DemSampler` — bit-packed DEM-direct syndrome sampling (the
  fast path; the frame simulator is its reference oracle).
- :class:`PackedShard` — packed uint64 syndrome batch, the native
  currency of the sampling -> decoding pipeline.
"""

from .circuit import Instruction, StabilizerCircuit
from .dem import DemError, DetectorErrorModel, circuit_to_dem, circuit_to_dems
from .dem_sampler import DemSampler, PackedShard, pack_bool_rows, unpack_bool_rows
from .frame import FrameSimulator, FrameState, SampleResult
from .pauli import PauliString
from .tableau import TableauSimulator
from .text_format import (
    circuit_from_text,
    circuit_to_text,
    load_circuit,
    save_circuit,
)

__all__ = [
    "Instruction",
    "StabilizerCircuit",
    "circuit_from_text",
    "circuit_to_text",
    "load_circuit",
    "save_circuit",
    "DemError",
    "DetectorErrorModel",
    "circuit_to_dem",
    "circuit_to_dems",
    "DemSampler",
    "PackedShard",
    "pack_bool_rows",
    "unpack_bool_rows",
    "FrameSimulator",
    "FrameState",
    "SampleResult",
    "PauliString",
    "TableauSimulator",
]
