"""Stabilizer circuit intermediate representation.

The design deliberately mirrors Stim's text format (the paper uses Stim
1.13): a circuit is a flat list of instructions over qubit indices, with
``M``/``MR`` appending bits to a global measurement record, ``DETECTOR``
declaring a parity of record bits that is deterministic under noiseless
execution, and ``OBSERVABLE_INCLUDE`` accumulating record bits into a
logical observable.  Record targets are negative offsets relative to the
end of the record at the point the annotation appears (``rec[-1]`` is
the most recent measurement), exactly as in Stim.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# Gate name groups understood by the simulators.
CLIFFORD_1Q = frozenset({"H", "S", "S_DAG", "X", "Y", "Z", "SQRT_X", "SQRT_X_DAG", "I"})
CLIFFORD_2Q = frozenset({"CX", "CZ", "SWAP", "XX"})
RESETS = frozenset({"R", "RX"})
MEASUREMENTS = frozenset({"M", "MX", "MR"})
NOISE_1Q = frozenset({"X_ERROR", "Y_ERROR", "Z_ERROR", "DEPOLARIZE1", "PAULI_CHANNEL_1"})
NOISE_2Q = frozenset({"DEPOLARIZE2"})
ANNOTATIONS = frozenset({"DETECTOR", "OBSERVABLE_INCLUDE", "TICK"})

ALL_NAMES = CLIFFORD_1Q | CLIFFORD_2Q | RESETS | MEASUREMENTS | NOISE_1Q | NOISE_2Q | ANNOTATIONS


@dataclass(frozen=True)
class Instruction:
    """One circuit instruction.

    ``targets`` holds qubit indices for gates/noise, or record offsets
    (negative ints) for DETECTOR / OBSERVABLE_INCLUDE.  ``args`` holds
    noise probabilities (one for simple channels, three for
    PAULI_CHANNEL_1 as (px, py, pz)) or the observable index.
    """

    name: str
    targets: tuple[int, ...] = ()
    args: tuple[float, ...] = ()

    def __str__(self) -> str:
        parts = [self.name]
        if self.args:
            parts.append("(" + ", ".join(f"{a:g}" for a in self.args) + ")")
        if self.targets:
            if self.name in ("DETECTOR", "OBSERVABLE_INCLUDE"):
                parts.append(" " + " ".join(f"rec[{t}]" for t in self.targets))
            else:
                parts.append(" " + " ".join(str(t) for t in self.targets))
        return "".join(parts)


class StabilizerCircuit:
    """A mutable list of :class:`Instruction` with record bookkeeping."""

    def __init__(self) -> None:
        self.instructions: list[Instruction] = []
        self._num_measurements = 0
        self._num_detectors = 0
        self._max_qubit = -1
        self._observables: set[int] = set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self._max_qubit + 1

    @property
    def num_measurements(self) -> int:
        return self._num_measurements

    @property
    def num_detectors(self) -> int:
        return self._num_detectors

    @property
    def num_observables(self) -> int:
        return max(self._observables) + 1 if self._observables else 0

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __str__(self) -> str:
        return "\n".join(str(inst) for inst in self.instructions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StabilizerCircuit):
            return NotImplemented
        return self.instructions == other.instructions

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def append(self, name: str, targets=(), args=()) -> None:
        """Append an instruction, validating its shape."""
        if name not in ALL_NAMES:
            raise ValueError(f"unknown instruction {name!r}")
        targets = tuple(int(t) for t in targets)
        args = tuple(float(a) for a in args)
        if name in CLIFFORD_2Q or name in NOISE_2Q:
            if len(targets) % 2 != 0:
                raise ValueError(f"{name} requires an even number of targets")
        if name in NOISE_1Q or name in NOISE_2Q:
            if name == "PAULI_CHANNEL_1":
                if len(args) != 3:
                    raise ValueError("PAULI_CHANNEL_1 takes (px, py, pz)")
            elif len(args) != 1:
                raise ValueError(f"{name} takes one probability argument")
            if any(a < 0 or a > 1 for a in args):
                raise ValueError("noise probabilities must be in [0, 1]")
        if name == "DETECTOR":
            self._validate_record_targets(targets)
            self._num_detectors += 1
        elif name == "OBSERVABLE_INCLUDE":
            if len(args) != 1:
                raise ValueError("OBSERVABLE_INCLUDE takes the observable index")
            self._validate_record_targets(targets)
            self._observables.add(int(args[0]))
        elif name != "TICK":
            if not targets:
                raise ValueError(f"{name} requires at least one target")
            if min(targets) < 0:
                raise ValueError("qubit indices must be non-negative")
            self._max_qubit = max(self._max_qubit, max(targets))
        if name in MEASUREMENTS:
            self._num_measurements += len(targets)
        self.instructions.append(Instruction(name, targets, args))

    def _validate_record_targets(self, targets: tuple[int, ...]) -> None:
        for t in targets:
            if t >= 0:
                raise ValueError("record targets must be negative offsets")
            if -t > self._num_measurements:
                raise ValueError(
                    f"record offset {t} reaches before the start of the record"
                )

    def extend(self, other: "StabilizerCircuit") -> None:
        for inst in other.instructions:
            self.append(inst.name, inst.targets, inst.args)

    def copy(self) -> "StabilizerCircuit":
        dup = StabilizerCircuit()
        dup.extend(self)
        return dup

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def without_noise(self) -> "StabilizerCircuit":
        """The same circuit with every noise channel removed."""
        clean = StabilizerCircuit()
        for inst in self.instructions:
            if inst.name in NOISE_1Q or inst.name in NOISE_2Q:
                continue
            clean.append(inst.name, inst.targets, inst.args)
        return clean

    def detector_records(self) -> list[list[int]]:
        """Absolute measurement-record indices for each detector, in order."""
        seen = 0
        out: list[list[int]] = []
        for inst in self.instructions:
            if inst.name in MEASUREMENTS:
                seen += len(inst.targets)
            elif inst.name == "DETECTOR":
                out.append([seen + t for t in inst.targets])
        return out

    def observable_records(self) -> dict[int, list[int]]:
        """Absolute record indices accumulated into each observable."""
        seen = 0
        out: dict[int, list[int]] = {}
        for inst in self.instructions:
            if inst.name in MEASUREMENTS:
                seen += len(inst.targets)
            elif inst.name == "OBSERVABLE_INCLUDE":
                out.setdefault(int(inst.args[0]), []).extend(seen + t for t in inst.targets)
        return out

    def count(self, name: str) -> int:
        """Number of instructions with the given name."""
        return sum(1 for inst in self.instructions if inst.name == name)
