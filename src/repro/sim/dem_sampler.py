"""DEM-direct sampling: bit-packed Monte-Carlo over error mechanisms.

The :class:`~repro.sim.frame.FrameSimulator` replays the entire noisy
circuit gate-by-gate for every shot shard.  That work is redundant once
the circuit's :class:`~repro.sim.dem.DetectorErrorModel` is known: each
mechanism flips a *fixed* set of detectors and observables, so a shot is
nothing but "which mechanisms fired", and its syndrome is the XOR of the
firing mechanisms' symptom sets.

Packed-parity construction
--------------------------
At build time the DEM is compiled into two bit-packed parity matrices:

- ``det_words`` — shape ``(num_errors, ceil(num_detectors / 64))``
  uint64; bit ``b`` of word ``w`` in row ``e`` is set iff mechanism
  ``e`` flips detector ``w * 64 + b``;
- ``obs_words`` — same layout over logical observables.

Sampling a shard is then two vectorised steps with no per-gate work,
and — crucially — with cost proportional to the number of firing
*events* (``shots * sum(p)``), not to ``shots * num_mechanisms``:

1. draw each mechanism's firing **count** ``k ~ Binomial(shots, p)``
   (one vectorised call over all mechanisms), then place the ``k``
   firings at **distinct** uniform shot indices — drawn with
   replacement and re-drawn on collision, which conditions the
   placement on distinctness and is therefore exactly the Bernoulli
   law conditioned on its count;
2. XOR-accumulate the firing mechanisms' packed symptom rows into each
   shot's packed syndrome words (``np.bitwise_xor.at`` — XOR is
   associative and commutative, so accumulation order is irrelevant).

The result stays packed: :meth:`DemSampler.sample_packed` returns a
:class:`PackedShard` of uint64 words that flows through the engine and
into the decoders' ``decode_packed_batch`` protocol without ever
materialising boolean ``(shots, detectors)`` matrices.  Boolean arrays
are now strictly a boundary representation (:meth:`DemSampler.sample`,
and :meth:`PackedShard.from_bool` for frame-simulator output).

Fidelity
--------
Sample from the **exact (undecomposed) DEM**: a hyperedge mechanism
must flip all of its detectors *together*, so splitting it into
decoder-style X/Z halves before sampling would decorrelate flips that
co-occur physically — measured on the d=5 design point, that
decorrelation inflates the logical failure rate several-fold.  (The
graphlike decomposition is strictly a *decoder-side* approximation;
the engine keeps both models and hands each consumer the right one.)

The one approximation that remains is sampling mechanisms as
*independent* Bernoulli sources — the standard DEM semantics (shared
with Stim): mutually-exclusive Pauli outcomes of one physical channel
(e.g. the 15 branches of ``DEPOLARIZE2``) may fire together with
probability O(p^2).  The frame simulator remains the exact reference
oracle and a statistical equivalence test gates this fast path
against it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .circuit import StabilizerCircuit
from .dem import DetectorErrorModel, circuit_to_dems
from .frame import SampleResult
from ..telemetry import span



def pack_bool_rows(rows: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(n, bits)`` array into ``(n, ceil(bits/64))``
    uint64 words, little-endian within each word."""
    rows = np.ascontiguousarray(rows, dtype=bool)
    n, bits = rows.shape
    words = (bits + 63) // 64
    if words == 0:
        return np.zeros((n, 0), dtype=np.uint64)
    padded = np.zeros((n, words * 64), dtype=bool)
    padded[:, :bits] = rows
    return np.packbits(padded, axis=1, bitorder="little").view(np.uint64)


def unpack_bool_rows(words: np.ndarray, bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bool_rows`: uint64 words back to booleans."""
    n = words.shape[0]
    if bits == 0 or words.shape[1] == 0:
        return np.zeros((n, bits), dtype=bool)
    flat = np.unpackbits(
        np.ascontiguousarray(words).view(np.uint8), axis=1, bitorder="little"
    )
    return flat[:, :bits].astype(bool)


@dataclass(frozen=True)
class PackedShard:
    """One shard's syndromes in the pipeline's native representation.

    ``det_words`` / ``obs_words`` are ``(shots, ceil(bits / 64))``
    uint64 arrays (little-endian bit order within each word, the
    :func:`pack_bool_rows` layout); ``num_detectors`` /
    ``num_observables`` record the true bit counts so the padding bits
    are never mistaken for data.  This is what flows from the samplers
    through the engine's shard execution into the decoders'
    ``decode_packed_batch`` protocol — boolean matrices exist only at
    explicit boundaries (:meth:`detectors` / :meth:`observables`).
    """

    det_words: np.ndarray
    obs_words: np.ndarray
    num_detectors: int
    num_observables: int

    @property
    def shots(self) -> int:
        return self.det_words.shape[0]

    @property
    def detectors(self) -> np.ndarray:
        """Boolean ``(shots, num_detectors)`` view (unpacks on demand)."""
        return unpack_bool_rows(self.det_words, self.num_detectors)

    @property
    def observables(self) -> np.ndarray:
        """Boolean ``(shots, num_observables)`` view (unpacks on demand)."""
        return unpack_bool_rows(self.obs_words, self.num_observables)

    def observable_bits(self, index: int = 0) -> np.ndarray:
        """Per-shot boolean of one observable, read straight from the
        packed words — for custom failure reductions that want a single
        observable without unpacking the whole batch."""
        if not 0 <= index < self.num_observables:
            raise ValueError(
                f"observable {index} out of range (have {self.num_observables})"
            )
        word, bit = divmod(index, 64)
        return (self.obs_words[:, word] >> np.uint64(bit)) & np.uint64(1) != 0

    @classmethod
    def from_bool(
        cls, detectors: np.ndarray, observables: np.ndarray
    ) -> "PackedShard":
        """Pack boolean sampler output once at the pipeline boundary
        (the frame-simulator path enters the packed flow here)."""
        detectors = np.atleast_2d(np.asarray(detectors, dtype=bool))
        observables = np.atleast_2d(np.asarray(observables, dtype=bool))
        if len(detectors) != len(observables):
            raise ValueError(
                f"detector/observable shot counts disagree: "
                f"{len(detectors)} vs {len(observables)}"
            )
        return cls(
            det_words=pack_bool_rows(detectors),
            obs_words=pack_bool_rows(observables),
            num_detectors=detectors.shape[1],
            num_observables=observables.shape[1],
        )


class DemSampler:
    """Samples detector/observable data straight from a DEM.

    Compile once per circuit (the engine caches the instance alongside
    the DEM), then call :meth:`sample` per shot shard.  Each shard draw
    is deterministic in its seed, so the engine's ``SeedSequence`` shard
    streams give bit-identical results across backends and worker
    counts, exactly like the frame path.
    """

    def __init__(self, dem: DetectorErrorModel):
        self.num_detectors = dem.num_detectors
        self.num_observables = dem.num_observables
        self.num_errors = dem.num_errors
        self.probabilities = np.clip(
            np.array([e.probability for e in dem.errors], dtype=np.float64),
            0.0, 1.0,
        )
        det_bits = np.zeros((self.num_errors, self.num_detectors), dtype=bool)
        obs_bits = np.zeros((self.num_errors, self.num_observables), dtype=bool)
        for row, err in enumerate(dem.errors):
            det_bits[row, list(err.detectors)] = True
            obs_bits[row, list(err.observables)] = True
        self.det_words = pack_bool_rows(det_bits)
        self.obs_words = pack_bool_rows(obs_bits)

    @classmethod
    def from_circuit(cls, circuit: StabilizerCircuit) -> "DemSampler":
        exact, _ = circuit_to_dems(circuit)
        return cls(exact)

    # ------------------------------------------------------------------
    def sample_packed(self, shots: int, seed=None) -> PackedShard:
        """The sampler's primary product: ``shots`` packed uint64
        syndrome draws as a :class:`PackedShard`.

        ``shots == 0`` is legal and returns empty arrays — the
        scheduler's last adaptive tranche can legitimately round to
        zero shots.
        """
        if shots < 0:
            raise ValueError("shots must be non-negative")
        rng = np.random.default_rng(seed)
        det = np.zeros((shots, self.det_words.shape[1]), dtype=np.uint64)
        obs = np.zeros((shots, self.obs_words.shape[1]), dtype=np.uint64)
        if shots == 0 or self.num_errors == 0:
            return self._shard(det, obs)
        with span("sample.draw"):
            counts = rng.binomial(shots, self.probabilities)
        # Mechanisms that fired in *every* shot (p at or near 1) XOR
        # into the whole shard directly; placing them through the
        # collision loop below would never converge for k == shots.
        full = counts == shots
        if full.any():
            det[:, :] ^= np.bitwise_xor.reduce(self.det_words[full], axis=0)
            obs[:, :] ^= np.bitwise_xor.reduce(self.obs_words[full], axis=0)
            counts[full] = 0
        total = int(counts.sum())
        if total == 0:
            return self._shard(det, obs)
        with span("sample.place"):
            mech_idx = np.repeat(np.arange(self.num_errors), counts)
            # Distinct uniform placement per mechanism: draw with
            # replacement, then redraw whichever later duplicates remain
            # until every (mechanism, shot) pair is unique.  Collisions
            # are O(k/shots)-rare, so the loop all but never iterates
            # twice.
            pos = rng.integers(0, shots, size=total)
            pair = mech_idx * np.int64(shots) + pos
            while True:
                order = np.argsort(pair, kind="stable")
                dup_sorted = pair[order][1:] == pair[order][:-1]
                if not dup_sorted.any():
                    break
                redraw = order[1:][dup_sorted]
                pos[redraw] = rng.integers(0, shots, size=len(redraw))
                pair[redraw] = mech_idx[redraw] * np.int64(shots) + pos[redraw]
        with span("sample.xor"):
            np.bitwise_xor.at(det, pos, self.det_words[mech_idx])
            np.bitwise_xor.at(obs, pos, self.obs_words[mech_idx])
        return self._shard(det, obs)

    def _shard(self, det: np.ndarray, obs: np.ndarray) -> PackedShard:
        return PackedShard(
            det_words=det,
            obs_words=obs,
            num_detectors=self.num_detectors,
            num_observables=self.num_observables,
        )

    def sample(self, shots: int, seed=None) -> SampleResult:
        """Boolean-boundary sampling; drop-in for the decoder-facing
        part of :meth:`FrameSimulator.sample`.

        ``measurements`` is empty (shape ``(shots, 0)``): the DEM has no
        notion of individual measurement records, only of the detector
        and observable parities built from them — which is all the
        decoding pipeline consumes.  The hot path never calls this:
        the engine consumes :meth:`sample_packed` directly.
        """
        shard = self.sample_packed(shots, seed=seed)
        return SampleResult(
            measurements=np.zeros((shard.shots, 0), dtype=bool),
            detectors=shard.detectors,
            observables=shard.observables,
        )
