"""Pauli algebra over n qubits.

A Pauli operator is stored in symplectic form: two boolean vectors ``x``
and ``z`` plus an integer phase exponent (power of ``i``).  The qubit-k
component is ``I`` when ``x[k] == z[k] == 0``, ``X`` for ``(1, 0)``,
``Z`` for ``(0, 1)`` and ``Y`` for ``(1, 1)``.

This module is the foundation the tableau simulator, the detector error
model extraction and many tests are built on.
"""

from __future__ import annotations

import numpy as np

_CHAR_TO_XZ = {"I": (0, 0), "X": (1, 0), "Y": (1, 1), "Z": (0, 1), "_": (0, 0)}
_XZ_TO_CHAR = {(0, 0): "I", (1, 0): "X", (1, 1): "Y", (0, 1): "Z"}
_PHASE_CHARS = {0: "+", 1: "+i", 2: "-", 3: "-i"}


class PauliString:
    """An n-qubit Pauli operator with a global phase ``i**phase``."""

    __slots__ = ("x", "z", "phase")

    def __init__(self, num_qubits: int = 0, *, x=None, z=None, phase: int = 0):
        if x is None:
            x = np.zeros(num_qubits, dtype=bool)
        if z is None:
            z = np.zeros(num_qubits, dtype=bool)
        self.x = np.asarray(x, dtype=bool).copy()
        self.z = np.asarray(z, dtype=bool).copy()
        if self.x.shape != self.z.shape:
            raise ValueError("x and z supports must have equal length")
        self.phase = phase % 4

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_str(cls, text: str) -> "PauliString":
        """Parse e.g. ``"+XIZ"``, ``"-YY"`` or ``"iXZ"``."""
        phase = 0
        body = text
        for prefix, value in (("+i", 1), ("-i", 3), ("i", 1), ("+", 0), ("-", 2)):
            if text.startswith(prefix):
                phase = value
                body = text[len(prefix):]
                break
        n = len(body)
        pauli = cls(n, phase=phase)
        for k, char in enumerate(body):
            try:
                xk, zk = _CHAR_TO_XZ[char]
            except KeyError:
                raise ValueError(f"invalid Pauli character {char!r}") from None
            pauli.x[k] = xk
            pauli.z[k] = zk
        return pauli

    @classmethod
    def single(cls, num_qubits: int, qubit: int, kind: str) -> "PauliString":
        """A single-qubit Pauli ``kind`` on ``qubit`` in an n-qubit register."""
        pauli = cls(num_qubits)
        xk, zk = _CHAR_TO_XZ[kind]
        pauli.x[qubit] = xk
        pauli.z[qubit] = zk
        return pauli

    def copy(self) -> "PauliString":
        return PauliString(x=self.x, z=self.z, phase=self.phase)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return len(self.x)

    @property
    def weight(self) -> int:
        """Number of non-identity components."""
        return int(np.count_nonzero(self.x | self.z))

    def is_identity(self) -> bool:
        return not (self.x.any() or self.z.any())

    def support(self) -> list[int]:
        """Indices of qubits acted on non-trivially."""
        return list(np.flatnonzero(self.x | self.z))

    def component(self, qubit: int) -> str:
        return _XZ_TO_CHAR[(int(self.x[qubit]), int(self.z[qubit]))]

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def commutes_with(self, other: "PauliString") -> bool:
        """True when the two operators commute (symplectic product = 0)."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("operator sizes differ")
        crossings = np.count_nonzero(self.x & other.z) + np.count_nonzero(self.z & other.x)
        return crossings % 2 == 0

    def __mul__(self, other: "PauliString") -> "PauliString":
        """Operator product ``self @ other`` (self applied after other)."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("operator sizes differ")
        # Phase bookkeeping: multiplying component-wise picks up i**g where
        # g counts anticommuting reorderings.  Using the standard formula
        # for (x1,z1)*(x2,z2) composed component-wise.
        phase = self.phase + other.phase
        phase += _pauli_product_phase(self.x, self.z, other.x, other.z)
        return PauliString(
            x=self.x ^ other.x,
            z=self.z ^ other.z,
            phase=phase % 4,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliString):
            return NotImplemented
        return (
            self.phase == other.phase
            and np.array_equal(self.x, other.x)
            and np.array_equal(self.z, other.z)
        )

    def __hash__(self) -> int:
        return hash((self.phase, self.x.tobytes(), self.z.tobytes()))

    def __repr__(self) -> str:
        return f"PauliString({str(self)!r})"

    def __str__(self) -> str:
        body = "".join(
            _XZ_TO_CHAR[(int(xk), int(zk))] for xk, zk in zip(self.x, self.z)
        )
        return _PHASE_CHARS[self.phase] + body


def _pauli_product_phase(x1, z1, x2, z2) -> int:
    """Exponent of i picked up when multiplying (x1,z1) by (x2,z2).

    Per-qubit lookup of the phase of sigma_a * sigma_b, summed mod 4.
    Uses the identity employed by Aaronson-Gottesman's tableau update.
    """
    x1 = x1.astype(np.int8)
    z1 = z1.astype(np.int8)
    x2 = x2.astype(np.int8)
    z2 = z2.astype(np.int8)
    # g per qubit: contribution in {-1, 0, +1} doubled into i-exponent
    g = (
        x1 * z1 * (z2 - x2)
        + x1 * (1 - z1) * z2 * (2 * x2 - 1)
        + (1 - x1) * z1 * x2 * (1 - 2 * z2)
    )
    return int(g.sum()) % 4
