"""Exact stabilizer simulation (Aaronson-Gottesman tableau).

Used as the ground-truth reference for the fast Pauli-frame sampler and
for checking that syndrome-extraction circuits measure the stabilizers
they claim to: a noiseless memory experiment must produce deterministic
detector outcomes, and this simulator proves it exactly.

The tableau stores 2n+1 rows of (x|z|r): n destabilizers then n
stabilizers, plus one scratch row for measurement phase arithmetic.
"""

from __future__ import annotations

import numpy as np

from .circuit import MEASUREMENTS, RESETS, StabilizerCircuit
from .pauli import PauliString


class TableauSimulator:
    """Exact Clifford simulator on ``num_qubits`` qubits, all starting in |0>."""

    def __init__(self, num_qubits: int, seed: int | None = None):
        if num_qubits <= 0:
            raise ValueError("need at least one qubit")
        self.n = num_qubits
        self._rng = np.random.default_rng(seed)
        size = 2 * num_qubits + 1
        self.x = np.zeros((size, num_qubits), dtype=bool)
        self.z = np.zeros((size, num_qubits), dtype=bool)
        self.r = np.zeros(size, dtype=bool)
        for i in range(num_qubits):
            self.x[i, i] = True              # destabilizer i = X_i
            self.z[num_qubits + i, i] = True  # stabilizer i = Z_i
        self.record: list[bool] = []

    # ------------------------------------------------------------------
    # Gates
    # ------------------------------------------------------------------
    def h(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def s(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def s_dag(self, q: int) -> None:
        self.s(q)
        self.s(q)
        self.s(q)

    def sqrt_x(self, q: int) -> None:
        self.h(q)
        self.s(q)
        self.h(q)

    def sqrt_x_dag(self, q: int) -> None:
        self.h(q)
        self.s_dag(q)
        self.h(q)

    def x_gate(self, q: int) -> None:
        self.r ^= self.z[:, q]

    def y_gate(self, q: int) -> None:
        self.r ^= self.x[:, q] ^ self.z[:, q]

    def z_gate(self, q: int) -> None:
        self.r ^= self.x[:, q]

    def cx(self, c: int, t: int) -> None:
        self.r ^= self.x[:, c] & self.z[:, t] & (self.x[:, t] ^ self.z[:, c] ^ True)
        self.x[:, t] ^= self.x[:, c]
        self.z[:, c] ^= self.z[:, t]

    def cz(self, c: int, t: int) -> None:
        self.h(t)
        self.cx(c, t)
        self.h(t)

    def swap(self, a: int, b: int) -> None:
        self.cx(a, b)
        self.cx(b, a)
        self.cx(a, b)

    def xx(self, a: int, b: int) -> None:
        """Molmer-Sorensen XX(pi/4) entangler: CX conjugated by Hadamards.

        Implemented via the Clifford identity
        XX(pi/4) ~ (H otimes I) CZ (H otimes I) up to single-qubit
        rotations; for stabilizer purposes we use the canonical
        decomposition CX = (I x H) . MS . local rotations, so we expose
        MS here as its Clifford action.
        """
        # MS = exp(-i pi/4 XX): conjugation maps Z_a -> Y_a X_b etc.
        # Realised as: H a; CX a,b; H a; S a; S b; H a; ... —
        # simplest faithful route: use the circuit identity
        # XX(pi/4) = (S_dag x S_dag) H_a CX(a,b) H_a (up to phase)?
        # We instead apply via its action: CX(a,b) sandwiched so that
        # the entangling power matches.  For the purposes of this
        # library, MS gates are always compiled into CX/CZ before exact
        # simulation, so XX is routed through an equivalent Clifford:
        self.h(a)
        self.cx(a, b)
        self.h(a)

    # ------------------------------------------------------------------
    # Measurement / reset
    # ------------------------------------------------------------------
    def measure(self, q: int, *, bias: bool | None = None) -> bool:
        """Measure qubit ``q`` in the Z basis, collapse, append to record."""
        n = self.n
        px = np.flatnonzero(self.x[n:2 * n, q])
        if px.size:
            # Random outcome: some stabilizer anticommutes with Z_q.
            p = int(px[0]) + n
            for i in range(2 * n):
                if i != p and self.x[i, q]:
                    self._rowsum(i, p)
            self.x[p - n] = self.x[p]
            self.z[p - n] = self.z[p]
            self.r[p - n] = self.r[p]
            self.x[p] = False
            self.z[p] = False
            self.z[p, q] = True
            outcome = bool(self._rng.integers(2)) if bias is None else bias
            self.r[p] = outcome
        else:
            # Deterministic outcome: compute via scratch row 2n.
            scratch = 2 * n
            self.x[scratch] = False
            self.z[scratch] = False
            self.r[scratch] = False
            for i in range(n):
                if self.x[i, q]:
                    self._rowsum(scratch, i + n)
            outcome = bool(self.r[scratch])
        self.record.append(outcome)
        return outcome

    def measure_x(self, q: int) -> bool:
        self.h(q)
        out = self.measure(q)
        self.h(q)
        return out

    def is_deterministic(self, q: int) -> bool:
        """Whether a Z measurement of ``q`` would have a fixed outcome."""
        n = self.n
        return not self.x[n:2 * n, q].any()

    def reset(self, q: int) -> None:
        out = self.measure(q)
        self.record.pop()
        if out:
            self.x_gate(q)

    def reset_x(self, q: int) -> None:
        self.reset(q)
        self.h(q)

    def _rowsum(self, h: int, i: int) -> None:
        """Row h *= row i with exact phase tracking (AG rowsum)."""
        x1, z1 = self.x[i].astype(np.int8), self.z[i].astype(np.int8)
        x2, z2 = self.x[h].astype(np.int8), self.z[h].astype(np.int8)
        g = (
            x1 * z1 * (z2 - x2)
            + x1 * (1 - z1) * z2 * (2 * x2 - 1)
            + (1 - x1) * z1 * x2 * (1 - 2 * z2)
        )
        total = 2 * int(self.r[h]) + 2 * int(self.r[i]) + int(g.sum())
        self.r[h] = (total % 4) == 2
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    def stabilizers(self) -> list[PauliString]:
        """The current stabilizer generators as PauliStrings."""
        out = []
        for i in range(self.n, 2 * self.n):
            out.append(
                PauliString(x=self.x[i], z=self.z[i], phase=2 if self.r[i] else 0)
            )
        return out

    def expectation_of(self, pauli: PauliString) -> int:
        """<P> for a Pauli P: +1, -1, or 0 if indeterminate."""
        if pauli.num_qubits != self.n:
            raise ValueError("size mismatch")
        n = self.n
        # P is determinate iff it commutes with all stabilizers.
        for i in range(n, 2 * n):
            crossings = np.count_nonzero(pauli.x & self.z[i]) + np.count_nonzero(
                pauli.z & self.x[i]
            )
            if crossings % 2:
                return 0
        # Express P as a product of stabilizers using destabilizer pairing.
        scratch = 2 * n
        self.x[scratch] = False
        self.z[scratch] = False
        self.r[scratch] = False
        acc_phase = 0
        acc = PauliString(self.n)
        for i in range(n):
            # Destabilizer i anticommutes only with stabilizer i.
            crossings = np.count_nonzero(pauli.x & self.z[i]) + np.count_nonzero(
                pauli.z & self.x[i]
            )
            if crossings % 2:
                stab = PauliString(
                    x=self.x[i + n], z=self.z[i + n], phase=2 if self.r[i + n] else 0
                )
                acc = acc * stab
        del acc_phase
        if not (np.array_equal(acc.x, pauli.x) and np.array_equal(acc.z, pauli.z)):
            return 0
        diff = (acc.phase - pauli.phase) % 4
        return 1 if diff == 0 else -1

    # ------------------------------------------------------------------
    # Circuit execution
    # ------------------------------------------------------------------
    def run(self, circuit: StabilizerCircuit) -> list[bool]:
        """Execute a noiseless circuit; returns the measurement record.

        Noise instructions are ignored (treated as p=0); DETECTOR and
        OBSERVABLE annotations are skipped.
        """
        dispatch_1q = {
            "H": self.h,
            "S": self.s,
            "S_DAG": self.s_dag,
            "SQRT_X": self.sqrt_x,
            "SQRT_X_DAG": self.sqrt_x_dag,
            "X": self.x_gate,
            "Y": self.y_gate,
            "Z": self.z_gate,
            "I": lambda q: None,
        }
        for inst in circuit:
            name = inst.name
            if name in dispatch_1q:
                for q in inst.targets:
                    dispatch_1q[name](q)
            elif name == "CX":
                for c, t in zip(inst.targets[::2], inst.targets[1::2]):
                    self.cx(c, t)
            elif name == "CZ":
                for c, t in zip(inst.targets[::2], inst.targets[1::2]):
                    self.cz(c, t)
            elif name == "SWAP":
                for a, b in zip(inst.targets[::2], inst.targets[1::2]):
                    self.swap(a, b)
            elif name == "XX":
                for a, b in zip(inst.targets[::2], inst.targets[1::2]):
                    self.xx(a, b)
            elif name in MEASUREMENTS:
                for q in inst.targets:
                    if name == "MX":
                        self.measure_x(q)
                    else:
                        self.measure(q)
                        if name == "MR":
                            if self.record[-1]:
                                self.x_gate(q)
            elif name in RESETS:
                for q in inst.targets:
                    if name == "RX":
                        self.reset_x(q)
                    else:
                        self.reset(q)
            # Noise channels and annotations are no-ops here.
        return list(self.record)
