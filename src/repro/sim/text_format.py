"""Text serialisation of stabilizer circuits (Stim-compatible subset).

Circuits round-trip through the same plain-text syntax Stim uses::

    R 0 1 2
    H 0
    CX 0 1
    DEPOLARIZE2(0.001) 0 1
    M 0 1
    DETECTOR rec[-1] rec[-2]
    OBSERVABLE_INCLUDE(0) rec[-1]

Only the instruction set of :mod:`repro.sim.circuit` is supported; the
point is interoperability — a compiled QCCD schedule exported with
:func:`repro.core.program_to_circuit` can be written out and loaded
into real Stim unchanged (modulo the XX gate, which Stim spells
``SQRT_XX``).
"""

from __future__ import annotations

import re

from .circuit import StabilizerCircuit

_REC_PATTERN = re.compile(r"rec\[(-\d+)\]")
_NAME_ARGS_PATTERN = re.compile(r"^([A-Z_0-9]+)(?:\(([^)]*)\))?\s*(.*)$")


def circuit_to_text(circuit: StabilizerCircuit) -> str:
    """Render a circuit in Stim-style text."""
    return str(circuit)


def circuit_from_text(text: str) -> StabilizerCircuit:
    """Parse Stim-style text into a :class:`StabilizerCircuit`.

    Raises ``ValueError`` with a line number on malformed input.
    """
    circuit = StabilizerCircuit()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _NAME_ARGS_PATTERN.match(line)
        if not match:
            raise ValueError(f"line {lineno}: cannot parse {raw!r}")
        name, args_text, targets_text = match.groups()
        args: tuple[float, ...] = ()
        if args_text:
            args = tuple(float(a) for a in args_text.split(","))
        if name in ("DETECTOR", "OBSERVABLE_INCLUDE"):
            targets = tuple(
                int(m.group(1)) for m in _REC_PATTERN.finditer(targets_text)
            )
            expected = len(targets_text.split()) if targets_text else 0
            if len(targets) != expected:
                raise ValueError(
                    f"line {lineno}: {name} targets must be rec[-k] terms"
                )
        else:
            try:
                targets = tuple(
                    int(t) for t in targets_text.split()
                ) if targets_text else ()
            except ValueError:
                raise ValueError(
                    f"line {lineno}: bad qubit targets in {raw!r}"
                ) from None
        try:
            circuit.append(name, targets, args)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: {exc}") from exc
    return circuit


def save_circuit(circuit: StabilizerCircuit, path: str) -> None:
    """Write a circuit to a text file."""
    with open(path, "w") as fh:
        fh.write(circuit_to_text(circuit))
        fh.write("\n")


def load_circuit(path: str) -> StabilizerCircuit:
    """Read a circuit from a text file."""
    with open(path) as fh:
        return circuit_from_text(fh.read())
