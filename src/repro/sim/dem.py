"""Detector error model (DEM) extraction.

Every noise channel in a stabilizer circuit is a mixture of Pauli
*error mechanisms* (e.g. DEPOLARIZE2 is 15 two-qubit Paulis at p/15
each).  Each mechanism, propagated through the remainder of the circuit,
flips a fixed set of detectors and logical observables.  The DEM is the
list of (detector set, observable set, probability) triples — precisely
what a matching decoder needs.

We extract it the way Stim does conceptually, but implemented by reusing
the vectorised :class:`FrameState`: mechanism ``i`` becomes "shot" ``i``
whose frame receives exactly one deterministic Pauli injection, and one
batched pass over the circuit propagates all mechanisms simultaneously.

Mechanisms that flip more than two detectors (hyperedges) are
decomposed into their X-part and Z-part, which for CSS codes such as
the surface code are individually graphlike.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .circuit import StabilizerCircuit
from .frame import FrameState

# Pauli pair encodings for DEPOLARIZE2: value 1..15, qubit-a pauli is
# value // 4 and qubit-b pauli is value % 4 with 0=I, 1=X, 2=Y, 3=Z.
_PAULI_HAS_X = (False, True, True, False)
_PAULI_HAS_Z = (False, False, True, True)


@dataclass(frozen=True)
class DemError:
    """One independent error source in the model."""

    detectors: tuple[int, ...]
    observables: tuple[int, ...]
    probability: float

    def is_graphlike(self) -> bool:
        return len(self.detectors) <= 2


@dataclass
class DetectorErrorModel:
    """A collection of independent error mechanisms."""

    num_detectors: int
    num_observables: int
    errors: list[DemError] = field(default_factory=list)

    def merged(self) -> "DetectorErrorModel":
        """Combine errors with identical symptoms.

        Two independent sources with the same (detectors, observables)
        act like one source firing with probability
        ``p = (1 - prod(1 - 2 p_i)) / 2`` (odd number of firings).
        """
        acc: dict[tuple[tuple[int, ...], tuple[int, ...]], float] = {}
        for err in self.errors:
            key = (err.detectors, err.observables)
            prior = acc.get(key, 0.0)
            acc[key] = prior + err.probability - 2.0 * prior * err.probability
        merged = [
            DemError(dets, obs, p)
            for (dets, obs), p in sorted(acc.items())
            if p > 0.0
        ]
        return DetectorErrorModel(self.num_detectors, self.num_observables, merged)

    @property
    def num_errors(self) -> int:
        return len(self.errors)


@dataclass
class _Mechanism:
    """A single Pauli component of one noise instruction."""

    instruction_index: int
    probability: float
    # (qubit, has_x, has_z) triples to inject into the frame.
    injections: tuple[tuple[int, bool, bool], ...]


def _enumerate_mechanisms(circuit: StabilizerCircuit) -> list[_Mechanism]:
    mechanisms: list[_Mechanism] = []
    for idx, inst in enumerate(circuit.instructions):
        name, targets, args = inst.name, inst.targets, inst.args
        if name == "X_ERROR":
            for q in targets:
                mechanisms.append(_Mechanism(idx, args[0], ((q, True, False),)))
        elif name == "Z_ERROR":
            for q in targets:
                mechanisms.append(_Mechanism(idx, args[0], ((q, False, True),)))
        elif name == "Y_ERROR":
            for q in targets:
                mechanisms.append(_Mechanism(idx, args[0], ((q, True, True),)))
        elif name == "PAULI_CHANNEL_1":
            px, py, pz = args
            for q in targets:
                if px:
                    mechanisms.append(_Mechanism(idx, px, ((q, True, False),)))
                if py:
                    mechanisms.append(_Mechanism(idx, py, ((q, True, True),)))
                if pz:
                    mechanisms.append(_Mechanism(idx, pz, ((q, False, True),)))
        elif name == "DEPOLARIZE1":
            p = args[0] / 3.0
            for q in targets:
                if p:
                    mechanisms.append(_Mechanism(idx, p, ((q, True, False),)))
                    mechanisms.append(_Mechanism(idx, p, ((q, True, True),)))
                    mechanisms.append(_Mechanism(idx, p, ((q, False, True),)))
        elif name == "DEPOLARIZE2":
            p = args[0] / 15.0
            if p:
                for a, b in zip(targets[::2], targets[1::2]):
                    for code in range(1, 16):
                        pa, pb = code // 4, code % 4
                        inj = []
                        if pa:
                            inj.append((a, _PAULI_HAS_X[pa], _PAULI_HAS_Z[pa]))
                        if pb:
                            inj.append((b, _PAULI_HAS_X[pb], _PAULI_HAS_Z[pb]))
                        mechanisms.append(_Mechanism(idx, p, tuple(inj)))
    return mechanisms


def _propagate(
    circuit: StabilizerCircuit,
    mechanisms: list[_Mechanism],
    injections_per_mech: list[tuple[tuple[int, bool, bool], ...]],
) -> tuple[np.ndarray, np.ndarray]:
    """Propagate one injected Pauli per mechanism through the circuit.

    Returns boolean arrays (mechanisms x detectors) and
    (mechanisms x observables) of symptom flips.
    """
    m = len(mechanisms)
    n = max(circuit.num_qubits, 1)
    state = FrameState(m, n)

    # Group injection rows by instruction index for O(1) lookup.
    by_inst: dict[int, list[tuple[int, tuple[tuple[int, bool, bool], ...]]]] = {}
    for row, mech in enumerate(mechanisms):
        by_inst.setdefault(mech.instruction_index, []).append(
            (row, injections_per_mech[row])
        )

    # Map each absolute measurement index to the detectors/observables
    # whose parity includes it.
    det_of_meas: dict[int, list[int]] = {}
    for d, recs in enumerate(circuit.detector_records()):
        for r in recs:
            det_of_meas.setdefault(r, []).append(d)
    obs_of_meas: dict[int, list[int]] = {}
    for o, recs in circuit.observable_records().items():
        for r in recs:
            obs_of_meas.setdefault(r, []).append(o)

    det_flips = np.zeros((m, max(circuit.num_detectors, 1)), dtype=bool)
    obs_flips = np.zeros((m, max(circuit.num_observables, 1)), dtype=bool)
    cursor = 0
    for idx, inst in enumerate(circuit.instructions):
        name, targets = inst.name, inst.targets
        if idx in by_inst:
            for row, injections in by_inst[idx]:
                for q, has_x, has_z in injections:
                    if has_x:
                        state.x[row, q] ^= True
                    if has_z:
                        state.z[row, q] ^= True
        if name in ("H", "S", "S_DAG", "SQRT_X", "SQRT_X_DAG", "X", "Y", "Z",
                    "I", "CX", "CZ", "SWAP", "XX"):
            state.apply_gate(name, targets)
        elif name in ("M", "MR"):
            for q in targets:
                flips = state.x[:, q]
                for d in det_of_meas.get(cursor, ()):
                    det_flips[:, d] ^= flips
                for o in obs_of_meas.get(cursor, ()):
                    obs_flips[:, o] ^= flips
                cursor += 1
                if name == "MR":
                    state.x[:, q] = False
                    state.z[:, q] = False
        elif name == "MX":
            for q in targets:
                flips = state.z[:, q]
                for d in det_of_meas.get(cursor, ()):
                    det_flips[:, d] ^= flips
                for o in obs_of_meas.get(cursor, ()):
                    obs_flips[:, o] ^= flips
                cursor += 1
        elif name == "R":
            for q in targets:
                state.x[:, q] = False
                state.z[:, q] = False
        elif name == "RX":
            for q in targets:
                state.x[:, q] = False
                state.z[:, q] = False
        # Noise instructions contribute mechanisms, not frame updates here.
    return det_flips, obs_flips


def _symptoms(det_row: np.ndarray, obs_row: np.ndarray) -> tuple[tuple[int, ...], tuple[int, ...]]:
    return tuple(np.flatnonzero(det_row)), tuple(np.flatnonzero(obs_row))


def circuit_to_dems(
    circuit: StabilizerCircuit,
) -> tuple[DetectorErrorModel, DetectorErrorModel]:
    """Extract both DEM flavours of a noisy circuit in one pass.

    Returns ``(exact, graphlike)``:

    - ``exact`` keeps every mechanism's full symptom set, hyperedges
      included — the model to *sample* from (``DemSampler``), since
      splitting a mechanism would decorrelate detector flips that fire
      together physically;
    - ``graphlike`` splits mechanisms flipping more than two detectors
      into their X-part and Z-part (each graphlike for CSS circuits);
      parts keep the full mechanism probability, the standard
      independence approximation made by *matching decoders*.

    The expensive batched propagation of all mechanisms is shared; only
    the hyperedge parts are re-propagated for the graphlike model.
    """
    mechanisms = _enumerate_mechanisms(circuit)
    exact = DetectorErrorModel(circuit.num_detectors, circuit.num_observables)
    graphlike = DetectorErrorModel(circuit.num_detectors, circuit.num_observables)
    if not mechanisms:
        return exact, graphlike

    det_flips, obs_flips = _propagate(
        circuit, mechanisms, [mech.injections for mech in mechanisms]
    )
    hyper_rows: list[int] = []
    for row, mech in enumerate(mechanisms):
        dets, obs = _symptoms(det_flips[row], obs_flips[row])
        if not dets and not obs:
            continue
        exact.errors.append(DemError(dets, obs, mech.probability))
        if len(dets) <= 2:
            graphlike.errors.append(DemError(dets, obs, mech.probability))
        else:
            hyper_rows.append(row)

    if hyper_rows:
        # Re-propagate the X-part and Z-part of each hyperedge mechanism.
        parts: list[_Mechanism] = []
        part_injections: list[tuple[tuple[int, bool, bool], ...]] = []
        for row in hyper_rows:
            mech = mechanisms[row]
            x_part = tuple((q, hx, False) for q, hx, hz in mech.injections if hx)
            z_part = tuple((q, False, hz) for q, hx, hz in mech.injections if hz)
            for part in (x_part, z_part):
                if part:
                    parts.append(mech)
                    part_injections.append(part)
        pdet, pobs = _propagate(circuit, parts, part_injections)
        for row, mech in enumerate(parts):
            dets, obs = _symptoms(pdet[row], pobs[row])
            if not dets and not obs:
                continue
            if len(dets) <= 2:
                graphlike.errors.append(DemError(dets, obs, mech.probability))
            else:
                # Last resort: chain-pair detectors in index order.
                ordered = list(dets)
                pieces = [tuple(ordered[i:i + 2]) for i in range(0, len(ordered), 2)]
                for i, piece in enumerate(pieces):
                    graphlike.errors.append(
                        DemError(piece, obs if i == 0 else (), mech.probability)
                    )
    return exact.merged(), graphlike.merged()


def circuit_to_dem(circuit: StabilizerCircuit, *, decompose: bool = True) -> DetectorErrorModel:
    """Extract the detector error model of a noisy circuit.

    With ``decompose=True``, mechanisms flipping more than two detectors
    are split into their X-part and Z-part (each graphlike for CSS
    circuits); parts keep the full mechanism probability, the standard
    independence approximation made by matching decoders.  See
    :func:`circuit_to_dems` to obtain both flavours from one
    propagation pass.
    """
    exact, graphlike = circuit_to_dems(circuit)
    return graphlike if decompose else exact
