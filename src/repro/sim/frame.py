"""Vectorised Pauli-frame sampling of noisy stabilizer circuits.

Instead of simulating quantum state, we track only the *error frame*: a
Pauli operator per shot describing how the noisy run differs from the
noiseless reference run.  Clifford gates conjugate the frame, noise
channels inject random Paulis, and a Z-basis measurement outcome is
flipped exactly when the frame has an X component on the measured qubit.
Detector and observable values are parities of record flips, so the
reference outcomes cancel — this is the same trick Stim's frame
simulator uses and is exact for stabilizer circuits.

All shots are processed simultaneously with boolean numpy arrays, so
sampling one million shots of a distance-5 memory experiment takes
seconds rather than hours.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .circuit import StabilizerCircuit


@dataclass
class SampleResult:
    """Sampled outputs of a noisy circuit, one row per shot."""

    measurements: np.ndarray  # (shots, num_measurements) bool: flip XOR reference
    detectors: np.ndarray     # (shots, num_detectors) bool
    observables: np.ndarray   # (shots, num_observables) bool

    @property
    def shots(self) -> int:
        return self.measurements.shape[0]


class FrameState:
    """The Pauli frames of a batch of shots.

    ``x[s, q]`` / ``z[s, q]`` give the X / Z component of shot ``s``'s
    frame on qubit ``q``.  Shared by the sampler and the detector error
    model extractor (which injects deterministic errors instead of
    random ones).
    """

    def __init__(self, shots: int, num_qubits: int):
        self.x = np.zeros((shots, num_qubits), dtype=bool)
        self.z = np.zeros((shots, num_qubits), dtype=bool)

    # --- Clifford conjugations -----------------------------------------
    def h(self, qs) -> None:
        tmp = self.x[:, qs].copy()
        self.x[:, qs] = self.z[:, qs]
        self.z[:, qs] = tmp

    def s(self, qs) -> None:
        self.z[:, qs] ^= self.x[:, qs]

    def sqrt_x(self, qs) -> None:
        self.x[:, qs] ^= self.z[:, qs]

    def cx(self, cs, ts) -> None:
        self.x[:, ts] ^= self.x[:, cs]
        self.z[:, cs] ^= self.z[:, ts]

    def cz(self, cs, ts) -> None:
        self.z[:, ts] ^= self.x[:, cs]
        self.z[:, cs] ^= self.x[:, ts]

    def swap(self, a, b) -> None:
        self.x[:, [a, b]] = self.x[:, [b, a]]
        self.z[:, [a, b]] = self.z[:, [b, a]]

    def xx(self, a, b) -> None:
        """MS entangler frame action (H_a CX(a,b) H_a)."""
        self.h([a])
        self.cx([a], [b])
        self.h([a])

    def apply_gate(self, name: str, targets: tuple[int, ...]) -> None:
        if name == "H":
            self.h(list(targets))
        elif name in ("S", "S_DAG"):
            self.s(list(targets))
        elif name in ("SQRT_X", "SQRT_X_DAG"):
            self.sqrt_x(list(targets))
        elif name in ("X", "Y", "Z", "I"):
            pass  # fixed Paulis commute with the frame up to global sign
        elif name == "CX":
            self.cx(list(targets[::2]), list(targets[1::2]))
        elif name == "CZ":
            self.cz(list(targets[::2]), list(targets[1::2]))
        elif name == "SWAP":
            for a, b in zip(targets[::2], targets[1::2]):
                self.swap(a, b)
        elif name == "XX":
            for a, b in zip(targets[::2], targets[1::2]):
                self.xx(a, b)
        else:
            raise ValueError(f"not a unitary gate: {name}")


def _parity_plan(groups: list[list[int]]):
    """Precomputed index arrays for batched record-parity accumulation.

    Returns ``(cols, offsets, out_idx)`` such that
    ``np.bitwise_xor.reduceat(record[:, cols], offsets, axis=1)`` yields
    one XOR-parity column per non-empty group, destined for output
    column ``out_idx[j]``; or ``None`` when every group is empty.
    """
    nonempty = [(i, recs) for i, recs in enumerate(groups) if recs]
    if not nonempty:
        return None
    cols = np.concatenate(
        [np.asarray(recs, dtype=np.intp) for _, recs in nonempty]
    )
    lengths = np.array([len(recs) for _, recs in nonempty], dtype=np.intp)
    offsets = np.concatenate(([0], np.cumsum(lengths[:-1])))
    out_idx = np.array([i for i, _ in nonempty], dtype=np.intp)
    return cols, offsets, out_idx


class FrameSimulator:
    """Samples measurement-flip / detector / observable data in bulk."""

    def __init__(
        self,
        circuit: StabilizerCircuit,
        seed: int | np.random.SeedSequence | None = None,
    ):
        self.circuit = circuit
        self._rng = np.random.default_rng(seed)
        det_records = circuit.detector_records()
        obs_groups: list[list[int]] = [[] for _ in range(circuit.num_observables)]
        for idx, recs in circuit.observable_records().items():
            obs_groups[idx] = recs
        self._det_plan = _parity_plan(det_records)
        self._obs_plan = _parity_plan(obs_groups)

    def sample(self, shots: int) -> SampleResult:
        """Sample ``shots`` runs of the circuit."""
        if shots <= 0:
            raise ValueError("shots must be positive")
        circ = self.circuit
        n = max(circ.num_qubits, 1)
        state = FrameState(shots, n)
        rng = self._rng
        record = np.zeros((shots, circ.num_measurements), dtype=bool)
        cursor = 0

        for inst in circ.instructions:
            name = inst.name
            targets = inst.targets
            if name in ("H", "S", "S_DAG", "SQRT_X", "SQRT_X_DAG", "X", "Y", "Z",
                        "I", "CX", "CZ", "SWAP", "XX"):
                state.apply_gate(name, targets)
            elif name == "M":
                for q in targets:
                    record[:, cursor] = state.x[:, q]
                    cursor += 1
                    state.z[:, q] ^= rng.integers(2, size=shots, dtype=bool)
            elif name == "MR":
                for q in targets:
                    record[:, cursor] = state.x[:, q]
                    cursor += 1
                    state.x[:, q] = False
                    state.z[:, q] = rng.integers(2, size=shots, dtype=bool)
            elif name == "MX":
                for q in targets:
                    record[:, cursor] = state.z[:, q]
                    cursor += 1
                    state.x[:, q] ^= rng.integers(2, size=shots, dtype=bool)
            elif name == "R":
                for q in targets:
                    state.x[:, q] = False
                    state.z[:, q] = rng.integers(2, size=shots, dtype=bool)
            elif name == "RX":
                for q in targets:
                    state.z[:, q] = False
                    state.x[:, q] = rng.integers(2, size=shots, dtype=bool)
            elif name == "X_ERROR":
                p = inst.args[0]
                for q in targets:
                    state.x[:, q] ^= rng.random(shots) < p
            elif name == "Z_ERROR":
                p = inst.args[0]
                for q in targets:
                    state.z[:, q] ^= rng.random(shots) < p
            elif name == "Y_ERROR":
                p = inst.args[0]
                for q in targets:
                    flips = rng.random(shots) < p
                    state.x[:, q] ^= flips
                    state.z[:, q] ^= flips
            elif name == "PAULI_CHANNEL_1":
                px, py, pz = inst.args
                for q in targets:
                    u = rng.random(shots)
                    state.x[:, q] ^= u < (px + py)
                    state.z[:, q] ^= (u >= px) & (u < (px + py + pz))
            elif name == "DEPOLARIZE1":
                p = inst.args[0]
                for q in targets:
                    u = rng.random(shots)
                    hit = u < p
                    kind = rng.integers(3, size=shots)
                    state.x[:, q] ^= hit & (kind != 2)  # X or Y
                    state.z[:, q] ^= hit & (kind != 0)  # Y or Z
            elif name == "DEPOLARIZE2":
                p = inst.args[0]
                for a, b in zip(targets[::2], targets[1::2]):
                    u = rng.random(shots)
                    hit = u < p
                    kind = rng.integers(1, 16, size=shots)  # 15 non-identity pairs
                    # kind encodes (pa, pb) with pa = kind // 4, pb = kind % 4
                    # and pauli 0=I,1=X,2=Y,3=Z
                    pa = kind // 4
                    pb = kind % 4
                    state.x[:, a] ^= hit & ((pa == 1) | (pa == 2))
                    state.z[:, a] ^= hit & ((pa == 2) | (pa == 3))
                    state.x[:, b] ^= hit & ((pb == 1) | (pb == 2))
                    state.z[:, b] ^= hit & ((pb == 2) | (pb == 3))
            elif name in ("DETECTOR", "OBSERVABLE_INCLUDE", "TICK"):
                pass
            else:
                raise ValueError(f"frame simulator cannot handle {name}")

        # Parity accumulation: gather each annotation's record columns
        # into one block and XOR-reduce every segment in a single
        # vectorised pass (indices precomputed at construction).
        detectors = np.zeros((shots, circ.num_detectors), dtype=bool)
        if self._det_plan is not None:
            cols, offsets, out_idx = self._det_plan
            detectors[:, out_idx] = np.bitwise_xor.reduceat(
                record[:, cols], offsets, axis=1
            )
        observables = np.zeros((shots, circ.num_observables), dtype=bool)
        if self._obs_plan is not None:
            cols, offsets, out_idx = self._obs_plan
            observables[:, out_idx] = np.bitwise_xor.reduceat(
                record[:, cols], offsets, axis=1
            )
        return SampleResult(record, detectors, observables)
