"""The QCCD device graph and its occupancy/connectivity queries."""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from .components import Component, ComponentKind


@dataclass
class QCCDDevice:
    """A QCCD device: components plus their wiring into a graph.

    The graph alternates trap/junction nodes with segment nodes —
    every edge joins a segment to a trap or junction, so a route
    between traps is a sequence  trap, seg, (junction, seg,)* trap.
    """

    topology: str
    trap_capacity: int
    components: list[Component] = field(default_factory=list)
    edges: list[tuple[int, int]] = field(default_factory=list)

    def __post_init__(self):
        if self.trap_capacity < 2:
            raise ValueError("trap capacity must be at least 2")
        self._graph: nx.Graph | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def traps(self) -> list[Component]:
        return [c for c in self.components if c.is_trap]

    @property
    def junctions(self) -> list[Component]:
        return [c for c in self.components if c.is_junction]

    @property
    def segments(self) -> list[Component]:
        return [c for c in self.components if c.is_segment]

    @property
    def num_traps(self) -> int:
        return len(self.traps)

    @property
    def num_junctions(self) -> int:
        return len(self.junctions)

    def component(self, cid: int) -> Component:
        return self.components[cid]

    def graph(self) -> nx.Graph:
        """Component connectivity graph (cached)."""
        if self._graph is None:
            g = nx.Graph()
            for comp in self.components:
                g.add_node(comp.id, kind=comp.kind)
            g.add_edges_from(self.edges)
            self._graph = g
        return self._graph

    def neighbors(self, cid: int) -> list[int]:
        return list(self.graph().neighbors(cid))

    def neighbor_traps(self, trap_id: int) -> list[int]:
        """Traps reachable from ``trap_id`` through one segment/junction run."""
        found: list[int] = []
        for seg in self.neighbors(trap_id):
            for nxt in self.neighbors(seg):
                if nxt == trap_id:
                    continue
                comp = self.component(nxt)
                if comp.is_trap:
                    found.append(nxt)
                elif comp.is_junction:
                    for seg2 in self.neighbors(nxt):
                        if seg2 == seg:
                            continue
                        for t in self.neighbors(seg2):
                            if t != nxt and self.component(t).is_trap:
                                found.append(t)
        return sorted(set(found))

    # ------------------------------------------------------------------
    # Geometry helpers used by the router (chain ends)
    # ------------------------------------------------------------------
    def port_end(self, trap_id: int, segment_id: int) -> int:
        """Which end (0 or 1) of the trap's linear chain a segment joins.

        Segments approaching from smaller x (or, on a tie, smaller y)
        attach to end 0; the rest to end 1.  This fixes where merging
        ions enter the chain and which chain position may split out.
        """
        trap = self.component(trap_id)
        seg = self.component(segment_id)
        if (seg.pos[0], seg.pos[1]) < (trap.pos[0], trap.pos[1]):
            return 0
        return 1

    def validate(self) -> None:
        """Structural invariants used by tests and builders."""
        ids = [c.id for c in self.components]
        if ids != list(range(len(ids))):
            raise ValueError("component ids must be 0..n-1")
        for a, b in self.edges:
            ka = self.component(a).kind
            kb = self.component(b).kind
            segment_count = (ka is ComponentKind.SEGMENT) + (kb is ComponentKind.SEGMENT)
            if segment_count != 1:
                raise ValueError(
                    f"edge ({a},{b}) must join a segment to a trap/junction"
                )
        for seg in self.segments:
            degree = len(self.neighbors(seg.id))
            if degree != 2:
                raise ValueError(f"segment {seg.id} must join exactly two nodes")
        if self.num_traps > 1 and not nx.is_connected(self.graph()):
            raise ValueError("device graph must be connected")
