"""Builders for the paper's three communication topologies (Sec. 3.2).

- ``linear``: traps in a row joined by bare segments (pessimistic case,
  resembling Quantinuum's race-track H-series).
- ``grid``: traps on integer sites with an X-junction at each interior
  corner joining up to four diagonal traps (the paper's recommended
  topology, Figure 1).
- ``switch``: every trap connected by a segment to one non-blocking
  n-way junction (optimistic case, resembling MUSIQC).

Grid devices can be built from an arbitrary set of occupied sites so
that a device can exactly tile a surface-code patch — the hardware a
designer would lay out for a dedicated logical-qubit tile.
"""

from __future__ import annotations

from .components import Component, ComponentKind
from .device import QCCDDevice

TOPOLOGIES = ("linear", "grid", "switch")


def linear_device(num_traps: int, capacity: int) -> QCCDDevice:
    """Traps on a line, adjacent pairs joined by one segment."""
    if num_traps < 1:
        raise ValueError("need at least one trap")
    device = QCCDDevice("linear", capacity)
    comps = device.components
    for i in range(num_traps):
        comps.append(
            Component(len(comps), ComponentKind.TRAP, (2.0 * i, 0.0), capacity)
        )
    for i in range(num_traps - 1):
        seg = Component(len(comps), ComponentKind.SEGMENT, (2.0 * i + 1.0, 0.0), 1)
        comps.append(seg)
        device.edges.append((i, seg.id))
        device.edges.append((seg.id, i + 1))
    device.validate()
    return device


def switch_device(num_traps: int, capacity: int) -> QCCDDevice:
    """Star of traps around one non-blocking crossbar junction."""
    if num_traps < 1:
        raise ValueError("need at least one trap")
    device = QCCDDevice("switch", capacity)
    comps = device.components
    for i in range(num_traps):
        comps.append(
            Component(len(comps), ComponentKind.TRAP, (2.0 * i, 2.0), capacity)
        )
    if num_traps == 1:
        device.validate()
        return device
    # The crossbar: occupancy bound num_traps, i.e. effectively unbounded.
    hub = Component(
        len(comps), ComponentKind.JUNCTION, (num_traps - 1.0, 0.0), num_traps
    )
    comps.append(hub)
    for i in range(num_traps):
        seg = Component(
            len(comps), ComponentKind.SEGMENT, (2.0 * i, 1.0), 1
        )
        comps.append(seg)
        device.edges.append((i, seg.id))
        device.edges.append((seg.id, hub.id))
    device.validate()
    return device


def grid_device_from_sites(
    sites: list[tuple[int, int]], capacity: int
) -> QCCDDevice:
    """Traps at the given integer sites with corner junctions.

    A junction is placed at each half-integer corner touching at least
    two occupied diagonal sites, with a segment to each of those traps.
    Horizontally/vertically adjacent traps therefore communicate via a
    shared corner junction (trap - seg - junction - seg - trap).
    """
    if not sites:
        raise ValueError("need at least one trap site")
    if len(set(sites)) != len(sites):
        raise ValueError("duplicate trap sites")
    device = QCCDDevice("grid", capacity)
    comps = device.components
    trap_at: dict[tuple[int, int], int] = {}
    for x, y in sites:
        comp = Component(
            len(comps), ComponentKind.TRAP, (2.0 * x, 2.0 * y), capacity
        )
        comps.append(comp)
        trap_at[(x, y)] = comp.id

    corners: set[tuple[int, int]] = set()
    for x, y in sites:
        corners.update({(x, y), (x - 1, y), (x, y - 1), (x - 1, y - 1)})

    def corner_sites(cx: int, cy: int) -> list[tuple[int, int]]:
        return [
            (cx + dx, cy + dy)
            for dx in (0, 1)
            for dy in (0, 1)
            if (cx + dx, cy + dy) in trap_at
        ]

    def hosts_junction(cx: int, cy: int) -> bool:
        """A corner hosts an X-junction unless it only duplicates a
        side-adjacent pair that a better (more connected) shared corner
        already serves — this keeps one junction per grid crossing,
        matching the paper's Figure 1 layout."""
        touching = corner_sites(cx, cy)
        if len(touching) < 2:
            return False
        if len(touching) > 2:
            return True
        (x1, y1), (x2, y2) = touching
        if abs(x1 - x2) + abs(y1 - y2) != 1:
            return True  # diagonal pair: this is their only shared corner
        # Side-adjacent pair: exactly two corners touch both traps.
        if y1 == y2:  # horizontal pair at x = min(x1, x2)
            x = min(x1, x2)
            shared = [(x, y1 - 1), (x, y1)]
        else:  # vertical pair
            y = min(y1, y2)
            shared = [(x1 - 1, y), (x1, y)]
        best = max(shared, key=lambda c: (len(corner_sites(*c)), (-c[0], -c[1])))
        return (cx, cy) == best

    for cx, cy in sorted(corners):
        if not hosts_junction(cx, cy):
            continue
        touching = corner_sites(cx, cy)
        touching = [trap_at[s] for s in touching]
        junction = Component(
            len(comps), ComponentKind.JUNCTION, (2.0 * cx + 1.0, 2.0 * cy + 1.0), 1
        )
        comps.append(junction)
        for trap_id in touching:
            trap = comps[trap_id]
            mid = (
                (trap.pos[0] + junction.pos[0]) / 2.0,
                (trap.pos[1] + junction.pos[1]) / 2.0,
            )
            seg = Component(len(comps), ComponentKind.SEGMENT, mid, 1)
            comps.append(seg)
            device.edges.append((trap_id, seg.id))
            device.edges.append((seg.id, junction.id))
    device.validate()
    return device


def grid_device(rows: int, cols: int, capacity: int) -> QCCDDevice:
    """A full rows x cols rectangle of traps with corner junctions."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    sites = [(c, r) for r in range(rows) for c in range(cols)]
    if rows == 1 or cols == 1:
        # Degenerate grid: no interior corners exist, so fall back to a
        # junction between each adjacent pair to keep the device
        # connected while preserving grid-style (junction-based) hops.
        device = QCCDDevice("grid", capacity)
        comps = device.components
        n = rows * cols
        for i in range(n):
            comps.append(
                Component(len(comps), ComponentKind.TRAP, (2.0 * i, 0.0), capacity)
            )
        for i in range(n - 1):
            junction = Component(
                len(comps), ComponentKind.JUNCTION, (2.0 * i + 1.0, 0.0), 1
            )
            comps.append(junction)
            for trap_id, offset in ((i, -0.5), (i + 1, 0.5)):
                seg = Component(
                    len(comps),
                    ComponentKind.SEGMENT,
                    (junction.pos[0] + offset, 0.0),
                    1,
                )
                comps.append(seg)
                device.edges.append((trap_id, seg.id))
                device.edges.append((seg.id, junction.id))
        device.validate()
        return device
    return grid_device_from_sites(sites, capacity)


def build_device(topology: str, num_traps: int, capacity: int) -> QCCDDevice:
    """Topology factory for rectangular/linear/star devices."""
    if topology == "linear":
        return linear_device(num_traps, capacity)
    if topology == "switch":
        return switch_device(num_traps, capacity)
    if topology == "grid":
        import math

        rows = max(1, round(math.sqrt(num_traps)))
        cols = math.ceil(num_traps / rows)
        return grid_device(rows, cols, capacity)
    raise ValueError(f"unknown topology {topology!r}; expected {TOPOLOGIES}")
