"""Control-system wiring methods (Sec. 3.3).

The wiring method changes three things downstream:

1. the scheduler's parallelism — WISE's shared switch network means
   only primitive operations *of the same type* may overlap in time;
2. the noise model — WISE requires recooling before gates, replacing
   the heating-dependent fidelity with fixed cooled-gate errors at the
   cost of +850 us per two-qubit gate;
3. the resource estimate — DAC count and hence data rate and power.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import QCCDDevice
from .resources import ResourceEstimate, standard_resources, wise_resources
from .timing import DEFAULT_TIMES, OperationTimes


@dataclass(frozen=True)
class WiringMethod:
    """A control wiring architecture and its scheduling/noise knobs."""

    name: str
    type_exclusive: bool  # only same-type primitives may co-occur
    cooled_gates: bool

    def operation_times(self, base: OperationTimes = DEFAULT_TIMES) -> OperationTimes:
        if self.cooled_gates:
            return base.with_cooling()
        return base

    def resources(self, device: QCCDDevice) -> ResourceEstimate:
        if self.name == "standard":
            return standard_resources(device)
        if self.name == "wise":
            return wise_resources(device)
        raise ValueError(f"no resource model for wiring {self.name!r}")


STANDARD_WIRING = WiringMethod(name="standard", type_exclusive=False, cooled_gates=False)
WISE_WIRING = WiringMethod(name="wise", type_exclusive=True, cooled_gates=True)


def wiring_by_name(name: str) -> WiringMethod:
    methods = {"standard": STANDARD_WIRING, "wise": WISE_WIRING}
    try:
        return methods[name]
    except KeyError:
        raise ValueError(
            f"unknown wiring {name!r}; expected one of {sorted(methods)}"
        ) from None
