"""Electrode / DAC / data-rate / power estimation (Sec. 5.2).

The paper's model:

- linear zones: one per ion slot, ``N_lz = N_traps * capacity``;
- junction zones: one per junction, ``N_jz = N_junctions``;
- dynamic electrodes: 10 per linear zone, 20 per junction zone;
- shim electrodes: 10 per zone of either kind;
- standard wiring: one DAC per electrode, 50 Mbit/s and 30 mW each;
- WISE wiring: ~100 DACs drive all dynamic electrodes through a switch
  network and one DAC serves ~100 shim electrodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import QCCDDevice

DYNAMIC_ELECTRODES_PER_LINEAR_ZONE = 10
DYNAMIC_ELECTRODES_PER_JUNCTION_ZONE = 20
SHIM_ELECTRODES_PER_ZONE = 10
DATA_RATE_PER_DAC_BITPS = 50e6
POWER_PER_DAC_W = 30e-3
WISE_DYNAMIC_DACS = 100
WISE_SHIM_ELECTRODES_PER_DAC = 100


@dataclass(frozen=True)
class ResourceEstimate:
    """Hardware footprint of one device under one wiring method."""

    num_traps: int
    num_junctions: int
    trap_capacity: int
    dynamic_electrodes: int
    shim_electrodes: int
    num_dacs: int
    data_rate_bitps: float
    power_w: float

    @property
    def electrodes(self) -> int:
        return self.dynamic_electrodes + self.shim_electrodes


def electrode_counts(device: QCCDDevice) -> tuple[int, int]:
    """(dynamic, shim) electrode counts of a device."""
    n_lz = device.num_traps * device.trap_capacity
    n_jz = device.num_junctions
    dynamic = (
        DYNAMIC_ELECTRODES_PER_LINEAR_ZONE * n_lz
        + DYNAMIC_ELECTRODES_PER_JUNCTION_ZONE * n_jz
    )
    shim = SHIM_ELECTRODES_PER_ZONE * (n_lz + n_jz)
    return dynamic, shim


def standard_resources(device: QCCDDevice) -> ResourceEstimate:
    """One DAC per electrode (the standard architecture, Figure 4a)."""
    dynamic, shim = electrode_counts(device)
    dacs = dynamic + shim
    return ResourceEstimate(
        num_traps=device.num_traps,
        num_junctions=device.num_junctions,
        trap_capacity=device.trap_capacity,
        dynamic_electrodes=dynamic,
        shim_electrodes=shim,
        num_dacs=dacs,
        data_rate_bitps=DATA_RATE_PER_DAC_BITPS * dacs,
        power_w=POWER_PER_DAC_W * dacs,
    )


def wise_resources(device: QCCDDevice) -> ResourceEstimate:
    """Switch-network demultiplexed wiring (Figure 4b)."""
    dynamic, shim = electrode_counts(device)
    dacs = WISE_DYNAMIC_DACS + shim // WISE_SHIM_ELECTRODES_PER_DAC
    return ResourceEstimate(
        num_traps=device.num_traps,
        num_junctions=device.num_junctions,
        trap_capacity=device.trap_capacity,
        dynamic_electrodes=dynamic,
        shim_electrodes=shim,
        num_dacs=dacs,
        data_rate_bitps=DATA_RATE_PER_DAC_BITPS * dacs,
        power_w=POWER_PER_DAC_W * dacs,
    )
