"""QCCD hardware model: components, topologies, timing, wiring, resources."""

from .components import Component, ComponentKind
from .device import QCCDDevice
from .resources import (
    ResourceEstimate,
    electrode_counts,
    standard_resources,
    wise_resources,
)
from .timing import DEFAULT_TIMES, OperationTimes
from .topologies import (
    TOPOLOGIES,
    build_device,
    grid_device,
    grid_device_from_sites,
    linear_device,
    switch_device,
)
from .wiring import STANDARD_WIRING, WISE_WIRING, WiringMethod, wiring_by_name

__all__ = [
    "Component",
    "ComponentKind",
    "QCCDDevice",
    "ResourceEstimate",
    "electrode_counts",
    "standard_resources",
    "wise_resources",
    "DEFAULT_TIMES",
    "OperationTimes",
    "TOPOLOGIES",
    "build_device",
    "grid_device",
    "grid_device_from_sites",
    "linear_device",
    "switch_device",
    "STANDARD_WIRING",
    "WISE_WIRING",
    "WiringMethod",
    "wiring_by_name",
]
