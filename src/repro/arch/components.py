"""QCCD hardware components: traps, junctions and transport segments.

The abstract device view of Figure 1(c): ions live in linear traps;
traps are joined by shuttling *segments*, optionally through *junctions*
(X-crossings).  Occupancy rules follow Sec. 4.3: traps hold at most
``capacity`` ions, junctions and segments at most one (the all-to-all
switch junction is the paper's optimistic exception and is modelled as
a non-blocking crossbar with unbounded occupancy).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ComponentKind(Enum):
    TRAP = "trap"
    JUNCTION = "junction"
    SEGMENT = "segment"


@dataclass(frozen=True)
class Component:
    """One hardware component of the QCCD device graph."""

    id: int
    kind: ComponentKind
    pos: tuple[float, float]
    capacity: int

    @property
    def is_trap(self) -> bool:
        return self.kind is ComponentKind.TRAP

    @property
    def is_junction(self) -> bool:
        return self.kind is ComponentKind.JUNCTION

    @property
    def is_segment(self) -> bool:
        return self.kind is ComponentKind.SEGMENT

    def __repr__(self) -> str:
        return f"{self.kind.value}{self.id}@{self.pos}"
