"""Operation timing model (Table 1 of the paper).

All durations are in microseconds.  Composite durations encode our
documented gate decompositions: CNOT = one MS gate plus four 5 us
rotations (RZ is a virtual frame update costing nothing, as on real
trapped-ion hardware), an in-trap gate swap = three MS gates.
The WISE cooling model (Sec. 5.1) adds 850 us to every two-qubit gate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class OperationTimes:
    """Durations (us) of the QCCD primitive operations t1-t11."""

    ms_gate: float = 40.0          # t1  two-qubit Molmer-Sorensen
    rotation: float = 5.0          # t2-t4 single-ion rotation
    measurement: float = 400.0     # t5
    reset: float = 50.0            # t6
    shuttle: float = 5.0           # t7  per segment traversal
    split: float = 80.0            # t8
    merge: float = 80.0            # t9
    junction_entry: float = 100.0  # t10
    junction_exit: float = 100.0   # t11
    cooling_overhead_2q: float = 0.0  # extra per MS gate (WISE cooling)

    # --- composite gate durations -------------------------------------
    @property
    def cx(self) -> float:
        """CNOT: RY(c), MS, RX(c), RX(t), RY(c) with RZ free."""
        return self.ms_gate + self.cooling_overhead_2q + 4 * self.rotation

    @property
    def hadamard(self) -> float:
        """H = virtual RZ + one RY rotation."""
        return self.rotation

    @property
    def swap(self) -> float:
        """In-trap gate swap = three MS gates."""
        return 3 * (self.ms_gate + self.cooling_overhead_2q)

    def gate_duration(self, kind: str) -> float:
        table = {
            "CX": self.cx,
            "H": self.hadamard,
            "M": self.measurement,
            "R": self.reset,
            "SWAP": self.swap,
        }
        try:
            return table[kind]
        except KeyError:
            raise ValueError(f"unknown gate kind {kind!r}") from None

    def movement_duration(self, kind: str) -> float:
        table = {
            "SPLIT": self.split,
            "MERGE": self.merge,
            "SHUTTLE": self.shuttle,
            "JUNCTION_ENTRY": self.junction_entry,
            "JUNCTION_EXIT": self.junction_exit,
        }
        try:
            return table[kind]
        except KeyError:
            raise ValueError(f"unknown movement kind {kind!r}") from None

    def with_cooling(self, overhead: float = 850.0) -> "OperationTimes":
        """The WISE cooled-gate timing variant."""
        return replace(self, cooling_overhead_2q=overhead)


DEFAULT_TIMES = OperationTimes()
