"""Optional compiled matching kernel for large MWPM clusters.

Deep near-threshold syndromes produce clusters too big for the pure-
python subset DP (``_dp_match`` caps at 10 nodes) and fall back to
networkx blossom matching, whose per-cluster constant is the dominant
cost in that regime.  This module feature-probes **numba** and, when
present, offers a JIT-compiled exact subset-DP matcher that extends the
DP range to :data:`NATIVE_MAX_CLUSTER` nodes — the 10-to-20-defect
clusters that the blossom path otherwise eats.

The kernel is **opt-in** (``configure(True)``, or ``--native-blossom``
on the sweep CLI; pool drivers forward the setting to their workers)
and degrades gracefully: without numba — this container does not ship
it — ``enabled()`` stays ``False`` and :class:`~repro.decoders.mwpm.
MwpmDecoder` keeps using its pure-python blossom fallback, so nothing
in the tier-1 suite ever requires the compiled path.

Caveat on exactness: both the DP and blossom find *minimum-weight*
matchings, but they may break weight ties differently, so corrections
on 11+-node clusters can legally differ between the two (equal total
weight, different pairing).  That is why the kernel is opt-in rather
than default: the engine's bit-identical-across-backends guarantee
assumes every worker decodes with the same matcher.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba
except Exception:  # pragma: no cover - the container path
    numba = None

# Largest cluster the compiled subset DP accepts: 2^20 table rows
# (~8 MB float64) and ~20M inner steps per cluster — past that the
# exponential table loses to blossom even compiled.
NATIVE_MAX_CLUSTER = 20

_requested = False


def available() -> bool:
    """Whether the compiled kernel can actually run here."""
    return numba is not None


def requested() -> bool:
    """Whether the caller opted in (independent of availability) —
    what pool drivers forward to workers, which probe for themselves."""
    return _requested


def enabled() -> bool:
    return _requested and numba is not None


def configure(enabled_flag: bool) -> None:
    """Opt in/out of the native kernel (per process; workers receive
    the driver's setting via the pool ``config`` message)."""
    global _requested
    _requested = bool(enabled_flag)


if numba is not None:  # pragma: no cover - exercised only with numba

    @numba.njit(cache=False)
    def _dp_match_kernel(db, dd):  # type: ignore[misc]
        m = db.shape[0]
        size = 1 << m
        cost = np.full(size, np.inf)
        choice = np.full(size, -1, np.int64)
        cost[0] = 0.0
        for subset in range(1, size):
            i = 0
            while not (subset >> i) & 1:
                i += 1
            rest = subset ^ (1 << i)
            best = cost[rest] + db[i]
            pick = -1
            for j in range(i + 1, m):
                if (rest >> j) & 1:
                    c = cost[rest ^ (1 << j)] + dd[i, j]
                    if c < best:
                        best = c
                        pick = j
            cost[subset] = best
            choice[subset] = pick
        pairs = np.empty((m, 2), np.int64)
        n = 0
        subset = size - 1
        while subset:
            i = 0
            while not (subset >> i) & 1:
                i += 1
            j = choice[subset]
            pairs[n, 0] = i
            pairs[n, 1] = j
            n += 1
            subset ^= 1 << i
            if j >= 0:
                subset ^= 1 << j
        return pairs[:n]

else:
    _dp_match_kernel = None


def native_match(db: np.ndarray, dd: np.ndarray) -> list[tuple[int, int]]:
    """Exact minimum-weight matching-with-boundary, compiled.

    Same contract (and same lowest-bit / ascending-partner tie
    breaking) as ``mwpm._dp_match``: returns ``(i, j)`` index pairs
    with ``j = -1`` meaning the boundary.  Callers must check
    :func:`enabled` first and keep clusters within
    :data:`NATIVE_MAX_CLUSTER`.
    """
    if _dp_match_kernel is None:  # pragma: no cover - defensive
        raise RuntimeError("native kernel unavailable (numba not installed)")
    pairs = _dp_match_kernel(
        np.ascontiguousarray(db, dtype=np.float64),
        np.ascontiguousarray(dd, dtype=np.float64),
    )
    return [(int(i), int(j)) for i, j in pairs]
