"""Decoders for detector error models (PyMatching substitute).

- :class:`DetectorGraph` — weighted syndrome graph with boundary node.
- :class:`MwpmDecoder` — minimum-weight perfect matching (cluster-
  decomposed exact DP with a blossom fallback).
- :class:`UnionFindDecoder` — almost-linear union-find decoding.
- :class:`LookupDecoder` — exhaustive oracle for small models (tests).
- :class:`BatchDecoderMixin` / :func:`decode_batch_dedup` — shared
  deduplicated batch decoding with a cross-shard syndrome memo.
"""

from .batch import (
    BatchDecoderMixin,
    SyndromeMemo,
    decode_batch_dedup,
)
from .graph import DetectorEdge, DetectorGraph, llr_weight
from .lookup import LookupDecoder
from .mwpm import MwpmDecoder
from .union_find import UnionFindDecoder

__all__ = [
    "BatchDecoderMixin",
    "SyndromeMemo",
    "decode_batch_dedup",
    "DetectorEdge",
    "DetectorGraph",
    "llr_weight",
    "LookupDecoder",
    "MwpmDecoder",
    "UnionFindDecoder",
]
