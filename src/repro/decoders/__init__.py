"""Decoders for detector error models (PyMatching substitute).

- :class:`DetectorGraph` — weighted syndrome graph with boundary node.
- :class:`MwpmDecoder` — minimum-weight perfect matching (blossom).
- :class:`UnionFindDecoder` — almost-linear union-find decoding.
- :class:`LookupDecoder` — exhaustive oracle for small models (tests).
"""

from .graph import DetectorEdge, DetectorGraph, llr_weight
from .lookup import LookupDecoder
from .mwpm import MwpmDecoder
from .union_find import UnionFindDecoder

__all__ = [
    "DetectorEdge",
    "DetectorGraph",
    "llr_weight",
    "LookupDecoder",
    "MwpmDecoder",
    "UnionFindDecoder",
]
