"""Decoders for detector error models (PyMatching substitute).

- :class:`DetectorGraph` — weighted syndrome graph with boundary node.
- :class:`MwpmDecoder` — minimum-weight perfect matching (cluster-
  decomposed exact DP with a blossom fallback).
- :class:`UnionFindDecoder` — almost-linear union-find decoding, with a
  batched vectorised kernel behind the packed decode protocol.
- :class:`LookupDecoder` — exhaustive oracle for small models (tests).
- :class:`BatchDecoderMixin` / :func:`decode_packed_dedup` /
  :func:`decode_batch_dedup` — shared packed-native deduplicated batch
  decoding (``decode_packed_batch`` / ``logical_failures_packed``) with
  a cross-shard syndrome memo.
"""

from . import native
from .batch import (
    BatchDecoderMixin,
    SyndromeMemo,
    decode_batch_dedup,
    decode_packed_dedup,
    memo_owner,
    unique_packed_rows,
)
from .graph import DetectorEdge, DetectorGraph, llr_weight
from .lookup import LookupDecoder
from .mwpm import MwpmDecoder
from .union_find import UnionFindDecoder

__all__ = [
    "BatchDecoderMixin",
    "SyndromeMemo",
    "decode_batch_dedup",
    "decode_packed_dedup",
    "memo_owner",
    "unique_packed_rows",
    "native",
    "DetectorEdge",
    "DetectorGraph",
    "llr_weight",
    "LookupDecoder",
    "MwpmDecoder",
    "UnionFindDecoder",
]
