"""Detector graph shared by the matching decoders.

Graphlike errors from a :class:`DetectorErrorModel` become weighted
edges: an error flipping two detectors joins them, an error flipping one
detector joins it to the virtual *boundary* node.  Edge weights are
log-likelihood ratios ``log((1-p)/p)`` so that minimum-weight matching
corresponds to maximum-likelihood (independent-errors) decoding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import dijkstra

from ..sim.dem import DetectorErrorModel

_MIN_P = 1e-14


def llr_weight(p: float) -> float:
    """Log-likelihood weight of an error with probability ``p``."""
    p = min(max(p, _MIN_P), 1 - _MIN_P)
    return math.log((1 - p) / p)


@dataclass
class DetectorEdge:
    """One edge of the detector graph."""

    u: int
    v: int  # may equal the boundary index
    weight: float
    probability: float
    observables: int  # bitmask over logical observables


@dataclass
class DetectorGraph:
    """Weighted detector graph with a single virtual boundary node.

    Node ids 0..num_detectors-1 are detectors; node ``boundary`` is the
    virtual boundary.  ``floor_errors`` holds mechanisms with no
    detector symptoms at all — undecodable logical noise that lower
    bounds the achievable logical error rate.
    """

    num_detectors: int
    num_observables: int
    edges: list[DetectorEdge] = field(default_factory=list)
    floor_errors: list[tuple[int, float]] = field(default_factory=list)

    _dist: np.ndarray | None = None
    _pred: np.ndarray | None = None
    _adj: dict[int, list[int]] | None = None
    _pair_obs: dict[tuple[int, int], int] | None = None

    @property
    def boundary(self) -> int:
        return self.num_detectors

    @property
    def num_nodes(self) -> int:
        return self.num_detectors + 1

    # ------------------------------------------------------------------
    @classmethod
    def from_dem(cls, dem: DetectorErrorModel) -> "DetectorGraph":
        graph = cls(dem.num_detectors, dem.num_observables)
        merged: dict[tuple[int, int], tuple[float, int]] = {}
        for err in dem.errors:
            obs_mask = 0
            for o in err.observables:
                obs_mask |= 1 << o
            if len(err.detectors) == 0:
                if obs_mask:
                    graph.floor_errors.append((obs_mask, err.probability))
                continue
            if len(err.detectors) == 1:
                key = (err.detectors[0], graph.boundary)
            elif len(err.detectors) == 2:
                key = (min(err.detectors), max(err.detectors))
            else:
                raise ValueError(
                    "DetectorGraph requires a graphlike DEM; decompose first"
                )
            if key in merged:
                p_old, obs_old = merged[key]
                # Keep the observable mask of the more probable branch and
                # fold probabilities as independent sources.
                p_new = p_old + err.probability - 2 * p_old * err.probability
                obs_new = obs_old if p_old >= err.probability else obs_mask
                merged[key] = (p_new, obs_new)
            else:
                merged[key] = (err.probability, obs_mask)
        for (u, v), (p, obs_mask) in sorted(merged.items()):
            graph.edges.append(DetectorEdge(u, v, llr_weight(p), p, obs_mask))
        return graph

    # ------------------------------------------------------------------
    def edge_between(self, u: int, v: int) -> DetectorEdge | None:
        key = (min(u, v), max(u, v))
        for edge in self.edges:
            if (min(edge.u, edge.v), max(edge.u, edge.v)) == key:
                return edge
        return None

    def neighbors(self) -> dict[int, list[int]]:
        """Adjacency lists (cached) in terms of edge indices."""
        if self._adj is None:
            adj: dict[int, list[int]] = {i: [] for i in range(self.num_nodes)}
            for idx, edge in enumerate(self.edges):
                adj[edge.u].append(idx)
                adj[edge.v].append(idx)
            self._adj = adj
        return self._adj

    # ------------------------------------------------------------------
    def _ensure_shortest_paths(self) -> None:
        if self._dist is not None:
            return
        n = self.num_nodes
        rows = [e.u for e in self.edges]
        cols = [e.v for e in self.edges]
        data = [e.weight for e in self.edges]
        mat = coo_matrix((data, (rows, cols)), shape=(n, n))
        dist, pred = dijkstra(
            mat, directed=False, return_predecessors=True
        )
        self._dist = dist
        self._pred = pred

    def shortest_paths(self) -> tuple[np.ndarray, np.ndarray]:
        """The all-pairs ``(dist, pred)`` matrices, computing on demand.

        These are the expensive per-circuit decoder artefact (Dijkstra
        over every node); the engine's :class:`CompilationCache` stores
        them on disk and ships them to workers so each is computed at
        most once per circuit fleet-wide.
        """
        self._ensure_shortest_paths()
        return self._dist, self._pred

    def set_shortest_paths(self, dist: np.ndarray, pred: np.ndarray) -> None:
        """Inject precomputed ``(dist, pred)`` matrices (cache restore)."""
        dist = np.asarray(dist, dtype=np.float64)
        pred = np.asarray(pred)
        n = self.num_nodes
        if dist.shape != (n, n) or pred.shape != (n, n):
            raise ValueError(
                f"distance matrices must be {(n, n)}, got "
                f"{dist.shape} / {pred.shape}"
            )
        self._dist = dist
        self._pred = pred

    def distance(self, u: int, v: int) -> float:
        self._ensure_shortest_paths()
        return float(self._dist[u, v])

    def path_observable_mask(self, u: int, v: int) -> int:
        """XOR of edge observable masks along the shortest u-v path.

        Memoised per node pair: matching decoders re-derive the same
        pair corrections for every syndrome that matches them.
        """
        if u > v:
            u, v = v, u
        if self._pair_obs is None:
            self._pair_obs = {}
        cached = self._pair_obs.get((u, v))
        if cached is not None:
            return cached
        self._ensure_shortest_paths()
        edge_obs = self._edge_obs_lookup()
        mask = 0
        node = v
        while node != u:
            prev = int(self._pred[u, node])
            if prev < 0:
                raise ValueError(f"nodes {u} and {v} are disconnected")
            mask ^= edge_obs[(min(prev, node), max(prev, node))]
            node = prev
        self._pair_obs[(u, v)] = mask
        return mask

    def path_nodes(self, u: int, v: int) -> list[int]:
        self._ensure_shortest_paths()
        path = [v]
        node = v
        while node != u:
            node = int(self._pred[u, node])
            if node < 0:
                raise ValueError(f"nodes {u} and {v} are disconnected")
            path.append(node)
        path.reverse()
        return path

    def _edge_obs_lookup(self) -> dict[tuple[int, int], int]:
        lookup = getattr(self, "_edge_obs_memo", None)
        if lookup is not None:
            return lookup
        lookup = {}
        for edge in self.edges:
            key = (min(edge.u, edge.v), max(edge.u, edge.v))
            existing = lookup.get(key)
            if existing is None:
                lookup[key] = edge.observables
        object.__setattr__(self, "_edge_obs_memo", lookup)
        return lookup

    def floor_probability(self) -> float:
        """Probability that undetectable mechanisms flip observable 0."""
        p = 0.0
        for obs_mask, prob in self.floor_errors:
            if obs_mask & 1:
                p = p + prob - 2 * p * prob
        return p
