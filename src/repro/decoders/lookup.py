"""Exhaustive lookup decoder for small detector error models.

Enumerates all combinations of up to ``max_weight`` error mechanisms,
records the most likely cause of every reachable syndrome, and decodes
by table lookup.  Exponential in ``max_weight`` — intended only as a
ground-truth oracle for testing MWPM and union-find on small codes.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..sim.dem import DetectorErrorModel
from .batch import BatchDecoderMixin


class LookupDecoder(BatchDecoderMixin):
    """Maximum-likelihood-over-small-sets decoder."""

    def __init__(self, dem: DetectorErrorModel, max_weight: int = 2):
        if max_weight < 1:
            raise ValueError("max_weight must be >= 1")
        self.dem = dem
        self.num_detectors = dem.num_detectors
        self.max_weight = max_weight
        self._table: dict[frozenset[int], tuple[float, int]] = {}
        self._build()

    def _build(self) -> None:
        errors = self.dem.errors
        self._table[frozenset()] = (1.0, 0)
        for weight in range(1, self.max_weight + 1):
            for combo in combinations(range(len(errors)), weight):
                dets: set[int] = set()
                obs_mask = 0
                likelihood = 1.0
                for i in combo:
                    err = errors[i]
                    dets ^= set(err.detectors)
                    for o in err.observables:
                        obs_mask ^= 1 << o
                    likelihood *= err.probability
                key = frozenset(dets)
                prior = self._table.get(key)
                if prior is None or likelihood > prior[0]:
                    self._table[key] = (likelihood, obs_mask)

    def decode(self, detector_sample: np.ndarray) -> int:
        key = frozenset(int(d) for d in np.flatnonzero(detector_sample))
        entry = self._table.get(key)
        if entry is None:
            return 0  # unexplainable syndrome: abstain
        return entry[1]

    @property
    def num_syndromes(self) -> int:
        return len(self._table)
