"""Union-find decoder (Delfosse-Nickerson style).

Almost-linear-time alternative to blossom matching: clusters grow
outward from flagged detectors in weighted steps; clusters with even
syndrome parity (or touching the boundary) freeze; merged clusters pool
their parity.  A spanning-tree peeling pass then extracts a correction
inside the grown region.  Decoding accuracy is slightly below MWPM but
thresholds match to within a few tenths of a percent, which is why the
paper-scale sweeps use it for the largest distances.
"""

from __future__ import annotations

import numpy as np

from .batch import BatchDecoderMixin
from .graph import DetectorGraph


class _DisjointSet:
    def __init__(self, n: int):
        self.parent = list(range(n))
        self.rank = [0] * n

    def find(self, a: int) -> int:
        root = a
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[a] != root:
            self.parent[a], a = root, self.parent[a]
        return root

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        return ra


class UnionFindDecoder(BatchDecoderMixin):
    """Weighted-growth union-find decoding over a detector graph."""

    def __init__(self, graph: DetectorGraph):
        self.graph = graph
        self._adj = graph.neighbors()

    def decode(self, detector_sample: np.ndarray) -> int:
        graph = self.graph
        flagged = set(int(d) for d in np.flatnonzero(detector_sample))
        if not flagged:
            return 0
        boundary = graph.boundary
        n = graph.num_nodes
        edges = graph.edges

        dsu = _DisjointSet(n)
        # Cluster bookkeeping keyed by dsu root.
        parity = {d: 1 for d in flagged}
        touches_boundary: set[int] = set()
        growth = np.zeros(len(edges))          # how much of each edge is filled
        in_cluster = np.zeros(n, dtype=bool)
        for d in flagged:
            in_cluster[d] = True
        grown_edges: list[int] = []
        fully_grown = np.zeros(len(edges), dtype=bool)

        def cluster_active(root: int) -> bool:
            return parity.get(root, 0) % 2 == 1 and root not in touches_boundary

        active = {dsu.find(d) for d in flagged if cluster_active(dsu.find(d))}
        max_rounds = 4 * len(edges) + 8
        rounds = 0
        while active and rounds < max_rounds:
            rounds += 1
            # Each edge on an active cluster's boundary grows from every
            # active side (two-sided half-edge growth); the step is the
            # smallest amount that completes at least one edge, so merges
            # and freezes are processed before any over-growth.
            frontier: list[tuple[int, int]] = []  # (edge idx, active sides)
            for idx, edge in enumerate(edges):
                if fully_grown[idx]:
                    continue
                sides = 0
                for node in (edge.u, edge.v):
                    if node == boundary or not in_cluster[node]:
                        continue
                    if dsu.find(node) in active:
                        sides += 1
                if sides:
                    frontier.append((idx, sides))
            if not frontier:
                break
            step = min(
                (edges[idx].weight - growth[idx]) / sides
                for idx, sides in frontier
            )
            step = max(step, 0.0)
            newly_full: list[int] = []
            for idx, sides in frontier:
                growth[idx] += step * sides
                if growth[idx] >= edges[idx].weight - 1e-12:
                    fully_grown[idx] = True
                    newly_full.append(idx)
            for idx in newly_full:
                edge = edges[idx]
                grown_edges.append(idx)
                for node in (edge.u, edge.v):
                    if node == boundary:
                        continue
                    if not in_cluster[node]:
                        in_cluster[node] = True
                        parity.setdefault(dsu.find(node), 0)
                u_is_b = edge.u == boundary
                v_is_b = edge.v == boundary
                if u_is_b or v_is_b:
                    inner = edge.v if u_is_b else edge.u
                    root = dsu.find(inner)
                    touches_boundary.add(root)
                else:
                    ru, rv = dsu.find(edge.u), dsu.find(edge.v)
                    if ru != rv:
                        pu = parity.pop(ru, 0)
                        pv = parity.pop(rv, 0)
                        tb = (ru in touches_boundary) or (rv in touches_boundary)
                        touches_boundary.discard(ru)
                        touches_boundary.discard(rv)
                        r = dsu.union(ru, rv)
                        parity[r] = pu + pv
                        if tb:
                            touches_boundary.add(r)
            active = set()
            for node in np.flatnonzero(in_cluster):
                root = dsu.find(int(node))
                if cluster_active(root):
                    active.add(root)
        return self._peel(flagged, grown_edges)

    def _peel(self, flagged: set[int], grown_edges: list[int]) -> int:
        """Spanning-forest peeling inside the grown region."""
        graph = self.graph
        boundary = graph.boundary
        # Build the grown subgraph.
        adj: dict[int, list[int]] = {}
        for idx in grown_edges:
            edge = graph.edges[idx]
            adj.setdefault(edge.u, []).append(idx)
            adj.setdefault(edge.v, []).append(idx)

        # Spanning forest via BFS, rooting trees at the boundary if present.
        visited: set[int] = set()
        tree_edges: list[tuple[int, int, int]] = []  # (parent, child, edge idx)
        order: list[int] = []
        roots = [boundary] if boundary in adj else []
        roots += [n for n in adj if n != boundary]
        for root in roots:
            if root in visited:
                continue
            visited.add(root)
            queue = [root]
            while queue:
                node = queue.pop()
                order.append(node)
                for idx in adj.get(node, ()):
                    edge = graph.edges[idx]
                    other = edge.v if edge.u == node else edge.u
                    if other in visited:
                        continue
                    visited.add(other)
                    tree_edges.append((node, other, idx))
                    queue.append(other)

        # Peel leaves upward: a child with odd residual parity consumes its
        # tree edge (adding the edge's observable mask to the correction).
        residual = {node: (1 if node in flagged else 0) for node in visited}
        residual[boundary] = 0
        mask = 0
        for parent, child, idx in reversed(tree_edges):
            if residual.get(child, 0) % 2 == 1:
                mask ^= graph.edges[idx].observables
                residual[child] = 0
                if parent != boundary:
                    residual[parent] = residual.get(parent, 0) + 1
        return mask
