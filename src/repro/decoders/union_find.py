"""Union-find decoder (Delfosse-Nickerson style), batched + vectorised.

Almost-linear-time alternative to blossom matching: clusters grow
outward from flagged detectors in weighted steps; clusters with even
syndrome parity (or touching the boundary) freeze; merged clusters pool
their parity.  A spanning-forest peeling pass then extracts a correction
inside the grown region.  Decoding accuracy is slightly below MWPM but
thresholds match to within a few tenths of a percent, which is why the
paper-scale sweeps use it for the largest distances.

Two implementations share the semantics exactly:

- ``decode`` — the per-shot scalar reference (kept verbatim as the
  equivalence oracle for the batched kernel);
- ``decode_many`` / ``decode_unique_words`` — the **batched vectorised
  kernel** the packed pipeline calls.  Each growth round is computed
  with numpy over *all edges of all still-active syndromes at once*:
  an array-based DSU (per-row ``parent``/``rank`` with path-halving
  finds and pointer-doubling batch root resolution), frontier sides
  and the weighted growth step as masked reductions over the
  ``(batch, edges)`` plane, and per-root parity / boundary-contact
  tracked in ``(batch, nodes)`` arrays.  Only the rare merge events
  (a handful of completed edges per round) run scalar code, in the
  same edge-index order as the reference, so the grown-edge sets —
  and therefore the peeled corrections — are bit-identical.  Peeling
  runs over the precomputed edge arrays (endpoints + observable
  masks) instead of per-edge object traversal.

Near threshold, where nearly every syndrome is distinct and dedupe
stops helping, this removes the Python-loop-per-shot overhead that
made decoding the end-to-end bottleneck.
"""

from __future__ import annotations

import numpy as np

from ..sim.dem_sampler import unpack_bool_rows
from .batch import BatchDecoderMixin
from .graph import DetectorGraph

# Rows decoded per vectorised growth pass: bounds the (rows, edges) and
# (rows, nodes) work arrays to a few tens of MB on the largest sweep
# circuits without affecting results (rows are independent).
_BATCH_ROWS = 1024


class _DisjointSet:
    def __init__(self, n: int):
        self.parent = list(range(n))
        self.rank = [0] * n

    def find(self, a: int) -> int:
        root = a
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[a] != root:
            self.parent[a], a = root, self.parent[a]
        return root

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        return ra


def _batch_roots(parent: np.ndarray) -> np.ndarray:
    """Resolve every node's DSU root for a ``(rows, nodes)`` parent
    array by pointer doubling (chains are short: the per-row finds use
    path halving)."""
    roots = parent
    while True:
        nxt = np.take_along_axis(roots, roots, axis=1)
        if np.array_equal(nxt, roots):
            return roots
        roots = nxt


def _find_row(parent_row: np.ndarray, a: int) -> int:
    """Path-halving find on one row of the batch DSU."""
    while parent_row[a] != a:
        parent_row[a] = parent_row[parent_row[a]]
        a = int(parent_row[a])
    return int(a)


class UnionFindDecoder(BatchDecoderMixin):
    """Weighted-growth union-find decoding over a detector graph."""

    def __init__(self, graph: DetectorGraph):
        self.graph = graph
        self.num_detectors = graph.num_detectors
        # Precomputed edge arrays: the batched kernel's CSR-style view
        # of the graph (endpoints, weights, observable masks), shared
        # with the peeling pass.
        edges = graph.edges
        self._edge_u = np.array([e.u for e in edges], dtype=np.int64)
        self._edge_v = np.array([e.v for e in edges], dtype=np.int64)
        self._edge_w = np.array([e.weight for e in edges], dtype=np.float64)
        self._edge_obs = np.array([e.observables for e in edges], dtype=np.int64)

    # ------------------------------------------------------------------
    # Batched vectorised path (what the packed pipeline calls)
    # ------------------------------------------------------------------
    def decode_unique_words(self, det_words: np.ndarray) -> np.ndarray:
        """Batched kernel entry point for the packed decode protocol."""
        return self.decode_many(unpack_bool_rows(det_words, self.num_detectors))

    def decode_many(self, detector_samples: np.ndarray) -> np.ndarray:
        """Decode a ``(rows, detectors)`` boolean batch in vectorised
        growth rounds; bit-identical to per-row ``decode``."""
        samples = np.atleast_2d(np.asarray(detector_samples, dtype=bool))
        out = np.zeros(samples.shape[0], dtype=np.int64)
        nonempty = np.flatnonzero(samples.any(axis=1))
        for start in range(0, len(nonempty), _BATCH_ROWS):
            chunk = nonempty[start:start + _BATCH_ROWS]
            bits = samples[chunk]
            grown = self._grow_batch(bits)
            for slot, row in enumerate(chunk.tolist()):
                flagged = set(np.flatnonzero(bits[slot]).tolist())
                out[row] = self._peel(flagged, grown[slot])
        return out

    def _grow_batch(self, bits: np.ndarray) -> list[list[int]]:
        """Run the growth rounds for a batch of non-empty syndromes;
        returns each row's fully-grown edge list in completion order
        (identical to the scalar reference's ``grown_edges``)."""
        graph = self.graph
        nrows, nd = bits.shape
        n = graph.num_nodes
        ne = len(graph.edges)
        grown: list[list[int]] = [[] for _ in range(nrows)]
        if ne == 0:
            return grown
        eu, ev, ew = self._edge_u, self._edge_v, self._edge_w
        boundary = graph.boundary

        parent = np.broadcast_to(np.arange(n, dtype=np.int64), (nrows, n)).copy()
        rank = np.zeros((nrows, n), dtype=np.int8)
        # parity / touches are valid at root indices only; in_cluster
        # never includes the boundary (mirroring the scalar reference).
        parity = np.zeros((nrows, n), dtype=np.int64)
        parity[:, :nd] = bits
        touches = np.zeros((nrows, n), dtype=bool)
        in_cluster = np.zeros((nrows, n), dtype=bool)
        in_cluster[:, :nd] = bits
        growth = np.zeros((nrows, ne), dtype=np.float64)
        fully = np.zeros((nrows, ne), dtype=bool)

        alive = np.arange(nrows)
        max_rounds = 4 * ne + 8
        for _ in range(max_rounds):
            # Frontier sides over the whole (alive rows, edges) plane:
            # an edge grows once from each endpoint that sits in an
            # active (odd-parity, boundary-free) cluster.
            roots = _batch_roots(parent[alive])
            active_root = ((parity[alive] & 1) != 0) & ~touches[alive]
            node_active = in_cluster[alive] & np.take_along_axis(
                active_root, roots, axis=1
            )
            sides = node_active[:, eu].astype(np.int8)
            sides += node_active[:, ev].astype(np.int8)
            sides[fully[alive]] = 0
            cont = sides.any(axis=1)
            alive = alive[cont]
            if len(alive) == 0:
                break
            sides = sides[cont]
            # Per-row step: the smallest amount that completes at least
            # one frontier edge (two-sided edges fill twice as fast).
            sub_growth = growth[alive]
            with np.errstate(divide="ignore", invalid="ignore"):
                need = np.where(
                    sides > 0, (ew[None, :] - sub_growth) / sides, np.inf
                )
            step = np.maximum(need.min(axis=1), 0.0)
            was_full = fully[alive]
            sub_growth += step[:, None] * sides
            growth[alive] = sub_growth
            newly = (sides > 0) & ~was_full & (sub_growth >= ew[None, :] - 1e-12)
            fully[alive] |= newly
            # Merge events are rare (typically one edge per round per
            # row); process them scalar, in the reference's edge-index
            # order, so cluster bookkeeping stays bit-identical.
            hit_rows, hit_edges = np.nonzero(newly)
            for r, e in zip(hit_rows.tolist(), hit_edges.tolist()):
                b = int(alive[r])
                grown[b].append(e)
                u, v = int(eu[e]), int(ev[e])
                prow = parent[b]
                if u != boundary:
                    in_cluster[b, u] = True
                if v != boundary:
                    in_cluster[b, v] = True
                if u == boundary or v == boundary:
                    inner = v if u == boundary else u
                    touches[b, _find_row(prow, inner)] = True
                    continue
                ru, rv = _find_row(prow, u), _find_row(prow, v)
                if ru == rv:
                    continue
                if rank[b, ru] < rank[b, rv]:
                    ru, rv = rv, ru
                prow[rv] = ru
                if rank[b, ru] == rank[b, rv]:
                    rank[b, ru] += 1
                parity[b, ru] += parity[b, rv]
                parity[b, rv] = 0
                if touches[b, rv]:
                    touches[b, ru] = True
                    touches[b, rv] = False
        return grown

    # ------------------------------------------------------------------
    # Scalar reference path
    # ------------------------------------------------------------------
    def decode(self, detector_sample: np.ndarray) -> int:
        graph = self.graph
        flagged = set(int(d) for d in np.flatnonzero(detector_sample))
        if not flagged:
            return 0
        boundary = graph.boundary
        n = graph.num_nodes
        edges = graph.edges

        dsu = _DisjointSet(n)
        # Cluster bookkeeping keyed by dsu root.
        parity = {d: 1 for d in flagged}
        touches_boundary: set[int] = set()
        growth = np.zeros(len(edges))          # how much of each edge is filled
        in_cluster = np.zeros(n, dtype=bool)
        for d in flagged:
            in_cluster[d] = True
        grown_edges: list[int] = []
        fully_grown = np.zeros(len(edges), dtype=bool)

        def cluster_active(root: int) -> bool:
            return parity.get(root, 0) % 2 == 1 and root not in touches_boundary

        active = {dsu.find(d) for d in flagged if cluster_active(dsu.find(d))}
        max_rounds = 4 * len(edges) + 8
        rounds = 0
        while active and rounds < max_rounds:
            rounds += 1
            # Each edge on an active cluster's boundary grows from every
            # active side (two-sided half-edge growth); the step is the
            # smallest amount that completes at least one edge, so merges
            # and freezes are processed before any over-growth.
            frontier: list[tuple[int, int]] = []  # (edge idx, active sides)
            for idx, edge in enumerate(edges):
                if fully_grown[idx]:
                    continue
                sides = 0
                for node in (edge.u, edge.v):
                    if node == boundary or not in_cluster[node]:
                        continue
                    if dsu.find(node) in active:
                        sides += 1
                if sides:
                    frontier.append((idx, sides))
            if not frontier:
                break
            step = min(
                (edges[idx].weight - growth[idx]) / sides
                for idx, sides in frontier
            )
            step = max(step, 0.0)
            newly_full: list[int] = []
            for idx, sides in frontier:
                growth[idx] += step * sides
                if growth[idx] >= edges[idx].weight - 1e-12:
                    fully_grown[idx] = True
                    newly_full.append(idx)
            for idx in newly_full:
                edge = edges[idx]
                grown_edges.append(idx)
                for node in (edge.u, edge.v):
                    if node == boundary:
                        continue
                    if not in_cluster[node]:
                        in_cluster[node] = True
                        parity.setdefault(dsu.find(node), 0)
                u_is_b = edge.u == boundary
                v_is_b = edge.v == boundary
                if u_is_b or v_is_b:
                    inner = edge.v if u_is_b else edge.u
                    root = dsu.find(inner)
                    touches_boundary.add(root)
                else:
                    ru, rv = dsu.find(edge.u), dsu.find(edge.v)
                    if ru != rv:
                        pu = parity.pop(ru, 0)
                        pv = parity.pop(rv, 0)
                        tb = (ru in touches_boundary) or (rv in touches_boundary)
                        touches_boundary.discard(ru)
                        touches_boundary.discard(rv)
                        r = dsu.union(ru, rv)
                        parity[r] = pu + pv
                        if tb:
                            touches_boundary.add(r)
            active = set()
            for node in np.flatnonzero(in_cluster):
                root = dsu.find(int(node))
                if cluster_active(root):
                    active.add(root)
        return self._peel(flagged, grown_edges)

    def _peel(self, flagged: set[int], grown_edges: list[int]) -> int:
        """Spanning-forest peeling inside the grown region (shared by
        the scalar and batched paths; operates on the precomputed edge
        arrays)."""
        boundary = self.graph.boundary
        eu, ev, eobs = self._edge_u, self._edge_v, self._edge_obs
        # Build the grown subgraph.
        adj: dict[int, list[int]] = {}
        for idx in grown_edges:
            adj.setdefault(int(eu[idx]), []).append(idx)
            adj.setdefault(int(ev[idx]), []).append(idx)

        # Spanning forest via BFS, rooting trees at the boundary if present.
        visited: set[int] = set()
        tree_edges: list[tuple[int, int, int]] = []  # (parent, child, edge idx)
        order: list[int] = []
        roots = [boundary] if boundary in adj else []
        roots += [n for n in adj if n != boundary]
        for root in roots:
            if root in visited:
                continue
            visited.add(root)
            queue = [root]
            while queue:
                node = queue.pop()
                order.append(node)
                for idx in adj.get(node, ()):
                    u = int(eu[idx])
                    other = int(ev[idx]) if u == node else u
                    if other in visited:
                        continue
                    visited.add(other)
                    tree_edges.append((node, other, idx))
                    queue.append(other)

        # Peel leaves upward: a child with odd residual parity consumes its
        # tree edge (adding the edge's observable mask to the correction).
        residual = {node: (1 if node in flagged else 0) for node in visited}
        residual[boundary] = 0
        mask = 0
        for parent, child, idx in reversed(tree_edges):
            if residual.get(child, 0) % 2 == 1:
                mask ^= int(eobs[idx])
                residual[child] = 0
                if parent != boundary:
                    residual[parent] = residual.get(parent, 0) + 1
        return mask
