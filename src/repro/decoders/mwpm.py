"""Minimum-weight perfect matching decoder (PyMatching substitute).

The decoder pairs up flagged detectors (or matches them to the virtual
boundary) so that the total log-likelihood weight of the implied error
chains is minimised, then reports which logical observables those chains
flip.  Distances come from one all-pairs Dijkstra over the detector
graph — a per-circuit artefact the engine caches on disk and ships to
workers, so no decode ever recomputes it.

Per-decode matching avoids rebuilding a networkx complete graph per
shot.  Three exact reductions run first:

1. **boundary-dominated pruning** — a pair edge with
   ``d(a, b) >= d(a, B) + d(b, B)`` can always be replaced by two
   boundary matches at no extra cost, so only *useful* edges (strictly
   cheaper than going through the boundary) need be considered;
2. **cluster decomposition** — connected components of the useful-edge
   graph are independent matching subproblems (no optimal matching
   pairs across them);
3. **exact subset DP** per small cluster — minimum-weight matching
   with a boundary option in O(2^m * m), which at the error rates
   worth sweeping covers nearly every syndrome.

Clusters too large for the DP fall back to blossom matching
(networkx), on a *halved* construction: ``k`` nodes with pair weights
``min(d(a,b), d(a,B)+d(b,B))`` plus one virtual boundary node when
``k`` is odd — equivalent to, and much smaller than, the classic
2k-node boundary-copy clique.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from ..sim.dem_sampler import unpack_bool_rows
from . import native
from .batch import BatchDecoderMixin
from .graph import DetectorGraph

# Largest cluster solved by the exact subset DP; beyond this the
# O(2^m * m) table is slower than blossom on the cluster.
_DP_MAX_CLUSTER = 10


# Cluster-mask memo bound (entries): clusters are local structures and
# recur across distinct syndromes far more often than whole syndromes
# repeat, so this is the decoder's highest-leverage cache.
_CLUSTER_MEMO_LIMIT = 1 << 18

# Past this many detectors the dense (n, n) pair-mask cache behind the
# batched 2-defect fast path would cost tens of MB; larger graphs fall
# back to the dict-memoised per-pair walk (still correct, just scalar
# mask gathers).
_PAIR_DENSE_LIMIT = 2048


class MwpmDecoder(BatchDecoderMixin):
    """Decode detector samples by minimum-weight perfect matching."""

    def __init__(self, graph: DetectorGraph):
        self.graph = graph
        self.num_detectors = graph.num_detectors
        self._dist, _ = graph.shortest_paths()
        # cluster node tuple -> correction mask of its optimal matching
        self._cluster_masks: dict[tuple[int, ...], int] = {}
        # Vectorised fast-path caches, built lazily on the first batched
        # decode: per-detector boundary masks/finiteness and a dense
        # lazily-filled (u, v) pair-mask matrix for the 2-defect path.
        self._bmasks: np.ndarray | None = None
        self._bfinite: np.ndarray | None = None
        self._pair_mask: np.ndarray | None = None
        self._pair_known: np.ndarray | None = None

    # ------------------------------------------------------------------
    def decode_unique_words(self, det_words: np.ndarray) -> np.ndarray:
        """Vectorised batched decode of ``(k, words)`` distinct packed
        syndromes — bit-identical to mapping scalar :meth:`decode`.

        The scalar path spends its time in per-row python overhead:
        useful-edge pruning, component labelling and mask lookups for
        one syndrome at a time.  This kernel runs the whole pipeline
        over every distinct row at once:

        1. extract all defects with one ``np.nonzero``, gather every
           boundary distance in one fancy index;
        2. enumerate intra-row defect pairs grouped by defect count
           (one ``triu_indices`` expansion per distinct count) and test
           usefulness — ``d(a,b) < d(a,B) + d(b,B)`` — for all pairs in
           one comparison;
        3. label connected components of the useful-edge graph with a
           union-find over the global defect array (edges never cross
           rows, so all rows share one pass);
        4. resolve **singleton** components with a boundary-mask gather
           and **2-node** components with a pair-mask gather (a useful
           edge always pairs), XOR-scattered into their rows;
        5. solve the rare **3+-node** components through the same
           memoised cluster machinery (:meth:`_solve_cluster`) the
           scalar path uses — node tuples are ascending, matching the
           canonical ``_components`` order, so both paths share the
           cluster-mask memo and break weight ties identically.
        """
        words = np.atleast_2d(np.ascontiguousarray(det_words, dtype=np.uint64))
        rows = unpack_bool_rows(words, self.num_detectors)
        out = np.zeros(words.shape[0], dtype=np.int64)
        ridx, cols = np.nonzero(rows)
        if cols.size == 0:
            return out
        counts = np.bincount(ridx, minlength=words.shape[0])
        dist = self._dist
        boundary = self.graph.boundary
        db = dist[cols, boundary]
        # Intra-row defect pairs, built per distinct defect count so the
        # local (i, j) triangle expands to global indices in one shot.
        offsets = np.concatenate(([0], np.cumsum(counts)))
        pa_parts: list[np.ndarray] = []
        pb_parts: list[np.ndarray] = []
        for k in np.unique(counts):
            if k < 2:
                continue
            base = offsets[np.flatnonzero(counts == k)][:, None]
            iu, ju = np.triu_indices(int(k), 1)
            pa_parts.append((base + iu[None, :]).ravel())
            pb_parts.append((base + ju[None, :]).ravel())
        edges_a = edges_b = None
        if pa_parts:
            pa = np.concatenate(pa_parts)
            pb = np.concatenate(pb_parts)
            useful = dist[cols[pa], cols[pb]] < db[pa] + db[pb] - 1e-12
            edges_a, edges_b = pa[useful], pb[useful]
        # Union-find over defects; union-by-min keeps each root the
        # smallest member, so stable sorts below recover components in
        # ascending defect order — the canonical cluster order.
        parent = list(range(cols.size))
        if edges_a is not None and edges_a.size:
            for a, b in zip(edges_a.tolist(), edges_b.tolist()):
                while parent[a] != a:
                    parent[a] = parent[parent[a]]
                    a = parent[a]
                while parent[b] != b:
                    parent[b] = parent[parent[b]]
                    b = parent[b]
                if a != b:
                    if a < b:
                        parent[b] = a
                    else:
                        parent[a] = b
        roots = np.asarray(parent, dtype=np.intp)
        while True:
            nxt = roots[roots]
            if np.array_equal(nxt, roots):
                break
            roots = nxt
        _, comp_of, comp_sizes = np.unique(
            roots, return_inverse=True, return_counts=True
        )
        size_at = comp_sizes[comp_of]
        singles = np.flatnonzero(size_at == 1)
        if singles.size:
            self._ensure_boundary_masks()
            u = cols[singles]
            masks = np.where(self._bfinite[u], self._bmasks[u], 0)
            np.bitwise_xor.at(out, ridx[singles], masks)
        duos = np.flatnonzero(size_at == 2)
        if duos.size:
            duos = duos[np.argsort(roots[duos], kind="stable")]
            a = duos[0::2]  # members adjacent per component, ascending
            b = duos[1::2]
            np.bitwise_xor.at(out, ridx[a], self._pair_masks(cols[a], cols[b]))
        big = np.flatnonzero(size_at >= 3)
        if big.size:
            self._solve_clusters_batch(big, roots, ridx, cols, db, out)
        return out

    def _solve_clusters_batch(
        self,
        big: np.ndarray,
        roots: np.ndarray,
        ridx: np.ndarray,
        cols: np.ndarray,
        db: np.ndarray,
        out: np.ndarray,
    ) -> None:
        """Resolve all 3+-node components of a batch, vectorised.

        Components are deduplicated against the cluster-mask memo *and*
        against each other (the same local cluster often appears in
        many rows of one batch), then the remaining misses are grouped
        by size and solved en masse: one :func:`_match3_batch` /
        :func:`_dp_match_batch` call per size runs the exact matcher
        for every cluster of that size at once, and the resulting pair
        lists turn into correction masks with two gathers.  Clusters
        past the DP cap (or groups too small to amortise the batched
        table) take the scalar :meth:`_solve_cluster` road.
        """
        dist = self._dist
        memo = self._cluster_masks
        big = big[np.argsort(roots[big], kind="stable")]
        cuts = np.flatnonzero(np.diff(roots[big])) + 1
        pending: dict[tuple[int, ...], tuple[np.ndarray, list[int]]] = {}
        for members in np.split(big, cuts):
            nodes = cols[members]
            key = tuple(nodes.tolist())
            row = int(ridx[members[0]])
            cached = memo.get(key)
            if cached is not None:
                out[row] ^= cached
                continue
            entry = pending.get(key)
            if entry is not None:
                entry[1].append(row)
            else:
                pending[key] = (members, [row])
        groups: dict[int, list[tuple[tuple[int, ...], np.ndarray, list[int]]]]
        groups = {}
        for key, (members, rows_hit) in pending.items():
            m = members.size
            if 3 <= m <= _DP_MAX_CLUSTER:
                groups.setdefault(m, []).append((key, members, rows_hit))
            else:
                nodes = cols[members]
                val = self._solve_cluster(
                    key, db[members], dist[np.ix_(nodes, nodes)]
                )
                for row in rows_hit:
                    out[row] ^= val
        for m, entries in groups.items():
            if len(entries) < _vec_min_clusters(m):
                for key, members, rows_hit in entries:
                    nodes = cols[members]
                    val = self._solve_cluster(
                        key, db[members], dist[np.ix_(nodes, nodes)]
                    )
                    for row in rows_hit:
                        out[row] ^= val
                continue
            members_mat = np.stack([members for _, members, _ in entries])
            nodes_mat = cols[members_mat]
            db_mat = db[members_mat]
            dd_mat = dist[nodes_mat[:, :, None], nodes_mat[:, None, :]]
            if m == 3:
                pairs = _match3_batch(db_mat, dd_mat)
            else:
                pairs = _dp_match_batch(db_mat, dd_mat)
            masks = self._masks_from_pairs(nodes_mat, pairs)
            for t, (key, _, rows_hit) in enumerate(entries):
                val = int(masks[t])
                if len(memo) < _CLUSTER_MEMO_LIMIT:
                    memo[key] = val
                for row in rows_hit:
                    out[row] ^= val

    def _masks_from_pairs(
        self, nodes_mat: np.ndarray, pairs: np.ndarray
    ) -> np.ndarray:
        """Correction masks for a size-grouped batch of solved clusters.

        ``pairs`` is the ``(clusters, slots, 2)`` output of a batched
        matcher: local index pairs with ``j = -1`` meaning the boundary
        and ``-2`` padding unused slots.  Boundary matches gather the
        per-detector boundary masks (unmatchable detectors abstain, as
        in the scalar path); pair matches gather the dense pair-mask
        cache.  One XOR-scatter folds every contribution into its
        cluster's mask.
        """
        self._ensure_boundary_masks()
        masks = np.zeros(nodes_mat.shape[0], dtype=np.int64)
        cidx, sidx = np.nonzero(pairs[:, :, 0] != -2)
        ii = pairs[cidx, sidx, 0].astype(np.intp)
        jj = pairs[cidx, sidx, 1].astype(np.intp)
        u = nodes_mat[cidx, ii]
        bnd = jj < 0
        if bnd.any():
            ub = u[bnd]
            np.bitwise_xor.at(
                masks, cidx[bnd],
                np.where(self._bfinite[ub], self._bmasks[ub], 0),
            )
        paired = ~bnd
        if paired.any():
            v = nodes_mat[cidx[paired], jj[paired]]
            np.bitwise_xor.at(
                masks, cidx[paired], self._pair_masks(u[paired], v)
            )
        return masks

    def _ensure_boundary_masks(self) -> None:
        """Per-detector boundary-chain masks as gatherable arrays."""
        if self._bmasks is not None:
            return
        graph = self.graph
        boundary = graph.boundary
        finite = np.isfinite(self._dist[:self.num_detectors, boundary])
        masks = np.zeros(self.num_detectors, dtype=np.int64)
        for u in np.flatnonzero(finite).tolist():
            masks[u] = graph.path_observable_mask(u, boundary)
        self._bmasks = masks
        self._bfinite = finite

    def _pair_masks(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Path-observable masks for defect pairs, vectorised.

        Small graphs keep a dense ``(n, n)`` mask matrix filled lazily
        (one memoised path walk per *new* pair, a fancy-indexed gather
        for every recurring one); huge graphs skip the dense cache and
        walk each pair through the graph's dict memo.
        """
        gpm = self.graph.path_observable_mask
        if self._pair_mask is None:
            if self.num_detectors > _PAIR_DENSE_LIMIT:
                return np.fromiter(
                    (gpm(int(u), int(v)) for u, v in zip(a, b)),
                    dtype=np.int64, count=len(a),
                )
            n = self.num_detectors
            self._pair_mask = np.zeros((n, n), dtype=np.int64)
            self._pair_known = np.zeros((n, n), dtype=bool)
        masks = self._pair_mask[a, b]
        known = self._pair_known[a, b]
        if not known.all():
            for idx in np.flatnonzero(~known).tolist():
                u, v = int(a[idx]), int(b[idx])
                mask = gpm(u, v)
                self._pair_mask[u, v] = self._pair_mask[v, u] = mask
                self._pair_known[u, v] = self._pair_known[v, u] = True
                masks[idx] = mask
        return masks

    # ------------------------------------------------------------------
    def decode(self, detector_sample: np.ndarray) -> int:
        """Observable bitmask correction for one shot's detector bits."""
        flagged = np.flatnonzero(detector_sample)
        k = len(flagged)
        if k == 0:
            return 0
        graph = self.graph
        boundary = graph.boundary
        dist = self._dist
        # Scalar fast paths: at the error rates worth sweeping most
        # non-empty syndromes flag one or two detectors, where the full
        # cluster machinery is pure overhead.
        if k == 1:
            u = int(flagged[0])
            if np.isfinite(dist[u, boundary]):
                return graph.path_observable_mask(u, boundary)
            return 0  # unmatchable, abstain
        if k == 2:
            a, b = int(flagged[0]), int(flagged[1])
            d_a, d_b = dist[a, boundary], dist[b, boundary]
            if dist[a, b] < d_a + d_b - 1e-12:
                return graph.path_observable_mask(a, b)
            mask = 0
            if np.isfinite(d_a):
                mask ^= graph.path_observable_mask(a, boundary)
            if np.isfinite(d_b):
                mask ^= graph.path_observable_mask(b, boundary)
            return mask
        db = dist[flagged, boundary]
        dd = dist[np.ix_(flagged, flagged)]

        # Useful-edge adjacency: pairing a-b only ever beats matching
        # both to the boundary when it is strictly cheaper.
        useful = dd < (db[:, None] + db[None, :] - 1e-12)
        np.fill_diagonal(useful, False)

        mask = 0
        for cluster in _components(useful):
            if len(cluster) == 1:
                i = cluster[0]
                if np.isfinite(db[i]):  # else: unmatchable, abstain
                    mask ^= graph.path_observable_mask(int(flagged[i]), boundary)
                continue
            nodes = tuple(int(flagged[i]) for i in cluster)
            mask ^= self._solve_cluster(
                nodes, db[cluster], dd[np.ix_(cluster, cluster)]
            )
        return mask

    def _solve_cluster(
        self, nodes: tuple[int, ...], db: np.ndarray, dd: np.ndarray
    ) -> int:
        """Optimal correction mask for one 2+-node cluster.

        Shared by the scalar and batched paths: a cluster's optimal
        correction depends only on its node set, and local clusters
        recur across distinct syndromes, so the mask is memoised (by
        the ascending node tuple) and only unseen clusters are solved.
        """
        cached = self._cluster_masks.get(nodes)
        if cached is not None:
            return cached
        m = len(nodes)
        if m == 2:
            # A useful edge is strictly cheaper than two boundary
            # chains by definition, so a 2-cluster always pairs.
            pairs: tuple[tuple[int, int], ...] | list[tuple[int, int]]
            pairs = ((0, 1),)
        elif m == 3:
            pairs = _match3(db, dd)
        elif m <= _DP_MAX_CLUSTER:
            pairs = _dp_match(db, dd)
        elif m <= native.NATIVE_MAX_CLUSTER and native.enabled():
            # Opt-in compiled kernel: the exact subset DP, JIT-ed,
            # stretched past the pure-python cap — see
            # repro.decoders.native for the tie-breaking caveat.
            pairs = native.native_match(db, dd)
        else:
            pairs = _blossom_match(db, dd)
        graph = self.graph
        boundary = graph.boundary
        cluster_mask = 0
        for i, j in pairs:
            u = nodes[i]
            if j < 0:
                if np.isfinite(db[i]):
                    cluster_mask ^= graph.path_observable_mask(u, boundary)
            else:
                cluster_mask ^= graph.path_observable_mask(u, nodes[j])
        if len(self._cluster_masks) < _CLUSTER_MEMO_LIMIT:
            self._cluster_masks[nodes] = cluster_mask
        return cluster_mask


# ----------------------------------------------------------------------
# Matching internals (module-level: shared, and independently testable)
# ----------------------------------------------------------------------
def _components(useful: np.ndarray) -> list[list[int]]:
    """Connected components of the boolean useful-edge adjacency.

    Members come back in ascending order — the canonical cluster order
    shared with the batched union-find labelling, so scalar and batched
    decodes key the cluster-mask memo identically and feed the subset
    DP nodes in the same order (same weight-tie breaking).
    """
    k = useful.shape[0]
    rows, cols = np.nonzero(useful)
    adj: list[list[int]] = [[] for _ in range(k)]
    for a, b in zip(rows.tolist(), cols.tolist()):
        adj[a].append(b)
    comp = [-1] * k
    clusters: list[list[int]] = []
    for start in range(k):
        if comp[start] >= 0:
            continue
        label = len(clusters)
        members = [start]
        comp[start] = label
        stack = [start]
        while stack:
            for b in adj[stack.pop()]:
                if comp[b] < 0:
                    comp[b] = label
                    members.append(b)
                    stack.append(b)
        members.sort()
        clusters.append(members)
    return clusters


def _match3(db: np.ndarray, dd: np.ndarray) -> tuple[tuple[int, int], ...]:
    """Exact matching-with-boundary for a 3-node cluster: one of the
    three pair-plus-boundary splits, or all three to the boundary."""
    best = db[0] + db[1] + db[2]
    pairs = ((0, -1), (1, -1), (2, -1))
    for i, j, k in ((0, 1, 2), (0, 2, 1), (1, 2, 0)):
        cost = dd[i, j] + db[k]
        if cost < best:
            best = cost
            pairs = ((i, j), (k, -1))
    return pairs


# bits-of-subset lookup shared by every _dp_match call: _BITS[s] lists
# the set bit positions of s, for all subsets up to the DP size cap.
_BITS: list[tuple[int, ...]] = [
    tuple(b for b in range(_DP_MAX_CLUSTER) if s >> b & 1)
    for s in range(1 << _DP_MAX_CLUSTER)
]

# lowest-set-bit index per subset, for the vectorised DP backtrack.
_LOWBIT = np.zeros(1 << _DP_MAX_CLUSTER, dtype=np.int64)
for _s in range(1, 1 << _DP_MAX_CLUSTER):
    _LOWBIT[_s] = (_s & -_s).bit_length() - 1

# Fewer clusters of one size than this and the batched DP's table
# bookkeeping costs more than just looping the scalar matcher.  The
# batched table pays ~2^m vector operations regardless of how many
# clusters share them, so the break-even count grows with the size.
def _vec_min_clusters(m: int) -> int:
    return max(6, (1 << m) >> 4)


def _match3_batch(db: np.ndarray, dd: np.ndarray) -> np.ndarray:
    """Vectorised :func:`_match3` over ``(C, 3)`` boundary distances
    and ``(C, 3, 3)`` pair distances: evaluate all four candidate
    matchings for every cluster at once.  ``argmin`` keeps the first
    minimal candidate, matching the scalar strict-``<`` scan order, so
    weight ties break identically."""
    costs = np.empty((4, db.shape[0]))
    costs[0] = db[:, 0] + db[:, 1] + db[:, 2]
    costs[1] = dd[:, 0, 1] + db[:, 2]
    costs[2] = dd[:, 0, 2] + db[:, 1]
    costs[3] = dd[:, 1, 2] + db[:, 0]
    templates = np.array(
        [
            [[0, -1], [1, -1], [2, -1]],
            [[0, 1], [2, -1], [-2, -2]],
            [[0, 2], [1, -1], [-2, -2]],
            [[1, 2], [0, -1], [-2, -2]],
        ],
        dtype=np.int8,
    )
    return templates[np.argmin(costs, axis=0)]


def _dp_match_batch(db: np.ndarray, dd: np.ndarray) -> np.ndarray:
    """Vectorised :func:`_dp_match` over a batch of same-size clusters.

    The subset recurrence is identical — lowest unmatched node goes to
    the boundary or pairs with a later node, ascending-``j`` scan,
    strict-``<`` improvement — but each step updates all ``C`` clusters
    with one numpy operation, so the python loop cost (``2^m`` subsets
    times ``m/2`` partners) is paid once per *size group* instead of
    once per cluster.  Identical float comparisons in identical order
    mean identical tie-breaking, hence bit-identical matchings.

    Returns ``(C, m, 2)`` local index pairs, ``j = -1`` for boundary
    matches and ``-2`` padding unused slots.
    """
    count, m = db.shape
    size = 1 << m
    bits = _BITS
    cost = np.full((size, count), np.inf)
    choice = np.full((size, count), -1, dtype=np.int8)
    cost[0] = 0.0
    for subset in range(1, size):
        i = bits[subset][0]
        rest = subset ^ (1 << i)
        best = cost[rest] + db[:, i]
        pick = np.full(count, -1, dtype=np.int8)
        for j in bits[rest]:
            cand = cost[rest ^ (1 << j)] + dd[:, i, j]
            better = cand < best
            if better.any():
                best[better] = cand[better]
                pick[better] = j
        cost[subset] = best
        choice[subset] = pick
    pairs = np.full((count, m, 2), -2, dtype=np.int8)
    lanes = np.arange(count)
    subset = np.full(count, size - 1, dtype=np.int64)
    slot = 0
    while True:
        alive = subset > 0
        if not alive.any():
            break
        i = _LOWBIT[subset]
        j = choice[subset, lanes].astype(np.int64)
        pairs[alive, slot, 0] = i[alive]
        pairs[alive, slot, 1] = j[alive]
        cleared = (np.int64(1) << i) | np.where(
            j >= 0, np.int64(1) << np.maximum(j, 0), 0
        )
        subset = np.where(alive, subset ^ cleared, subset)
        slot += 1
    return pairs


def _dp_match(db: np.ndarray, dd: np.ndarray) -> list[tuple[int, int]]:
    """Exact minimum-weight matching-with-boundary over one cluster.

    Subset DP on the cluster's nodes: the lowest unmatched node either
    goes to the boundary (``db``) or pairs with another unmatched node
    (``dd``).  Returns ``(i, j)`` index pairs with ``j = -1`` meaning
    the boundary.
    """
    m = len(db)
    dbl = db.tolist()
    ddl = dd.tolist()
    size = 1 << m
    inf = float("inf")
    cost = [inf] * size
    choice = [-1] * size
    cost[0] = 0.0
    bits = _BITS
    for subset in range(1, size):
        i = bits[subset][0]
        rest = subset ^ (1 << i)
        best = cost[rest] + dbl[i]
        pick = -1
        row = ddl[i]
        for j in bits[rest]:
            c = cost[rest ^ (1 << j)] + row[j]
            if c < best:
                best, pick = c, j
        cost[subset] = best
        choice[subset] = pick
    pairs: list[tuple[int, int]] = []
    subset = size - 1
    while subset:
        i = bits[subset][0]
        j = choice[subset]
        pairs.append((i, j))
        subset ^= (1 << i) | ((1 << j) if j >= 0 else 0)
    return pairs


def _blossom_match(db: np.ndarray, dd: np.ndarray) -> list[tuple[int, int]]:
    """Blossom fallback for clusters too large for the subset DP.

    Halved construction: node pairs weigh the cheaper of a direct
    chain and two boundary chains; an odd cluster gains one virtual
    boundary node.  Matching through the boundary is recovered by
    comparing the chosen pair's direct and via-boundary costs.
    """
    k = len(db)
    via_boundary = db[:, None] + db[None, :]
    weights = np.minimum(dd, via_boundary)
    match_graph = nx.Graph()
    for i in range(k):
        for j in range(i + 1, k):
            if np.isfinite(weights[i, j]):
                match_graph.add_edge(i, j, weight=-weights[i, j])
        if k % 2 and np.isfinite(db[i]):
            match_graph.add_edge(i, k, weight=-db[i])
    matching = nx.max_weight_matching(match_graph, maxcardinality=True)
    pairs: list[tuple[int, int]] = []
    for a, b in matching:
        if a > b:
            a, b = b, a
        if b == k:  # odd node matched to the virtual boundary
            pairs.append((a, -1))
        elif dd[a, b] <= via_boundary[a, b]:
            pairs.append((a, b))
        else:  # "pair" realised as two boundary chains
            pairs.append((a, -1))
            pairs.append((b, -1))
    return pairs
