"""Minimum-weight perfect matching decoder (PyMatching substitute).

The decoder pairs up flagged detectors (or matches them to the virtual
boundary) so that the total log-likelihood weight of the implied error
chains is minimised, then reports which logical observables those chains
flip.  Distances come from one all-pairs Dijkstra over the detector
graph — a per-circuit artefact the engine caches on disk and ships to
workers, so no decode ever recomputes it.

Per-decode matching avoids rebuilding a networkx complete graph per
shot.  Three exact reductions run first:

1. **boundary-dominated pruning** — a pair edge with
   ``d(a, b) >= d(a, B) + d(b, B)`` can always be replaced by two
   boundary matches at no extra cost, so only *useful* edges (strictly
   cheaper than going through the boundary) need be considered;
2. **cluster decomposition** — connected components of the useful-edge
   graph are independent matching subproblems (no optimal matching
   pairs across them);
3. **exact subset DP** per small cluster — minimum-weight matching
   with a boundary option in O(2^m * m), which at the error rates
   worth sweeping covers nearly every syndrome.

Clusters too large for the DP fall back to blossom matching
(networkx), on a *halved* construction: ``k`` nodes with pair weights
``min(d(a,b), d(a,B)+d(b,B))`` plus one virtual boundary node when
``k`` is odd — equivalent to, and much smaller than, the classic
2k-node boundary-copy clique.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from .batch import BatchDecoderMixin
from .graph import DetectorGraph

# Largest cluster solved by the exact subset DP; beyond this the
# O(2^m * m) table is slower than blossom on the cluster.
_DP_MAX_CLUSTER = 10


# Cluster-mask memo bound (entries): clusters are local structures and
# recur across distinct syndromes far more often than whole syndromes
# repeat, so this is the decoder's highest-leverage cache.
_CLUSTER_MEMO_LIMIT = 1 << 18


class MwpmDecoder(BatchDecoderMixin):
    """Decode detector samples by minimum-weight perfect matching."""

    def __init__(self, graph: DetectorGraph):
        self.graph = graph
        self.num_detectors = graph.num_detectors
        self._dist, _ = graph.shortest_paths()
        # cluster node tuple -> correction mask of its optimal matching
        self._cluster_masks: dict[tuple[int, ...], int] = {}

    # ------------------------------------------------------------------
    def decode(self, detector_sample: np.ndarray) -> int:
        """Observable bitmask correction for one shot's detector bits."""
        flagged = np.flatnonzero(detector_sample)
        k = len(flagged)
        if k == 0:
            return 0
        graph = self.graph
        boundary = graph.boundary
        dist = self._dist
        # Scalar fast paths: at the error rates worth sweeping most
        # non-empty syndromes flag one or two detectors, where the full
        # cluster machinery is pure overhead.
        if k == 1:
            u = int(flagged[0])
            if np.isfinite(dist[u, boundary]):
                return graph.path_observable_mask(u, boundary)
            return 0  # unmatchable, abstain
        if k == 2:
            a, b = int(flagged[0]), int(flagged[1])
            d_a, d_b = dist[a, boundary], dist[b, boundary]
            if dist[a, b] < d_a + d_b - 1e-12:
                return graph.path_observable_mask(a, b)
            mask = 0
            if np.isfinite(d_a):
                mask ^= graph.path_observable_mask(a, boundary)
            if np.isfinite(d_b):
                mask ^= graph.path_observable_mask(b, boundary)
            return mask
        db = dist[flagged, boundary]
        dd = dist[np.ix_(flagged, flagged)]

        # Useful-edge adjacency: pairing a-b only ever beats matching
        # both to the boundary when it is strictly cheaper.
        useful = dd < (db[:, None] + db[None, :] - 1e-12)
        np.fill_diagonal(useful, False)

        mask = 0
        for cluster in _components(useful):
            if len(cluster) == 1:
                i = cluster[0]
                if np.isfinite(db[i]):  # else: unmatchable, abstain
                    mask ^= graph.path_observable_mask(int(flagged[i]), boundary)
                continue
            # A cluster's optimal correction depends only on its node
            # set, and local clusters recur across distinct syndromes —
            # memoise the mask, solve only unseen clusters.
            nodes = tuple(int(flagged[i]) for i in cluster)
            cached = self._cluster_masks.get(nodes)
            if cached is not None:
                mask ^= cached
                continue
            m = len(cluster)
            if m == 2:
                # A useful edge is strictly cheaper than two boundary
                # chains by definition, so a 2-cluster always pairs.
                pairs = ((0, 1),)
            elif m == 3:
                pairs = _match3(db[cluster], dd[np.ix_(cluster, cluster)])
            elif m <= _DP_MAX_CLUSTER:
                pairs = _dp_match(db[cluster], dd[np.ix_(cluster, cluster)])
            else:
                pairs = _blossom_match(db[cluster], dd[np.ix_(cluster, cluster)])
            cluster_mask = 0
            for i, j in pairs:
                u = nodes[i]
                if j < 0:
                    if np.isfinite(db[cluster[i]]):
                        cluster_mask ^= graph.path_observable_mask(u, boundary)
                else:
                    cluster_mask ^= graph.path_observable_mask(u, nodes[j])
            if len(self._cluster_masks) < _CLUSTER_MEMO_LIMIT:
                self._cluster_masks[nodes] = cluster_mask
            mask ^= cluster_mask
        return mask


# ----------------------------------------------------------------------
# Matching internals (module-level: shared, and independently testable)
# ----------------------------------------------------------------------
def _components(useful: np.ndarray) -> list[list[int]]:
    """Connected components of the boolean useful-edge adjacency."""
    k = useful.shape[0]
    rows, cols = np.nonzero(useful)
    adj: list[list[int]] = [[] for _ in range(k)]
    for a, b in zip(rows.tolist(), cols.tolist()):
        adj[a].append(b)
    comp = [-1] * k
    clusters: list[list[int]] = []
    for start in range(k):
        if comp[start] >= 0:
            continue
        label = len(clusters)
        members = [start]
        comp[start] = label
        stack = [start]
        while stack:
            for b in adj[stack.pop()]:
                if comp[b] < 0:
                    comp[b] = label
                    members.append(b)
                    stack.append(b)
        clusters.append(members)
    return clusters


def _match3(db: np.ndarray, dd: np.ndarray) -> tuple[tuple[int, int], ...]:
    """Exact matching-with-boundary for a 3-node cluster: one of the
    three pair-plus-boundary splits, or all three to the boundary."""
    best = db[0] + db[1] + db[2]
    pairs = ((0, -1), (1, -1), (2, -1))
    for i, j, k in ((0, 1, 2), (0, 2, 1), (1, 2, 0)):
        cost = dd[i, j] + db[k]
        if cost < best:
            best = cost
            pairs = ((i, j), (k, -1))
    return pairs


# bits-of-subset lookup shared by every _dp_match call: _BITS[s] lists
# the set bit positions of s, for all subsets up to the DP size cap.
_BITS: list[tuple[int, ...]] = [
    tuple(b for b in range(_DP_MAX_CLUSTER) if s >> b & 1)
    for s in range(1 << _DP_MAX_CLUSTER)
]


def _dp_match(db: np.ndarray, dd: np.ndarray) -> list[tuple[int, int]]:
    """Exact minimum-weight matching-with-boundary over one cluster.

    Subset DP on the cluster's nodes: the lowest unmatched node either
    goes to the boundary (``db``) or pairs with another unmatched node
    (``dd``).  Returns ``(i, j)`` index pairs with ``j = -1`` meaning
    the boundary.
    """
    m = len(db)
    dbl = db.tolist()
    ddl = dd.tolist()
    size = 1 << m
    inf = float("inf")
    cost = [inf] * size
    choice = [-1] * size
    cost[0] = 0.0
    bits = _BITS
    for subset in range(1, size):
        i = bits[subset][0]
        rest = subset ^ (1 << i)
        best = cost[rest] + dbl[i]
        pick = -1
        row = ddl[i]
        for j in bits[rest]:
            c = cost[rest ^ (1 << j)] + row[j]
            if c < best:
                best, pick = c, j
        cost[subset] = best
        choice[subset] = pick
    pairs: list[tuple[int, int]] = []
    subset = size - 1
    while subset:
        i = bits[subset][0]
        j = choice[subset]
        pairs.append((i, j))
        subset ^= (1 << i) | ((1 << j) if j >= 0 else 0)
    return pairs


def _blossom_match(db: np.ndarray, dd: np.ndarray) -> list[tuple[int, int]]:
    """Blossom fallback for clusters too large for the subset DP.

    Halved construction: node pairs weigh the cheaper of a direct
    chain and two boundary chains; an odd cluster gains one virtual
    boundary node.  Matching through the boundary is recovered by
    comparing the chosen pair's direct and via-boundary costs.
    """
    k = len(db)
    via_boundary = db[:, None] + db[None, :]
    weights = np.minimum(dd, via_boundary)
    match_graph = nx.Graph()
    for i in range(k):
        for j in range(i + 1, k):
            if np.isfinite(weights[i, j]):
                match_graph.add_edge(i, j, weight=-weights[i, j])
        if k % 2 and np.isfinite(db[i]):
            match_graph.add_edge(i, k, weight=-db[i])
    matching = nx.max_weight_matching(match_graph, maxcardinality=True)
    pairs: list[tuple[int, int]] = []
    for a, b in matching:
        if a > b:
            a, b = b, a
        if b == k:  # odd node matched to the virtual boundary
            pairs.append((a, -1))
        elif dd[a, b] <= via_boundary[a, b]:
            pairs.append((a, b))
        else:  # "pair" realised as two boundary chains
            pairs.append((a, -1))
            pairs.append((b, -1))
    return pairs
