"""Minimum-weight perfect matching decoder (PyMatching substitute).

The decoder pairs up flagged detectors (or matches them to the virtual
boundary) so that the total log-likelihood weight of the implied error
chains is minimised, then reports which logical observables those chains
flip.  Distances come from Dijkstra over the detector graph; the
matching itself uses networkx's blossom implementation on the complete
graph over flagged detectors plus one boundary copy per detector (the
standard construction: boundary copies are linked to each other with
weight zero so unmatched-to-boundary is always available).
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from .graph import DetectorGraph


class MwpmDecoder:
    """Decode detector samples by minimum-weight perfect matching."""

    def __init__(self, graph: DetectorGraph):
        self.graph = graph
        graph._ensure_shortest_paths()

    def decode(self, detector_sample: np.ndarray) -> int:
        """Observable bitmask correction for one shot's detector bits."""
        flagged = [int(d) for d in np.flatnonzero(detector_sample)]
        if not flagged:
            return 0
        graph = self.graph
        boundary = graph.boundary
        k = len(flagged)

        match_graph = nx.Graph()
        # Nodes 0..k-1: flagged detectors. Nodes k..2k-1: boundary copies.
        for i in range(k):
            for j in range(i + 1, k):
                w = graph.distance(flagged[i], flagged[j])
                if np.isfinite(w):
                    match_graph.add_edge(i, j, weight=-w)
            wb = graph.distance(flagged[i], boundary)
            if np.isfinite(wb):
                match_graph.add_edge(i, k + i, weight=-wb)
        for i in range(k):
            for j in range(i + 1, k):
                match_graph.add_edge(k + i, k + j, weight=0.0)

        matching = nx.max_weight_matching(match_graph, maxcardinality=True)
        mask = 0
        for a, b in matching:
            if a > b:
                a, b = b, a
            if a < k and b < k:
                mask ^= graph.path_observable_mask(flagged[a], flagged[b])
            elif a < k <= b:
                if b - k == a:  # detector matched to its own boundary copy
                    mask ^= graph.path_observable_mask(flagged[a], boundary)
                # A detector matched to another detector's boundary copy
                # cannot occur in a minimal matching (copies are only
                # connected to their own detector and to other copies).
        return mask

    def decode_batch(self, detector_samples: np.ndarray) -> np.ndarray:
        """Observable bitmask per shot for a (shots x detectors) array."""
        return np.array(
            [self.decode(row) for row in detector_samples], dtype=np.int64
        )

    def logical_failures(
        self, detector_samples: np.ndarray, observable_samples: np.ndarray
    ) -> np.ndarray:
        """Per-shot bool: did decoding fail to fix observable 0?"""
        corrections = self.decode_batch(detector_samples)
        actual = observable_samples[:, 0].astype(np.int64)
        predicted = corrections & 1
        return predicted != actual
