"""Packed-native deduplicated batch decoding shared by every decoder.

Decoding is the per-shot hot spot of LER estimation: matching is
milliseconds per syndrome while sampling is microseconds per shot.  But
at low physical error rate the syndrome *distribution* is extremely
skewed — most shots are empty or repeat a handful of light syndromes —
so decoding every shot individually repeats identical work.

The pipeline speaks bit-packed uint64 syndrome words end to end: the
samplers emit :class:`~repro.sim.dem_sampler.PackedShard` words, and
:func:`decode_packed_dedup` runs ``np.unique`` *directly on those
words* (no pack/unpack round-trip), looks each distinct row up in a
:class:`SyndromeMemo` keyed on the row bytes, and hands every miss to
the decoder in **one batched call** — so a vectorised decoder (the
batched union-find) amortises its per-call overhead over the whole
distinct-syndrome set, and a scalar decoder unpacks only the *distinct*
missing rows, never every shot.  Corrections scatter back to shots via
the unique-inverse.

The memo carries decoded syndromes across shard boundaries: decoder
instances live as long as a worker's circuit memo, so a syndrome seen
in shard 0 is free in every later shard of the same (circuit, decoder)
pair.

:class:`BatchDecoderMixin` gives every decoder the same batch API on
top of its scalar ``decode``:

- ``decode_packed_batch(det_words)`` — the **decoder protocol** the
  engine calls: packed words in, one observable bitmask per shot out;
- ``logical_failures_packed(det_words, obs_words)`` — the per-shot
  failure reduction, reading the actual observable straight from the
  packed words;
- ``decode_batch`` / ``logical_failures`` — boolean-boundary
  conveniences that pack once and delegate.

A decoder with a vectorised kernel overrides ``decode_unique_words``
(see :class:`~repro.decoders.union_find.UnionFindDecoder`); everything
else inherits the unpack-distinct-rows adapter for free.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..sim.dem_sampler import pack_bool_rows, unpack_bool_rows
from ..telemetry import span

# Cross-shard memo bound: distinct syndromes are few at the error rates
# worth sweeping, but a near-threshold design point could see almost
# every shot distinct — stop inserting (not decoding) past this size so
# a long sweep cannot grow the memo without bound.
DEFAULT_MEMO_LIMIT = 1 << 18


def memo_owner(key: bytes, slots: int) -> int:
    """Which pool slot owns a packed-syndrome key.

    CRC32 rather than ``hash()``: ownership must agree across worker
    processes and hosts, and python's string hashing is salted per
    process.
    """
    return zlib.crc32(key) % slots


class SyndromeMemo:
    """Bounded ``packed syndrome -> correction mask`` memo with stats.

    With cross-worker sharing enabled (:meth:`enable_sharing`) the memo
    becomes one segment of a pool-wide table sharded by syndrome hash:
    locally-decoded entries this slot *owns* queue in an outbox for the
    driver to redistribute, and entries learned from peers arrive via
    :meth:`absorb`.  ``shared_hits`` counts hits served by absorbed
    entries — the observable cross-worker half of the dedupe rate.
    """

    def __init__(self, limit: int = DEFAULT_MEMO_LIMIT):
        self.limit = limit
        self.table: dict[bytes, int] = {}
        self.hits = 0
        self.misses = 0
        self.shared_hits = 0
        # (slot, slots) when this memo is a shard of a pool-wide table.
        self._share: tuple[int, int] | None = None
        self._outbox: list[tuple[bytes, int]] = []
        # Keys that arrived from peers (absorb) rather than local decode.
        self.remote_keys: set[bytes] = set()

    def __len__(self) -> int:
        return len(self.table)

    # -- cross-worker sharing ------------------------------------------
    def enable_sharing(self, slot: int, slots: int) -> None:
        if slots < 1 or not 0 <= slot < slots:
            raise ValueError(f"bad memo share slot {slot}/{slots}")
        self._share = (int(slot), int(slots))

    def disable_sharing(self) -> None:
        self._share = None
        self._outbox = []

    @property
    def sharing(self) -> bool:
        return self._share is not None

    def insert(self, key: bytes, mask: int) -> bool:
        """Record one locally-decoded syndrome; ``False`` once full.

        Owned entries (hash-sharded to this slot) also queue in the
        outbox so the pool driver can redistribute them.
        """
        if len(self.table) >= self.limit:
            return False
        self.table[key] = mask
        share = self._share
        if share is not None and memo_owner(key, share[1]) == share[0]:
            self._outbox.append((key, mask))
        return True

    def drain_outbox(self) -> list[tuple[bytes, int]]:
        """Owned entries inserted since the last drain (and clear)."""
        out, self._outbox = self._outbox, []
        return out

    def absorb(self, entries) -> int:
        """Merge peer-decoded entries; returns how many were new.

        Absorbed entries never re-enter the outbox (the driver already
        has them) and count as neither hits nor misses — only later
        lookups that land on them bump ``shared_hits``.
        """
        table = self.table
        added = 0
        for key, mask in entries:
            if key not in table and len(table) < self.limit:
                table[key] = mask
                self.remote_keys.add(key)
                added += 1
        return added

    # ------------------------------------------------------------------
    def snapshot(self) -> tuple[int, int, int, int]:
        """``(hits, misses, entries, shared_hits)`` — diffable around a
        shard so the engine can attribute memo traffic to individual
        shards."""
        return (self.hits, self.misses, len(self.table), self.shared_hits)

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "shared_hits": self.shared_hits,
            "entries": len(self.table),
            "limit": self.limit,
        }


def unique_packed_rows(words: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``np.unique(words, axis=0, return_inverse=True)``, faster.

    Views each contiguous packed row as one opaque void scalar so the
    unique sort is a single-key memcmp instead of ``axis=0``'s
    per-column lexsort.  The distinct *set* and the inverse mapping are
    exactly equivalent; only the order of the returned rows differs
    (byte order vs column-value order), which nothing downstream
    depends on — corrections are scattered per row via ``inverse``.
    """
    rows, ncols = words.shape
    if ncols == 0:
        # No detectors: every row is the same empty syndrome.
        return words[:1], np.zeros(rows, dtype=np.intp)
    view = words.view(np.dtype((np.void, words.dtype.itemsize * ncols)))
    uniq_view, inverse = np.unique(view.ravel(), return_inverse=True)
    uniq = uniq_view.view(words.dtype).reshape(-1, ncols)
    return uniq, inverse


def decode_packed_dedup(
    decode_unique_words,
    det_words: np.ndarray,
    memo: SyndromeMemo | None = None,
) -> np.ndarray:
    """Decode a packed ``(shots, words)`` uint64 batch via deduplication.

    ``decode_unique_words`` maps a ``(k, words)`` array of *distinct*
    packed syndromes to ``k`` observable bitmasks — one batched call
    covers every syndrome the ``memo`` has not already seen, so each
    distinct syndrome is decoded at most once per batch and, with a
    memo, at most once per decoder lifetime.
    """
    words = np.atleast_2d(np.ascontiguousarray(det_words, dtype=np.uint64))
    with span("unique"):
        uniq, inverse = unique_packed_rows(words)
    corrections = np.empty(len(uniq), dtype=np.int64)
    with span("memo"):
        if memo is None:
            missing = list(range(len(uniq)))
        else:
            missing = []
            table = memo.table
            remote = memo.remote_keys
            for row in range(len(uniq)):
                key = uniq[row].tobytes()
                cached = table.get(key)
                if cached is not None:
                    memo.hits += 1
                    if remote and key in remote:
                        memo.shared_hits += 1
                    corrections[row] = cached
                else:
                    memo.misses += 1
                    missing.append(row)
    if missing:
        miss_rows = np.array(missing, dtype=np.int64)
        with span("decode", distinct=len(missing)):
            decoded = np.asarray(
                decode_unique_words(uniq[miss_rows]), dtype=np.int64
            ).reshape(-1)
        if decoded.shape[0] != len(missing):
            raise ValueError(
                f"decode_unique_words returned {decoded.shape[0]} corrections "
                f"for {len(missing)} distinct syndromes"
            )
        corrections[miss_rows] = decoded
        if memo is not None:
            for row, mask in zip(missing, decoded.tolist()):
                if not memo.insert(uniq[row].tobytes(), mask):
                    break
    with span("scatter"):
        return corrections[inverse.reshape(-1)]


def scalar_unique_adapter(decode_one, bits: int):
    """Adapt a scalar ``decode_one(bool_row) -> mask`` to the batched
    ``decode_unique_words`` shape: unpack only the given distinct rows
    and map the scalar decode over them."""

    def decode_unique(words: np.ndarray) -> np.ndarray:
        rows = unpack_bool_rows(words, bits)
        return np.fromiter(
            (int(decode_one(row)) for row in rows),
            dtype=np.int64,
            count=len(rows),
        )

    return decode_unique


def decode_batch_dedup(
    decode_one,
    detector_samples: np.ndarray,
    memo: SyndromeMemo | None = None,
) -> np.ndarray:
    """Boolean-boundary wrapper over :func:`decode_packed_dedup`.

    ``decode_one`` maps one boolean detector row to an observable
    bitmask; rows are packed once, deduplicated in packed form, and
    only the distinct missing rows are unpacked back for ``decode_one``.
    """
    samples = np.atleast_2d(np.asarray(detector_samples, dtype=bool))
    return decode_packed_dedup(
        scalar_unique_adapter(decode_one, samples.shape[1]),
        pack_bool_rows(samples),
        memo=memo,
    )


class BatchDecoderMixin:
    """Shared packed-native batch API plus the failure reduction every
    estimator consumes.

    Subclasses provide scalar ``decode(detector_sample) -> int`` and a
    ``num_detectors`` attribute (set in ``__init__``); a decoder with a
    vectorised batch kernel additionally overrides
    ``decode_unique_words``.  Set ``dedupe=False`` per call to force the
    one-scalar-decode-per-shot reference path (the exactness tests diff
    the two).
    """

    _memo: SyndromeMemo | None = None
    num_detectors: int

    def syndrome_memo(self) -> SyndromeMemo:
        if self._memo is None:
            self._memo = SyndromeMemo()
        return self._memo

    # ------------------------------------------------------------------
    def decode_unique_words(self, det_words: np.ndarray) -> np.ndarray:
        """Decode ``(k, words)`` *distinct* packed syndromes.

        Default adapter for scalar decoders: unpacks only these distinct
        rows — never the full shot batch — and maps ``decode``.
        Vectorised decoders override this with their batched kernel.
        """
        return scalar_unique_adapter(self.decode, self.num_detectors)(det_words)

    def decode_packed_batch(
        self, det_words: np.ndarray, *, dedupe: bool = True
    ) -> np.ndarray:
        """Observable bitmask per shot for packed ``(shots, words)``
        syndromes — the pipeline's native decoder entry point."""
        words = np.atleast_2d(np.ascontiguousarray(det_words, dtype=np.uint64))
        if not dedupe:
            rows = unpack_bool_rows(words, self.num_detectors)
            return np.array([self.decode(row) for row in rows], dtype=np.int64)
        return decode_packed_dedup(
            self.decode_unique_words, words, memo=self.syndrome_memo()
        )

    def decode_batch(
        self, detector_samples: np.ndarray, *, dedupe: bool = True
    ) -> np.ndarray:
        """Boolean-boundary convenience: packs once, then decodes packed."""
        samples = np.atleast_2d(np.asarray(detector_samples, dtype=bool))
        if not dedupe:
            return np.array(
                [self.decode(row) for row in samples], dtype=np.int64
            )
        return self.decode_packed_batch(pack_bool_rows(samples))

    # ------------------------------------------------------------------
    def logical_failures_packed(
        self,
        det_words: np.ndarray,
        obs_words: np.ndarray,
        *,
        dedupe: bool = True,
    ) -> np.ndarray:
        """Per-shot bool: did decoding fail to fix observable 0?

        Consumes packed words on both sides — the actual observable is
        read from bit 0 of the first obs word, so no boolean matrix is
        ever materialised on the engine's hot path.
        """
        corrections = self.decode_packed_batch(det_words, dedupe=dedupe)
        obs = np.atleast_2d(np.ascontiguousarray(obs_words, dtype=np.uint64))
        if obs.shape[1]:
            actual = (obs[:, 0] & np.uint64(1)).astype(np.int64)
        else:
            actual = np.zeros(obs.shape[0], dtype=np.int64)
        return (corrections & 1) != actual

    def logical_failures(
        self,
        detector_samples: np.ndarray,
        observable_samples: np.ndarray,
        *,
        dedupe: bool = True,
    ) -> np.ndarray:
        """Boolean-boundary failure reduction (packs and delegates)."""
        corrections = self.decode_batch(detector_samples, dedupe=dedupe)
        actual = np.atleast_2d(observable_samples)[:, 0].astype(np.int64)
        predicted = corrections & 1
        return predicted != actual
