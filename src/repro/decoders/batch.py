"""Deduplicated batch decoding shared by every decoder.

Decoding is the per-shot hot spot of LER estimation: matching is
milliseconds per syndrome while sampling is microseconds per shot.  But
at low physical error rate the syndrome *distribution* is extremely
skewed — most shots are empty or repeat a handful of light syndromes —
so decoding every shot individually repeats identical work.

:func:`decode_batch_dedup` packs each shot's detector bits into uint64
words, ``np.unique``-s the packed rows, decodes each *distinct*
syndrome exactly once, and scatters the corrections back to shots.  A
:class:`SyndromeMemo` carries decoded syndromes across shard
boundaries: decoder instances live as long as a worker's circuit memo,
so a syndrome seen in shard 0 is free in every later shard of the same
(circuit, decoder) pair.

:class:`BatchDecoderMixin` gives every decoder the same
``decode_batch`` / ``logical_failures`` pair on top of its scalar
``decode`` — one implementation instead of one copy per decoder class.
"""

from __future__ import annotations

import numpy as np

from ..sim.dem_sampler import pack_bool_rows

# Cross-shard memo bound: distinct syndromes are few at the error rates
# worth sweeping, but a near-threshold design point could see almost
# every shot distinct — stop inserting (not decoding) past this size so
# a long sweep cannot grow the memo without bound.
DEFAULT_MEMO_LIMIT = 1 << 18


class SyndromeMemo:
    """Bounded ``packed syndrome -> correction mask`` memo with stats."""

    def __init__(self, limit: int = DEFAULT_MEMO_LIMIT):
        self.limit = limit
        self.table: dict[bytes, int] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self.table)


def decode_batch_dedup(
    decode_one,
    detector_samples: np.ndarray,
    memo: SyndromeMemo | None = None,
) -> np.ndarray:
    """Decode a ``(shots, detectors)`` boolean batch via deduplication.

    ``decode_one`` maps one boolean detector row to an observable
    bitmask.  Each distinct syndrome in the batch is decoded at most
    once; with a ``memo``, at most once per decoder lifetime.
    """
    samples = np.atleast_2d(np.asarray(detector_samples, dtype=bool))
    packed = pack_bool_rows(samples)
    uniq, first_shot, inverse = np.unique(
        packed, axis=0, return_index=True, return_inverse=True
    )
    corrections = np.empty(len(uniq), dtype=np.int64)
    for row in range(len(uniq)):
        key = uniq[row].tobytes()
        if memo is not None:
            cached = memo.table.get(key)
            if cached is not None:
                memo.hits += 1
                corrections[row] = cached
                continue
            memo.misses += 1
        # Decode the first shot that produced this syndrome: cheaper
        # than unpacking the packed row, and exact by construction.
        mask = int(decode_one(samples[first_shot[row]]))
        corrections[row] = mask
        if memo is not None and len(memo.table) < memo.limit:
            memo.table[key] = mask
    return corrections[inverse.reshape(-1)]


class BatchDecoderMixin:
    """Shared batch API: dedupe-accelerated ``decode_batch`` plus the
    ``logical_failures`` reduction every estimator consumes.

    Subclasses provide ``decode(detector_sample) -> int``.  Set
    ``dedupe=False`` per call to force the one-decode-per-shot
    reference path (the exactness tests diff the two).
    """

    _memo: SyndromeMemo | None = None

    def syndrome_memo(self) -> SyndromeMemo:
        if self._memo is None:
            self._memo = SyndromeMemo()
        return self._memo

    def decode_batch(
        self, detector_samples: np.ndarray, *, dedupe: bool = True
    ) -> np.ndarray:
        """Observable bitmask per shot for a (shots x detectors) array."""
        if not dedupe:
            return np.array(
                [self.decode(row) for row in detector_samples], dtype=np.int64
            )
        return decode_batch_dedup(
            self.decode, detector_samples, memo=self.syndrome_memo()
        )

    def logical_failures(
        self,
        detector_samples: np.ndarray,
        observable_samples: np.ndarray,
        *,
        dedupe: bool = True,
    ) -> np.ndarray:
        """Per-shot bool: did decoding fail to fix observable 0?"""
        corrections = self.decode_batch(detector_samples, dedupe=dedupe)
        actual = observable_samples[:, 0].astype(np.int64)
        predicted = corrections & 1
        return predicted != actual
