"""repro.telemetry — zero-dependency metrics and tracing for the engine.

A lightweight, process-local observability layer threaded through the
sweep engine: counters, gauges, fixed-bucket histograms, and
``span(name)`` timers that aggregate *exclusive* (self) time per phase
name — which is what lets the engine report where shard wall-clock time
actually goes (sample vs ``np.unique`` vs memo lookup vs batched decode
vs scatter) and lets per-phase totals sum back to wall-clock time.

Telemetry is **off by default** and the disabled path is a no-op:
``span()`` returns a shared singleton context manager (no allocation on
the hot path), and no counter or event is touched.  Enabling costs a
couple of ``perf_counter`` calls per span, which the engine only opens
at shard/batch granularity, never per shot — the overhead is gated by
``benchmarks/bench_telemetry_overhead.py``.

Two export surfaces:

- :func:`~repro.telemetry.core.Telemetry.export_jsonl` — a JSONL event
  sink (one metric / phase aggregate / span event per line);
- :mod:`repro.telemetry.trace` — a Chrome ``trace_event`` exporter
  (``repro-sweep ... --trace out.json``) whose output loads in
  Perfetto / ``chrome://tracing`` with shard spans laid out one lane
  per worker.

Typical use::

    from repro import telemetry

    tel = telemetry.configure(enabled=True, trace=True)
    with telemetry.span("decode"):
        ...
    tel.counter("shards_done").inc()
    telemetry.write_chrome_trace("out.json", tel)

Determinism contract: telemetry never touches RNG streams, job keys or
stored record *keys* — timings live only in record values — so failure
counts and store keys are bit-identical with telemetry on or off.
"""

from .core import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Telemetry,
    configure,
    get,
    set_active,
    span,
)
from .trace import chrome_trace, validate_chrome_trace, write_chrome_trace

__all__ = [
    "Telemetry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_TIME_BUCKETS",
    "get",
    "set_active",
    "configure",
    "span",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]
