"""Core telemetry registry: counters, gauges, histograms and spans.

One :class:`Telemetry` instance is a per-process registry.  The module
keeps a global *active* instance (off by default) that the engine's
instrumentation points talk to via :func:`get` / :func:`span`, so
enabling observability is one :func:`configure` call and never requires
threading a handle through every layer.

Span semantics
--------------
``span(name)`` opens a timed region.  Spans nest (a per-thread stack
tracks the open chain) and each span aggregates its **exclusive** time
— duration minus the time spent in child spans — into the registry's
per-name phase totals.  Exclusive attribution is the property that
makes phase totals *additive*: the *sum* of all phase totals recorded
inside an enclosing region equals that region's wall-clock time, so a
shard's phase dict answers "where did the time go" without double
counting.  The full (inclusive) extent is still kept for trace export,
where nesting is what the viewer renders.

The disabled path returns a shared no-op singleton — no object, dict or
list is allocated, which is what keeps always-on instrumentation free
on hot paths (asserted by the no-op allocation test and gated by the
overhead microbenchmark).
"""

from __future__ import annotations

import json
import threading
import time
from bisect import bisect_left

# Upper bucket edges (seconds) for latency histograms: ~log-spaced from
# 1 ms to 1 min, the range a shot shard or a decode batch can occupy.
# A value equal to an edge counts into that edge's bucket (``le``
# semantics, like Prometheus); values above the last edge overflow into
# a final +Inf bucket.
DEFAULT_TIME_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing count (events, bytes, shards...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_jsonable(self) -> dict:
        return {"type": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A point-in-time value (in-flight shards, pool size...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def to_jsonable(self) -> dict:
        return {"type": "gauge", "name": self.name, "value": self.value}


class Histogram:
    """Fixed-bucket histogram with ``le`` (value <= edge) semantics.

    ``buckets`` are strictly increasing upper edges; observations above
    the last edge land in an implicit +Inf overflow bucket, so
    ``sum(counts) == count`` always holds.
    """

    __slots__ = ("name", "buckets", "counts", "total", "count")

    def __init__(self, name: str, buckets=DEFAULT_TIME_BUCKETS):
        edges = tuple(float(b) for b in buckets)
        if not edges or any(b <= a for b, a in zip(edges[1:], edges)):
            raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.buckets = edges
        self.counts = [0] * (len(edges) + 1)  # final slot = +Inf overflow
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_jsonable(self) -> dict:
        return {
            "type": "histogram",
            "name": self.name,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
        }


class _NullSpan:
    """Shared no-op span for disabled telemetry: nothing is recorded
    and nothing is allocated — every disabled ``span()`` call returns
    this one instance."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """One open timed region (enabled path).

    Tracks the time its own children consume so that, on exit, only the
    *exclusive* remainder is aggregated under this span's name — and
    the full inclusive duration is handed to the trace buffer.
    """

    __slots__ = ("_tel", "name", "attrs", "t0", "child_s")

    def __init__(self, tel: "Telemetry", name: str, attrs):
        self._tel = tel
        self.name = name
        self.attrs = attrs
        self.t0 = 0.0
        self.child_s = 0.0

    def __enter__(self):
        self._tel._stack().append(self)
        self.t0 = self._tel.clock()
        return self

    def __exit__(self, exc_type, exc, tb):
        dur = self._tel.clock() - self.t0
        stack = self._tel._stack()
        stack.pop()
        if stack:
            stack[-1].child_s += dur
        self._tel._record_span(self, dur)
        return False


class Telemetry:
    """Per-process metrics/tracing registry.

    ``enabled`` gates everything; ``trace`` additionally buffers span
    *events* (inclusive extents with timestamps) for Chrome-trace
    export — aggregates alone are much cheaper and are all the live
    status view needs.  ``clock`` is injectable for deterministic
    tests; it must be monotonic.

    Mostly single-threaded by design — the driver records from one
    thread — but multi-slot workers run shards on several threads at
    once, so span *attribution* is thread-local: each thread keeps its
    own span stack and its own per-thread phase totals, and
    :meth:`phase_snapshot` / :meth:`phase_delta` read the calling
    thread's view.  A shard's phase dict therefore never absorbs a
    concurrent slot's time.  The registry-wide ``_phases`` totals are
    still best-effort under concurrency (unlocked adds); they are only
    consumed on the (single-threaded) driver, where they are exact.
    Cross-process aggregation happens at the message layer — workers
    ship per-shard phase *deltas* back to the driver, never raw
    registries.
    """

    def __init__(
        self,
        enabled: bool = False,
        trace: bool = False,
        max_events: int = 1_000_000,
        clock=time.perf_counter,
    ):
        self.enabled = enabled
        self.trace = trace
        self.max_events = max_events
        self.clock = clock
        self.t0 = clock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        # name -> [count, exclusive seconds]
        self._phases: dict[str, list] = {}
        # (ts, dur, name, lane, attrs) — inclusive span extents,
        # seconds relative to t0; bounded by max_events.
        self._events: list[tuple] = []
        self._dropped_events = 0
        self._local = threading.local()

    # -- spans ----------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _thread_phases(self) -> dict:
        """This thread's own ``name -> exclusive seconds`` totals."""
        phases = getattr(self._local, "phases", None)
        if phases is None:
            phases = self._local.phases = {}
        return phases

    def span(self, name: str, **attrs):
        """A timed region; records on ``__exit__``.  Returns the shared
        no-op singleton when disabled (nothing allocated, nothing
        recorded)."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, attrs or None)

    def _record_span(self, span: _Span, dur: float) -> None:
        exclusive = dur - span.child_s
        entry = self._phases.get(span.name)
        if entry is None:
            self._phases[span.name] = [1, exclusive]
        else:
            entry[0] += 1
            entry[1] += exclusive
        local = self._thread_phases()
        local[span.name] = local.get(span.name, 0.0) + exclusive
        if self.trace:
            self.add_event(
                span.name, span.t0 - self.t0, dur, lane="driver",
                attrs=span.attrs,
            )

    def add_event(self, name, ts, dur, lane="driver", attrs=None) -> None:
        """Record one inclusive span extent for trace export.

        ``ts`` is seconds relative to the registry's epoch (``t0``);
        the driver uses this to *synthesize* worker-lane shard events
        from the phase dicts that pool workers ship back with each
        outcome.  Silently drops past ``max_events`` (counted), so a
        huge sweep cannot grow the buffer without bound.
        """
        if not (self.enabled and self.trace):
            return
        if len(self._events) >= self.max_events:
            self._dropped_events += 1
            return
        self._events.append((float(ts), float(dur), name, lane, attrs))

    def now(self) -> float:
        """Seconds since this registry's epoch (the trace timebase)."""
        return self.clock() - self.t0

    # -- metrics --------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str, buckets=None) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(
                name, buckets if buckets is not None else DEFAULT_TIME_BUCKETS
            )
        return histogram

    # -- phase aggregates ----------------------------------------------
    def phase_totals(self) -> dict[str, float]:
        """Exclusive seconds per span name (additive across phases)."""
        return {name: entry[1] for name, entry in self._phases.items()}

    def phase_counts(self) -> dict[str, int]:
        return {name: entry[0] for name, entry in self._phases.items()}

    def phase_snapshot(self) -> dict[str, float]:
        """A copy of the *calling thread's* phase totals, for delta
        attribution: snapshot before a unit of work, diff after, and
        the result is that unit's own per-phase time — the pattern
        ``sample_shard`` uses to give every shard outcome its phase
        dict.  Thread-local so concurrent shards on a multi-slot
        worker never attribute each other's time."""
        return dict(self._thread_phases())

    def phase_delta(self, snapshot: dict[str, float]) -> dict[str, float]:
        """Per-phase seconds this thread accrued since ``snapshot``
        (positive only)."""
        delta = {}
        for name, total in self._thread_phases().items():
            d = total - snapshot.get(name, 0.0)
            if d > 0.0:
                delta[name] = d
        return delta

    # -- export ---------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """All aggregates as one JSON-safe dict (no span events)."""
        return {
            "counters": {c.name: c.value for c in self._counters.values()},
            "gauges": {g.name: g.value for g in self._gauges.values()},
            "histograms": {
                h.name: h.to_jsonable() for h in self._histograms.values()
            },
            "phases": {
                name: {"count": entry[0], "self_s": entry[1]}
                for name, entry in self._phases.items()
            },
        }

    def events(self) -> list[tuple]:
        """The buffered span extents ``(ts, dur, name, lane, attrs)``."""
        return list(self._events)

    def export_jsonl(self, path_or_stream) -> int:
        """Write every metric, phase aggregate and span event as JSON
        lines; returns the number of lines written.

        The sink is self-describing (each line carries a ``type``) so
        downstream tooling can filter without a schema: ``counter`` /
        ``gauge`` / ``histogram`` / ``phase`` / ``span``.
        """
        lines = []
        for group in (self._counters, self._gauges, self._histograms):
            for metric in group.values():
                lines.append(metric.to_jsonable())
        for name, entry in sorted(self._phases.items()):
            lines.append({
                "type": "phase", "name": name,
                "count": entry[0], "self_s": entry[1],
            })
        for ts, dur, name, lane, attrs in self._events:
            event = {
                "type": "span", "name": name, "ts_s": ts, "dur_s": dur,
                "lane": lane,
            }
            if attrs:
                event["attrs"] = attrs
            lines.append(event)
        if self._dropped_events:
            lines.append({
                "type": "dropped_events", "count": self._dropped_events,
            })
        if hasattr(path_or_stream, "write"):
            for line in lines:
                path_or_stream.write(json.dumps(line) + "\n")
        else:
            with open(path_or_stream, "w") as fh:
                for line in lines:
                    fh.write(json.dumps(line) + "\n")
        return len(lines)

    def reset(self) -> None:
        """Drop every aggregate and event (the enable flags persist)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._phases.clear()
        self._events.clear()
        self._dropped_events = 0
        self.t0 = self.clock()


# ----------------------------------------------------------------------
# Module-level active registry (off by default)
# ----------------------------------------------------------------------
_active = Telemetry(enabled=False)


def get() -> Telemetry:
    """The process's active registry (disabled unless configured)."""
    return _active


def set_active(telemetry: Telemetry) -> Telemetry:
    """Swap the active registry (tests install scoped instances)."""
    global _active
    _active = telemetry
    return _active


def configure(
    enabled: bool | None = None,
    trace: bool | None = None,
    max_events: int | None = None,
) -> Telemetry:
    """Reconfigure the active registry in place and return it.

    In-place (rather than replacing the instance) so code that grabbed
    the registry earlier — a runner mid-sweep, a worker loop — observes
    the change immediately.
    """
    if enabled is not None:
        _active.enabled = enabled
    if trace is not None:
        _active.trace = trace
    if max_events is not None:
        _active.max_events = max_events
    return _active


def span(name: str, **attrs):
    """``get().span(...)`` shorthand for instrumentation points."""
    if not _active.enabled:
        return NULL_SPAN
    return _Span(_active, name, attrs or None)
