"""Chrome ``trace_event`` export for :mod:`repro.telemetry`.

Converts a registry's buffered span extents into the JSON object format
that Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` load
directly: one complete-duration (``"ph": "X"``) event per span, with
lanes mapped onto thread ids so each worker gets its own track.  The
driver's own spans land on a ``driver`` lane; shard spans shipped back
from pool workers are synthesized onto one lane per worker label
(``host:port`` for remote workers, ``mp:N`` for local processes).

The exporter is deterministic given the same events: lane→tid numbering
is assigned by sorted lane name, and timestamps are microseconds
relative to the registry epoch (never wall-clock dates), so two runs of
the same seeded sweep produce structurally identical traces.

``python -m repro.telemetry.trace --validate out.json`` checks a trace
file against the schema (used by CI on the remote-smoke artifact).
"""

from __future__ import annotations

import json


def chrome_trace(telemetry, process_name: str = "repro-sweep") -> dict:
    """Build a Chrome ``trace_event`` JSON object from a registry.

    Returns a dict with a ``traceEvents`` list: ``"M"`` metadata events
    naming the process and one thread per lane, then one ``"X"``
    complete event per buffered span (``ts``/``dur`` in integer
    microseconds, in recording order — monotonic non-decreasing ``ts``
    within each lane).
    """
    # Spans are buffered at *exit*, so parents trail their children;
    # sort by start time to restore monotonic ts within every lane.
    events = sorted(telemetry.events(), key=lambda e: e[0])
    lanes = sorted({lane for _, _, _, lane, _ in events})
    # "driver" first (tid 0) so the coordinating lane tops the view.
    if "driver" in lanes:
        lanes.remove("driver")
        lanes.insert(0, "driver")
    tids = {lane: i for i, lane in enumerate(lanes)}

    trace_events = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": process_name},
    }]
    for lane in lanes:
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": tids[lane],
            "args": {"name": lane},
        })
    for ts, dur, name, lane, attrs in events:
        event = {
            "name": name, "ph": "X", "pid": 0, "tid": tids[lane],
            "ts": int(round(ts * 1e6)), "dur": int(round(dur * 1e6)),
        }
        if attrs:
            event["args"] = attrs
        trace_events.append(event)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, telemetry, process_name: str = "repro-sweep") -> int:
    """Write the registry's trace to ``path``; returns the event count."""
    trace = chrome_trace(telemetry, process_name=process_name)
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return len(trace["traceEvents"])


def validate_chrome_trace(trace) -> list[str]:
    """Schema-check a trace object (or already-parsed dict).

    Returns a list of problems (empty == valid).  Checks the invariants
    a Perfetto load relies on: a ``traceEvents`` list, every event with
    ``name``/``ph``/``pid``/``tid``, every ``"X"`` event with integer
    non-negative ``ts``/``dur``, ``ts`` monotonic non-decreasing within
    each ``(pid, tid)`` lane, and every referenced lane named by a
    ``thread_name`` metadata event.
    """
    problems: list[str] = []
    if not isinstance(trace, dict):
        return ["trace is not a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    named_lanes = set()
    used_lanes = set()
    last_ts: dict[tuple, int] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                problems.append(f"event {i}: missing {field!r}")
        ph = event.get("ph")
        lane = (event.get("pid"), event.get("tid"))
        if ph == "M":
            if event.get("name") == "thread_name":
                named_lanes.add(lane)
        elif ph == "X":
            used_lanes.add(lane)
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, int) or value < 0:
                    problems.append(
                        f"event {i}: {field!r} must be a non-negative "
                        f"integer, got {value!r}"
                    )
            ts = event.get("ts")
            if isinstance(ts, int):
                if ts < last_ts.get(lane, 0):
                    problems.append(
                        f"event {i}: ts {ts} decreases on lane {lane}"
                    )
                else:
                    last_ts[lane] = ts
        else:
            problems.append(f"event {i}: unsupported ph {ph!r}")
    for lane in sorted(used_lanes - named_lanes):
        problems.append(f"lane {lane} has events but no thread_name metadata")
    return problems


def main(argv=None) -> int:
    """``python -m repro.telemetry.trace --validate FILE`` entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.telemetry.trace",
        description="Validate a Chrome trace_event JSON file.",
    )
    parser.add_argument("--validate", metavar="FILE", required=True,
                        help="trace file to schema-check")
    args = parser.parse_args(argv)
    with open(args.validate) as fh:
        trace = json.load(fh)
    problems = validate_chrome_trace(trace)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}")
        return 1
    spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
    lanes = sum(
        1 for e in trace["traceEvents"]
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    )
    print(f"ok: {spans} spans across {lanes} lanes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
