"""Code-threshold estimation utilities.

The code threshold (Sec. 2) is the physical error rate below which
increasing the code distance suppresses the logical error rate.  We
estimate it the standard way: sweep the physical rate for two or more
distances and locate the crossing of the LER curves — above threshold
the larger code is *worse*, below it is better.

These utilities operate on the hardware-free uniform-noise circuits of
:func:`repro.codes.ideal_memory_circuit`; they exist to validate the
simulation + decoding substrate against known surface-code behaviour
(circuit-level depolarising threshold in the 0.5-1% range) and to let
users study how the compiled QCCD noise profile compares.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codes.base import StabilizerCode
from ..codes.circuits import UniformNoise, ideal_memory_circuit
from .estimator import LerResult, estimate_logical_error_rate


@dataclass(frozen=True)
class ThresholdScan:
    """LER samples on a (distance x physical-rate) grid."""

    distances: tuple[int, ...]
    physical_rates: tuple[float, ...]
    results: dict[tuple[int, float], LerResult]

    def ler(self, distance: int, rate: float) -> float:
        return self.results[(distance, rate)].per_shot

    def suppression_at(self, rate: float) -> float:
        """LER ratio of the smallest to the largest distance at ``rate``.

        > 1 means the larger code wins (below threshold).
        """
        lo, hi = min(self.distances), max(self.distances)
        big = self.ler(hi, rate)
        small = self.ler(lo, rate)
        return small / max(big, 1e-300)

    def threshold_estimate(self) -> float | None:
        """Crossing point of the suppression curve, linearly interpolated.

        Returns None when every sampled rate is on the same side.
        """
        rates = sorted(self.physical_rates)
        values = [self.suppression_at(r) for r in rates]
        for (r1, v1), (r2, v2) in zip(
            zip(rates, values), zip(rates[1:], values[1:])
        ):
            if (v1 - 1.0) * (v2 - 1.0) <= 0 and v1 != v2:
                # Linear interpolation of the crossing of v = 1.
                t = (1.0 - v1) / (v2 - v1)
                return r1 + t * (r2 - r1)
        return None


def scan_threshold(
    code_family,
    distances: tuple[int, ...] = (3, 5),
    physical_rates: tuple[float, ...] = (2e-3, 5e-3, 1e-2, 2e-2),
    rounds: int | None = None,
    shots: int = 4000,
    decoder: str = "mwpm",
    basis: str = "Z",
    seed: int = 7,
) -> ThresholdScan:
    """Monte-Carlo LER scan over distances and uniform physical rates.

    ``code_family`` is a callable mapping a distance to a
    :class:`StabilizerCode` (e.g. ``RotatedSurfaceCode``).
    """
    if len(distances) < 2:
        raise ValueError("need at least two distances to locate a crossing")
    results: dict[tuple[int, float], LerResult] = {}
    for d in distances:
        code: StabilizerCode = code_family(d)
        r = rounds if rounds is not None else d
        for p in physical_rates:
            circuit = ideal_memory_circuit(
                code, rounds=r, basis=basis, noise=UniformNoise(p)
            )
            results[(d, p)] = estimate_logical_error_rate(
                circuit, rounds=r, shots=shots, decoder=decoder, seed=seed
            )
    return ThresholdScan(tuple(distances), tuple(physical_rates), results)
