"""Monte-Carlo logical error rate estimation (Sec. 6.4).

Pipeline: noisy circuit -> detector error model -> decoder -> sampled
failure rate.  Reports both per-shot and per-round logical error
rates; the per-round figure (what the paper plots) treats the shot as
``rounds`` independent opportunities to fail:
``p_round = 1 - (1 - p_shot)^(1/rounds)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..decoders.graph import DetectorGraph
from ..decoders.mwpm import MwpmDecoder
from ..decoders.union_find import UnionFindDecoder
from ..sim.circuit import StabilizerCircuit
from ..sim.dem import circuit_to_dem
from ..sim.dem_sampler import PackedShard
from ..sim.frame import FrameSimulator


@dataclass(frozen=True)
class LerResult:
    """Outcome of one logical-error-rate estimation."""

    shots: int
    failures: int
    rounds: int

    def __post_init__(self):
        if self.rounds <= 0:
            raise ValueError(f"rounds must be positive, got {self.rounds}")

    @property
    def per_shot(self) -> float:
        """Jeffreys-smoothed failure probability per shot."""
        return (self.failures + 0.5) / (self.shots + 1.0)

    @property
    def per_round(self) -> float:
        p = min(self.per_shot, 1.0 - 1e-12)
        return 1.0 - (1.0 - p) ** (1.0 / self.rounds)

    @property
    def stderr_per_shot(self) -> float:
        """Standard error of ``per_shot``, on the same smoothed denominator."""
        p = self.per_shot
        return math.sqrt(p * (1.0 - p) / (self.shots + 1.0))

    @property
    def rel_stderr(self) -> float:
        """Relative precision of the estimate (``stderr / ler``) — the
        quantity adaptive precision stopping
        (``SweepSpec(target_rel_stderr=...)``) drives below its bound."""
        return self.stderr_per_shot / self.per_shot

    @property
    def observed_any_failure(self) -> bool:
        return self.failures > 0


def make_decoder(graph: DetectorGraph, name: str):
    if name == "mwpm":
        return MwpmDecoder(graph)
    if name == "union_find":
        return UnionFindDecoder(graph)
    raise ValueError(f"unknown decoder {name!r}; expected mwpm or union_find")


def estimate_logical_error_rate(
    circuit: StabilizerCircuit,
    rounds: int,
    shots: int = 2000,
    decoder: str = "mwpm",
    seed: int | None = None,
) -> LerResult:
    """Sample-and-decode LER estimate for a noisy memory circuit."""
    if shots <= 0:
        raise ValueError("shots must be positive")
    dem = circuit_to_dem(circuit)
    graph = DetectorGraph.from_dem(dem)
    dec = make_decoder(graph, decoder)
    sample = FrameSimulator(circuit, seed=seed).sample(shots)
    # Pack once at the sampler boundary; decode over the packed words
    # (the same flow an engine shard uses).
    packed = PackedShard.from_bool(sample.detectors, sample.observables)
    failures = int(
        dec.logical_failures_packed(packed.det_words, packed.obs_words).sum()
    )
    return LerResult(shots=shots, failures=failures, rounds=rounds)


def estimate_until_failures(
    circuit: StabilizerCircuit,
    rounds: int,
    min_failures: int | None = 20,
    max_shots: int = 10 ** 6,
    batch: int = 5000,
    decoder: str = "mwpm",
    seed: int | None = None,
    backend=None,
    sampler: str = "dem",
    target_rel_stderr: float | None = None,
) -> LerResult:
    """Adaptive estimation: sample in batches until enough failures.

    Low logical error rates make fixed shot counts wasteful (too many)
    or misleading (too few failures for a stable estimate).  This runs
    the engine's adaptive shard scheduler over one ad-hoc circuit:
    ``batch`` shots per shard (each on its own ``SeedSequence`` stream
    spawned from ``seed``), stopping at ``min_failures`` observed
    failures or at the ``max_shots`` budget, whichever comes first.
    Pass an engine backend (e.g. ``MultiprocessBackend``) to fan the
    shards out over workers.  ``sampler="dem"`` (default) draws
    syndromes straight from the compiled detector error model;
    ``sampler="frame"`` opts back into gate-by-gate circuit replay.
    ``target_rel_stderr`` adds a precision stopping rule: sampling also
    stops once ``result.rel_stderr`` falls below the bound — and since
    the *first* satisfied target wins, a precision bound tighter than
    ``1/sqrt(min_failures)`` needs ``min_failures=None``
    (precision-only stopping, up to the ``max_shots`` budget).
    """
    if min_failures is None and target_rel_stderr is None:
        raise ValueError("need min_failures and/or target_rel_stderr")
    if min_failures is not None and min_failures < 1:
        raise ValueError("min_failures must be positive")
    if batch < 1 or max_shots < batch:
        raise ValueError("need max_shots >= batch >= 1")
    from ..engine.runner import sample_adaptive  # deferred: engine builds on this module

    shots, failures = sample_adaptive(
        circuit,
        decoder=decoder,
        target_failures=min_failures,
        target_rel_stderr=target_rel_stderr,
        max_shots=max_shots,
        shard_shots=batch,
        seed=seed,
        backend=backend,
        sampler=sampler,
    )
    return LerResult(shots=shots, failures=failures, rounds=rounds)


def estimate_sweep(spec, **runner_options):
    """Engine-backed LER estimation over a whole design-space grid.

    ``spec`` is a :class:`repro.engine.SweepSpec`; ``runner_options``
    are forwarded to :class:`repro.engine.Runner` (``workers``,
    ``cache`` / ``cache_dir``, ``store`` / ``results_path``,
    ``shard_shots``, ``progress``, ...).  Returns the engine's
    :class:`repro.engine.JobResult` list, whose ``ler`` property yields
    a :class:`LerResult` per sampled job.  Unlike
    :func:`estimate_logical_error_rate`, circuits shared between jobs
    are compiled once and shots may be sharded over worker processes.
    """
    from ..engine.runner import run_sweep  # deferred: engine builds on this module

    return run_sweep(spec, **runner_options)
