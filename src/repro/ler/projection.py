"""Projection of logical error rates to unsampled distances.

The paper's Figures 10-13 are explicitly *projections*: below
threshold, the surface code's logical error rate follows
``p_L(d) = A * Lambda^-((d+1)/2)``, so measuring a handful of small
distances pins down ``A`` and ``Lambda`` and extrapolation reaches the
1e-9 regime no Monte-Carlo sampler can visit.  We fit by least squares
in log space and expose the two queries the figures need: p_L at a
distance, and the distance achieving a target p_L.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class LerProjection:
    """Fitted suppression model ``p_L(d) = A * Lambda^-((d+1)/2)``."""

    log_a: float
    log_lambda: float

    @property
    def lam(self) -> float:
        """The suppression factor per distance step of two."""
        return math.exp(self.log_lambda)

    @property
    def below_threshold(self) -> bool:
        return self.log_lambda > 0

    def ler_at(self, distance: int | float) -> float:
        return math.exp(self.log_a - self.log_lambda * (distance + 1) / 2.0)

    def distance_for(self, target_ler: float) -> int | None:
        """Smallest odd distance achieving ``target_ler`` (None if never)."""
        if not self.below_threshold:
            return None
        d = 2.0 * (self.log_a - math.log(target_ler)) / self.log_lambda - 1.0
        d = max(d, 1.0)
        rounded = math.ceil(d)
        if rounded % 2 == 0:
            rounded += 1
        return rounded


def fit_projection(points: list[tuple[int, float]]) -> LerProjection:
    """Least-squares fit of the suppression model in log space.

    ``points`` are (distance, per-round logical error rate) pairs; at
    least two distinct distances are required.
    """
    if len(points) < 2:
        raise ValueError("need at least two (distance, ler) points")
    xs = [(d + 1) / 2.0 for d, _ in points]
    ys = [math.log(max(p, 1e-300)) for _, p in points]
    if len(set(xs)) < 2:
        raise ValueError("need at least two distinct distances")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    return LerProjection(log_a=intercept, log_lambda=-slope)
