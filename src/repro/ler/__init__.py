"""Logical error rate estimation and projection."""

from .estimator import (
    LerResult,
    estimate_logical_error_rate,
    estimate_sweep,
    estimate_until_failures,
    make_decoder,
)
from .projection import LerProjection, fit_projection
from .threshold import ThresholdScan, scan_threshold

__all__ = [
    "LerResult",
    "estimate_logical_error_rate",
    "estimate_sweep",
    "estimate_until_failures",
    "make_decoder",
    "LerProjection",
    "fit_projection",
    "ThresholdScan",
    "scan_threshold",
]
