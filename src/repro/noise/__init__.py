"""Trapped-ion noise models: channels e1-e5, heating, fidelity scaling."""

from .fidelity import (
    dephasing_error,
    measurement_error,
    reset_error,
    single_qubit_error,
    thermal_factor,
    two_qubit_error,
)
from .heating import HeatingLedger
from .parameters import DEFAULT_NOISE, HeatingRates, NoiseParameters

__all__ = [
    "dephasing_error",
    "measurement_error",
    "reset_error",
    "single_qubit_error",
    "thermal_factor",
    "two_qubit_error",
    "HeatingLedger",
    "DEFAULT_NOISE",
    "HeatingRates",
    "NoiseParameters",
]
