"""Gate fidelity model: error probability as a function of chain state.

Implements Sec. 5.1's expression — the infidelity of a qubit gate has a
background-heating term growing with gate duration and a thermal-motion
term ``A(N) * (2 nbar + 1)`` that transport operations inflate — plus
the calibrated base error floor, all scaled by the gate-improvement
factor.
"""

from __future__ import annotations

import math

from .parameters import NoiseParameters


def thermal_factor(a0: float, chain_length: int) -> float:
    """A(N) = A0 * ln(N) / N, the laser-beam instability scaling."""
    n = max(int(chain_length), 2)
    return a0 * math.log(n) / n


def two_qubit_error(
    params: NoiseParameters,
    duration_us: float,
    chain_length: int,
    nbar: float,
) -> float:
    """Depolarising probability after an MS gate (channel e3)."""
    if params.cooled_gates:
        return _clamp(params.cooled_p_2q / params.gate_improvement)
    p = (
        params.p_2q_base
        + params.gamma_per_us * duration_us
        + thermal_factor(params.thermal_a0, chain_length) * (2.0 * nbar + 1.0)
    )
    return _clamp(p / params.gate_improvement)


def single_qubit_error(
    params: NoiseParameters,
    duration_us: float,
    chain_length: int,
    nbar: float,
) -> float:
    """Depolarising probability after a rotation (channel e2)."""
    if params.cooled_gates:
        return _clamp(params.cooled_p_1q / params.gate_improvement)
    p = (
        params.p_1q_base
        + params.gamma_per_us * duration_us
        + params.thermal_1q_fraction
        * thermal_factor(params.thermal_a0, chain_length)
        * (2.0 * nbar + 1.0)
    )
    return _clamp(p / params.gate_improvement)


def dephasing_error(params: NoiseParameters, idle_us: float) -> float:
    """Z-flip probability for ``idle_us`` of idling/transport (e1)."""
    if idle_us <= 0:
        return 0.0
    p = (1.0 - math.exp(-idle_us / params.t2_us)) / 2.0
    return _clamp(p / params.gate_improvement)


def measurement_error(params: NoiseParameters) -> float:
    return _clamp(params.p_measurement / params.gate_improvement)


def reset_error(params: NoiseParameters) -> float:
    return _clamp(params.p_reset / params.gate_improvement)


def _clamp(p: float) -> float:
    return min(max(p, 0.0), 0.75)
