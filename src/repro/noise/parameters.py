"""Noise model parameters (Sec. 5.1, Table 1).

Five independent stochastic channels:

- e1: collective dephasing — Z errors during idling/transport with
  ``p = (1 - exp(-t / T2)) / 2``, T2 = 2.2 s;
- e2: depolarising noise after single-qubit rotations;
- e3: two-qubit depolarising noise after MS gates;
- e4: imperfect reset — X flip at p = 5e-3;
- e5: imperfect measurement — X flip at p = 1e-3.

Gate error rates e2/e3 follow the heating-aware fidelity model
``p = p_base + Gamma * tau + A(N) * (2 nbar + 1)`` with
``A(N) = A0 * ln(N) / N`` (thermal beam instability scaling from the
QCCDSim model the paper adopts).  Calibration anchors the paper's
statement that a 5x gate improvement corresponds to ~1e-3 two-qubit
error: at N = 2, nbar = 0, 1x improvement the model gives ~5e-3.

The *gate improvement* factor divides every physical error rate
(equivalently multiplies T2), exactly as defined in Sec. 6.2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class HeatingRates:
    """Motional quanta deposited per transport primitive (Table 1).

    Table 1 quotes nbar < 6 for the split-and-merge row (t8-t9) and
    nbar < 3 for the junction entry/exit row (t10-t11); we read each
    bound as covering the *pair* of primitives on its row, so a single
    split deposits 3 quanta and a single junction crossing leg 1.5.
    Quanta accumulate on the moved ion and are cleared when the ion is
    reset (optical pumping recools), so heating raises the error of
    gates that follow transport within a round without diverging across
    rounds.
    """

    shuttle: float = 0.1
    split: float = 3.0
    merge: float = 3.0
    junction_entry: float = 1.5
    junction_exit: float = 1.5

    def of(self, kind: str) -> float:
        table = {
            "SHUTTLE": self.shuttle,
            "SPLIT": self.split,
            "MERGE": self.merge,
            "JUNCTION_ENTRY": self.junction_entry,
            "JUNCTION_EXIT": self.junction_exit,
        }
        try:
            return table[kind]
        except KeyError:
            raise ValueError(f"unknown movement kind {kind!r}") from None


@dataclass(frozen=True)
class NoiseParameters:
    """All physical-noise knobs of the toolflow."""

    t2_us: float = 2.2e6                 # coherence time (microseconds)
    p_measurement: float = 1e-3          # e5
    p_reset: float = 5e-3                # e4
    # Calibration anchor (Sec. 5.1): the *effective* two-qubit error —
    # base floor plus typical in-round transport heating (nbar ~ 50-70
    # on the moving ancilla, i.e. pair nbar ~ 30) — is ~5e-3 at 1x
    # improvement and ~1e-3 at 5x, the paper's stated correspondence
    # with current Quantinuum/IonQ data sheets.
    p_2q_base: float = 3e-3              # e3 floor at N=2, nbar=0
    p_1q_base: float = 3e-4              # e2 floor
    gamma_per_us: float = 2e-6           # background heating rate Gamma
    thermal_a0: float = 5e-5             # A0 in A(N) = A0 ln(N)/N
    thermal_1q_fraction: float = 0.1     # single-qubit motional sensitivity
    gate_improvement: float = 1.0
    heating: HeatingRates = HeatingRates()
    cooled_gates: bool = False           # WISE cooling model
    cooled_p_2q: float = 2e-3
    cooled_p_1q: float = 3e-3

    def __post_init__(self):
        if self.gate_improvement < 1.0:
            raise ValueError("gate improvement must be >= 1")
        for p in (self.p_measurement, self.p_reset, self.p_2q_base, self.p_1q_base):
            if not 0 <= p <= 1:
                raise ValueError("probabilities must lie in [0, 1]")

    def improved(self, factor: float) -> "NoiseParameters":
        """The same model under a gate-improvement factor (Sec. 6.2)."""
        return replace(self, gate_improvement=factor)

    def with_cooling(self) -> "NoiseParameters":
        """The WISE cooled-gate noise variant."""
        return replace(self, cooled_gates=True)


DEFAULT_NOISE = NoiseParameters()
