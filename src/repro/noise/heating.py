"""Motional-energy ledger: tracks nbar per ion through a schedule.

Transport primitives deposit quanta on the moved ion (Table 1 upper
bounds); resets recool (optical pumping re-initialises the motional
state); gates read the current chain energy to determine their error
rate.  The ledger deliberately lives outside the compiler so the same
compiled schedule can be re-evaluated under different noise models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .parameters import HeatingRates


@dataclass
class HeatingLedger:
    """Per-ion vibrational quanta bookkeeping."""

    rates: HeatingRates = field(default_factory=HeatingRates)
    nbar: dict[int, float] = field(default_factory=dict)

    def of(self, ion: int) -> float:
        return self.nbar.get(ion, 0.0)

    def record_movement(self, ion: int, kind: str) -> float:
        """Apply one transport primitive's heating; returns new nbar."""
        value = self.nbar.get(ion, 0.0) + self.rates.of(kind)
        self.nbar[ion] = value
        return value

    def record_reset(self, ion: int) -> None:
        """Reset recools the ion to the motional ground state."""
        self.nbar[ion] = 0.0

    def pair_nbar(self, ion_a: int, ion_b: int) -> float:
        """Effective chain energy seen by a two-qubit gate."""
        return (self.of(ion_a) + self.of(ion_b)) / 2.0
