"""Unrotated (planar) surface code.

The second validation benchmark of Sec. 6.1.  Qubits occupy every site
of a (2d-1)x(2d-1) grid: data qubits where both coordinates share
parity, X ancillas at (odd, even) sites and Z ancillas at (even, odd)
sites.  Checks touch their four compass neighbours (two or three on the
boundary).  Qubit count is (2d-1)^2.
"""

from __future__ import annotations

from .base import Check, CodeQubit, Role, StabilizerCode

# Direction from the ancilla to the data qubit per CX layer.  The
# middle two layers are swapped between X and Z checks, which makes the
# schedule conflict-free and keeps every overlapping X/Z check pair
# *uncrossed* (same relative order on both shared data qubits), the
# condition for deterministic stabilizer measurement.  Hook errors are
# not orientation-optimised here: compass neighbourhoods cannot combine
# conflict-freedom, uncrossing and double hook safety, and the
# unrotated code serves only as a compiler-validation baseline
# (Sec. 6.1), not in the LER studies.
_X_ORDER = ((0, 1), (-1, 0), (1, 0), (0, -1))   # N, W, E, S
_Z_ORDER = ((0, 1), (1, 0), (-1, 0), (0, -1))   # N, E, W, S


class UnrotatedSurfaceCode(StabilizerCode):
    """[[(2d-1)^2 phys, 1, d]] planar surface code."""

    name = "unrotated_surface"

    def _build(self) -> None:
        d = self.distance
        span = 2 * d - 1
        index = 0
        data_at: dict[tuple[int, int], int] = {}
        ancilla_sites: list[tuple[int, int, str]] = []
        for y in range(span):
            for x in range(span):
                if x % 2 == y % 2:
                    self.qubits.append(
                        CodeQubit(index, Role.DATA, (float(x), float(y)))
                    )
                    data_at[(x, y)] = index
                    index += 1
                elif x % 2 == 1:
                    ancilla_sites.append((x, y, "X"))
                else:
                    ancilla_sites.append((x, y, "Z"))

        for x, y, basis in ancilla_sites:
            self.qubits.append(
                CodeQubit(index, Role.ANCILLA, (float(x), float(y)), basis=basis)
            )
            order = _X_ORDER if basis == "X" else _Z_ORDER
            data_by_layer = tuple(
                data_at.get((x + dx, y + dy)) for dx, dy in order
            )
            self.checks.append(Check(index, basis, data_by_layer))
            index += 1

        # X ancillas at odd x mean X strings terminate on the left/right
        # edges; logical Z crosses them horizontally along row y = 0,
        # logical X vertically along column x = 0.
        self.logical_z = [data_at[(x, 0)] for x in range(0, span, 2)]
        self.logical_x = [data_at[(0, y)] for y in range(0, span, 2)]
