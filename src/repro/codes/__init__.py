"""QEC codes: geometry, checks, logical operators and round circuits.

The paper's benchmarks (Sec. 6.1): repetition code and unrotated
surface code as compiler-validation baselines, rotated surface code as
the primary architectural workload.
"""

from .base import Check, CodeQubit, Role, StabilizerCode
from .circuits import (
    DetectorSpec,
    LayeredRound,
    UniformNoise,
    attach_detectors,
    ideal_memory_circuit,
    memory_detector_spec,
    syndrome_round,
)
from .rectangular import RectangularRotatedCode, merged_patch
from .repetition import RepetitionCode
from .rotated_surface import RotatedSurfaceCode
from .unrotated_surface import UnrotatedSurfaceCode

__all__ = [
    "Check",
    "CodeQubit",
    "Role",
    "StabilizerCode",
    "DetectorSpec",
    "LayeredRound",
    "UniformNoise",
    "attach_detectors",
    "ideal_memory_circuit",
    "memory_detector_spec",
    "syndrome_round",
    "RectangularRotatedCode",
    "merged_patch",
    "RepetitionCode",
    "RotatedSurfaceCode",
    "UnrotatedSurfaceCode",
]


def make_code(name: str, distance: int) -> StabilizerCode:
    """Factory used by the toolflow and the benchmark harness."""
    registry = {
        "repetition": RepetitionCode,
        "rotated_surface": RotatedSurfaceCode,
        "unrotated_surface": UnrotatedSurfaceCode,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise ValueError(
            f"unknown code {name!r}; expected one of {sorted(registry)}"
        ) from None
    return cls(distance)
