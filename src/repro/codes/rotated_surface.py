"""Rotated surface code (the paper's primary workload, Figure 3).

Layout follows the standard convention: data qubits at odd-odd
coordinates of a (2d)x(2d) patch, measure (ancilla) qubits at even-even
coordinates, checkerboard-coloured into X and Z plaquettes, with
weight-two checks along the boundary.  Total qubit count is
``2*d*d - 1`` (d^2 data + d^2-1 ancilla), matching Sec. 6.1.

CX layer orders use the standard "zigzag" schedule (middle two layers
swapped between X and Z checks), which guarantees that no data qubit is
addressed twice in a layer and avoids distance-killing hook errors.
"""

from __future__ import annotations

from .base import Check, CodeQubit, Role, StabilizerCode

# Direction of the data qubit relative to the measure qubit per layer.
# Hook-error safety fixes these orders: an ancilla fault after the
# second CX spreads to the *last two* data qubits, so that pair must lie
# perpendicular to the logical operator the error species can corrupt.
# With these orders the X-check hook pair is horizontal (safe for the
# row-shaped logical Z) and the Z-check hook pair is vertical (safe for
# the column-shaped logical X); the middle-two-swapped structure keeps
# every layer conflict-free.
_X_ORDER = ((1, 1), (-1, 1), (1, -1), (-1, -1))
_Z_ORDER = ((1, 1), (1, -1), (-1, 1), (-1, -1))


class RotatedSurfaceCode(StabilizerCode):
    """[[2d^2-1 phys, 1, d]] rotated planar surface code."""

    name = "rotated_surface"

    def _build(self) -> None:
        d = self.distance
        index = 0
        data_at: dict[tuple[int, int], int] = {}
        for y in range(1, 2 * d, 2):
            for x in range(1, 2 * d, 2):
                self.qubits.append(CodeQubit(index, Role.DATA, (float(x), float(y))))
                data_at[(x, y)] = index
                index += 1

        # Candidate measure-qubit sites: even-even points of the patch,
        # kept when they have at least two data neighbours and obey the
        # boundary colouring rule of the rotated code.
        ancilla_sites: list[tuple[int, int, str]] = []
        for y in range(0, 2 * d + 1, 2):
            for x in range(0, 2 * d + 1, 2):
                basis = "X" if (x + y) % 4 == 0 else "Z"
                if not self._site_in_code(x, y, d, basis):
                    continue
                ancilla_sites.append((x, y, basis))

        for x, y, basis in ancilla_sites:
            self.qubits.append(
                CodeQubit(index, Role.ANCILLA, (float(x), float(y)), basis=basis)
            )
            order = _X_ORDER if basis == "X" else _Z_ORDER
            data_by_layer = tuple(
                data_at.get((x + dx, y + dy)) for dx, dy in order
            )
            self.checks.append(Check(index, basis, data_by_layer))
            index += 1

        # With this colouring, X-type boundary checks sit on the top and
        # bottom edges and Z-type checks on the left and right edges, so
        # logical Z runs along a row of data qubits and logical X along
        # a column (they anticommute in exactly one qubit; commutation
        # with every check is verified in the test suite).
        self.logical_z = [data_at[(x, 1)] for x in range(1, 2 * d, 2)]
        self.logical_x = [data_at[(1, y)] for y in range(1, 2 * d, 2)]

    @staticmethod
    def _site_in_code(x: int, y: int, d: int, basis: str) -> bool:
        """Whether an even-even site hosts a measure qubit.

        Interior sites (touching four data qubits) always do.  Boundary
        sites host a weight-two check only when the side matches the
        checkerboard colouring — X checks on the top/bottom edges and Z
        checks on the left/right edges — which is the rotated code's
        defining trim.  The colouring itself spaces them out with period
        four along each edge.
        """
        inside_x = 0 < x < 2 * d
        inside_y = 0 < y < 2 * d
        if inside_x and inside_y:
            return True
        # Corners never host checks.
        if not inside_x and not inside_y:
            return False
        if inside_x:  # top (y == 0) or bottom (y == 2d) boundary
            return basis == "X"
        # Left (x == 0) or right (x == 2d) boundary.
        return basis == "Z"
